"""Leiden-style well-connectedness refinement.

Louvain's local moves optimise modularity one vertex at a time, so a
community can end up **internally disconnected**: removing a bridge
vertex (or, in the streaming case, deleting bridge edges from under a
stale membership) leaves two pieces that share a label but no path.
Traag, Waltman & van Eck's Leiden algorithm repairs this with a
*refinement* phase: before each contraction commit, every community is
split into its connected components, the **refined** partition is what
gets contracted, and the next level is warm-started from the unrefined
partition — so disconnected pieces become separate contraction units
the next optimisation phase can keep together or pull apart on merit.

:func:`connected_refinement` is that check, vectorized in the style of
a Shiloach–Vishkin GPU kernel: min-label hooking over intra-community
edges plus pointer-jumping compression, both whole-array operations.
Component labels are the minimum member vertex id, which keeps the
output deterministic and inside the vertex-id label space every other
phase uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from ..trace import NullTracer, Tracer, as_tracer

__all__ = ["RefinementOutcome", "connected_refinement", "count_disconnected"]


@dataclass
class RefinementOutcome:
    """Result of one well-connectedness refinement pass.

    Attributes
    ----------
    refined:
        Per-vertex component label (the minimum vertex id of the
        component).  Vertices in the same community *and* the same
        connected component share a label; every community that was
        already connected keeps exactly one label.
    num_communities:
        Communities in the input partition.
    num_refined:
        Components in the refined partition (``>= num_communities``).
    num_split:
        Communities that were internally disconnected and got split.
    """

    refined: np.ndarray
    num_communities: int
    num_refined: int
    num_split: int

    @property
    def changed(self) -> bool:
        """Whether any community was split."""
        return self.num_split > 0


def _components_within(graph: CSRGraph, comm: np.ndarray) -> np.ndarray:
    """Min-label connected components over intra-community edges.

    Shiloach–Vishkin shape: alternate a hooking step (every endpoint
    adopts the smaller of the two component labels across each kept
    edge) with pointer jumping until no edge spans two labels.  Both
    steps are whole-array NumPy operations; the loop count is the
    component-diameter logarithm, not the vertex count.
    """
    n = graph.num_vertices
    parent = np.arange(n, dtype=np.int64)
    if graph.num_stored_edges == 0:
        return parent
    src = graph.vertex_of_edge
    dst = graph.indices
    keep = comm[src] == comm[dst]
    src = src[keep]
    dst = dst[keep]
    if src.size == 0:
        return parent
    while True:
        # Hook: pull every edge's endpoints to the smaller label.  The
        # CSR stores both directions, so one directed pass covers both.
        np.minimum.at(parent, src, parent[dst])
        # Pointer jumping until the parent forest is flat.
        while True:
            grand = parent[parent]
            if np.array_equal(grand, parent):
                break
            parent = grand
        if not np.any(parent[src] != parent[dst]):
            return parent


def connected_refinement(
    graph: CSRGraph,
    comm: np.ndarray,
    *,
    tracer: Tracer | NullTracer | None = None,
) -> RefinementOutcome:
    """Split every internally-disconnected community of ``comm``.

    Returns a :class:`RefinementOutcome` whose ``refined`` labels are
    minimum member vertex ids — valid ``initial_communities`` for any
    phase.  With a live ``tracer`` the pass is recorded as a
    ``refinement`` span carrying before/after community counts.
    """
    comm = np.asarray(comm, dtype=np.int64)
    if comm.shape != (graph.num_vertices,):
        raise ValueError("comm must assign one community per vertex")
    tracer = as_tracer(tracer)
    if not tracer.enabled:
        return _refine(graph, comm)
    with tracer.span("refinement") as span:
        outcome = _refine(graph, comm)
        span.count(
            num_communities=outcome.num_communities,
            num_refined=outcome.num_refined,
            num_split=outcome.num_split,
        )
    return outcome


def _refine(graph: CSRGraph, comm: np.ndarray) -> RefinementOutcome:
    """:func:`connected_refinement` body."""
    refined = _components_within(graph, comm)
    if comm.size == 0:
        return RefinementOutcome(refined, 0, 0, 0)
    num_communities = int(np.unique(comm).size)
    # Components per community: count distinct refined labels under each
    # community label (refined labels are globally unique across
    # communities, so a plain unique of the refined array suffices).
    num_refined = int(np.unique(refined).size)
    if num_refined == num_communities:
        return RefinementOutcome(refined, num_communities, num_refined, 0)
    # A community is split iff it owns more than one component label.
    reps = np.unique(refined)
    comm_of_rep = comm[reps]
    labels, counts = np.unique(comm_of_rep, return_counts=True)
    num_split = int(np.count_nonzero(counts > 1))
    return RefinementOutcome(refined, num_communities, num_refined, num_split)


def count_disconnected(graph: CSRGraph, comm: np.ndarray) -> int:
    """Number of internally-disconnected communities in ``comm``.

    The well-connectedness audit used by tests and the quality bench:
    ``0`` means every community induces a connected subgraph.
    """
    return connected_refinement(graph, comm).num_split
