"""Timing records for the per-stage breakdowns of figures 5 and 6.

A Louvain run is a sequence of *stages* (levels of the hierarchy), each
made of a *modularity optimization* phase and an *aggregation* phase.  The
solvers in :mod:`repro.core` and :mod:`repro.seq` fill a
:class:`RunTimings` as they go; the figure-5/6 benchmark prints it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["StageTiming", "RunTimings", "Stopwatch"]


@dataclass
class StageTiming:
    """Wall-clock seconds spent in one stage of the hierarchy."""

    stage: int
    optimization_seconds: float = 0.0
    aggregation_seconds: float = 0.0
    num_vertices: int = 0
    num_edges: int = 0
    sweeps: int = 0
    modularity: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Optimization plus aggregation time."""
        return self.optimization_seconds + self.aggregation_seconds


@dataclass
class RunTimings:
    """All stage timings of one solver run."""

    stages: list[StageTiming] = field(default_factory=list)

    def new_stage(self, num_vertices: int, num_edges: int) -> StageTiming:
        """Append and return a fresh :class:`StageTiming`."""
        stage = StageTiming(
            stage=len(self.stages), num_vertices=num_vertices, num_edges=num_edges
        )
        self.stages.append(stage)
        return stage

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time across stages."""
        return sum(s.total_seconds for s in self.stages)

    @property
    def optimization_seconds(self) -> float:
        """Total time in modularity optimization phases."""
        return sum(s.optimization_seconds for s in self.stages)

    @property
    def aggregation_seconds(self) -> float:
        """Total time in aggregation phases."""
        return sum(s.aggregation_seconds for s in self.stages)

    def optimization_fraction(self) -> float:
        """Fraction of total time spent optimizing (paper reports ~0.7)."""
        total = self.total_seconds
        return self.optimization_seconds / total if total > 0 else 0.0


class Stopwatch:
    """Context manager that adds elapsed seconds to an attribute.

    >>> stage = StageTiming(stage=0)
    >>> with Stopwatch(stage, "optimization_seconds"):
    ...     pass
    """

    def __init__(self, record: object, attribute: str) -> None:
        self._record = record
        self._attribute = attribute
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        elapsed = time.perf_counter() - self._start
        setattr(
            self._record,
            self._attribute,
            getattr(self._record, self._attribute) + elapsed,
        )
