"""Tests for repro.result."""

import numpy as np
import pytest

from repro.result import LouvainResult, flatten_levels


def test_flatten_single_level():
    out = flatten_levels([np.array([0, 1, 0])])
    assert out.tolist() == [0, 1, 0]


def test_flatten_two_levels():
    # level 0: vertices {0,1,2,3} -> {0,0,1,1}; level 1: {0,1} -> {0,0}
    out = flatten_levels([np.array([0, 0, 1, 1]), np.array([0, 0])])
    assert out.tolist() == [0, 0, 0, 0]


def test_flatten_three_levels():
    l0 = np.array([0, 1, 2, 3])
    l1 = np.array([0, 0, 1, 1])
    l2 = np.array([1, 0])
    out = flatten_levels([l0, l1, l2])
    assert out.tolist() == [1, 1, 0, 0]


def test_flatten_empty_raises():
    with pytest.raises(ValueError):
        flatten_levels([])


def test_flatten_does_not_mutate_input():
    level = np.array([0, 1])
    flatten_levels([level, np.array([1, 0])])
    assert level.tolist() == [0, 1]


def _result():
    levels = [np.array([0, 0, 1, 2]), np.array([0, 1, 1])]
    return LouvainResult(
        levels=levels,
        level_sizes=[(4, 5), (3, 3)],
        membership=flatten_levels(levels),
        modularity=0.5,
    )


def test_result_num_levels():
    assert _result().num_levels == 2


def test_result_num_communities():
    r = _result()
    assert r.num_communities == 2  # labels {0, 1}


def test_membership_at_level():
    r = _result()
    assert r.membership_at_level(0).tolist() == [0, 0, 1, 2]
    assert r.membership_at_level(1).tolist() == [0, 0, 1, 1]
    with pytest.raises(IndexError):
        r.membership_at_level(2)
    with pytest.raises(IndexError):
        r.membership_at_level(-1)


def test_empty_membership():
    r = LouvainResult(
        levels=[np.array([], dtype=np.int64)],
        level_sizes=[(0, 0)],
        membership=np.array([], dtype=np.int64),
        modularity=0.0,
    )
    assert r.num_communities == 0
