"""Section 5's relaxed-update ablation.

Paper: committing moves only at the end of each full sweep (the pure
fine-grained model) instead of after every bucket changes final modularity
by less than 0.13% on average, but can make the run up to 10x slower —
typically via the optimization phase right after the t_bin -> t_final
switch; the number of phases sometimes shrinks but extra sweeps offset it.

Reproduction note (recorded in EXPERIMENTS.md): under *strictly*
synchronous semantics the relaxed sweep enters move limit-cycles on
graphs with hubs (thousands of vertices swap forever; we verified a
stable 2543-vertex cycle on the com-youtube analog), so quality holds on
mesh/road classes but drops on social graphs.  The paper's <0.13% claim
evidently depends on some residual asynchrony in their relaxed binary
that Section 5 does not specify; the *actionable* findings — relaxed is
never better and never usefully faster, so the per-bucket commit is the
right default — reproduce cleanly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.reporting import banner, format_table
from repro.bench.runner import run_gpu
from repro.bench.suite import SUITE

from _util import emit

GRAPH_NAMES = (
    "com-youtube",
    "cnr-2000",
    "nlpkkt120",
    "italy_osm",
    "boneS10_M",
    "rgg_n_2_22_s0",
)


@pytest.fixture(scope="module")
def runs():
    rows = []
    for name in GRAPH_NAMES:
        entry = next(e for e in SUITE if e.name == name)
        graph = entry.load()
        bucketed = run_gpu(graph)
        relaxed = run_gpu(graph, relaxed_updates=True)
        rows.append((entry, bucketed, relaxed))
    return rows


def test_relaxed_vs_bucketed(benchmark, runs):
    entry0 = runs[0][0]
    graph0 = entry0.load()
    benchmark.pedantic(
        lambda: run_gpu(graph0, relaxed_updates=True), rounds=2, iterations=1
    )

    table_rows = []
    q_diffs = []
    slowdowns = []
    for entry, bucketed, relaxed in runs:
        q_diff = abs(bucketed.modularity - relaxed.modularity) / max(
            bucketed.modularity, 1e-12
        )
        q_diffs.append(q_diff)
        slowdowns.append(relaxed.seconds / bucketed.seconds)
        table_rows.append(
            [
                entry.name,
                bucketed.modularity,
                relaxed.modularity,
                bucketed.seconds,
                relaxed.seconds,
                relaxed.seconds / bucketed.seconds,
                sum(bucketed.result.sweeps_per_level),
                sum(relaxed.result.sweeps_per_level),
            ]
        )
    table = format_table(
        ["graph", "Q bucketed", "Q relaxed", "s bucketed", "s relaxed",
         "slowdown", "sweeps b", "sweeps r"],
        table_rows,
        floatfmt=".4f",
    )
    summary = (
        f"mean |Q difference|: {np.mean(q_diffs) * 100:.3f}% "
        f"(paper: < 0.13%; see module docstring for the synchrony caveat)\n"
        f"relaxed slowdown: mean={np.mean(slowdowns):.2f}x max={max(slowdowns):.2f}x "
        f"(paper: up to 10x in some cases)"
    )
    emit("relaxed_ablation", banner("Relaxed-update ablation (Section 5)") + "\n" + table + "\n\n" + summary)

    # Relaxed never *improves* quality ...
    for _, bucketed, relaxed in runs:
        assert relaxed.modularity <= bucketed.modularity + 1e-6
    # ... holds quality on the mesh/road classes (no hub oscillation) ...
    structured = {"italy_osm", "rgg_n_2_22_s0", "nlpkkt120", "boneS10_M"}
    for entry, bucketed, relaxed in runs:
        if entry.name in structured:
            assert relaxed.modularity > 0.85 * bucketed.modularity
    # ... and never delivers a meaningful speedup.
    assert np.mean(slowdowns) > 0.8
