"""Observability analytics over ``repro.trace/1`` reports.

PR 3 made every engine *emit* span trees; this package *consumes* them:

* :mod:`repro.obs.analyze` — per-span-path aggregates, the Fig. 5/6
  stage-breakdown table with derived rates (per-level MTEPS, moves per
  sweep, hash-probe rate, frontier fraction), and a text critical-path
  / flame view;
* :mod:`repro.obs.diff` — structural diff of two traced runs matched by
  span path, with a slowdown threshold and machine-readable verdict;
* :mod:`repro.obs.trajectory` — the append-only perf-trajectory store
  (``BENCH_trajectory.json``) keyed by (graph, engine, config
  fingerprint, commit);
* :mod:`repro.obs.gate` — the regression gate CI runs via
  ``python -m repro bench-gate``;
* :mod:`repro.obs.metrics` — the *runtime* half: a dependency-free
  Prometheus-style registry (counters / gauges / histograms) the serve,
  stream, shard and gpu layers record into, exposed as
  ``GET /v1/metrics``;
* :mod:`repro.obs.logs` — structured JSON logging (``repro.log/1``)
  with per-request/per-batch correlation ids tying log lines to trace
  span paths;
* :mod:`repro.obs.flight` — the always-on flight recorder
  (``repro.flight/1``): a byte-budgeted ring of recent spans / log
  lines / metric deltas with crash-surviving journals, a stall
  watchdog, and ``repro debug-bundle`` tarballs.

CLI verbs: ``repro trace-summary``, ``repro trace-diff``,
``repro trajectory``, ``repro bench-gate``.
"""

from .logs import (
    LOG_SCHEMA,
    NULL_LOGGER,
    StructuredLogger,
    correlation,
    current_correlation_id,
    new_correlation_id,
    validate_log_line,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
)
from .flight import (
    FLIGHT_SCHEMA,
    NULL_FLIGHT,
    FlightRecorder,
    NullFlightRecorder,
    Watchdog,
    build_debug_bundle,
    get_flight_recorder,
    load_journal,
    set_flight_recorder,
    stitch_spans,
    validate_flight,
)
from .analyze import (
    LevelMetrics,
    PathAggregate,
    critical_path,
    critical_path_spans,
    flatten_report,
    flatten_reports,
    format_stream_aggregate,
    level_metrics,
    load_trace,
    span_component,
    stage_table,
    stream_aggregate,
)
from .diff import PathDelta, TraceDiff, diff_reports
from .gate import (
    DEFAULT_METRICS,
    GateCheck,
    GateResult,
    evaluate_gate,
    run_gate_entries,
)
from .trajectory import (
    TRAJECTORY_SCHEMA,
    TrajectoryEntry,
    TrajectoryStore,
    config_fingerprint,
    current_commit,
    entry_from_report,
    fingerprint,
)

__all__ = [
    # metrics
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "get_registry",
    "set_registry",
    # logs
    "LOG_SCHEMA",
    "StructuredLogger",
    "NULL_LOGGER",
    "correlation",
    "current_correlation_id",
    "new_correlation_id",
    "validate_log_line",
    # flight
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_FLIGHT",
    "get_flight_recorder",
    "set_flight_recorder",
    "validate_flight",
    "load_journal",
    "stitch_spans",
    "Watchdog",
    "build_debug_bundle",
    # analyze
    "PathAggregate",
    "span_component",
    "flatten_report",
    "flatten_reports",
    "LevelMetrics",
    "level_metrics",
    "stage_table",
    "critical_path",
    "critical_path_spans",
    "load_trace",
    "stream_aggregate",
    "format_stream_aggregate",
    # diff
    "PathDelta",
    "TraceDiff",
    "diff_reports",
    # trajectory
    "TRAJECTORY_SCHEMA",
    "TrajectoryEntry",
    "TrajectoryStore",
    "fingerprint",
    "config_fingerprint",
    "entry_from_report",
    "current_commit",
    # gate
    "DEFAULT_METRICS",
    "GateCheck",
    "GateResult",
    "evaluate_gate",
    "run_gate_entries",
]
