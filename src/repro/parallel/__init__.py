"""Comparator parallel Louvain implementations (Section 3 of the paper)."""

from .chunked import chunked_one_level
from .coarse import coarse_louvain, random_parts
from .coloring import color_classes, greedy_coloring
from .costcompare import (
    bucketed_sweep_cycles,
    estimate_work,
    node_centric_sweep_cycles,
    single_group_sweep_cycles,
)
from .lu_openmp import lu_louvain, lu_one_level
from .multigpu import MultiGpuResult, cut_statistics, multigpu_louvain
from .plm import plm_louvain, plm_one_level
from .sortbased import sort_based_louvain, sort_kernel_cycles, sort_one_level
from .vector_aggregate import aggregate_vectorized

__all__ = [
    "chunked_one_level",
    "plm_louvain",
    "plm_one_level",
    "lu_louvain",
    "lu_one_level",
    "coarse_louvain",
    "random_parts",
    "multigpu_louvain",
    "MultiGpuResult",
    "cut_statistics",
    "sort_based_louvain",
    "sort_one_level",
    "sort_kernel_cycles",
    "greedy_coloring",
    "color_classes",
    "aggregate_vectorized",
    "bucketed_sweep_cycles",
    "node_centric_sweep_cycles",
    "single_group_sweep_cycles",
    "estimate_work",
]
