"""Tests for repro.gpu.primes."""


from repro.gpu.primes import hash_table_size, next_prime_above, primes_up_to


def test_primes_up_to_small():
    assert primes_up_to(13).tolist() == [2, 3, 5, 7, 11, 13]


def test_primes_up_to_grows_cache():
    primes = primes_up_to(1000)
    assert primes[-1] == 997
    assert primes.size == 168


def test_primes_are_prime():
    for p in primes_up_to(500).tolist():
        assert all(p % d for d in range(2, int(p**0.5) + 1))


def test_next_prime_above():
    assert next_prime_above(1) == 2
    assert next_prime_above(2) == 3
    assert next_prime_above(10) == 11
    assert next_prime_above(13) == 17
    assert next_prime_above(100) == 101


def test_hash_table_size_rule():
    # smallest prime > 1.5 * degree
    assert hash_table_size(2) == 5  # 1.5*2=3 -> >3 is 5
    assert hash_table_size(4) == 7
    assert hash_table_size(10) == 17
    assert hash_table_size(100) == 151


def test_hash_table_size_min():
    assert hash_table_size(0) >= 3
    assert hash_table_size(1) >= 3


def test_hash_table_size_always_exceeds_degree():
    for deg in range(1, 400):
        assert hash_table_size(deg) > deg
