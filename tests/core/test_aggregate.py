"""Tests for the GPU aggregation phase (Alg. 3)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.aggregate import aggregate_bincount, aggregate_gpu
from repro.core.config import GPULouvainConfig
from repro.graph.build import from_edges
from repro.graph.generators import caveman, karate_club, stencil3d
from repro.graph.validation import validate
from repro.metrics.modularity import modularity
from repro.seq.aggregation import aggregate as seq_aggregate

from ..conftest import graphs_with_partitions

CFG = GPULouvainConfig()
SIM = GPULouvainConfig(engine="simulated")


def test_matches_sequential_oracle_karate():
    g = karate_club()
    labels = (np.arange(34) % 5).astype(np.int64)
    gpu_out = aggregate_gpu(g, labels, CFG)
    seq_graph, seq_dense = seq_aggregate(g, labels)
    assert gpu_out.graph == seq_graph
    assert np.array_equal(gpu_out.dense_map, seq_dense)


def test_simulated_engine_same_graph():
    g = karate_club()
    labels = (np.arange(34) % 4).astype(np.int64)
    vec = aggregate_gpu(g, labels, CFG)
    sim = aggregate_gpu(g, labels, SIM)
    assert vec.graph == sim.graph
    assert np.array_equal(vec.dense_map, sim.dense_map)
    assert sim.profile.kernels


def test_modularity_invariant():
    g = karate_club()
    labels = (np.arange(34) % 3).astype(np.int64)
    out = aggregate_gpu(g, labels, CFG)
    q_before = modularity(g, labels)
    q_after = modularity(out.graph, np.arange(out.graph.num_vertices))
    assert q_after == pytest.approx(q_before)


def test_empty_graph():
    g = from_edges([], [], num_vertices=0)
    out = aggregate_gpu(g, np.array([], dtype=np.int64), CFG)
    assert out.graph.num_vertices == 0


def test_isolated_vertices_kept():
    g = from_edges([0], [1], num_vertices=4)
    out = aggregate_gpu(g, np.array([0, 0, 2, 3]), CFG)
    assert out.graph.num_vertices == 3  # {0,1}, {2}, {3}
    assert out.graph.degrees.tolist()[1:] == [0, 0]


def test_community_buckets_cover_all_sizes():
    """Communities landing in all three work buckets produce one graph."""
    g = stencil3d(6, 6, 6)  # interior degree 26
    n = g.num_vertices
    labels = np.zeros(n, dtype=np.int64)
    labels[: n // 2] = np.arange(n // 2)  # many small communities
    # one giant community (second half) with summed degree >> 479
    out = aggregate_gpu(g, labels, CFG)
    validate(out.graph)
    seq_graph, _ = seq_aggregate(g, labels)
    assert out.graph == seq_graph


def test_rejects_wrong_shape():
    g = karate_club()
    with pytest.raises(ValueError):
        aggregate_gpu(g, np.zeros(3, dtype=np.int64), CFG)


def test_caveman_contraction():
    g, labels = caveman(6, 5)
    out = aggregate_gpu(g, labels, CFG)
    assert out.graph.num_vertices == 6
    validate(out.graph)


def test_simulated_atomics_counted():
    g = karate_club()
    labels = (np.arange(34) % 4).astype(np.int64)
    sim = aggregate_gpu(g, labels, SIM)
    names = [k.name for k in sim.profile.kernels]
    assert any("contract" in n for n in names)
    assert any("mergeCommunity" in n for n in names)


@settings(max_examples=60, deadline=None)
@given(graphs_with_partitions())
def test_gpu_equals_sequential_property(data):
    """Property: GPU aggregation == reference contraction, any partition."""
    graph, labels = data
    gpu_out = aggregate_gpu(graph, labels, CFG)
    seq_graph, seq_dense = seq_aggregate(graph, labels)
    assert gpu_out.graph == seq_graph
    assert np.array_equal(gpu_out.dense_map, seq_dense)


@settings(max_examples=25, deadline=None)
@given(graphs_with_partitions(max_vertices=12, max_edges=30))
def test_simulated_equals_sequential_property(data):
    graph, labels = data
    sim = aggregate_gpu(graph, labels, SIM)
    seq_graph, seq_dense = seq_aggregate(graph, labels)
    assert sim.graph == seq_graph
    assert np.array_equal(sim.dense_map, seq_dense)


def test_edge_slot_allocation_accounting():
    """Alg. 3's upper-bound edge allocation: used <= allocated, both
    tracked per mergeCommunity launch."""
    g = karate_club()
    labels = (np.arange(34) % 4).astype(np.int64)
    sim = aggregate_gpu(g, labels, SIM)
    merges = [k for k in sim.profile.kernels if "mergeCommunity" in k.name]
    assert merges
    for k in merges:
        assert 0 < k.used_edge_slots <= k.allocated_edge_slots
        assert 0 < k.edge_slot_utilisation <= 1.0
    # allocated = sum of member degrees over all communities = 2|E|
    total_alloc = sum(k.allocated_edge_slots for k in merges)
    assert total_alloc == g.num_stored_edges


# --------------------------------------------------------------------- #
# Dense-histogram contraction (streaming fast path)
# --------------------------------------------------------------------- #
@settings(max_examples=100, deadline=None)
@given(graphs_with_partitions())
def test_bincount_matches_gpu_aggregation(case):
    """aggregate_bincount ≡ aggregate_gpu: same structure, same dense map,
    bit-identical weights on unit-weight graphs."""
    graph, labels = case
    gpu = aggregate_gpu(graph, labels, CFG)
    fast = aggregate_bincount(graph, labels, CFG)
    assert fast.graph == gpu.graph
    assert np.array_equal(fast.dense_map, gpu.dense_map)
    validate(fast.graph)


def test_bincount_weighted_graph_close():
    g = from_edges([0, 1, 2, 0], [1, 2, 3, 3], [0.5, 1.25, 2.0, 0.75])
    labels = np.array([0, 0, 1, 1])
    gpu = aggregate_gpu(g, labels, CFG)
    fast = aggregate_bincount(g, labels, CFG)
    assert np.array_equal(fast.graph.indptr, gpu.graph.indptr)
    assert np.array_equal(fast.graph.indices, gpu.graph.indices)
    np.testing.assert_allclose(fast.graph.weights, gpu.graph.weights)


def test_bincount_falls_back_when_table_too_large(monkeypatch):
    import repro.core.aggregate as agg

    monkeypatch.setattr(agg, "_BINCOUNT_TABLE_FLOOR", 0)
    g = karate_club()
    labels = np.arange(34, dtype=np.int64)  # singleton partition: 34^2 > 4|E|
    gpu = aggregate_gpu(g, labels, CFG)
    fast = aggregate_bincount(g, labels, CFG)
    assert fast.graph == gpu.graph
    assert np.array_equal(fast.dense_map, gpu.dense_map)


def test_bincount_simulated_engine_delegates():
    g = karate_club()
    labels = (np.arange(34) % 4).astype(np.int64)
    out = aggregate_bincount(g, labels, SIM)
    assert out.profile.kernels  # replayed kernels prove the gpu path ran
