"""Tests for repro.obs.logs — structured JSON lines and correlation ids."""

import io
import json

from repro.obs.logs import (
    LOG_SCHEMA,
    NULL_LOGGER,
    StructuredLogger,
    bind_correlation_id,
    correlation,
    current_correlation_id,
    new_correlation_id,
    unbind_correlation_id,
    validate_log_line,
)


def test_basic_line_shape():
    log = StructuredLogger("t", clock=lambda: 123.5)
    log.info("hello", n=3, name="x")
    (line,) = log.lines()
    assert line == {
        "schema": LOG_SCHEMA,
        "ts": 123.5,
        "level": "info",
        "logger": "t",
        "event": "hello",
        "n": 3,
        "name": "x",
    }


def test_level_filtering():
    log = StructuredLogger("t", level="warning")
    log.debug("a")
    log.info("b")
    log.warning("c")
    log.error("d")
    assert [ln["event"] for ln in log.lines()] == ["c", "d"]


def test_off_level_disables():
    log = StructuredLogger("t", level="off")
    assert not log.enabled
    log.error("boom")
    assert log.lines() == []


def test_correlation_id_binding():
    log = StructuredLogger("t")
    cid = new_correlation_id()
    assert "-" in cid
    token = bind_correlation_id(cid)
    try:
        log.info("inside")
    finally:
        unbind_correlation_id(token)
    log.info("outside")
    inside, outside = log.lines()
    assert inside["cid"] == cid
    assert "cid" not in outside
    assert current_correlation_id() is None


def test_correlation_context_manager():
    log = StructuredLogger("t")
    with correlation("req-abc") as cid:
        assert cid == "req-abc"
        log.info("x")
    (line,) = log.lines()
    assert line["cid"] == "req-abc"


def test_explicit_cid_kwarg_wins():
    log = StructuredLogger("t")
    with correlation("req-ctx"):
        log.info("x", cid="req-explicit")
    assert log.lines()[0]["cid"] == "req-explicit"


def test_reserved_key_collision_suffixed():
    log = StructuredLogger("t")
    log.info("x", logger="sneaky", schema="other", ts=0)
    (line,) = log.lines()
    assert line["logger"] == "t"
    assert line["logger_"] == "sneaky"
    assert line["schema_"] == "other"
    assert line["ts_"] == 0


def test_nonfinite_floats_stringified():
    log = StructuredLogger("t")
    log.info("x", a=float("nan"), b=float("inf"))
    raw = log.stream.getvalue()
    parsed = json.loads(raw)  # must be strict-JSON parseable
    assert parsed["a"] == "nan"
    assert parsed["b"] == "inf"


def test_child_logger_shares_stream():
    stream = io.StringIO()
    log = StructuredLogger("repro.serve", stream=stream)
    log.child("apply").info("x")
    line = json.loads(stream.getvalue())
    assert line["logger"] == "repro.serve.apply"


def test_null_logger_inert():
    assert not NULL_LOGGER.enabled
    NULL_LOGGER.info("ignored", anything=1)
    NULL_LOGGER.error("ignored")


def test_validate_log_line_ok():
    log = StructuredLogger("t")
    with correlation("req-1"):
        log.info("x")
    raw = log.stream.getvalue().strip()
    assert validate_log_line(raw) == []
    assert validate_log_line(json.loads(raw)) == []


def test_validate_log_line_rejections():
    assert validate_log_line("not json")
    assert validate_log_line("[]")
    good = {"schema": LOG_SCHEMA, "ts": 1.0, "level": "info",
            "logger": "t", "event": "x"}
    assert validate_log_line(good) == []
    assert validate_log_line({**good, "schema": "other/1"})
    assert validate_log_line({**good, "ts": -5})
    assert validate_log_line({**good, "level": "noise"})
    assert validate_log_line({**good, "event": ""})
    assert validate_log_line({**good, "cid": "nodash"})
    missing = dict(good)
    del missing["logger"]
    assert validate_log_line(missing)
