"""Section 5's device profiling, replayed on the simulated engine.

Paper (profiling uk-2002 on the K40m): "on average 62.5% of the threads
in a warp are active whenever the warp is selected for execution", and
each SM's four schedulers see ~3.4 eligible warps per cycle — i.e.
despite degree divergence the device stays occupied.

The simulated engine replays the kernels thread-group by thread-group on
a scaled-down web-graph analog, so we can compute the same active-thread
fraction from first principles, plus per-kernel hash and memory traffic
the CUDA profiler cannot see.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import banner, format_table
from repro.bench.suite import SUITE
from repro.core.gpu_louvain import gpu_louvain

from _util import emit


@pytest.fixture(scope="module")
def simulated_run():
    entry = next(e for e in SUITE if e.name == "uk-2002")
    graph = entry.load(0.2)  # thread-level replay is expensive: shrink
    return graph, gpu_louvain(graph, engine="simulated", bin_vertex_limit=1_000)


def test_active_thread_fraction(benchmark, simulated_run):
    graph, result = simulated_run
    benchmark.pedantic(
        lambda: gpu_louvain(graph, engine="simulated", bin_vertex_limit=1_000),
        rounds=1,
        iterations=1,
    )

    fraction = result.profile.active_thread_fraction()
    by_kernel: dict[str, list[float]] = {}
    for phase in [*result.profile.optimization, *result.profile.aggregation]:
        for name, stats in phase.by_kernel().items():
            by_kernel.setdefault(name, []).append(stats.active_thread_fraction)

    rows = [
        [name, f"{sum(vals) / len(vals):.3f}", len(vals)]
        for name, vals in sorted(by_kernel.items())
    ]
    table = format_table(["kernel", "mean active fraction", "phases"], rows)
    summary = (
        f"run-wide active-thread fraction: {fraction:.3f} "
        f"(paper: 0.625 on uk-2002/K40m)\n"
        f"simulated kernel wall-clock: {result.simulated_seconds:.4f}s "
        f"(K40m cost model)\n"
        f"hierarchy levels: {result.num_levels}, modularity {result.modularity:.4f}"
    )
    emit("profiling", banner("Device profiling (simulated)") + "\n" + table + "\n\n" + summary)

    # Divergence exists but the device is far from starved.
    assert 0.2 < fraction < 1.0
    assert result.simulated_seconds > 0


def test_memory_placement(benchmark, simulated_run):
    """Buckets 1-6 hash in shared memory; only the tail uses global."""
    graph, result = simulated_run
    benchmark.pedantic(lambda: result.profile.active_thread_fraction(),
                       rounds=3, iterations=1)
    shared = global_ = 0
    for phase in result.profile.optimization:
        for k in phase.kernels:
            shared += k.shared_bytes
            global_ += k.global_bytes
    assert shared > 0
    # global-memory tables exist only if some vertex exceeded degree 319
    max_deg = int(graph.degrees.max())
    if max_deg <= 319:
        assert global_ == 0
    else:
        assert global_ > 0


def test_hash_probe_efficiency(benchmark, simulated_run):
    """Open addressing at 1.5x sizing keeps probes close to 1 per edge."""
    _, result = simulated_run
    benchmark.pedantic(lambda: result.profile.total_warp_cycles(),
                       rounds=3, iterations=1)
    probes = edges = 0
    for phase in result.profile.optimization:
        for k in phase.kernels:
            probes += k.hash_stats.probes
            edges += k.num_edges
    assert edges > 0
    assert probes / edges < 2.0  # paper-grade load factor behaviour


def test_edge_slot_utilisation(benchmark, simulated_run):
    """Alg. 3's design trade-off, quantified.

    The paper allocates each community's merged edge list at the *sum of
    member degrees* ("it is possible to calculate this number exactly,
    but this would have required additional time and memory").  The
    simulated engine tracks allocated vs used slots, so we can report how
    much memory that shortcut over-provisions.
    """
    _, result = simulated_run
    allocated = used = 0
    for phase in result.profile.aggregation:
        for k in phase.kernels:
            allocated += k.allocated_edge_slots
            used += k.used_edge_slots
    benchmark.pedantic(lambda: used / max(allocated, 1), rounds=3, iterations=1)
    emit(
        "profiling_edge_slots",
        f"contraction edge-slot utilisation: {used}/{allocated} = "
        f"{used / max(allocated, 1):.3f} "
        "(the paper's upper-bound allocation over-provisions the rest; "
        "the alternative is an extra exact-counting kernel pass)",
    )
    assert 0 < used <= allocated


def test_eligible_warps(benchmark, simulated_run):
    """The paper's second profiling number: eligible warps per scheduler.

    Paper: 3.4 eligible warps per scheduler per cycle on uk-2002/K40m.
    We simulate the warp schedule of one bucketed sweep on the web-graph
    analog; at this (much smaller) scale the device is under-filled, so
    the check is that the statistic is produced and the device is not
    issue-starved for a graph that fills the machine.
    """
    from repro.gpu.costmodel import CostModel
    from repro.gpu.warp import simulate_schedule
    from repro.parallel.costcompare import bucketed_warp_times

    graph, _ = simulated_run
    cm = CostModel()
    times = bucketed_warp_times(graph, cm)
    outcome = benchmark.pedantic(
        lambda: simulate_schedule(times, cm.device), rounds=2, iterations=1
    )
    big = next(e for e in SUITE if e.name == "uk-2002").load()
    big_outcome = simulate_schedule(bucketed_warp_times(big, cm), cm.device)
    emit(
        "profiling_eligible_warps",
        f"eligible warps per scheduler per cycle: small analog "
        f"{outcome.mean_eligible_warps:.2f}, full-size analog "
        f"{big_outcome.mean_eligible_warps:.2f} "
        f"(paper: 3.4 on uk-2002/K40m); SM utilisation "
        f"{big_outcome.sm_utilisation:.2f}",
    )
    assert outcome.cycles > 0
    assert big_outcome.mean_eligible_warps > 1.0  # not issue-starved
    assert big_outcome.sm_utilisation > 0.8
