"""Tests for the discrete warp-scheduler simulation."""

import numpy as np
import pytest

from repro.gpu.costmodel import warp_times
from repro.gpu.device import SMALL_DEVICE, TESLA_K40M
from repro.gpu.warp import simulate_schedule


def test_empty_schedule():
    out = simulate_schedule(np.array([]))
    assert out.cycles == 0.0
    assert out.mean_eligible_warps == 0.0


def test_zero_work_filtered():
    out = simulate_schedule(np.array([0.0, 0.0]))
    assert out.cycles == 0.0


def test_single_warp_runs_to_completion():
    out = simulate_schedule(np.array([1000.0]), slice_cycles=100.0)
    assert out.cycles >= 1000.0
    assert out.mean_resident_warps <= 1.0 + 1e-9


def test_many_warps_keep_schedulers_fed():
    heavy = simulate_schedule(np.full(4000, 500.0))
    scarce = simulate_schedule(np.full(16, 500.0))
    assert heavy.mean_eligible_warps > scarce.mean_eligible_warps
    assert heavy.sm_utilisation > scarce.sm_utilisation
    assert not heavy.starved
    assert scarce.starved


def test_more_work_more_cycles():
    short = simulate_schedule(np.full(500, 200.0))
    long = simulate_schedule(np.full(500, 2000.0))
    assert long.cycles > short.cycles


def test_tail_warp_extends_schedule():
    uniform = simulate_schedule(np.full(600, 300.0))
    with_tail = simulate_schedule(
        np.concatenate([np.full(599, 300.0), [30000.0]])
    )
    assert with_tail.cycles > uniform.cycles


def test_stall_fraction_lowers_eligibility():
    calm = simulate_schedule(np.full(2000, 400.0), stall_fraction=0.1, rng=0)
    stormy = simulate_schedule(np.full(2000, 400.0), stall_fraction=0.8, rng=0)
    assert calm.mean_eligible_warps > stormy.mean_eligible_warps


def test_smaller_device_longer_schedule():
    work = np.full(1000, 400.0)
    big = simulate_schedule(work, TESLA_K40M)
    small = simulate_schedule(work, SMALL_DEVICE)
    assert small.cycles > big.cycles


def test_deterministic_given_rng():
    work = np.full(300, 777.0)
    a = simulate_schedule(work, rng=42)
    b = simulate_schedule(work, rng=42)
    assert a == b


def test_resident_warps_capped():
    out = simulate_schedule(np.full(100_000, 100.0), TESLA_K40M)
    assert out.mean_resident_warps <= TESLA_K40M.max_resident_warps_per_sm


# ------------------------- warp_times helper -------------------------- #
def test_warp_times_packing():
    times = warp_times(np.array([10.0, 4.0, 7.0, 7.0, 2.0]), 2)
    assert times.tolist() == [10.0, 7.0, 2.0]


def test_warp_times_empty():
    assert warp_times(np.array([]), 4).size == 0


def test_warp_times_matches_schedule_sum():
    from repro.gpu.costmodel import warp_schedule

    cycles = np.array([5.0, 9.0, 1.0, 3.0, 8.0])
    total, count = warp_schedule(cycles, 2)
    times = warp_times(cycles, 2)
    assert total == pytest.approx(times.sum())
    assert count == times.size
