"""Community-recovery quality across mixing levels (LFR-style benchmark).

Not a paper figure — the standard community-detection quality protocol
applied to every solver in the repository: sweep the LFR mixing parameter
(fraction of each vertex's edges leaving its community) and measure NMI
against the planted ground truth.  All fine-grained solvers should track
the sequential baseline's recovery curve; the coarse-grained one is
expected to fall off earliest (its phase A cannot see cross-part
structure) — consistent with the paper's §3 taxonomy.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import banner, format_table
from repro.core.gpu_louvain import gpu_louvain
from repro.graph.generators import lfr_like
from repro.metrics.quality import normalized_mutual_information
from repro.parallel import coarse_louvain, lu_louvain, plm_louvain
from repro.seq.louvain import louvain as sequential_louvain

from _util import emit

MIXINGS = (0.1, 0.25, 0.4, 0.55)

SOLVERS = (
    ("gpu", lambda g: gpu_louvain(g, bin_vertex_limit=1_000)),
    ("seq", sequential_louvain),
    ("plm", plm_louvain),
    ("lu", lu_louvain),
    ("coarse", lambda g: coarse_louvain(g, num_parts=4)),
)


@pytest.fixture(scope="module")
def recovery():
    rows = {}
    for mixing in MIXINGS:
        graph, truth = lfr_like(1200, rng=17, avg_degree=14, mixing=mixing)
        for name, solver in SOLVERS:
            result = solver(graph)
            nmi = normalized_mutual_information(result.membership, truth)
            rows[(name, mixing)] = nmi
    return rows


def test_recovery_curves(benchmark, recovery):
    graph, _ = lfr_like(1200, rng=17, avg_degree=14, mixing=0.25)
    benchmark.pedantic(
        lambda: gpu_louvain(graph, bin_vertex_limit=1_000), rounds=3, iterations=1
    )

    table_rows = []
    for name, _ in SOLVERS:
        table_rows.append([name, *[recovery[(name, m)] for m in MIXINGS]])
    table = format_table(
        ["solver", *[f"mix={m}" for m in MIXINGS]], table_rows, floatfmt=".3f"
    )
    emit("quality_recovery", banner("LFR recovery (NMI vs mixing)") + "\n" + table)

    # Every fine-grained solver recovers near-perfectly at low mixing.
    for name, _ in SOLVERS:
        if name != "coarse":
            assert recovery[(name, 0.1)] > 0.95, name
    # The GPU engine tracks the sequential baseline across the sweep
    # (it trails a little at high mixing, where concurrent bucket commits
    # cost some recall — an honest gap, recorded in the emitted table).
    for m in MIXINGS:
        assert recovery[("gpu", m)] > recovery[("seq", m)] - 0.2
    # The coarse-grained solver falls off earliest (§3's taxonomy).
    for m in MIXINGS[1:]:
        fine_best = max(recovery[(n, m)] for n, _ in SOLVERS if n != "coarse")
        assert recovery[("coarse", m)] < fine_best
    # Recovery degrades with mixing for every solver (monotone-ish).
    for name, _ in SOLVERS:
        assert recovery[(name, 0.1)] >= recovery[(name, 0.55)] - 0.05, name
