"""Chunk-asynchronous sweep — shared by the node-centric comparators.

Shared-memory fine-grained implementations (PLM [21], the per-GPU layer of
Cheong et al. [4]) commit each vertex's move to global state immediately;
concurrent threads read a mixture of old and new assignments.  We emulate
that deterministically: vertices are processed in a fixed shuffled order
in chunks of ``num_threads``; decisions within a chunk read the state
committed by all earlier chunks, and the chunk commits together.  The
shuffle models how hardware scheduling staggers adjacent vertices across
threads — without it, intra-chunk neighbour pairs mutually adopt each
other's (stale) community and quality craters, an artefact no asynchronous
implementation exhibits.
"""

from __future__ import annotations

import numpy as np

from ..core.compute_move import compute_moves_vectorized
from ..graph.csr import CSRGraph

__all__ = ["chunked_one_level"]


def chunked_one_level(
    graph: CSRGraph,
    threshold: float,
    *,
    num_threads: int = 32,
    shuffle_seed: int | None = 0,
    singleton_constraint: bool = False,
    max_inflight_fraction: float = 0.125,
    max_sweeps: int = 1000,
) -> tuple[np.ndarray, int]:
    """One optimization phase with chunk-of-``num_threads`` commits.

    Returns ``(communities, sweeps)``.  ``shuffle_seed=None`` keeps index
    order (exposes the synchronous-oscillation artefact, used in tests).
    ``max_inflight_fraction`` caps the chunk at that fraction of the
    vertex set: real threads never hold the *entire* graph's decisions
    stale simultaneously, so emulating more threads than vertices must
    not degenerate into a fully synchronous sweep.
    """
    n = graph.num_vertices
    k = graph.weighted_degrees
    two_m = graph.total_weight
    if n == 0 or two_m == 0.0:
        return np.arange(n, dtype=np.int64), 0
    comm = np.arange(n, dtype=np.int64)
    volumes = k.astype(np.float64).copy()
    sizes = np.ones(n, dtype=np.int64)

    src = graph.vertex_of_edge
    dst = graph.indices
    w = graph.weights

    def q_of(c: np.ndarray) -> float:
        internal = float(w[c[src] == c[dst]].sum())
        vols = np.bincount(c, weights=k, minlength=n)
        return internal / two_m - float(np.square(vols).sum()) / (two_m * two_m)

    order = np.arange(n, dtype=np.int64)
    if shuffle_seed is not None:
        np.random.default_rng(shuffle_seed).shuffle(order)

    q = q_of(comm)
    sweeps = 0
    cap = max(1, int(n * max_inflight_fraction) + 1)
    chunk = max(1, min(int(num_threads), cap))
    while sweeps < max_sweeps:
        sweeps += 1
        moved = 0
        for start in range(0, n, chunk):
            vs = order[start : start + chunk]
            new_comm = compute_moves_vectorized(
                graph,
                comm,
                volumes,
                sizes,
                vs,
                k=k,
                singleton_constraint=singleton_constraint,
            )
            changed = new_comm != comm[vs]
            if changed.any():
                moved += int(changed.sum())
                movers = vs[changed]
                old = comm[movers]
                new = new_comm[changed]
                comm[movers] = new
                np.add.at(volumes, old, -k[movers])
                np.add.at(volumes, new, k[movers])
                np.add.at(sizes, old, -1)
                np.add.at(sizes, new, 1)
        new_q = q_of(comm)
        gain = new_q - q
        q = new_q
        if moved == 0 or gain < threshold:
            break
    return comm, sweeps
