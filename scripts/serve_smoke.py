#!/usr/bin/env python
"""Smoke test for ``python -m repro serve`` — the CI ``serve-smoke`` job.

Spawns a real server subprocess on an ephemeral port, then drives the
documented lifecycle over the wire with :class:`repro.serve.ServeClient`:

1. create two named sessions (generated graphs, exact screening),
2. stream interleaved edge batches into both,
3. partition queries (community_of / members / top-k),
4. RunReport retrieval with the config fingerprint,
5. snapshot + evict, then a query that transparently restores,
6. error-code checks (404 / 409 / 400 paths),
7. /v1/metrics scrape — required series present with sane values,
8. delete, shutdown, and a clean subprocess exit,
9. every structured log line the server emitted validates against the
   ``repro.log/1`` schema, with session_created / batch_applied present.

Exits 0 on success; any assertion or protocol error is fatal.  Run from
the repository root: ``python scripts/serve_smoke.py``.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.obs.logs import validate_log_line  # noqa: E402
from repro.serve import ServeClient, ServeError  # noqa: E402

#: Series the scrape must expose after the mixed workload above.
REQUIRED_SERIES = (
    "repro_serve_requests_total",
    "repro_serve_request_seconds_bucket",
    "repro_serve_batch_requests_total",
    "repro_serve_applies_total",
    "repro_serve_coalesced_requests_total",
    "repro_serve_coalesce_fold_ratio",
    "repro_serve_apply_seconds_bucket",
    "repro_serve_queue_depth",
    "repro_serve_workers_busy",
    "repro_serve_sessions_created_total",
    "repro_serve_sessions_restored_total",
    "repro_serve_sessions_evicted_total",
    "repro_serve_snapshots_total",
    "repro_serve_sessions_resident",
    "repro_serve_resident_bytes",
    "repro_serve_errors_total",
    "repro_stream_batch_seconds_bucket",
    "repro_stream_frontier_fraction",
)


def series_value(text: str, name: str, **labels: str) -> float:
    """The value of one exposition line (label order-insensitive)."""
    for line in text.splitlines():
        if not line.startswith(name) or line.startswith("#"):
            continue
        metric, _, value = line.rpartition(" ")
        base, _, label_str = metric.partition("{")
        if base != name:
            continue
        have = dict(re.findall(r'(\w+)="([^"]*)"', label_str))
        if all(have.get(k) == v for k, v in labels.items()):
            return float(value)
    raise AssertionError(f"series {name} {labels} not found in exposition")


def expect_error(code: str, fn) -> None:
    try:
        fn()
    except ServeError as exc:
        assert exc.code == code, f"expected {code}, got {exc.code}: {exc.message}"
        print(f"  error path ok: {code} (HTTP {exc.status})")
        return
    raise AssertionError(f"expected ServeError {code}, got success")


def main() -> int:
    snapshot_dir = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--snapshot-dir", snapshot_dir, "--max-sessions", "4"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
        cwd=REPO,
    )
    captured: list[str] = []
    try:
        # Structured JSON log lines (stderr) interleave with the listen
        # banner (stdout) in the merged pipe; scan until the banner.
        match = None
        for _ in range(50):
            line = proc.stdout.readline()
            if not line:
                break
            captured.append(line)
            match = re.search(r"http://([\d.]+):(\d+)", line)
            if match:
                break
        assert match, f"no listen line from server, got: {captured!r}"
        port = int(match.group(2))
        print(f"server up on port {port}")

        client = ServeClient(port=port)
        health = client.health()
        assert health == {"ok": True, "status": "ready"}, health
        assert client.health(live=True) == {"ok": True, "status": "alive"}
        print("health ok: ready; liveness probe alive")

        # 1. two sessions
        left = client.create_session(
            "left", generate={"family": "caveman", "n": 60, "m": 6},
            config={"screening": "exact"},
        )
        right = client.create_session(
            "right", generate={"family": "social", "n": 400, "m": 5, "seed": 3},
            config={"screening": "local"},
        )
        assert left["num_vertices"] == 60
        assert right["num_vertices"] == 400
        print(f"sessions created: left Q={left['modularity']:.4f}, "
              f"right Q={right['modularity']:.4f}")

        # 2. interleaved batches
        for i in range(3):
            a = client.batch("left", add=([i], [30 + i], [1.0]))
            b = client.batch("right", add=([i * 5], [i * 7 + 1]),
                             remove=None)
            assert a["batch"] == i + 1 and b["batch"] == i + 1
            assert a["coalesced"] >= 1
        print(f"streamed 3 batches each: left Q={a['modularity']:.4f}, "
              f"right Q={b['modularity']:.4f}")

        # 3. queries
        community = client.community_of("left", 0)
        members = client.members("left", community)
        assert 0 in members
        top = client.top("left", 3, by="size")
        assert len(top) == 3 and top[0]["size"] >= top[-1]["size"]
        volume_top = client.top("right", 2, by="volume")
        assert len(volume_top) == 2
        print(f"queries ok: v0 in community {community} "
              f"({len(members)} members); top sizes "
              f"{[t['size'] for t in top]}")

        # 4. reports carry the config fingerprint
        report = client.report("left", which="last")["report"]
        assert report["result"]["batch"] == 3
        fingerprint = report["meta"]["fingerprint"]
        assert re.fullmatch(r"[0-9a-f]{12}", fingerprint)
        print(f"report ok: batch 3, fingerprint {fingerprint}")

        # 5. snapshot, evict, transparent restore
        snapshot = client.snapshot("left")
        assert Path(snapshot).exists()
        before = [client.community_of("left", v) for v in range(60)]
        client.evict("left")
        rows = {r["name"]: r["resident"] for r in client.list_sessions()}
        assert rows == {"left": False, "right": True}
        after = [client.community_of("left", v) for v in range(60)]
        assert before == after, "restore changed the partition"
        stats = client.stats()
        assert stats["sessions"]["restored"] == 1
        assert stats["batches"]["requests"] == 6
        print(f"snapshot/evict/restore ok: stats {stats['sessions']}")

        # 6. error paths
        expect_error("session_not_found", lambda: client.info("ghost"))
        expect_error("session_exists",
                     lambda: client.create_session(
                         "left", generate={"family": "karate"}))
        expect_error("invalid_name",
                     lambda: client.create_session(
                         "no/slashes", generate={"family": "karate"}))
        expect_error("vertex_out_of_range",
                     lambda: client.community_of("left", 10 ** 9))
        expect_error("invalid_batch",
                     lambda: client.batch("left", remove=([0], [59])))

        # 7. metrics scrape: required series exist with sane values
        text = client.metrics()
        for series in REQUIRED_SERIES:
            assert series in text, f"missing series {series}"
        # 7 batch requests: 6 applied + the invalid_batch rejection, which
        # is counted on enqueue but never becomes an apply.
        assert series_value(text, "repro_serve_batch_requests_total") == 7
        assert series_value(text, "repro_serve_sessions_created_total") == 2
        assert series_value(text, "repro_serve_sessions_restored_total") == 1
        assert series_value(text, "repro_serve_sessions_evicted_total") == 1
        assert series_value(text, "repro_serve_snapshots_total") >= 1
        assert series_value(text, "repro_serve_sessions_resident") == 2
        assert series_value(text, "repro_serve_resident_bytes") > 0
        assert series_value(
            text, "repro_serve_errors_total", code="session_not_found") == 1
        assert series_value(
            text, "repro_serve_apply_seconds_count", session="left") >= 1
        applies = series_value(text, "repro_serve_applies_total")
        coalesced = series_value(text, "repro_serve_coalesced_requests_total")
        assert applies + coalesced == 6, (applies, coalesced)
        assert series_value(
            text, "repro_serve_requests_total",
            route="session/batch", method="POST") == 7
        print(f"metrics ok: {len(REQUIRED_SERIES)} required series, "
              f"{applies:.0f} applies + {coalesced:.0f} coalesced")

        # 8. delete and clean shutdown
        client.delete("right")
        assert [r["name"] for r in client.list_sessions()] == ["left"]
        client.shutdown()
        code = proc.wait(timeout=15)
        assert code == 0, f"server exited {code}"
        print("clean shutdown: exit 0")

        # 9. every structured log line validates against repro.log/1
        captured.extend(proc.stdout.readlines())
        records = []
        for line in captured:
            line = line.strip()
            if not line.startswith("{"):
                continue  # human-readable banner lines
            record = json.loads(line)
            problems = validate_log_line(record)
            assert not problems, (problems, record)
            records.append(record)
        events = [r["event"] for r in records]
        for required in ("server_started", "session_created",
                         "batch_applied", "snapshot_written",
                         "session_evicted", "request_error",
                         "session_deleted", "server_stopping"):
            assert required in events, f"missing log event {required}"
        applied = next(r for r in records if r["event"] == "batch_applied")
        assert applied["span_path"].startswith("batch[")
        assert applied["cids"], "batch_applied lost its correlation ids"
        print(f"logs ok: {len(records)} lines validate, "
              f"{len(set(events))} distinct events")
        print("SERVE SMOKE OK")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        rest = proc.stdout.read()
        if rest.strip():
            print("--- server output ---")
            print(rest.strip())


if __name__ == "__main__":
    sys.exit(main())
