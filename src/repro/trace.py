"""Structured tracing and machine-readable run reports.

The paper's whole evaluation rests on per-kernel / per-phase accounting
(the stage breakdowns of figures 5 and 6, the TEPS metric of Section 3).
This module provides that accounting for **every** engine — vectorized,
simulated, and streaming — instead of only the simulated one:

* :class:`Tracer` records a tree of *spans* (run → level →
  optimization / aggregation → sweep) with wall-clock seconds,
  free-form ``attributes`` and numeric ``counters``;
* :data:`NULL_TRACER` is a shared no-op tracer — solvers accept
  ``tracer=None`` and pay nothing on the hot path when tracing is off;
* :class:`RunReport` wraps one traced run (or one streaming batch) as a
  JSON document with a documented schema (``repro.trace/1``), plus a
  human-readable :meth:`RunReport.summary` table;
* :func:`spans_from_timings` converts the :class:`~repro.metrics.timing.
  RunTimings` any solver already produces into the same span tree, so
  solvers that do not thread a live tracer still report per-phase data.

Schema (``repro.trace/1``)
--------------------------
A report is a JSON object::

    {
      "schema": "repro.trace/1",
      "meta":   {"kind": "run" | "batch", ...},   # free-form strings/numbers
      "result": {"modularity": float, "num_communities": int,
                 "num_levels": int, "sweeps_per_level": [int, ...],
                 "modularity_per_level": [float, ...], ...},
      "spans":  [Span, ...]
    }

    Span = {"name": str, "seconds": float,
            "attributes": {str: JSON, ...},       # labels (engine, level, path)
            "counters":   {str: number, ...},     # additive measurements
            "children":   [Span, ...]}

``meta.kind`` is ``"run"`` for one detection run and ``"batch"`` for one
:class:`~repro.stream.StreamSession` batch.  Span names used by the
built-in engines: ``run``, ``batch``, ``level``, ``optimization``,
``aggregation``, ``sweep``.  :func:`validate_report` checks this shape.
"""

from __future__ import annotations

import contextvars
import json
import math
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

__all__ = [
    "TRACE_SCHEMA",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "as_tracer",
    "TraceContext",
    "new_trace_id",
    "bind_trace_context",
    "unbind_trace_context",
    "current_trace_context",
    "trace_context",
    "RunReport",
    "report_from_result",
    "spans_from_timings",
    "sweep_span",
    "validate_report",
]

#: Identifier (and version) of the JSON report schema this module writes.
TRACE_SCHEMA = "repro.trace/1"


# --------------------------------------------------------------------- #
# Trace context: one id per request, carried across threads + processes
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class TraceContext:
    """The ambient identity of the trace being recorded.

    ``trace_id`` names one end-to-end story (a serve request, a CLI
    run); ``span_path`` is the ``/``-joined name path of the span under
    which remotely-produced spans should re-parent (e.g.
    ``"request/batch/level"``).  The dataclass is frozen and picklable,
    so it travels verbatim over the shard coordinator→worker command
    pipe and re-parents worker spans under the originating request
    instead of leaving orphan trees.
    """

    trace_id: str
    span_path: str = ""

    def child(self, name: str) -> "TraceContext":
        """The context one span deeper (``span_path + "/" + name``)."""
        path = f"{self.span_path}/{name}" if self.span_path else name
        return TraceContext(self.trace_id, path)

    def to_dict(self) -> dict[str, str]:
        return {"trace_id": self.trace_id, "span_path": self.span_path}

    @classmethod
    def from_dict(cls, data: dict[str, Any] | None) -> "TraceContext | None":
        if not data or not data.get("trace_id"):
            return None
        return cls(str(data["trace_id"]), str(data.get("span_path", "")))


_trace_var: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_trace_context", default=None
)


def new_trace_id() -> str:
    """Mint a fresh trace id, e.g. ``tr-9f2c01ab34de5f67``."""
    return f"tr-{uuid.uuid4().hex[:16]}"


def bind_trace_context(ctx: TraceContext | None):
    """Bind ``ctx`` to the current context; returns a reset token.

    Note that ``loop.run_in_executor`` does **not** copy contextvars
    into the worker thread (only ``asyncio.to_thread`` does) — callers
    that offload work must re-bind explicitly inside the callable.
    """
    return _trace_var.set(ctx)


def unbind_trace_context(token) -> None:
    _trace_var.reset(token)


def current_trace_context() -> TraceContext | None:
    return _trace_var.get()


@contextmanager
def trace_context(ctx: TraceContext | None = None):
    """``with trace_context() as ctx:`` — bind a (fresh) trace context."""
    if ctx is None:
        ctx = TraceContext(new_trace_id())
    token = _trace_var.set(ctx)
    try:
        yield ctx
    finally:
        _trace_var.reset(token)


def _is_nonfinite(value: Any) -> bool:
    """True for float NaN/inf (including numpy float scalars)."""
    return isinstance(value, float) and not math.isfinite(value)


def _json_safe(value: Any) -> Any:
    """Recursively replace non-finite floats with ``None``.

    Counters carrying NaN/inf (a zero-second rate, an uninitialised
    drift) would otherwise serialise as the JSON-invalid literals
    ``NaN`` / ``Infinity``; strict parsers reject those documents.
    """
    if _is_nonfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


@dataclass
class Span:
    """One node of the trace tree.

    ``attributes`` label the span (engine name, level index, aggregation
    path); ``counters`` hold numeric measurements (moves, cache hits,
    frontier sizes) that aggregate meaningfully across spans.
    """

    name: str
    attributes: dict[str, Any] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    seconds: float = 0.0
    children: list["Span"] = field(default_factory=list)

    def set(self, **attributes: Any) -> "Span":
        """Set label attributes; returns ``self`` for chaining."""
        self.attributes.update(attributes)
        return self

    def count(self, **counters: float) -> "Span":
        """Set counters (overwriting); returns ``self`` for chaining."""
        self.counters.update(counters)
        return self

    def add(self, name: str, value: float) -> "Span":
        """Add ``value`` onto counter ``name`` (creating it at 0)."""
        self.counters[name] = self.counters.get(name, 0) + value
        return self

    def find(self, name: str) -> list["Span"]:
        """All descendant spans (depth-first, self included) named ``name``."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form of this span subtree (see module schema).

        Non-finite counters (NaN/inf) cannot be represented in strict
        JSON and are *moved* out of ``counters`` into an
        ``attributes["nonfinite_counters"]`` note (name → ``"nan"`` /
        ``"inf"`` / ``"-inf"``), so the serialised report always passes
        :func:`validate_report`; non-finite ``seconds`` become ``0.0``
        with the same note under the ``"seconds"`` key.
        """
        counters: dict[str, float] = {}
        nonfinite: dict[str, str] = {}
        for name, value in self.counters.items():
            if _is_nonfinite(value):
                nonfinite[name] = repr(float(value))
            else:
                counters[name] = value
        seconds = self.seconds
        if _is_nonfinite(seconds):
            nonfinite["seconds"] = repr(float(seconds))
            seconds = 0.0
        attributes = _json_safe(dict(self.attributes))
        if nonfinite:
            attributes["nonfinite_counters"] = nonfinite
        return {
            "name": self.name,
            "seconds": seconds,
            "attributes": attributes,
            "counters": counters,
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        """Rebuild a span subtree from its :meth:`to_dict` form."""
        return cls(
            name=data["name"],
            attributes=dict(data.get("attributes", {})),
            counters=dict(data.get("counters", {})),
            seconds=float(data.get("seconds", 0.0)),
            children=[cls.from_dict(c) for c in data.get("children", [])],
        )


class _SpanContext:
    """Context manager that opens a span on a tracer's stack."""

    __slots__ = ("_tracer", "_span", "_start")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._start = 0.0

    def __enter__(self) -> Span:
        tracer = self._tracer
        if tracer._stack:
            tracer._stack[-1].children.append(self._span)
        else:
            tracer.roots.append(self._span)
        tracer._stack.append(self._span)
        self._start = perf_counter()
        return self._span

    def __exit__(self, *exc: object) -> None:
        self._span.seconds += perf_counter() - self._start
        tracer = self._tracer
        flight = tracer.flight
        if flight is not None:
            # The span itself is still on the stack, so the joined
            # names spell its full path (computed before the pop).
            span = self._span
            flight.record_span(
                span.name,
                path="/".join(s.name for s in tracer._stack),
                seconds=span.seconds,
                trace_id=tracer.trace_id,
                attributes=span.attributes or None,
                counters=span.counters or None,
            )
        tracer._stack.pop()


class Tracer:
    """Records nested spans; hand one to any solver via ``tracer=``.

    ``flight`` (a :class:`repro.obs.flight.FlightRecorder`, duck-typed
    so this module stays import-clean of :mod:`repro.obs`) receives one
    ``record_span`` call per closed ``with``-span, tagged with the
    tracer's ``trace_id`` (falling back to the ambient
    :class:`TraceContext` inside the recorder) — that is how partial
    progress of a crashed run stays recoverable.

    >>> tracer = Tracer()
    >>> with tracer.span("run", engine="vectorized") as run:
    ...     with tracer.span("level", level=0) as lvl:
    ...         lvl.count(sweeps=3)
    >>> tracer.roots[0].children[0].counters["sweeps"]
    3
    """

    enabled = True

    def __init__(self, *, flight=None, trace_id: str | None = None) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self.flight = flight if flight is not None and flight.enabled else None
        self.trace_id = trace_id

    @property
    def current(self) -> Span | None:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """Open a child span of the current span (or a new root)."""
        return _SpanContext(self, Span(name, attributes=attributes))

    def event(
        self,
        name: str,
        *,
        seconds: float = 0.0,
        attributes: dict[str, Any] | None = None,
        counters: dict[str, float] | None = None,
    ) -> Span:
        """Attach a pre-measured leaf span to the current span.

        Used on hot paths where wrapping the measured region in a
        ``with`` block is awkward: measure the duration yourself and
        record it after the fact.
        """
        span = Span(
            name,
            attributes=dict(attributes or {}),
            counters=dict(counters or {}),
            seconds=seconds,
        )
        return self.attach(span)

    def attach(self, span: Span) -> Span:
        """Attach a pre-built (closed) span to the current span."""
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        if self.flight is not None:
            # Attached spans are already closed, so they are flight-
            # recorded here (a with-span records at __exit__); their
            # path extends the currently-open stack — this is how
            # shard worker spans reach the ring.
            prefix = "/".join(s.name for s in self._stack)
            self.flight.record_span(
                span.name,
                path=f"{prefix}/{span.name}" if prefix else span.name,
                seconds=span.seconds,
                trace_id=span.attributes.get("trace_id") or self.trace_id,
                attributes=span.attributes or None,
                counters=span.counters or None,
            )
        return span

    def annotate(self, **attributes: Any) -> None:
        """Set attributes on the current span (no-op outside any span)."""
        if self._stack:
            self._stack[-1].attributes.update(attributes)

    def count(self, **counters: float) -> None:
        """Set counters on the current span (no-op outside any span)."""
        if self._stack:
            self._stack[-1].counters.update(counters)


class _NullSpan(Span):
    """Shared inert span returned by the no-op tracer."""

    __slots__ = ()

    def set(self, **attributes: Any) -> "Span":  # noqa: D102 - no-op
        return self

    def count(self, **counters: float) -> "Span":  # noqa: D102 - no-op
        return self

    def add(self, name: str, value: float) -> "Span":  # noqa: D102 - no-op
        return self


class _NullSpanContext:
    __slots__ = ("_span",)

    def __init__(self, span: Span) -> None:
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc: object) -> None:
        return None


class NullTracer:
    """No-op tracer: every method returns immediately.

    Solvers treat ``tracer=None`` and ``tracer=NULL_TRACER``
    identically (via :func:`as_tracer`); hot loops guard per-sweep
    recording on :attr:`enabled`, so the disabled path adds no
    measurable overhead (pinned by a tier-1 test).
    """

    enabled = False
    flight = None
    trace_id = None

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._span = _NullSpan("null")
        self._context = _NullSpanContext(self._span)

    @property
    def current(self) -> Span | None:
        return None

    def span(self, name: str, **attributes: Any) -> _NullSpanContext:
        return self._context

    def event(self, name: str, **kwargs: Any) -> Span:
        return self._span

    def attach(self, span: Span) -> Span:
        return span

    def annotate(self, **attributes: Any) -> None:
        return None

    def count(self, **counters: float) -> None:
        return None


#: Shared no-op tracer used whenever ``tracer=None`` is passed.
NULL_TRACER = NullTracer()


def as_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Normalise an optional tracer argument (``None`` → no-op)."""
    return NULL_TRACER if tracer is None else tracer


# --------------------------------------------------------------------- #
# Converting existing observability records into spans
# --------------------------------------------------------------------- #
def sweep_span(stats) -> Span:
    """A leaf ``sweep`` span from a :class:`~repro.metrics.timing.SweepStats`."""
    counters: dict[str, float] = {
        "moved": stats.moved,
        "gather_reuse_hits": stats.gather_reuse_hits,
        "pair_reuse_hits": stats.pair_reuse_hits,
        "pair_patch_hits": stats.pair_patch_hits,
        "q_incremental": stats.q_incremental,
        "frontier_size": stats.frontier_size,
    }
    if stats.q_exact is not None:
        counters["q_exact"] = stats.q_exact
        counters["q_drift"] = stats.q_drift
    return Span(
        "sweep",
        attributes={
            "sweep": stats.sweep,
            "moves_per_bucket": list(stats.moves_per_bucket),
        },
        counters=counters,
    )


def spans_from_timings(timings) -> list[Span]:
    """Span tree equivalent of a :class:`~repro.metrics.timing.RunTimings`.

    The fallback used for solvers that do not thread a live
    :class:`Tracer`: every solver already fills ``RunTimings`` (stage
    wall clocks plus per-sweep stats), which carries the same
    information at stage granularity.
    """
    run = Span("run")
    for stage in timings.stages:
        level = Span(
            "level",
            attributes={
                "level": stage.stage,
                "num_vertices": stage.num_vertices,
                "num_edges": stage.num_edges,
            },
            counters={"sweeps": stage.sweeps, "modularity": stage.modularity},
            seconds=stage.total_seconds,
        )
        optimization = Span(
            "optimization",
            counters={
                "sweeps": stage.sweeps,
                "moved": sum(s.moved for s in stage.sweep_stats),
                "gather_reuse_hits": stage.gather_reuse_hits,
                "pair_reuse_hits": stage.pair_reuse_hits,
                "pair_patch_hits": stage.pair_patch_hits,
                "max_q_drift": stage.max_q_drift,
            },
            seconds=stage.optimization_seconds,
            children=[sweep_span(s) for s in stage.sweep_stats],
        )
        aggregation = Span("aggregation", seconds=stage.aggregation_seconds)
        level.children = [optimization, aggregation]
        run.children.append(level)
        run.seconds += stage.total_seconds
    return [run]


# --------------------------------------------------------------------- #
# Run reports
# --------------------------------------------------------------------- #
@dataclass
class RunReport:
    """One run's (or one streaming batch's) machine-readable report."""

    meta: dict[str, Any] = field(default_factory=dict)
    result: dict[str, Any] = field(default_factory=dict)
    spans: list[Span] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (see the module-level schema).

        ``meta`` / ``result`` values that are non-finite floats are
        sanitised to ``None``; span counters are sanitised by
        :meth:`Span.to_dict` — the returned dict always serialises as
        strict JSON and passes :func:`validate_report`.
        """
        return {
            "schema": TRACE_SCHEMA,
            "meta": _json_safe(dict(self.meta)),
            "result": _json_safe(dict(self.result)),
            "spans": [span.to_dict() for span in self.spans],
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        """The report as a strict-JSON string (no NaN/Infinity literals)."""
        return json.dumps(
            self.to_dict(), indent=indent, sort_keys=False, allow_nan=False
        )

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunReport":
        """Rebuild a report from its :meth:`to_dict` form."""
        if data.get("schema") != TRACE_SCHEMA:
            raise ValueError(
                f"unsupported trace schema: {data.get('schema')!r} "
                f"(expected {TRACE_SCHEMA!r})"
            )
        return cls(
            meta=dict(data.get("meta", {})),
            result=dict(data.get("result", {})),
            spans=[Span.from_dict(s) for s in data.get("spans", [])],
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        """Parse a report from a JSON string."""
        return cls.from_dict(json.loads(text))

    def summary(self) -> str:
        """Human-readable per-level table of the report."""
        lines = []
        meta_bits = [f"{k}={v}" for k, v in self.meta.items()]
        if meta_bits:
            lines.append("trace: " + "  ".join(meta_bits))
        res_bits = [
            f"{k}={v:.6f}" if isinstance(v, float) else f"{k}={v}"
            for k, v in self.result.items()
            if not isinstance(v, list)
        ]
        if res_bits:
            lines.append("result: " + "  ".join(res_bits))
        rows = []
        for root in self.spans:
            for level in root.find("level"):
                opt = level.find("optimization")
                agg = level.find("aggregation")
                opt_s = opt[0].seconds if opt else 0.0
                agg_s = agg[0].seconds if agg else 0.0
                opt_c = opt[0].counters if opt else {}
                q = level.counters.get("modularity")
                rows.append(
                    (
                        level.attributes.get("level", "-"),
                        level.attributes.get("num_vertices", "-"),
                        level.attributes.get("num_edges", "-"),
                        int(opt_c.get("sweeps", 0)),
                        int(opt_c.get("moved", 0)),
                        int(opt_c.get("gather_reuse_hits", 0)),
                        f"{opt_s * 1e3:.1f}",
                        f"{agg_s * 1e3:.1f}",
                        "-" if q is None else f"{q:.4f}",
                    )
                )
        headers = (
            "level", "n", "E", "sweeps", "moved",
            "gather hits", "opt ms", "agg ms", "Q",
        )
        widths = [len(h) for h in headers]
        str_rows = [[str(c) for c in row] for row in rows]
        for cells in str_rows:
            for i, cell in enumerate(cells):
                widths[i] = max(widths[i], len(cell))
        lines.append("  ".join(h.rjust(widths[i]) for i, h in enumerate(headers)))
        lines.append("  ".join("-" * w for w in widths))
        for cells in str_rows:
            lines.append("  ".join(cells[i].rjust(widths[i]) for i in range(len(cells))))
        return "\n".join(lines)


def report_from_result(
    result,
    *,
    tracer: Tracer | NullTracer | None = None,
    spans: list[Span] | None = None,
    kind: str = "run",
    **meta: Any,
) -> RunReport:
    """Build a :class:`RunReport` from a solver result.

    ``spans`` (or a live ``tracer``'s roots) provide the trace tree;
    when neither is given the tree is derived from ``result.timings``
    via :func:`spans_from_timings`, which works for every solver.
    Extra keyword arguments land in ``meta``.
    """
    if spans is None:
        if tracer is not None and tracer.enabled and tracer.roots:
            spans = list(tracer.roots)
        else:
            spans = spans_from_timings(result.timings)
    payload: dict[str, Any] = {
        "modularity": result.modularity,
        "num_communities": result.num_communities,
        "num_levels": result.num_levels,
        "sweeps_per_level": list(result.sweeps_per_level),
        "modularity_per_level": list(result.modularity_per_level),
    }
    # Streaming batches carry extra per-batch telemetry.
    for name in (
        "batch", "mode", "edges_added", "edges_removed", "pairs_changed",
        "frontier_size", "frontier_fraction", "full_rerun", "q_full",
        "nmi_vs_full", "seconds",
    ):
        if hasattr(result, name):
            payload[name] = getattr(result, name)
    return RunReport(meta={"kind": kind, **meta}, result=payload, spans=spans)


def validate_report(data: dict[str, Any]) -> list[str]:
    """Check a report dict against the ``repro.trace/1`` schema.

    Returns a list of problems (empty = valid).
    """
    problems: list[str] = []
    if not isinstance(data, dict):
        return ["report must be a JSON object"]
    if data.get("schema") != TRACE_SCHEMA:
        problems.append(f"schema must be {TRACE_SCHEMA!r}, got {data.get('schema')!r}")
    for key, typ in (("meta", dict), ("result", dict), ("spans", list)):
        if not isinstance(data.get(key), typ):
            problems.append(f"{key!r} must be a {typ.__name__}")
    if isinstance(data.get("meta"), dict) and "kind" not in data["meta"]:
        problems.append("meta must carry a 'kind'")

    def check_span(span: Any, path: str) -> None:
        if not isinstance(span, dict):
            problems.append(f"{path}: span must be an object")
            return
        if not isinstance(span.get("name"), str):
            problems.append(f"{path}: span name must be a string")
        seconds = span.get("seconds")
        if not isinstance(seconds, (int, float)):
            problems.append(f"{path}: span seconds must be a number")
        elif _is_nonfinite(float(seconds)):
            problems.append(
                f"{path}: span seconds must be finite, got {seconds!r} "
                "(serialise via Span.to_dict to sanitise)"
            )
        if not isinstance(span.get("attributes"), dict):
            problems.append(f"{path}: span attributes must be an object")
        counters = span.get("counters")
        if not isinstance(counters, dict):
            problems.append(f"{path}: span counters must be an object")
        else:
            for name, value in counters.items():
                if not isinstance(value, (int, float)):
                    problems.append(
                        f"{path}: counter {name!r} must be numeric, got {value!r}"
                    )
                elif _is_nonfinite(float(value)):
                    problems.append(
                        f"{path}: counter {name!r} must be finite, got {value!r} "
                        "(serialise via Span.to_dict to sanitise)"
                    )
        children = span.get("children")
        if not isinstance(children, list):
            problems.append(f"{path}: span children must be a list")
        else:
            for i, child in enumerate(children):
                check_span(child, f"{path}.children[{i}]")

    if isinstance(data.get("spans"), list):
        for i, span in enumerate(data["spans"]):
            check_span(span, f"spans[{i}]")
    return problems
