"""Multi-GPU Louvain — the paper's Section-6 future-work direction.

"We believe that our algorithm can also be used as a building block in a
distributed memory implementation of the Louvain method using multi-GPUs."

This module implements exactly that architecture, in the style Cheong et
al. [4] pioneered but with the paper's single-device algorithm as the
per-device kernel:

1. vertices are split across ``num_devices`` (randomly or by a supplied
   partition — an edge-cut partitioner would slot in here);
2. each device runs the full bucketed GPU Louvain on its *induced*
   subgraph, blind to cut edges (the coarse-grained across-device model);
3. the per-device clusterings seed a global contraction, and the merged
   graph — now small — is finished on a single device.

Per-device simulated timing uses the cost model so the scaling behaviour
(parallel phase = slowest device, merge = serial) can be studied without
hardware; cut statistics quantify the information each device cannot see,
which bounds the modularity loss (paper: Cheong et al. lose up to 9%).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import GPULouvainConfig
from ..core.gpu_louvain import GPULouvainResult, gpu_louvain
from ..graph.build import induced_subgraph
from ..graph.csr import CSRGraph
from ..metrics.modularity import modularity
from ..metrics.timing import RunTimings, Stopwatch
from ..result import LouvainResult, flatten_levels
from .coarse import random_parts
from .vector_aggregate import aggregate_vectorized

__all__ = ["MultiGpuResult", "multigpu_louvain", "cut_statistics"]


@dataclass(frozen=True)
class CutStatistics:
    """How much structure the device partition hides."""

    num_devices: int
    cut_edges: int
    total_edges: int
    largest_device_vertices: int
    largest_device_edges: int

    @property
    def cut_fraction(self) -> float:
        """Fraction of undirected edges crossing device boundaries."""
        return self.cut_edges / self.total_edges if self.total_edges else 0.0


def cut_statistics(graph: CSRGraph, parts: np.ndarray) -> CutStatistics:
    """Compute :class:`CutStatistics` for a device assignment."""
    parts = np.asarray(parts, dtype=np.int64)
    u, v, _ = graph.edge_list(unique=True)
    cut = int((parts[u] != parts[v]).sum())
    device_vertices = np.bincount(parts)
    internal = parts[u] == parts[v]
    device_edges = (
        np.bincount(parts[u[internal]], minlength=device_vertices.size)
        if u.size
        else np.zeros(device_vertices.size, dtype=np.int64)
    )
    return CutStatistics(
        num_devices=int(device_vertices.size),
        cut_edges=cut,
        total_edges=int(u.size),
        largest_device_vertices=int(device_vertices.max(initial=0)),
        largest_device_edges=int(device_edges.max(initial=0)),
    )


@dataclass
class MultiGpuResult(LouvainResult):
    """A :class:`LouvainResult` plus multi-device accounting.

    ``device_seconds`` holds each device's phase-A wall-clock;
    ``parallel_seconds`` is their max (devices run concurrently),
    ``merge_seconds`` the serial tail.
    """

    num_devices: int = 1
    device_seconds: list[float] = field(default_factory=list)
    merge_seconds: float = 0.0
    cut: CutStatistics | None = None
    device_results: list[GPULouvainResult] = field(default_factory=list)

    @property
    def parallel_seconds(self) -> float:
        """Phase-A time under perfectly concurrent devices."""
        return max(self.device_seconds, default=0.0)

    @property
    def emulated_total_seconds(self) -> float:
        """Concurrent phase A + serial merge."""
        return self.parallel_seconds + self.merge_seconds


def multigpu_louvain(
    graph: CSRGraph,
    num_devices: int = 4,
    *,
    parts: np.ndarray | None = None,
    config: GPULouvainConfig | None = None,
    rng: np.random.Generator | int | None = 0,
    phase_a_levels: int = 1,
    refine: bool = False,
    **overrides,
) -> MultiGpuResult:
    """Hierarchical multi-device Louvain (coarse across, bucketed within).

    ``parts`` overrides the random device assignment.  Additional keyword
    overrides configure the per-device :func:`gpu_louvain` runs.

    ``phase_a_levels`` bounds how deep each device's local hierarchy goes
    before the global merge; one level (the default) keeps cross-device
    structure recoverable — deeper local hierarchies bake cut-blind
    merges in and lose modularity fast.  ``refine=True`` appends a
    warm-started pass over the *whole* graph after the merge (only
    meaningful when the graph fits a single device; off by default to
    stay faithful to the hierarchical multi-GPU architecture of [4]).
    """
    import time

    if config is None:
        config = GPULouvainConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a config object or keyword overrides, not both")
    if phase_a_levels < 1:
        raise ValueError("phase_a_levels must be >= 1")
    from dataclasses import replace as _replace

    device_config = _replace(config, max_levels=phase_a_levels)
    n = graph.num_vertices
    if num_devices < 1:
        raise ValueError("need at least one device")
    if parts is None:
        parts = random_parts(n, num_devices, rng)
    parts = np.asarray(parts, dtype=np.int64)
    if parts.shape != (n,):
        raise ValueError("parts must assign one device per vertex")
    cut = cut_statistics(graph, parts)

    timings = RunTimings()
    stage = timings.new_stage(n, graph.num_edges)

    # Phase A: every device clusters its induced subgraph independently.
    local_comm = np.arange(n, dtype=np.int64)
    device_seconds: list[float] = []
    device_results: list[GPULouvainResult] = []
    with Stopwatch(stage, "optimization_seconds"):
        for device in range(int(parts.max()) + 1 if n else 0):
            members = np.flatnonzero(parts == device)
            start = time.perf_counter()
            if members.size:
                sub = induced_subgraph(graph, members)
                result = gpu_louvain(sub, device_config)
                device_results.append(result)
                # Map subgraph communities back to disjoint global labels.
                local_comm[members] = members[result.membership]
            device_seconds.append(time.perf_counter() - start)

    # Phase B: contract by the union of device clusterings, finish on one
    # device.
    merge_start = time.perf_counter()
    levels: list[np.ndarray] = []
    with Stopwatch(stage, "aggregation_seconds"):
        contracted, dense = aggregate_vectorized(graph, local_comm)
    levels.append(dense)
    level_sizes = [(n, graph.num_edges)]
    sweeps_per_level = [
        max((sum(r.sweeps_per_level) for r in device_results), default=0)
    ]
    membership = flatten_levels(levels)
    modularity_per_level = [modularity(graph, membership)]
    stage.modularity = modularity_per_level[0]

    finish = gpu_louvain(contracted, config)
    for level_map, size, sweeps, _q in zip(
        finish.levels,
        finish.level_sizes,
        finish.sweeps_per_level,
        finish.modularity_per_level,
    ):
        levels.append(level_map)
        level_sizes.append(size)
        sweeps_per_level.append(sweeps)
        membership = flatten_levels(levels)
        modularity_per_level.append(modularity(graph, membership))
    if refine:
        refined = gpu_louvain(
            graph, config, initial_communities=flatten_levels(levels)
        )
        levels = list(refined.levels)
        level_sizes = list(refined.level_sizes)
        sweeps_per_level = list(refined.sweeps_per_level)
        modularity_per_level = list(refined.modularity_per_level)
        finish = refined
    merge_seconds = time.perf_counter() - merge_start
    for finish_stage in finish.timings.stages:
        copied = timings.new_stage(finish_stage.num_vertices, finish_stage.num_edges)
        copied.optimization_seconds = finish_stage.optimization_seconds
        copied.aggregation_seconds = finish_stage.aggregation_seconds
        copied.sweeps = finish_stage.sweeps

    membership = flatten_levels(levels)
    return MultiGpuResult(
        levels=levels,
        level_sizes=level_sizes,
        membership=membership,
        modularity=modularity(graph, membership),
        modularity_per_level=modularity_per_level,
        sweeps_per_level=sweeps_per_level,
        timings=timings,
        num_devices=num_devices,
        device_seconds=device_seconds,
        merge_seconds=merge_seconds,
        cut=cut,
        device_results=device_results,
    )
