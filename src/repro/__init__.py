"""repro — reproduction of "Community Detection on the GPU" (IPDPS 2017).

Public API quickstart::

    from repro import gpu_louvain, from_edges

    graph = from_edges([0, 1, 2, 3], [1, 2, 3, 0])
    result = gpu_louvain(graph)
    print(result.modularity, result.membership)

Sub-packages:

* :mod:`repro.graph`    — CSR graphs, generators, I/O
* :mod:`repro.metrics`  — modularity, quality, TEPS, timings
* :mod:`repro.seq`      — sequential Louvain baseline
* :mod:`repro.gpu`      — simulated GPU substrate
* :mod:`repro.core`     — the paper's bucketed edge-parallel algorithm
* :mod:`repro.stream`   — incremental Louvain over edge-batch updates
* :mod:`repro.serve`    — multi-tenant detection-as-a-service HTTP server
* :mod:`repro.parallel` — comparator parallel implementations
* :mod:`repro.bench`    — the Table-1 analog suite and experiment runner
* :mod:`repro.trace`    — structured tracing and JSON run reports
* :mod:`repro.obs`      — trace analytics: diff, trajectory, regression gate
"""

from .core import GPULouvainConfig, GPULouvainResult, gpu_louvain
from .graph import CSRGraph, from_edges, load_graph
from .metrics import modularity
from .result import LouvainResult, StreamResult
from .seq import louvain as sequential_louvain
from .shard import ShardConfig, sharded_louvain
from .stream import StreamConfig, StreamSession
from .trace import RunReport, Tracer, report_from_result

__version__ = "1.0.0"

__all__ = [
    "gpu_louvain",
    "GPULouvainConfig",
    "GPULouvainResult",
    "sequential_louvain",
    "sharded_louvain",
    "ShardConfig",
    "StreamSession",
    "StreamConfig",
    "StreamResult",
    "CSRGraph",
    "from_edges",
    "load_graph",
    "modularity",
    "LouvainResult",
    "Tracer",
    "RunReport",
    "report_from_result",
    "__version__",
]
