"""The ``repro.serve`` HTTP server: asyncio, stdlib-only, multi-tenant.

One process serves many named :class:`~repro.stream.StreamSession`
sessions (owned by a :class:`~repro.serve.manager.SessionManager`) over
a small JSON-over-HTTP/1.1 protocol (:mod:`repro.serve.protocol`,
documented in ``docs/API.md``).  The design follows the actor/message
shape of the exemplars: the event loop is the single owner of all
manager state, and each session has

* a **request queue** — ``/batch`` requests enqueue and wait on a
  future;
* a **worker task** — drains the queue, folds everything pending into
  one net batch (:class:`~repro.serve.coalesce.BatchCoalescer`) and runs
  a single ``session.apply()`` in a thread-pool executor, so the loop
  keeps accepting (and coalescing) requests while NumPy crunches;
* an **asyncio lock** — serialises the apply against partition queries,
  snapshot, evict and delete, so no route ever observes a torn session.

The session is *pinned* in the manager for the duration of the apply,
which keeps the LRU budget enforcement from snapshotting a mid-batch
state.  Bursts therefore cost one incremental re-clustering instead of
one per request — the throughput lever ``benchmarks/bench_serve.py``
measures — while each folded request still gets its own response (with
the shared apply's ``batch`` id and the ``coalesced`` count).
"""

from __future__ import annotations

import asyncio
import json
import threading
from time import perf_counter, time
from typing import Any
from urllib.parse import parse_qs, urlsplit

from .. import __version__
from ..obs.flight import Watchdog, build_debug_bundle
from ..obs.logs import (
    NULL_LOGGER,
    bind_correlation_id,
    current_correlation_id,
    new_correlation_id,
    unbind_correlation_id,
)
from ..trace import (
    TraceContext,
    as_tracer,
    bind_trace_context,
    current_trace_context,
    new_trace_id,
    unbind_trace_context,
)
from ..stream import StreamConfig
from .coalesce import BatchCoalescer
from .manager import SessionManager
from .protocol import (
    PROTOCOL_VERSION,
    ServeError,
    decode_batch,
    decode_graph_spec,
    error_body,
    result_payload,
)

__all__ = ["ReproServer", "ServerStats"]

_PHRASES = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Soft cap on members returned by one /members call.
MAX_MEMBERS = 100_000

#: Session sub-route verbs that get their own route-template label.
_SESSION_VERBS = frozenset(
    ("batch", "community", "members", "top", "report", "snapshot", "evict")
)


def _route_label(target: str) -> str:
    """Collapse a request target onto its route template.

    Metric labels must stay low-cardinality, so session names (and any
    unknown path) never become label values: ``/v1/sessions/alpha/batch``
    → ``session/batch``, ``/v1/sessions/alpha`` → ``session``, anything
    unrecognised → ``other``.
    """
    parts = [p for p in urlsplit(target).path.split("/") if p]
    if not parts or parts[0] != PROTOCOL_VERSION:
        return "other"
    parts = parts[1:]
    if len(parts) == 1 and parts[0] in ("health", "stats", "metrics",
                                        "shutdown", "sessions"):
        return parts[0]
    if parts == ["debug", "flight"]:
        return "debug/flight"
    if len(parts) == 2 and parts[0] == "sessions":
        return "session"
    if len(parts) == 3 and parts[0] == "sessions" and parts[2] in _SESSION_VERBS:
        return f"session/{parts[2]}"
    return "other"


class ServerStats:
    """Mutable counters behind the ``/v1/stats`` contract."""

    def __init__(self) -> None:
        self.started = time()
        self.requests = 0
        self.errors = 0
        self.batch_requests = 0
        self.applies = 0
        self.coalesced_requests = 0
        self.max_coalesce = 0
        self.apply_seconds = 0.0
        self.edges_added = 0
        self.edges_removed = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "uptime_seconds": time() - self.started,
            "requests": self.requests,
            "errors": self.errors,
            "batches": {
                "requests": self.batch_requests,
                "applies": self.applies,
                "coalesced_requests": self.coalesced_requests,
                "max_coalesce": self.max_coalesce,
                "apply_seconds": self.apply_seconds,
                "edges_added": self.edges_added,
                "edges_removed": self.edges_removed,
            },
        }


class _BatchRequest:
    """One queued /batch request waiting on its apply."""

    __slots__ = ("add", "remove", "future", "cid", "trace")

    def __init__(
        self,
        add,
        remove,
        future: asyncio.Future,
        cid: str | None = None,
        trace: TraceContext | None = None,
    ) -> None:
        self.add = add
        self.remove = remove
        self.future = future
        self.cid = cid
        self.trace = trace


class ReproServer:
    """Serves a :class:`SessionManager` over JSON/HTTP (asyncio, stdlib).

    Parameters
    ----------
    manager:
        The session owner.  All its state is touched from the event
        loop only; the CPU-heavy ``apply`` runs in the default executor
        under a per-session lock + manager pin.
    host / port:
        Bind address; port ``0`` picks an ephemeral port (read
        :attr:`port` after :meth:`start`).
    coalesce:
        Merge queued bursts into one apply per session.  Defaults to
        the manager's :attr:`~repro.serve.manager.ServeConfig.coalesce`.
    logger:
        A :class:`~repro.obs.logs.StructuredLogger` for runtime events
        (``slow_request``, ``batch_applied``, session lifecycle …).
        Defaults to the silent :data:`~repro.obs.logs.NULL_LOGGER`.

    The server records runtime metrics into the manager's registry
    (``manager.registry``) and exposes them as Prometheus text at
    ``GET /v1/metrics``.
    """

    def __init__(
        self,
        manager: SessionManager,
        *,
        host: str = "127.0.0.1",
        port: int = 8077,
        coalesce: bool | None = None,
        logger=None,
    ) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self.coalesce = manager.config.coalesce if coalesce is None else coalesce
        self.stats = ServerStats()
        self.metrics = manager.registry
        self.log = logger if logger is not None else NULL_LOGGER
        self.slow_request_seconds = manager.config.slow_request_seconds
        self.flight = manager.flight
        if self.flight.enabled and self.log.flight is None and self.log.enabled:
            # Tee the server's own log lines into the flight ring.
            self.log.flight = self.flight
        self.exemplar_seconds = manager.config.exemplar_seconds
        self.version = __version__
        try:
            from ..obs.trajectory import current_commit

            self.build = current_commit()
        except Exception:  # noqa: BLE001 - a stamp, not a feature
            self.build = "unknown"
        self._watchdog: Watchdog | None = None
        if manager.config.stall_seconds > 0 and self.flight.enabled:
            self._watchdog = Watchdog(
                manager.config.stall_seconds, self._on_stall
            )
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopped: asyncio.Event | None = None
        self._stopping = False
        self._draining = False
        self._locks: dict[str, asyncio.Lock] = {}
        self._queues: dict[str, asyncio.Queue] = {}
        self._workers: dict[str, asyncio.Task] = {}
        self._writers: set[asyncio.StreamWriter] = set()
        self._sampler: asyncio.Task | None = None
        self._init_metrics()

    def _init_metrics(self) -> None:
        m = self.metrics
        self._m_requests = m.counter(
            "repro_serve_requests_total",
            "HTTP requests by route template and method.",
            labels=("route", "method"),
        )
        self._m_request_seconds = m.histogram(
            "repro_serve_request_seconds",
            "Request latency by route template.",
            labels=("route",),
        )
        self._m_errors = m.counter(
            "repro_serve_errors_total",
            "Error envelopes by machine-readable code.",
            labels=("code",),
        )
        self._m_batch_requests = m.counter(
            "repro_serve_batch_requests_total", "Accepted /batch requests."
        )
        self._m_applies = m.counter(
            "repro_serve_applies_total", "session.apply() calls executed."
        )
        self._m_coalesced = m.counter(
            "repro_serve_coalesced_requests_total",
            "Batch requests folded into a shared apply (burst size - 1 each).",
        )
        self._m_fold_ratio = m.gauge(
            "repro_serve_coalesce_fold_ratio",
            "Cumulative batch requests per apply (1.0 = no folding).",
        )
        self._m_apply_seconds = m.histogram(
            "repro_serve_apply_seconds",
            "Coalesced apply latency (executor wall time) per session.",
            labels=("session",),
        )
        m.gauge(
            "repro_serve_queue_depth",
            "Queued batch requests across all sessions.",
            fn=lambda: float(sum(q.qsize() for q in self._queues.values())),
        )
        m.gauge(
            "repro_serve_workers_busy",
            "Sessions with an apply in flight (pinned in the manager).",
            fn=lambda: float(len(self.manager._pinned)),
        )

    # ------------------------------------------------------------------ #
    # Flight recorder plumbing
    # ------------------------------------------------------------------ #
    async def _metric_sampler(self, interval: float = 1.0) -> None:
        """Tee counter deltas / gauge changes into the flight ring."""
        last: dict[str, float] = {}
        while True:
            await asyncio.sleep(interval)
            counters = {
                "repro_serve_requests_total": float(self.stats.requests),
                "repro_serve_batch_requests_total": float(
                    self.stats.batch_requests
                ),
                "repro_serve_applies_total": float(self.stats.applies),
                "repro_serve_errors_total": float(self.stats.errors),
            }
            gauges = {
                "repro_serve_queue_depth": float(
                    sum(q.qsize() for q in self._queues.values())
                ),
                "repro_serve_sessions_resident": float(
                    len(self.manager.sessions)
                ),
            }
            for name, value in counters.items():
                delta = value - last.get(name, 0.0)
                if delta:
                    self.flight.record_metric(name, delta, labels={"delta": "1"})
                last[name] = value
            for name, value in gauges.items():
                if value != last.get(name):
                    self.flight.record_metric(name, value)
                last[name] = value

    def _on_stall(self, note: str) -> None:
        """Watchdog callback (daemon thread): log + drop a debug bundle."""
        self.log.error(
            "worker_stalled",
            note=note, stall_seconds=self.manager.config.stall_seconds,
        )
        try:
            out_dir = (
                self.manager.config.flight_dir
                or self.manager.config.snapshot_dir
            )
            path = f"{out_dir}/bundle-stall-{int(time())}.tar.gz"
            build_debug_bundle(
                path,
                port=None,  # in-process: snapshot the live recorder directly
                reason=f"stall: {note}",
            )
            self.log.error("debug_bundle_written", path=path, reason="stall")
        except Exception:  # noqa: BLE001 - diagnostics must not crash serve
            pass

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind and start accepting; resolves :attr:`port` when 0."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.flight.enabled:
            self._sampler = self._loop.create_task(self._metric_sampler())
        self.log.info(
            "server_started",
            host=self.host, port=self.port,
            version=self.version, build=self.build,
        )

    async def serve_until_stopped(self) -> None:
        """Serve until :meth:`request_shutdown` (or POST /v1/shutdown)."""
        if self._server is None:
            await self.start()
        assert self._stopped is not None
        await self._stopped.wait()
        await self._cleanup()

    def run(self, *, ready=None) -> None:
        """Blocking entry point (the CLI): serve until shut down.

        ``ready`` is called with the server once the socket is bound —
        used by tests and the smoke driver to learn the ephemeral port.
        """

        async def _main() -> None:
            await self.start()
            if ready is not None:
                ready(self)
            await self.serve_until_stopped()

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:
            pass

    def request_shutdown(self) -> None:
        """Stop serving (thread-safe; idempotent)."""
        self._draining = True
        self._stopping = True
        loop, stopped = self._loop, self._stopped
        if loop is not None and stopped is not None and not loop.is_closed():
            loop.call_soon_threadsafe(stopped.set)

    async def _cleanup(self) -> None:
        """Graceful shutdown: drain workers, snapshot, close sockets."""
        self._stopping = True
        if self._sampler is not None:
            self._sampler.cancel()
        if self._watchdog is not None:
            self._watchdog.close()
        for task in self._workers.values():
            task.cancel()
        for queue in self._queues.values():
            while not queue.empty():
                request = queue.get_nowait()
                if not request.future.done():
                    request.future.set_exception(
                        ServeError("shutting_down", "server is shutting down")
                    )
        # Durability: every resident session survives a clean shutdown.
        for name in list(self.manager.sessions):
            try:
                self.manager.snapshot(name)
            except Exception:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        self.log.info("server_stopped", requests=self.stats.requests)

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while not self._stopping:
                try:
                    request_line = await reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not request_line:
                    break
                parts = request_line.decode("latin-1").strip().split()
                if len(parts) != 3:
                    await self._respond(writer, 400, error_body(
                        "bad_request", "malformed request line"), close=True)
                    break
                method, target, _version = parts
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    key, _, value = line.decode("latin-1").partition(":")
                    headers[key.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0") or "0")
                except ValueError:
                    length = 0
                body = await reader.readexactly(length) if length else b""
                keep_alive = headers.get("connection", "").lower() != "close"
                status, payload, extra = await self._dispatch(
                    method.upper(), target, body
                )
                await self._respond(
                    writer, status, payload, close=not keep_alive, headers=extra
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any] | str,
        *,
        close: bool,
        headers: dict[str, str] | None = None,
    ) -> None:
        if isinstance(payload, str):
            # Raw text body (the /v1/metrics Prometheus exposition).
            data = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            data = json.dumps(payload, allow_nan=False).encode()
            content_type = "application/json"
        extra = "".join(
            f"{key}: {value}\r\n" for key, value in (headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {_PHRASES.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"{extra}"
            f"Connection: {'close' if close else 'keep-alive'}\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + data)
        try:
            await writer.drain()
        except ConnectionError:
            pass

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, dict[str, Any] | str, dict[str, str]]:
        self.stats.requests += 1
        start = perf_counter()
        route = _route_label(target)
        cid = new_correlation_id("req")
        trace_id = new_trace_id()
        token = bind_correlation_id(cid)
        trace_token = bind_trace_context(TraceContext(trace_id))
        try:
            payload = await self._route(method, target, body)
            if isinstance(payload, tuple):
                status, payload = payload
            else:
                status = 200
        except ServeError as exc:
            self.stats.errors += 1
            self._m_errors.labels(code=exc.code).inc()
            self.log.warning(
                "request_error",
                method=method, route=route, code=exc.code, status=exc.status,
            )
            status, payload = exc.status, error_body(exc.code, exc.message)
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            self.stats.errors += 1
            self._m_errors.labels(code="server_error").inc()
            self.log.error(
                "request_error",
                method=method, route=route, code="server_error", status=500,
                exception=f"{type(exc).__name__}: {exc}",
            )
            status, payload = 500, error_body(
                "server_error", f"{type(exc).__name__}: {exc}"
            )
        finally:
            unbind_trace_context(trace_token)
            unbind_correlation_id(token)
        seconds = perf_counter() - start
        self._m_requests.labels(route=route, method=method).inc()
        exemplar = (
            {"trace_id": trace_id, "cid": cid}
            if seconds >= self.exemplar_seconds
            else None
        )
        self._m_request_seconds.labels(route=route).observe(
            seconds, exemplar=exemplar
        )
        if seconds >= self.slow_request_seconds:
            self.log.warning(
                "slow_request",
                cid=cid, trace_id=trace_id, method=method, route=route,
                status=status, seconds=round(seconds, 6),
                threshold_seconds=self.slow_request_seconds,
            )
        return status, payload, {"X-Repro-Cid": cid, "X-Repro-Trace": trace_id}

    def _json_body(self, body: bytes) -> dict[str, Any]:
        if not body:
            return {}
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise ServeError("bad_request", f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServeError("bad_request", "request body must be a JSON object")
        return payload

    async def _route(
        self, method: str, target: str, body: bytes
    ) -> dict[str, Any] | tuple[int, dict[str, Any] | str]:
        """Handle one request; returns a payload or ``(status, payload)``."""
        split = urlsplit(target)
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        parts = [p for p in split.path.split("/") if p]
        if not parts or parts[0] != PROTOCOL_VERSION:
            raise ServeError("not_found", f"unknown route {split.path!r}")
        parts = parts[1:]

        if parts == ["health"]:
            return self._health_payload(query)
        if parts == ["metrics"]:
            self._expect(method, "GET")
            if not self.metrics.enabled:
                raise ServeError("not_found", "metrics are disabled")
            return 200, self.metrics.render()
        if parts == ["stats"]:
            self._expect(method, "GET")
            return self._stats_payload()
        if parts == ["debug", "flight"]:
            self._expect(method, "GET")
            if not self.flight.enabled:
                raise ServeError("not_found", "flight recorder is disabled")
            kinds = query.get("kinds")
            return self.flight.snapshot(
                trace_id=query.get("trace_id"),
                cid=query.get("cid"),
                kinds=tuple(kinds.split(",")) if kinds else None,
            )
        if parts == ["shutdown"]:
            self._expect(method, "POST")
            assert self._loop is not None
            self._draining = True
            self.log.info("server_stopping", reason="shutdown_requested")
            self._loop.call_later(0.05, self.request_shutdown)
            return {"ok": True, "shutting_down": True}
        if parts == ["sessions"]:
            if method == "GET":
                return {"sessions": self.manager.list_info()}
            self._expect(method, "POST")
            return await self._create_session(self._json_body(body))
        if len(parts) == 2 and parts[0] == "sessions":
            name = parts[1]
            if method == "GET":
                return await self._with_session(name, self.manager.info)
            self._expect(method, "DELETE")
            return await self._delete_session(name)
        if len(parts) == 3 and parts[0] == "sessions":
            name, verb = parts[1], parts[2]
            if verb == "batch":
                self._expect(method, "POST")
                return await self._enqueue_batch(name, self._json_body(body))
            if verb == "community":
                self._expect(method, "GET")
                return await self._community(name, query)
            if verb == "members":
                self._expect(method, "GET")
                return await self._members(name, query)
            if verb == "top":
                self._expect(method, "GET")
                return await self._top(name, query)
            if verb == "report":
                self._expect(method, "GET")
                return await self._report(name, query)
            if verb == "snapshot":
                self._expect(method, "POST")
                return await self._snapshot(name)
            if verb == "evict":
                self._expect(method, "POST")
                return await self._evict(name)
        raise ServeError("not_found", f"unknown route {split.path!r}")

    @staticmethod
    def _expect(method: str, allowed: str) -> None:
        if method != allowed:
            raise ServeError(
                "method_not_allowed", f"use {allowed} for this route"
            )

    # ------------------------------------------------------------------ #
    # Health
    # ------------------------------------------------------------------ #
    def _health_status(self) -> str:
        """Readiness: ``ready`` | ``draining`` | ``degraded``."""
        if self._draining or self._stopping:
            return "draining"
        if self.manager.eviction_pressure:
            return "degraded"
        return "ready"

    def _health_payload(
        self, query: dict[str, str]
    ) -> tuple[int, dict[str, Any]]:
        """Liveness vs readiness (docs/API.md).

        ``?live=1`` is the liveness probe: 200 for as long as the
        process answers at all, even mid-drain.  Without it the route is
        a readiness probe: 503 while draining (shutdown requested) or
        degraded (the session/byte budget is forcing evictions), so load
        balancers stop routing new work while the process stays up.
        """
        stamp = {
            "uptime_seconds": round(time() - self.stats.started, 3),
            "version": self.version,
            "build": self.build,
        }
        if query.get("live"):
            return 200, {"ok": True, "status": "alive", **stamp}
        status = self._health_status()
        ok = status == "ready"
        return (200 if ok else 503), {"ok": ok, "status": status, **stamp}

    # ------------------------------------------------------------------ #
    # Session routes
    # ------------------------------------------------------------------ #
    def _lock(self, name: str) -> asyncio.Lock:
        lock = self._locks.get(name)
        if lock is None:
            lock = self._locks[name] = asyncio.Lock()
        return lock

    async def _with_session(self, name: str, fn, *args: Any) -> Any:
        """Run ``fn(name_or_session, ...)`` under the session lock."""
        async with self._lock(name):
            try:
                return fn(name, *args)
            except KeyError as exc:
                raise ServeError("session_not_found", str(exc)) from exc

    async def _create_session(self, payload: dict[str, Any]) -> dict[str, Any]:
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise ServeError("bad_request", "session creation needs a 'name'")
        try:
            self.manager.validate_name(name)
        except ValueError as exc:
            raise ServeError("invalid_name", str(exc)) from exc
        if self.manager.has(name):
            raise ServeError("session_exists", f"session {name!r} already exists")
        graph = decode_graph_spec(payload)
        config_spec = payload.get("config") or {}
        try:
            config = StreamConfig.from_dict(config_spec)
        except (TypeError, ValueError) as exc:
            raise ServeError("bad_request", f"invalid config: {exc}") from exc
        async with self._lock(name):
            # The initial clustering is CPU-bound; keep the loop alive.
            assert self._loop is not None
            await self._loop.run_in_executor(
                None, lambda: self.manager.create(name, graph, config)
            )
            self.log.info(
                "session_created",
                session=name,
                num_vertices=graph.num_vertices,
                num_edges=graph.num_edges,
            )
            return self.manager.info(name)

    async def _delete_session(self, name: str) -> dict[str, Any]:
        async with self._lock(name):
            self._teardown_worker(name)
            try:
                self.manager.delete(name)
            except KeyError as exc:
                raise ServeError("session_not_found", str(exc)) from exc
            except RuntimeError as exc:
                raise ServeError("session_busy", str(exc)) from exc
            self.log.info("session_deleted", session=name)
            return {"ok": True, "deleted": name}

    def _teardown_worker(self, name: str) -> None:
        worker = self._workers.pop(name, None)
        if worker is not None:
            worker.cancel()
        queue = self._queues.pop(name, None)
        if queue is not None:
            while not queue.empty():
                request = queue.get_nowait()
                if not request.future.done():
                    request.future.set_exception(
                        ServeError("session_not_found", f"session {name!r} deleted")
                    )

    # -------------------------- batches ------------------------------- #
    async def _enqueue_batch(
        self, name: str, payload: dict[str, Any]
    ) -> dict[str, Any]:
        if not self.manager.has(name):
            raise ServeError("session_not_found", f"unknown session {name!r}")
        add, remove = decode_batch(payload)
        self.stats.batch_requests += 1
        self._m_batch_requests.inc()
        assert self._loop is not None
        future: asyncio.Future = self._loop.create_future()
        queue = self._queues.get(name)
        if queue is None:
            queue = self._queues[name] = asyncio.Queue()
        worker = self._workers.get(name)
        if worker is None or worker.done():
            self._workers[name] = self._loop.create_task(self._batch_worker(name))
        await queue.put(
            _BatchRequest(
                add, remove, future,
                cid=current_correlation_id(),
                trace=current_trace_context(),
            )
        )
        # Debug-level breadcrumb: with a flight journal this line is on
        # disk *before* the apply starts, so a killed-mid-batch server
        # still shows which request was in flight.
        self.log.debug("batch_enqueued", session=name, queue_depth=queue.qsize())
        return await future

    async def _batch_worker(self, name: str) -> None:
        """Per-session consumer: drain, coalesce, apply once, answer all."""
        queue = self._queues[name]
        while True:
            burst = [await queue.get()]
            if self.coalesce:
                while not queue.empty():
                    burst.append(queue.get_nowait())
            async with self._lock(name):
                await self._apply_burst(name, burst)

    async def _apply_burst(self, name: str, burst: list[_BatchRequest]) -> None:
        try:
            session = self.manager.get(name)
        except KeyError as exc:
            for request in burst:
                if not request.future.done():
                    request.future.set_exception(
                        ServeError("session_not_found", str(exc))
                    )
            return
        coalescer = BatchCoalescer(session.graph)
        accepted: list[_BatchRequest] = []
        for request in burst:
            try:
                coalescer.add_batch(add=request.add, remove=request.remove)
                accepted.append(request)
            except ValueError as exc:
                if not request.future.done():
                    request.future.set_exception(
                        ServeError("invalid_batch", str(exc))
                    )
        if not accepted:
            return
        add, remove = coalescer.net()
        # The burst shares one apply; the first folded request's trace
        # context names the stitched tree (the others are cross-linked
        # via the cids attribute below).
        primary = next((r for r in accepted if r.trace is not None), None)
        trace_ctx = primary.trace if primary is not None else None
        primary_cid = primary.cid if primary is not None else None
        cids = [r.cid for r in accepted if r.cid]
        coalesced = len(accepted)

        def run_apply():
            # run_in_executor does NOT copy contextvars into the worker
            # thread — re-bind the request identity explicitly so the
            # batch span tree, flight entries and any shard worker tasks
            # all carry this request's trace id.
            trace_token = bind_trace_context(
                trace_ctx.child("request") if trace_ctx is not None else None
            )
            cid_token = bind_correlation_id(primary_cid)
            try:
                with as_tracer(session.tracer).span(
                    "request",
                    route="session/batch",
                    session=name,
                    coalesced=coalesced,
                    **(
                        {"trace_id": trace_ctx.trace_id}
                        if trace_ctx is not None
                        else {}
                    ),
                ) as span:
                    if cids:
                        span.set(cids=cids)
                    return session.apply(add=add, remove=remove)
            finally:
                unbind_correlation_id(cid_token)
                unbind_trace_context(trace_token)

        self.manager.pin(name)
        if self._watchdog is not None:
            self._watchdog.arm(f"apply session={name} cid={primary_cid}")
        start = perf_counter()
        assert self._loop is not None
        try:
            result = await self._loop.run_in_executor(None, run_apply)
        except Exception as exc:  # noqa: BLE001 - answer every waiter
            self.log.error(
                "apply_failed", session=name,
                exception=f"{type(exc).__name__}: {exc}",
                cids=cids,
            )
            for request in accepted:
                if not request.future.done():
                    request.future.set_exception(
                        ServeError("server_error", f"apply failed: {exc}")
                    )
            return
        finally:
            if self._watchdog is not None:
                self._watchdog.disarm()
            self.manager.unpin(name)
        elapsed = perf_counter() - start
        self.stats.applies += 1
        self.stats.apply_seconds += elapsed
        self.stats.coalesced_requests += len(accepted) - 1
        self.stats.max_coalesce = max(self.stats.max_coalesce, len(accepted))
        self.stats.edges_added += result.edges_added
        self.stats.edges_removed += result.edges_removed
        self._m_applies.inc()
        self._m_coalesced.inc(len(accepted) - 1)
        self._m_fold_ratio.set(
            self.stats.batch_requests / max(self.stats.applies, 1)
        )
        exemplar = None
        if trace_ctx is not None and elapsed >= self.exemplar_seconds:
            exemplar = {"trace_id": trace_ctx.trace_id}
            if primary_cid:
                exemplar["cid"] = primary_cid
        self._m_apply_seconds.labels(session=name).observe(
            elapsed, exemplar=exemplar
        )
        self.log.info(
            "batch_applied",
            session=name, batch=result.batch, mode=result.mode,
            coalesced=len(accepted), seconds=round(elapsed, 6),
            edges_added=result.edges_added, edges_removed=result.edges_removed,
            span_path=f"batch[{result.batch}]",
            cids=cids,
            trace_id=trace_ctx.trace_id if trace_ctx is not None else None,
        )
        payload = result_payload(result, coalesced=len(accepted))
        for request in accepted:
            if not request.future.done():
                request.future.set_result(payload)

    # -------------------------- queries ------------------------------- #
    @staticmethod
    def _int_param(query: dict[str, str], key: str) -> int:
        if key not in query:
            raise ServeError("bad_request", f"missing query parameter {key!r}")
        try:
            return int(query[key])
        except ValueError as exc:
            raise ServeError(
                "bad_request", f"query parameter {key!r} must be an integer"
            ) from exc

    async def _community(
        self, name: str, query: dict[str, str]
    ) -> dict[str, Any]:
        vertex = self._int_param(query, "vertex")
        async with self._lock(name):
            session = self._session(name)
            try:
                community = session.community_of(vertex)
            except IndexError as exc:
                raise ServeError("vertex_out_of_range", str(exc)) from exc
            return {"vertex": vertex, "community": community}

    async def _members(self, name: str, query: dict[str, str]) -> dict[str, Any]:
        community = self._int_param(query, "community")
        async with self._lock(name):
            session = self._session(name)
            members = session.members(community)
            return {
                "community": community,
                "size": int(members.size),
                "members": members[:MAX_MEMBERS].tolist(),
                "truncated": bool(members.size > MAX_MEMBERS),
            }

    async def _top(self, name: str, query: dict[str, str]) -> dict[str, Any]:
        k = int(query.get("k", "10") or "10")
        by = query.get("by", "size")
        async with self._lock(name):
            session = self._session(name)
            try:
                top = session.top_k_communities(k, by=by)
            except ValueError as exc:
                raise ServeError("bad_request", str(exc)) from exc
            return {
                "by": by,
                "communities": [
                    {"community": c, by: (int(v) if by == "size" else v)}
                    for c, v in top
                ],
            }

    async def _report(self, name: str, query: dict[str, str]) -> dict[str, Any]:
        which = query.get("which", "last")
        if which not in ("last", "initial", "all"):
            raise ServeError(
                "bad_request", "report 'which' must be last, initial or all"
            )
        async with self._lock(name):
            session = self._session(name)
            if which == "all":
                return {
                    "initial": (
                        session.initial_report.to_dict()
                        if session.initial_report
                        else None
                    ),
                    "batches": [r.to_dict() for r in session.reports],
                }
            if which == "initial":
                report = session.initial_report
            else:
                report = session.reports[-1] if session.reports else None
            return {"report": report.to_dict() if report else None}

    def _session(self, name: str):
        try:
            return self.manager.get(name)
        except KeyError as exc:
            raise ServeError("session_not_found", str(exc)) from exc

    async def _snapshot(self, name: str) -> dict[str, Any]:
        async with self._lock(name):
            try:
                path = self.manager.snapshot(name)
            except KeyError as exc:
                raise ServeError("session_not_found", str(exc)) from exc
            self.log.info("snapshot_written", session=name, path=str(path))
            return {"ok": True, "snapshot": str(path)}

    async def _evict(self, name: str) -> dict[str, Any]:
        async with self._lock(name):
            try:
                path = self.manager.evict(name)
            except KeyError as exc:
                raise ServeError("session_not_found", str(exc)) from exc
            except RuntimeError as exc:
                raise ServeError("session_busy", str(exc)) from exc
            self.log.info("session_evicted", session=name, path=str(path))
            return {"ok": True, "snapshot": str(path)}

    # ------------------------------------------------------------------ #
    # Stats
    # ------------------------------------------------------------------ #
    def _stats_payload(self) -> dict[str, Any]:
        payload = self.stats.to_dict()
        payload["coalesce"] = self.coalesce
        payload["status"] = self._health_status()
        payload["sessions"] = self.manager.stats()
        payload["queues"] = {
            name: queue.qsize() for name, queue in self._queues.items()
        }
        per_session: dict[str, Any] = {}
        for name in list(self.manager.sessions):
            try:
                info = self.manager.info(name)
            except KeyError:
                continue
            queue = self._queues.get(name)
            info["queue_depth"] = queue.qsize() if queue is not None else 0
            hist = self._m_apply_seconds.labels(session=name)
            info["applies"] = hist.count
            info["apply_p50_seconds"] = hist.quantile(0.5)
            info["apply_p99_seconds"] = hist.quantile(0.99)
            per_session[name] = info
        payload["per_session"] = per_session
        payload["uptime_seconds"] = round(time() - self.stats.started, 3)
        payload["version"] = self.version
        payload["build"] = self.build
        payload["exemplars"] = self._exemplar_payload()
        return payload

    def _exemplar_payload(self) -> dict[str, Any]:
        """Latest exemplar per latency-histogram bucket, for ``/v1/stats``.

        Lets a client jump from "the p99 spiked" straight to a trace id
        it can feed to ``GET /v1/debug/flight?trace_id=…``.
        """
        out: dict[str, Any] = {}
        for metric in ("repro_serve_request_seconds",
                       "repro_serve_apply_seconds"):
            family = self.metrics.get(metric)
            if family is None:
                continue
            rows = []
            for values, child in family.children():
                exemplars = getattr(child, "exemplars", lambda: {})()
                for index, exemplar in sorted(exemplars.items()):
                    bounds = child.bounds
                    le = bounds[index] if index < len(bounds) else "+Inf"
                    rows.append({
                        "labels": dict(zip(family.labelnames, values)),
                        "le": le,
                        "exemplar": exemplar,
                    })
            if rows:
                out[metric] = rows
        return out
