"""repro.serve: request throughput and the effect of batch coalescing.

Starts an in-process :class:`~repro.serve.ReproServer` (real sockets,
ephemeral port) twice — coalescing on and off — and drives one session
with bursts of concurrent single-edge ``/batch`` requests at burst sizes
``BURSTS``.  Each burst launches ``B`` client threads that each post
``ROUNDS`` requests back-to-back, so with coalescing the server folds up
to ``B`` queued requests into one incremental ``apply()`` while the
previous apply is still running.

Measured per (burst size, coalescing) cell, from client-side timing and
the ``/v1/stats`` contract:

* requests/second and client-observed p50 / p99 latency,
* applies actually executed and the mean coalesce factor,
* **per-edge apply cost** — ``batches.apply_seconds`` divided by
  ``batches.edges_added`` (each request adds exactly one edge).

Acceptance (the ISSUE's gate): at burst sizes >= ``GATE_BURST``,
coalescing reduces the per-edge apply cost versus the same load with
coalescing off.

Writes ``benchmarks/results/bench_serve.{txt,json}``.
"""

from __future__ import annotations

import json
import threading
from time import perf_counter

import pytest

from repro.bench.reporting import banner, format_table
from repro.graph.generators import social_network
from repro.serve import ReproServer, ServeClient, ServeConfig, SessionManager
from repro.trace import RunReport, Span

from _util import RESULTS_DIR, emit, emit_report

#: Concurrent clients per burst.
BURSTS = (1, 4, 8, 16, 32)
#: Requests each client posts back-to-back.
ROUNDS = 6
#: Session graph: social-network analog, heavy-tailed with communities.
GRAPH_N, GRAPH_M = 3000, 6
#: Burst sizes the coalescing gate applies to.
GATE_BURST = 8


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def _run_load(port: int, name: str, burst: int, n: int) -> dict:
    """Post ``burst * ROUNDS`` single-edge adds from ``burst`` threads."""
    latencies: list[float] = []
    lock = threading.Lock()
    barrier = threading.Barrier(burst)

    def worker(wid: int) -> None:
        client = ServeClient(port=port)
        barrier.wait()
        for j in range(ROUNDS):
            u = (wid * 131 + j * 17) % n
            v = (u + 1 + wid) % n
            start = perf_counter()
            client.batch(name, add=([u], [v], [1.0]))
            with lock:
                latencies.append(perf_counter() - start)
        client.close()

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(burst)]
    start = perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = perf_counter() - start
    latencies.sort()
    return {
        "requests": burst * ROUNDS,
        "wall_seconds": wall,
        "rps": burst * ROUNDS / wall,
        "p50_ms": _percentile(latencies, 0.50) * 1e3,
        "p99_ms": _percentile(latencies, 0.99) * 1e3,
    }


def _measure(coalesce: bool, tmp_dir) -> list[dict]:
    manager = SessionManager(
        ServeConfig(snapshot_dir=tmp_dir / f"snaps_{coalesce}", coalesce=coalesce)
    )
    server = ReproServer(manager, port=0)
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: server.run(ready=lambda _: ready.set()), daemon=True
    )
    thread.start()
    assert ready.wait(20), "server did not start"
    rows = []
    try:
        control = ServeClient(port=server.port)
        graph = social_network(GRAPH_N, GRAPH_M, rng=7)
        u, v, w = graph.edge_list(unique=True)
        for burst in BURSTS:
            name = f"s{burst}"
            control.create_session(
                name,
                edges={"u": u.tolist(), "v": v.tolist(), "w": w.tolist(),
                       "num_vertices": graph.num_vertices},
                config={"screening": "local", "frontier_scope": "endpoints"},
            )
            before = control.stats()["batches"]
            load = _run_load(server.port, name, burst, graph.num_vertices)
            after = control.stats()["batches"]
            applies = after["applies"] - before["applies"]
            edges = after["edges_added"] - before["edges_added"]
            apply_seconds = after["apply_seconds"] - before["apply_seconds"]
            rows.append({
                "coalesce": coalesce,
                "burst": burst,
                **load,
                "applies": applies,
                "mean_coalesce": load["requests"] / max(applies, 1),
                "apply_seconds": apply_seconds,
                "per_edge_apply_ms": apply_seconds / max(edges, 1) * 1e3,
            })
            control.delete(name)
        control.shutdown()
    finally:
        server.request_shutdown()
        thread.join(10)
    return rows


@pytest.fixture(scope="module")
def measurements(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serve_bench")
    return _measure(True, tmp) + _measure(False, tmp)


def test_serve_throughput(measurements):
    table_rows = [
        (
            "on" if row["coalesce"] else "off",
            row["burst"],
            row["requests"],
            row["applies"],
            f"{row['mean_coalesce']:.1f}",
            row["rps"],
            row["p50_ms"],
            row["p99_ms"],
            row["per_edge_apply_ms"],
        )
        for row in measurements
    ]
    text = "\n".join([
        banner("repro.serve: burst coalescing throughput"),
        f"session graph: social_network({GRAPH_N}, {GRAPH_M}); "
        f"{ROUNDS} single-edge adds per client; bursts of "
        f"{', '.join(map(str, BURSTS))} concurrent clients",
        "",
        format_table(
            ("coalesce", "burst", "reqs", "applies", "reqs/apply",
             "req/s", "p50 ms", "p99 ms", "apply ms/edge"),
            table_rows,
            floatfmt=".4g",
        ),
    ])
    emit("bench_serve", text)

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "benchmark": "bench_serve",
        "gate_burst": GATE_BURST,
        "rows": measurements,
    }
    (RESULTS_DIR / "bench_serve.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print(f"[json written to {RESULTS_DIR / 'bench_serve.json'}]")

    # Feed the perf-trajectory store so `repro trajectory` can plot serve
    # throughput over commits and `repro bench-gate --current` guards it.
    # One report per (coalescing, burst) cell; burst/coalesce live in the
    # meta so each cell fingerprints to its own trajectory key.
    reports = []
    for row in measurements:
        mode = "coalesce" if row["coalesce"] else "serial"
        reports.append(RunReport(
            meta={
                "graph": f"serve-social-{GRAPH_N}x{GRAPH_M}",
                "engine": f"serve-{mode}",
                "burst": row["burst"],
                "rounds": ROUNDS,
            },
            result={
                "requests": row["requests"],
                "applies": row["applies"],
                "rps": row["rps"],
                "p99_ms": row["p99_ms"],
                "per_edge_apply_ms": row["per_edge_apply_ms"],
            },
            spans=[Span(
                "run",
                attributes={"engine": f"serve-{mode}", "burst": row["burst"]},
                counters={
                    "requests": row["requests"],
                    "applies": row["applies"],
                    "coalesced": row["requests"] - row["applies"],
                },
                seconds=row["wall_seconds"],
            )],
        ))
    emit_report("bench_serve", reports, trajectory=True)


def test_coalescing_reduces_per_edge_apply_cost(measurements):
    """The ISSUE's acceptance gate, at every burst size >= GATE_BURST."""
    on = {r["burst"]: r for r in measurements if r["coalesce"]}
    off = {r["burst"]: r for r in measurements if not r["coalesce"]}
    for burst in BURSTS:
        if burst < GATE_BURST:
            continue
        assert on[burst]["applies"] < off[burst]["applies"], burst
        assert (
            on[burst]["per_edge_apply_ms"] < off[burst]["per_edge_apply_ms"]
        ), (
            f"burst {burst}: coalescing on {on[burst]['per_edge_apply_ms']:.3f}"
            f" ms/edge >= off {off[burst]['per_edge_apply_ms']:.3f} ms/edge"
        )
