"""Modularity (Eq. 1) and modularity gain (Eq. 2) of the paper.

Notation, matching Section 2 of the paper and the CSR weight conventions of
:mod:`repro.graph.csr`:

* ``k_i``      — weighted degree of vertex ``i`` (self-loop once),
* ``a_c``      — ``sum_{i in c} k_i``,
* ``e_{i->c}`` — ``sum_{j in c} w(i, j)``,
* ``2m``       — ``sum_i k_i``.

Eq. (1):  ``Q = (1/2m) sum_i e_{i->C(i)}  -  sum_c a_c^2 / (4 m^2)``

Eq. (2):  gain of moving ``i`` from ``C(i)`` to ``C(j)``::

    dQ = (e_{i->C(j)} - e_{i->C(i)\\{i}}) / m
         + k_i * (a_{C(i)\\{i}} - a_{C(j)}) / (2 m^2)

where the ``\\{i}`` superscripts exclude ``i``'s own contribution.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = [
    "community_volumes",
    "community_internal_weights",
    "modularity",
    "move_gain",
    "vertex_to_community_weights",
]


def _check_partition(graph: CSRGraph, communities: np.ndarray) -> np.ndarray:
    communities = np.asarray(communities, dtype=np.int64)
    if communities.shape != (graph.num_vertices,):
        raise ValueError("communities must assign one label per vertex")
    if communities.size and communities.min() < 0:
        raise ValueError("community labels must be non-negative")
    return communities


def community_volumes(graph: CSRGraph, communities: np.ndarray) -> np.ndarray:
    """``a_c`` for every community label: sum of member weighted degrees."""
    communities = _check_partition(graph, communities)
    size = int(communities.max()) + 1 if communities.size else 0
    return np.bincount(communities, weights=graph.weighted_degrees, minlength=size)


def community_internal_weights(graph: CSRGraph, communities: np.ndarray) -> np.ndarray:
    """``sum_{i in c} e_{i->c}`` per community.

    Internal undirected edges contribute twice (both stored directions),
    self-loops once — the quantity Eq. (1)'s first term sums.
    """
    communities = _check_partition(graph, communities)
    size = int(communities.max()) + 1 if communities.size else 0
    src_comm = communities[graph.vertex_of_edge]
    dst_comm = communities[graph.indices]
    internal = src_comm == dst_comm
    return np.bincount(
        src_comm[internal], weights=graph.weights[internal], minlength=size
    )


def modularity(
    graph: CSRGraph, communities: np.ndarray, *, resolution: float = 1.0
) -> float:
    """Eq. (1): modularity of a partition, in ``[-1, 1]``.

    ``resolution`` is the Reichardt-Bornholdt generalisation: values > 1
    favour more, smaller communities; values < 1 merge more aggressively.
    The paper's Section 6 cites the resolution limit [11] as the reason
    coarse methods look deceptively good — tuning gamma is the standard
    mitigation, so the library exposes it (default 1 = the paper's Eq. 1).
    """
    communities = _check_partition(graph, communities)
    two_m = graph.total_weight
    if two_m == 0:
        return 0.0
    internal = community_internal_weights(graph, communities).sum()
    volumes = community_volumes(graph, communities)
    return float(
        internal / two_m - resolution * np.square(volumes).sum() / (two_m * two_m)
    )


def vertex_to_community_weights(
    graph: CSRGraph, vertex: int, communities: np.ndarray
) -> dict[int, float]:
    """``e_{i->c}`` for every community adjacent to ``vertex`` (dict form).

    Reference implementation of the hash-accumulation step of Alg. 2 —
    the GPU kernels and the vectorized engine are tested against this.
    Self-loops count toward the vertex's own community.
    """
    weights: dict[int, float] = {}
    for nb, w in zip(graph.neighbors(vertex), graph.neighbor_weights(vertex)):
        c = int(communities[nb]) if nb != vertex else int(communities[vertex])
        weights[c] = weights.get(c, 0.0) + float(w)
    return weights


def move_gain(
    graph: CSRGraph,
    communities: np.ndarray,
    vertex: int,
    target: int,
    *,
    resolution: float = 1.0,
) -> float:
    """Eq. (2): exact modularity gain of moving ``vertex`` to ``target``.

    Computed from scratch (O(deg) + O(n) volumes); intended as the slow,
    obviously-correct oracle for tests, not for use inside solvers.
    """
    communities = _check_partition(graph, communities)
    own = int(communities[vertex])
    if target == own:
        return 0.0
    m = graph.m
    if m == 0:
        return 0.0
    k = graph.weighted_degrees
    volumes = community_volumes(graph, communities)
    e = vertex_to_community_weights(graph, vertex, communities)
    loop = graph.self_loop_weight(vertex)
    e_target = e.get(int(target), 0.0)
    e_own_excl = e.get(own, 0.0) - loop
    a_own_excl = volumes[own] - k[vertex]
    a_target = volumes[target] if target < volumes.size else 0.0
    return float(
        (e_target - e_own_excl) / m
        + resolution * k[vertex] * (a_own_excl - a_target) / (2.0 * m * m)
    )
