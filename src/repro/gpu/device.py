"""Device model: the hardware parameters the cost model charges against.

The paper's experiments ran on a Tesla K40m (12 GB, 2880 cores at 745 MHz,
compute capability 3.5, 15 SMX units).  :data:`TESLA_K40M` encodes that
card; other presets exist to let the ablation benchmarks ask "what if"
questions (more SMs, smaller shared memory, narrower warps).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "TESLA_K40M", "AMPERE_A100", "SMALL_DEVICE"]


@dataclass(frozen=True)
class DeviceSpec:
    """Parameters of a (simulated) CUDA device.

    Attributes mirror what the kernels in Section 4.1 depend on: warp
    width, the 4-warp thread blocks, shared-memory capacity (which decides
    bucket 6 vs bucket 7 placement of hash tables), and the SM count that
    converts warp-cycles into wall-clock.
    """

    name: str
    num_sms: int
    cores_per_sm: int
    clock_mhz: float
    warp_size: int = 32
    warps_per_block: int = 4
    max_resident_warps_per_sm: int = 64
    shared_memory_per_block: int = 48 * 1024
    global_memory: int = 12 * 1024**3
    pcie_bandwidth: float = 12e9  # bytes/s (PCIe 3.0 x16, the K40m's link)

    @property
    def threads_per_block(self) -> int:
        """Threads per block (the paper uses 4 warps = 128 threads)."""
        return self.warp_size * self.warps_per_block

    @property
    def total_cores(self) -> int:
        """Total CUDA cores."""
        return self.num_sms * self.cores_per_sm

    @property
    def concurrent_warps(self) -> int:
        """Warps the device can execute concurrently (one per scheduler).

        Kepler SMX units have 4 warp schedulers; we approximate sustained
        throughput as ``4 * num_sms`` warps in flight per cycle.
        """
        return 4 * self.num_sms

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert device cycles to seconds at the spec's clock."""
        return cycles / (self.clock_mhz * 1e6)

    def shared_table_capacity(self, bytes_per_slot: int = 12) -> int:
        """Hash-table slots that fit in one block's shared memory.

        A slot holds an ``int`` community id and a weight (4 + 8 bytes in
        the CUDA code).  This bound decides the degree threshold between
        buckets 6 (shared) and 7 (global): 48 KiB / 12 B = 4096 slots,
        comfortably above the prime > 1.5 * 319 needed by bucket 6.
        """
        return self.shared_memory_per_block // bytes_per_slot

    def memory_required_bytes(
        self, num_vertices: int, num_stored_edges: int
    ) -> int:
        """Device-memory footprint of a graph during the algorithm.

        Counts the CSR arrays (``vertices``/``edges``/``weights``,
        Section 4.1) in the CUDA code's 32-bit device layout (int indices,
        float weights), the community/newComm/volume working arrays, and a
        second edge buffer for the contracted graph under construction —
        the reason the paper notes "the size of the current GPU memory can
        restrict the problems that can be solved" and drops intermediate
        clustering output.  uk-2002 (18.5M vertices, 584M stored entries)
        lands at ~9.4 GB: it fits the K40m's 12 GB, barely — matching the
        paper's experience.
        """
        csr = 4 * (num_vertices + 1) + (4 + 4) * num_stored_edges
        working = 5 * 4 * num_vertices  # C, newComm, a_c, comSize, comDegree
        contraction = (4 + 4) * num_stored_edges  # new edge lists, worst case
        return csr + working + contraction

    def fits(self, num_vertices: int, num_stored_edges: int) -> bool:
        """Whether the working set fits in device global memory."""
        return (
            self.memory_required_bytes(num_vertices, num_stored_edges)
            <= self.global_memory
        )

    def transfer_seconds(self, num_bytes: int) -> float:
        """Host -> device copy time over the PCIe link.

        Section 4.1: "The input graph is initially transferred to the
        device memory.  All processing is then carried out on the device."
        This is the one-off cost that processing amortises.
        """
        if self.pcie_bandwidth <= 0:
            return 0.0
        return num_bytes / self.pcie_bandwidth

    def graph_transfer_seconds(self, num_vertices: int, num_stored_edges: int) -> float:
        """Transfer time for a CSR graph in the 32-bit device layout."""
        csr_bytes = 4 * (num_vertices + 1) + (4 + 4) * num_stored_edges
        return self.transfer_seconds(csr_bytes)

    def oversubscription(self, num_vertices: int, num_stored_edges: int) -> float:
        """Working set / device memory (``> 1`` means UVA spill)."""
        if self.global_memory <= 0:
            return float("inf")
        return (
            self.memory_required_bytes(num_vertices, num_stored_edges)
            / self.global_memory
        )


TESLA_K40M = DeviceSpec(
    name="Tesla K40m",
    num_sms=15,
    cores_per_sm=192,
    clock_mhz=745.0,
)
"""The card of the paper's experiments."""

AMPERE_A100 = DeviceSpec(
    name="A100-SXM4-40GB",
    num_sms=108,
    cores_per_sm=64,
    clock_mhz=1410.0,
    shared_memory_per_block=160 * 1024,
    global_memory=40 * 1024**3,
    pcie_bandwidth=25e9,  # PCIe 4.0 x16
)
"""A modern datacenter part, for "what would the paper's numbers look
like today" what-ifs: 7.2x the SMs-x-clock throughput, 3.3x the memory,
3.3x the shared memory per block (which would let bucket 7's boundary
move from degree 319 to ~1000)."""

SMALL_DEVICE = DeviceSpec(
    name="small-test-device",
    num_sms=2,
    cores_per_sm=32,
    clock_mhz=100.0,
    shared_memory_per_block=4 * 1024,
)
"""A deliberately tiny device for unit tests of capacity-driven paths."""
