"""Open-addressing hash table with double hashing — Alg. 2's data structure.

The GPU kernels accumulate, for each vertex, the edge weight toward every
neighbouring community in a pair of parallel tables ``hashComm`` /
``hashWeight``.  Probing follows the paper exactly:

* position sequence ``hash(c, it) = (h1(c) + it * h2(c)) mod size`` with
  double hashing (CLRS [5], the paper's citation),
* an empty slot is claimed with CAS; a lost race re-examines the slot and
  either accumulates (the winner inserted the same community) or continues
  probing,
* the weight is accumulated with atomicAdd.

The Python class executes those semantics serially (a serial execution is
one legal interleaving of the lock-free protocol) while *counting* the
probes and simulated atomic operations so the cost model can charge for
them.  ``claim_races`` models CAS contention: when the caller marks
multiple threads inserting concurrently, duplicate first-claims of a slot
count as failed CAS attempts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .primes import hash_table_size

__all__ = ["HashTableStats", "CommunityHashTable"]

EMPTY = -1


@dataclass
class HashTableStats:
    """Operation counters for one table's lifetime."""

    probes: int = 0
    inserts: int = 0
    accumulates: int = 0
    cas_attempts: int = 0
    max_probe_length: int = 0

    def merge(self, other: "HashTableStats") -> None:
        """Accumulate another table's counters into this one."""
        self.probes += other.probes
        self.inserts += other.inserts
        self.accumulates += other.accumulates
        self.cas_attempts += other.cas_attempts
        self.max_probe_length = max(self.max_probe_length, other.max_probe_length)


class CommunityHashTable:
    """``hashComm`` / ``hashWeight`` for one vertex (or one community).

    Parameters
    ----------
    degree:
        Number of edges that will be hashed; the table size is the smallest
        prime above ``1.5 * degree`` (paper's rule) unless ``size`` is
        given explicitly.
    """

    def __init__(self, degree: int, *, size: int | None = None) -> None:
        self.size = size if size is not None else hash_table_size(degree)
        if self.size < 2:
            self.size = 2
        self.comm = np.full(self.size, EMPTY, dtype=np.int64)
        self.weight = np.zeros(self.size, dtype=np.float64)
        self.stats = HashTableStats()

    # The double-hash functions; h2 must be non-zero and co-prime with the
    # (prime) table size, which `1 + c mod (size - 1)` guarantees.
    def _h1(self, community: int) -> int:
        return community % self.size

    def _h2(self, community: int) -> int:
        return 1 + community % (self.size - 1) if self.size > 1 else 1

    def slot_sequence(self, community: int):
        """Yield the probe sequence for ``community`` (size-bounded)."""
        h1 = self._h1(community)
        h2 = self._h2(community)
        for it in range(self.size):
            yield (h1 + it * h2) % self.size

    def add(self, community: int, weight: float) -> int:
        """Accumulate ``weight`` toward ``community``; return the slot used.

        Implements lines 2-13 of Alg. 2 for a single edge.
        """
        if community < 0:
            raise ValueError("community ids must be non-negative")
        probe_length = 0
        for pos in self.slot_sequence(community):
            probe_length += 1
            self.stats.probes += 1
            if self.comm[pos] == community:
                self.weight[pos] += weight
                self.stats.accumulates += 1
                break
            if self.comm[pos] == EMPTY:
                # CAS(comm[pos], EMPTY, community): serial execution always
                # wins the race, but we still count the attempt.
                self.stats.cas_attempts += 1
                self.comm[pos] = community
                self.weight[pos] += weight
                self.stats.inserts += 1
                break
        else:  # pragma: no cover - table sized so this cannot happen
            raise RuntimeError("hash table full")
        self.stats.max_probe_length = max(self.stats.max_probe_length, probe_length)
        return pos

    def add_edges(self, communities: np.ndarray, weights: np.ndarray) -> None:
        """Hash a batch of edges (the parallel-for of Alg. 2, serialised)."""
        for c, w in zip(np.asarray(communities).tolist(), np.asarray(weights).tolist()):
            self.add(int(c), float(w))

    def get(self, community: int) -> float:
        """Accumulated weight toward ``community`` (0.0 if absent).

        Charges ``stats.probes`` / ``max_probe_length`` exactly like
        :meth:`add`: a lookup walks the same double-hashing slot sequence
        and pays the same memory traffic, so the cost model must see it.
        """
        probe_length = 0
        result = 0.0
        for pos in self.slot_sequence(community):
            probe_length += 1
            self.stats.probes += 1
            if self.comm[pos] == community:
                result = float(self.weight[pos])
                break
            if self.comm[pos] == EMPTY:
                break
        self.stats.max_probe_length = max(self.stats.max_probe_length, probe_length)
        return result

    def items(self) -> list[tuple[int, float]]:
        """All ``(community, weight)`` entries, slot order."""
        occupied = self.comm != EMPTY
        return list(
            zip(self.comm[occupied].tolist(), self.weight[occupied].tolist())
        )

    def as_dict(self) -> dict[int, float]:
        """Entries as a dict (for comparisons against reference code)."""
        return dict(self.items())

    @property
    def load_factor(self) -> float:
        """Occupied fraction of the table."""
        return float((self.comm != EMPTY).sum() / self.size)

    def argmax_by(self, score) -> tuple[int, float] | None:
        """Parallel-reduction stand-in: best entry by ``score(comm, weight)``.

        Ties break toward the lowest community id, the paper's
        deterministic rule.  Returns ``(community, weight)`` or ``None``
        for an empty table.
        """
        best: tuple[int, float] | None = None
        best_score = -np.inf
        for community, weight in sorted(self.items()):
            s = score(community, weight)
            if s > best_score:
                best_score = s
                best = (community, weight)
        return best
