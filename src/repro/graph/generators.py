"""Synthetic graph generators.

The paper evaluates on 55 real graphs (Florida sparse matrix collection,
SNAP, Koblenz).  Those inputs are not available offline, so every graph
class that appears in Table 1 has a generator family here that matches its
*shape*: degree distribution, average degree, and presence/absence of
community structure — the properties that drive both load balance (degree
bucketing) and convergence behaviour (figures 5/6).

Families and the Table-1 classes they stand in for:

===========================  ====================================================
Generator                    Stands in for
===========================  ====================================================
:func:`rmat`                 web graphs (uk-2002, cnr-2000)
:func:`social_network`       soc-pokec, com-lj, com-orkut, flickr, flixster
:func:`barabasi_albert`      plain preferential attachment (tests, ablations)
:func:`clique_overlap`       hollywood-2009, actor-collaboration, coPapersDBLP
:func:`planted_partition`    graphs with strong ground-truth communities
:func:`lfr_like`             power-law community sizes + power-law degrees
:func:`stencil3d`            FEM meshes (audikw_1, bone*, F1, Flan, Serena ...)
:func:`kkt_like`             nlpkkt120/160/200 (weak community structure)
:func:`road_grid`            road_usa, *_osm road networks
:func:`random_geometric`     rgg_n_2_22/23/24_s0
:func:`delaunay_graph`       delaunay_n24
:func:`lattice3d`            channel-500..., packing-500... (regular meshes)
===========================  ====================================================

All generators take an ``rng`` argument (``numpy.random.Generator`` or an
int seed) and are deterministic given it.
"""

from __future__ import annotations

import numpy as np

from .build import ensure_connected_relabelled, from_edges
from .csr import CSRGraph

__all__ = [
    "as_rng",
    "ring",
    "path",
    "star",
    "complete",
    "binary_tree",
    "grid2d",
    "lattice3d",
    "stencil3d",
    "stencil3d_radius",
    "kkt_like",
    "road_grid",
    "random_geometric",
    "delaunay_graph",
    "barabasi_albert",
    "social_network",
    "rmat",
    "planted_partition",
    "lfr_like",
    "clique_overlap",
    "caveman",
    "karate_club",
    "with_random_weights",
]


def as_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce an int seed / ``None`` / generator into a ``Generator``."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


# --------------------------------------------------------------------- #
# Deterministic elementary graphs (mostly for tests and examples)
# --------------------------------------------------------------------- #
def ring(n: int) -> CSRGraph:
    """Cycle on ``n`` vertices."""
    if n < 3:
        raise ValueError("ring needs n >= 3")
    u = np.arange(n)
    return from_edges(u, (u + 1) % n, num_vertices=n)


def path(n: int) -> CSRGraph:
    """Path on ``n`` vertices."""
    if n < 1:
        raise ValueError("path needs n >= 1")
    u = np.arange(n - 1)
    return from_edges(u, u + 1, num_vertices=n)


def star(n: int) -> CSRGraph:
    """Star: vertex 0 joined to vertices ``1..n-1``."""
    if n < 2:
        raise ValueError("star needs n >= 2")
    spokes = np.arange(1, n)
    return from_edges(np.zeros(n - 1, dtype=np.int64), spokes, num_vertices=n)


def complete(n: int) -> CSRGraph:
    """Complete graph ``K_n``."""
    u, v = np.triu_indices(n, k=1)
    return from_edges(u, v, num_vertices=n)


def binary_tree(depth: int) -> CSRGraph:
    """Complete binary tree with ``2**depth - 1`` vertices."""
    if depth < 1:
        raise ValueError("binary_tree needs depth >= 1")
    n = 2**depth - 1
    child = np.arange(1, n)
    parent = (child - 1) // 2
    return from_edges(parent, child, num_vertices=n)


def grid2d(rows: int, cols: int, *, diagonal: bool = False) -> CSRGraph:
    """Regular 2-D grid; with ``diagonal=True`` adds one diagonal per cell."""
    idx = np.arange(rows * cols).reshape(rows, cols)
    us = [idx[:, :-1].ravel(), idx[:-1, :].ravel()]
    vs = [idx[:, 1:].ravel(), idx[1:, :].ravel()]
    if diagonal:
        us.append(idx[:-1, :-1].ravel())
        vs.append(idx[1:, 1:].ravel())
    return from_edges(np.concatenate(us), np.concatenate(vs), num_vertices=rows * cols)


def lattice3d(nx: int, ny: int, nz: int) -> CSRGraph:
    """3-D 6-neighbour lattice (channel/packing mesh analog)."""
    idx = np.arange(nx * ny * nz).reshape(nx, ny, nz)
    us = [idx[:-1, :, :].ravel(), idx[:, :-1, :].ravel(), idx[:, :, :-1].ravel()]
    vs = [idx[1:, :, :].ravel(), idx[:, 1:, :].ravel(), idx[:, :, 1:].ravel()]
    return from_edges(
        np.concatenate(us), np.concatenate(vs), num_vertices=nx * ny * nz
    )


def stencil3d(nx: int, ny: int, nz: int) -> CSRGraph:
    """3-D 27-point stencil (FEM mesh analog: audikw_1, bone*, Geo, ...).

    Every vertex connects to all grid neighbours within Chebyshev distance
    one, giving interior degree 26 — the dense-row regime of FEM matrices.
    """
    return stencil3d_radius(nx, ny, nz, radius=1)


def stencil3d_radius(nx: int, ny: int, nz: int, *, radius: int = 1) -> CSRGraph:
    """3-D stencil with neighbourhood of Chebyshev distance ``radius``.

    Interior degree is ``(2*radius + 1)**3 - 1`` — radius 2 gives 124,
    approximating the very dense FEM rows (audikw_1 averages 81).
    """
    if radius < 1:
        raise ValueError("radius must be >= 1")
    idx = np.arange(nx * ny * nz).reshape(nx, ny, nz)
    us, vs = [], []
    span = range(-radius, radius + 1)
    offsets = [(dx, dy, dz) for dx in span for dy in span for dz in span]
    for dx, dy, dz in offsets:
        if (dx, dy, dz) <= (0, 0, 0):
            continue  # keep one direction per pair
        sx = slice(max(0, -dx), nx - max(0, dx))
        sy = slice(max(0, -dy), ny - max(0, dy))
        sz = slice(max(0, -dz), nz - max(0, dz))
        tx = slice(max(0, dx), nx - max(0, -dx))
        ty = slice(max(0, dy), ny - max(0, -dy))
        tz = slice(max(0, dz), nz - max(0, -dz))
        us.append(idx[sx, sy, sz].ravel())
        vs.append(idx[tx, ty, tz].ravel())
    return from_edges(
        np.concatenate(us), np.concatenate(vs), num_vertices=nx * ny * nz
    )


def kkt_like(
    nx: int, ny: int, nz: int, rng: np.random.Generator | int | None = 0
) -> CSRGraph:
    """nlpkkt-style graph: two coupled stencil blocks + constraint links.

    The nlpkkt matrices are KKT systems of PDE-constrained optimisation:
    two copies of a 3-D mesh coupled one-to-one plus off-grid constraint
    rows.  The distinguishing behaviour the paper observes (Figure 6) is a
    weak initial community structure — the first aggregation barely shrinks
    the graph — which the coupling reproduces.
    """
    rng = as_rng(rng)
    block = stencil3d(nx, ny, nz)
    n = block.num_vertices
    u0, v0, w0 = block.edge_list(unique=True)
    us = [u0, u0 + n]
    vs = [v0, v0 + n]
    ws = [w0, w0]
    # One-to-one coupling between the two blocks.
    us.append(np.arange(n))
    vs.append(np.arange(n) + n)
    ws.append(np.ones(n))
    # Sparse random constraint edges across the blocks (breaks locality).
    extra = max(1, n // 4)
    us.append(rng.integers(0, n, size=extra))
    vs.append(rng.integers(n, 2 * n, size=extra))
    ws.append(np.ones(extra))
    return from_edges(
        np.concatenate(us), np.concatenate(vs), np.concatenate(ws), num_vertices=2 * n
    )


def road_grid(
    rows: int,
    cols: int,
    rng: np.random.Generator | int | None = 0,
    *,
    drop_fraction: float = 0.15,
    diagonal_fraction: float = 0.05,
) -> CSRGraph:
    """Road-network analog: a grid with dropped edges and rare diagonals.

    Degrees land in 2..4 with long shortest paths — the structure that makes
    road_usa / *_osm exhibit many cheap Louvain stages (Figure 5's tail).
    """
    rng = as_rng(rng)
    base = grid2d(rows, cols)
    u, v, w = base.edge_list(unique=True)
    keep = rng.random(u.size) >= drop_fraction
    u, v, w = u[keep], v[keep], w[keep]
    idx = np.arange(rows * cols).reshape(rows, cols)
    du = idx[:-1, :-1].ravel()
    dv = idx[1:, 1:].ravel()
    pick = rng.random(du.size) < diagonal_fraction
    u = np.concatenate([u, du[pick]])
    v = np.concatenate([v, dv[pick]])
    w = np.concatenate([w, np.ones(int(pick.sum()))])
    g = from_edges(u, v, w, num_vertices=rows * cols)
    return ensure_connected_relabelled(g)


def random_geometric(
    n: int, radius: float, rng: np.random.Generator | int | None = 0
) -> CSRGraph:
    """Random geometric graph in the unit square (rgg_n_2_* analog)."""
    rng = as_rng(rng)
    from scipy.spatial import cKDTree

    points = rng.random((n, 2))
    tree = cKDTree(points)
    pairs = tree.query_pairs(r=radius, output_type="ndarray")
    g = from_edges(pairs[:, 0], pairs[:, 1], num_vertices=n)
    return ensure_connected_relabelled(g)


def delaunay_graph(n: int, rng: np.random.Generator | int | None = 0) -> CSRGraph:
    """Delaunay triangulation of random points (delaunay_n24 analog)."""
    rng = as_rng(rng)
    from scipy.spatial import Delaunay

    points = rng.random((n, 2))
    tri = Delaunay(points)
    edges = np.concatenate(
        [tri.simplices[:, [0, 1]], tri.simplices[:, [1, 2]], tri.simplices[:, [0, 2]]]
    )
    return from_edges(edges[:, 0], edges[:, 1], num_vertices=n)


def barabasi_albert(
    n: int, m: int, rng: np.random.Generator | int | None = 0
) -> CSRGraph:
    """Preferential attachment: power-law degrees (social-network analog).

    Each new vertex attaches to ``m`` existing vertices chosen proportional
    to degree (by sampling from the repeated-endpoint pool, the standard
    O(E) trick).
    """
    rng = as_rng(rng)
    if m < 1 or n <= m:
        raise ValueError("need n > m >= 1")
    # Repeated-endpoint pool: each edge contributes both endpoints.
    pool = list(range(m))  # seed clique-ish start: first vertex set
    us: list[int] = []
    vs: list[int] = []
    for new in range(m, n):
        targets: set[int] = set()
        while len(targets) < m:
            if pool:
                cand = int(pool[rng.integers(0, len(pool))])
            else:
                cand = int(rng.integers(0, new))
            targets.add(cand)
        for t in targets:
            us.append(new)
            vs.append(t)
            pool.append(new)
            pool.append(t)
    return from_edges(us, vs, num_vertices=n)


def social_network(
    n: int,
    m: int,
    rng: np.random.Generator | int | None = 0,
    *,
    mixing: float = 0.15,
    community_exponent: float = 1.5,
    min_community: int = 32,
) -> CSRGraph:
    """Social-network analog: preferential attachment inside communities.

    Real social graphs (soc-LiveJournal, com-lj, pokec) combine two
    properties that plain Barabási–Albert lacks together: heavy-tailed
    degrees *and* strong community structure (Louvain finds Q ~ 0.7 on
    them).  Here vertices belong to planted power-law-sized communities;
    each new vertex attaches ``m`` edges preferentially, drawing from its
    community's endpoint pool with probability ``1 - mixing`` and from
    the global pool otherwise.
    """
    rng = as_rng(rng)
    if m < 1 or n <= m:
        raise ValueError("need n > m >= 1")
    max_community = max(min_community * 8, n // 8)
    sizes: list[int] = []
    while sum(sizes) < n:
        u = rng.random()
        lo, hi, ex = min_community, max_community, community_exponent
        size = int(
            ((hi ** (1 - ex) - lo ** (1 - ex)) * u + lo ** (1 - ex)) ** (1 / (1 - ex))
        )
        sizes.append(min(size, n - sum(sizes)))
    labels = np.repeat(np.arange(len(sizes)), sizes)
    rng.shuffle(labels)

    local_pools: dict[int, list[int]] = {}
    global_pool: list[int] = []
    members_seen: dict[int, list[int]] = {}
    us: list[int] = []
    vs: list[int] = []
    for v in range(n):
        c = int(labels[v])
        pool = local_pools.setdefault(c, [])
        seen = members_seen.setdefault(c, [])
        targets: set[int] = set()
        attempts = 0
        while len(targets) < min(m, v) and attempts < 20 * m:
            attempts += 1
            use_local = rng.random() >= mixing
            if use_local and pool:
                cand = pool[rng.integers(0, len(pool))]
            elif use_local and seen:
                cand = seen[rng.integers(0, len(seen))]
            elif global_pool:
                cand = global_pool[rng.integers(0, len(global_pool))]
            elif v > 0:
                cand = int(rng.integers(0, v))
            else:
                break
            if cand != v:
                targets.add(int(cand))
        for t in targets:
            us.append(v)
            vs.append(t)
            tc = int(labels[t])
            local_pools.setdefault(tc, []).append(t)
            pool.append(v)
            global_pool.append(v)
            global_pool.append(t)
        seen.append(v)
    g = from_edges(us, vs, num_vertices=n)
    return ensure_connected_relabelled(g)


def rmat(
    scale: int,
    edge_factor: int = 16,
    rng: np.random.Generator | int | None = 0,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> CSRGraph:
    """R-MAT / Kronecker generator (web-graph analog, uk-2002 style).

    Generates ``edge_factor * 2**scale`` directed samples in a ``2**scale``
    vertex id space by recursive quadrant selection with probabilities
    ``(a, b, c, d=1-a-b-c)``, then symmetrises and deduplicates.  The
    default parameters are the Graph500 ones, giving heavily skewed degrees
    — the load-balance stress case the paper's bucketing targets.
    """
    rng = as_rng(rng)
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("a + b + c must be <= 1")
    n = 2**scale
    num_edges = edge_factor * n
    u = np.zeros(num_edges, dtype=np.int64)
    v = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        r = rng.random(num_edges)
        # Quadrants in threshold order: a=(0,0), b=(0,1), c=(1,0), d=(1,1).
        right = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        down = r >= a + b
        u = u * 2 + down.astype(np.int64)
        v = v * 2 + right.astype(np.int64)
    keep = u != v  # drop self-loops: rmat noise, not meaningful here
    g = from_edges(u[keep], v[keep], num_vertices=n)
    return ensure_connected_relabelled(g)


def planted_partition(
    num_communities: int,
    community_size: int,
    p_in: float,
    p_out: float,
    rng: np.random.Generator | int | None = 0,
) -> tuple[CSRGraph, np.ndarray]:
    """Planted-partition model; returns ``(graph, ground_truth_labels)``.

    Every intra-community pair is an edge with probability ``p_in``; inter
    pairs with ``p_out``.  Used to check that detected communities recover
    the planted ones (metrics.quality) and as a strong-structure workload.
    """
    rng = as_rng(rng)
    n = num_communities * community_size
    labels = np.repeat(np.arange(num_communities), community_size)
    us, vs = [], []
    # Intra-community edges, community by community (small dense blocks).
    for comm in range(num_communities):
        base = comm * community_size
        iu, iv = np.triu_indices(community_size, k=1)
        pick = rng.random(iu.size) < p_in
        us.append(base + iu[pick])
        vs.append(base + iv[pick])
    # Inter-community edges by sparse sampling (avoid materialising n^2).
    total_inter_pairs = n * (n - 1) // 2 - num_communities * (
        community_size * (community_size - 1) // 2
    )
    expected = int(p_out * total_inter_pairs)
    if expected > 0:
        cand_u = rng.integers(0, n, size=2 * expected + 16)
        cand_v = rng.integers(0, n, size=2 * expected + 16)
        ok = labels[cand_u] != labels[cand_v]
        us.append(cand_u[ok][:expected])
        vs.append(cand_v[ok][:expected])
    g = from_edges(
        np.concatenate(us), np.concatenate(vs), num_vertices=n
    )
    return g, labels


def lfr_like(
    n: int,
    rng: np.random.Generator | int | None = 0,
    *,
    avg_degree: int = 12,
    mixing: float = 0.2,
    community_exponent: float = 1.5,
    min_community: int = 16,
    max_community: int | None = None,
) -> tuple[CSRGraph, np.ndarray]:
    """LFR-flavoured benchmark: power-law community sizes, tunable mixing.

    ``mixing`` is the fraction of each vertex's edges that leave its
    community.  A full LFR implementation also draws power-law degrees; we
    approximate with Poisson degrees, which preserves the property the
    paper's experiments need — recoverable communities of skewed sizes.
    Returns ``(graph, ground_truth_labels)``.
    """
    rng = as_rng(rng)
    max_community = max_community or max(min_community * 8, n // 8)
    # Draw community sizes from a truncated power law until they cover n.
    sizes: list[int] = []
    while sum(sizes) < n:
        u = rng.random()
        lo, hi, ex = min_community, max_community, community_exponent
        size = int(
            ((hi ** (1 - ex) - lo ** (1 - ex)) * u + lo ** (1 - ex)) ** (1 / (1 - ex))
        )
        sizes.append(min(size, n - sum(sizes)) if sum(sizes) + size > n else size)
    if sizes and sizes[-1] < 2:  # merge a dangling singleton community
        sizes[-2] += sizes[-1]
        sizes.pop()
    labels = np.repeat(np.arange(len(sizes)), sizes)
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    degrees = rng.poisson(avg_degree, size=n).clip(min=2)
    us, vs = [], []
    for comm, size in enumerate(sizes):
        base = offsets[comm]
        members = np.arange(base, base + size)
        internal_stubs = np.repeat(
            members, np.maximum(1, (degrees[members] * (1 - mixing)).astype(int))
        )
        rng.shuffle(internal_stubs)
        half = internal_stubs.size // 2
        us.append(internal_stubs[:half])
        vs.append(internal_stubs[half : 2 * half])
    ext_stubs = np.repeat(np.arange(n), np.maximum(0, (degrees * mixing).astype(int)))
    rng.shuffle(ext_stubs)
    half = ext_stubs.size // 2
    us.append(ext_stubs[:half])
    vs.append(ext_stubs[half : 2 * half])
    u = np.concatenate(us)
    v = np.concatenate(vs)
    keep = u != v
    g = from_edges(u[keep], v[keep], num_vertices=n)
    return g, labels


def clique_overlap(
    num_groups: int,
    rng: np.random.Generator | int | None = 0,
    *,
    mean_group_size: int = 8,
    actors_per_group_pool: int = 4,
    locality: float = 0.9,
) -> CSRGraph:
    """Collaboration-network analog (hollywood-2009, coPapersDBLP).

    Models a bipartite actor–production structure projected onto actors:
    actors belong to latent scenes (studios / research fields), each
    production draws its cast preferentially (``locality``) from one
    scene with busy-actor reuse, and every cast becomes a clique.  This
    yields the dense, heavy-tailed neighbourhoods *and* the strong
    community structure (real collaboration graphs score Q ~ 0.7-0.8)
    characteristic of the class.
    """
    rng = as_rng(rng)
    num_actors = num_groups * actors_per_group_pool
    num_scenes = max(2, num_actors // (mean_group_size * 8))
    scene_of = rng.integers(0, num_scenes, size=num_actors)
    scene_members = [np.flatnonzero(scene_of == s) for s in range(num_scenes)]
    activity = np.ones(num_actors)
    us, vs = [], []
    for _ in range(num_groups):
        size = max(2, int(rng.poisson(mean_group_size)))
        scene = int(rng.integers(0, num_scenes))
        local = scene_members[scene]
        cast_set: set[int] = set()
        while len(cast_set) < min(size, num_actors):
            if local.size and rng.random() < locality:
                pool = local
            else:
                pool = None
            if pool is not None:
                weights = activity[pool]
                cast_set.add(int(pool[rng.choice(pool.size, p=weights / weights.sum())]))
            else:
                weights = activity
                cast_set.add(int(rng.choice(num_actors, p=weights / weights.sum())))
        cast = np.fromiter(cast_set, dtype=np.int64)
        activity[cast] += 1.0
        iu, iv = np.triu_indices(cast.size, k=1)
        us.append(cast[iu])
        vs.append(cast[iv])
    g = from_edges(
        np.concatenate(us), np.concatenate(vs), num_vertices=num_actors
    )
    return ensure_connected_relabelled(g)


def caveman(num_caves: int, cave_size: int) -> tuple[CSRGraph, np.ndarray]:
    """Connected caveman graph: cliques joined in a ring; returns labels.

    The canonical "obvious communities" example used in the quickstart.
    """
    n = num_caves * cave_size
    labels = np.repeat(np.arange(num_caves), cave_size)
    us, vs = [], []
    for cave in range(num_caves):
        base = cave * cave_size
        iu, iv = np.triu_indices(cave_size, k=1)
        us.append(base + iu)
        vs.append(base + iv)
        # Rewire one edge to the next cave to connect the ring.
        us.append(np.array([base]))
        vs.append(np.array([(base + cave_size) % n]))
    g = from_edges(np.concatenate(us), np.concatenate(vs), num_vertices=n)
    return g, labels


_KARATE_EDGES = [
    (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8), (0, 10),
    (0, 11), (0, 12), (0, 13), (0, 17), (0, 19), (0, 21), (0, 31), (1, 2),
    (1, 3), (1, 7), (1, 13), (1, 17), (1, 19), (1, 21), (1, 30), (2, 3),
    (2, 7), (2, 8), (2, 9), (2, 13), (2, 27), (2, 28), (2, 32), (3, 7),
    (3, 12), (3, 13), (4, 6), (4, 10), (5, 6), (5, 10), (5, 16), (6, 16),
    (8, 30), (8, 32), (8, 33), (9, 33), (13, 33), (14, 32), (14, 33),
    (15, 32), (15, 33), (18, 32), (18, 33), (19, 33), (20, 32), (20, 33),
    (22, 32), (22, 33), (23, 25), (23, 27), (23, 29), (23, 32), (23, 33),
    (24, 25), (24, 27), (24, 31), (25, 31), (26, 29), (26, 33), (27, 33),
    (28, 31), (28, 33), (29, 32), (29, 33), (30, 32), (30, 33), (31, 32),
    (31, 33), (32, 33),
]


def karate_club() -> CSRGraph:
    """Zachary's karate club (34 vertices, 78 edges) — the classic test."""
    edges = np.asarray(_KARATE_EDGES, dtype=np.int64)
    return from_edges(edges[:, 0], edges[:, 1], num_vertices=34)


def with_random_weights(
    graph: CSRGraph,
    rng: np.random.Generator | int | None = 0,
    *,
    low: float = 0.5,
    high: float = 2.0,
) -> CSRGraph:
    """Replace all edge weights with uniform random draws in ``[low, high)``."""
    rng = as_rng(rng)
    u, v, _ = graph.edge_list(unique=True)
    w = rng.uniform(low, high, size=u.size)
    return from_edges(u, v, w, num_vertices=graph.num_vertices)
