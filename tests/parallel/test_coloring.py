"""Tests for greedy coloring."""

import numpy as np
from hypothesis import given, settings

from repro.graph.generators import complete, karate_club, ring, star
from repro.parallel.coloring import color_classes, greedy_coloring

from ..conftest import csr_graphs


def _is_proper(graph, colors):
    for v in range(graph.num_vertices):
        for nb in graph.neighbors(v):
            if nb != v and colors[nb] == colors[v]:
                return False
    return True


def test_ring_two_or_three_colors():
    g = ring(10)
    colors = greedy_coloring(g)
    assert _is_proper(g, colors)
    assert colors.max() <= 2


def test_complete_needs_n_colors():
    g = complete(5)
    colors = greedy_coloring(g)
    assert _is_proper(g, colors)
    assert np.unique(colors).size == 5


def test_star_two_colors():
    g = star(10)
    colors = greedy_coloring(g)
    assert _is_proper(g, colors)
    assert colors.max() == 1


def test_karate_proper():
    g = karate_club()
    colors = greedy_coloring(g)
    assert _is_proper(g, colors)
    assert colors.max() + 1 <= g.degrees.max() + 1


def test_color_classes_partition():
    g = karate_club()
    classes = color_classes(greedy_coloring(g))
    all_vertices = np.concatenate(classes)
    assert sorted(all_vertices.tolist()) == list(range(34))


def test_color_classes_are_independent_sets():
    g = karate_club()
    colors = greedy_coloring(g)
    for cls in color_classes(colors):
        members = set(cls.tolist())
        for v in cls:
            for nb in g.neighbors(v):
                assert nb == v or int(nb) not in members


def test_color_classes_empty():
    assert color_classes(np.array([], dtype=np.int64)) == []


@settings(max_examples=40, deadline=None)
@given(csr_graphs(max_vertices=20, max_edges=50))
def test_coloring_always_proper(g):
    colors = greedy_coloring(g)
    assert _is_proper(g, colors)
    if g.num_vertices:
        assert colors.min() >= 0
