"""Prime-number utilities for hash-table sizing.

The paper sizes each vertex's hash table as "the smallest value larger than
1.5 times the degree" drawn "from a list of precomputed prime numbers".
This module provides that list (grown on demand with a segmented sieve) and
the sizing rule.
"""

from __future__ import annotations

import numpy as np

__all__ = ["primes_up_to", "next_prime_above", "hash_table_size"]

_PRIME_CACHE: np.ndarray = np.array([2, 3, 5, 7, 11, 13], dtype=np.int64)


def primes_up_to(limit: int) -> np.ndarray:
    """All primes ``<= limit`` (cached, sieve of Eratosthenes)."""
    global _PRIME_CACHE
    if limit <= int(_PRIME_CACHE[-1]):
        return _PRIME_CACHE[: np.searchsorted(_PRIME_CACHE, limit, side="right")]
    sieve = np.ones(limit + 1, dtype=bool)
    sieve[:2] = False
    for p in range(2, int(limit**0.5) + 1):
        if sieve[p]:
            sieve[p * p :: p] = False
    _PRIME_CACHE = np.flatnonzero(sieve).astype(np.int64)
    return _PRIME_CACHE


def next_prime_above(value: int) -> int:
    """Smallest prime strictly greater than ``value``."""
    if value < 2:
        return 2
    limit = max(2 * value + 10, int(_PRIME_CACHE[-1]))
    primes = primes_up_to(limit)
    idx = np.searchsorted(primes, value, side="right")
    while idx >= primes.size:  # pragma: no cover - cache always large enough
        limit *= 2
        primes = primes_up_to(limit)
        idx = np.searchsorted(primes, value, side="right")
    return int(primes[idx])


def hash_table_size(degree: int) -> int:
    """Paper's sizing rule: smallest prime > 1.5 * degree (at least 3)."""
    return next_prime_above(max(int(1.5 * degree), 2))
