"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``      print a graph file's structural statistics
``detect``    run community detection and write/print the membership
``stream``    incremental detection over batches of edge updates
``generate``  synthesise a graph from one of the generator families
``suite``     list or materialise the Table-1 analog benchmark suite
``serve``     multi-tenant detection-as-a-service HTTP server
``top``       live dashboard over a running serve instance

Trace analytics (:mod:`repro.obs`)
----------------------------------
``trace-summary``  stage table + critical-path flame view of a trace file
``trace-diff``     diff two traces by span path; exit 1 on regression
``trajectory``     query the append-only perf-trajectory store
``bench-gate``     run the small suite and gate it against the baseline

Examples::

    python -m repro generate social -n 5000 -m 8 -o social.txt
    python -m repro info social.txt
    python -m repro detect social.txt --solver gpu -o communities.txt
    python -m repro detect social.txt --engine sharded --workers 4
    python -m repro stream social.txt --updates batches.txt -o final.txt
    python -m repro stream social.txt --synthetic 200 --batches 5
    python -m repro suite --name road_usa -o road.txt
    python -m repro serve --port 8077 --max-sessions 8
    python -m repro detect social.txt --trace run.json
    python -m repro trace-summary run.json
    python -m repro trace-diff baseline.json candidate.json --threshold 1.5
    python -m repro trajectory --graph uk-2002 --metric optimization_seconds --last 10
    python -m repro bench-gate --baseline benchmarks/results/BENCH_trajectory.json
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Community Detection on the GPU (IPDPS 2017) — reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="print graph statistics")
    info.add_argument("path", help="edge list / METIS / MatrixMarket file")

    detect = sub.add_parser("detect", help="detect communities")
    detect.add_argument("path", help="input graph file")
    detect.add_argument(
        "--solver",
        choices=["gpu", "seq", "plm", "lu", "coarse", "sort", "multigpu"],
        default="gpu",
        help="algorithm to run (default: the paper's GPU algorithm)",
    )
    detect.add_argument(
        "--algo",
        choices=["louvain", "lpa", "leiden"],
        default="louvain",
        help="gpu solver algorithm: louvain (default), lpa (weighted "
             "label propagation), or leiden (louvain + well-connectedness "
             "refinement)",
    )
    detect.add_argument(
        "--engine",
        choices=["vectorized", "simulated", "sharded"],
        default="vectorized",
        help="gpu solver execution engine (sharded = multi-process "
             "workers over shared-memory CSR)",
    )
    detect.add_argument("--workers", type=int, default=2,
                        help="worker process count for --engine sharded")
    detect.add_argument("--shard-partition", choices=["bfs", "hash"],
                        default="bfs",
                        help="vertex-to-shard assignment (sharded engine)")
    detect.add_argument("--shard-mode", choices=["sync", "color"],
                        default="sync",
                        help="sharded protocol: sync = lockstep bucket "
                             "scoring, bit-identical to vectorized; color = "
                             "async interiors + colored boundary rounds")
    detect.add_argument("--shard-pool", choices=["fork", "spawn", "inline"],
                        default="fork",
                        help="worker pool kind for --engine sharded")
    detect.add_argument("--threshold-bin", type=float, default=1e-2)
    detect.add_argument("--threshold-final", type=float, default=1e-6)
    detect.add_argument("--bin-vertex-limit", type=int, default=100_000)
    detect.add_argument("--resolution", type=float, default=1.0,
                        help="gamma of the generalised modularity (gpu solver)")
    detect.add_argument("--warm-start", metavar="FILE",
                        help="previous 'vertex community' file to warm-start "
                             "from (gpu solver)")
    detect.add_argument("--devices", type=int, default=4,
                        help="device count for --solver multigpu")
    detect.add_argument("-o", "--output", help="write 'vertex community' lines here")
    detect.add_argument("--levels", action="store_true",
                        help="also print the per-level hierarchy summary")
    detect.add_argument("--trace", metavar="FILE",
                        help="write a repro.trace/1 JSON run report here "
                             "(per-level spans and sweep counters)")
    detect.add_argument("--trace-summary", action="store_true",
                        help="print the human-readable trace summary table")

    stream = sub.add_parser(
        "stream", help="incremental detection over edge-update batches"
    )
    stream.add_argument("path", help="input graph file")
    source = stream.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--updates", metavar="FILE",
        help="update file: '+ u v [w]' / '- u v' lines; blank line or "
             "'--' separates batches; '#' comments",
    )
    source.add_argument(
        "--synthetic", type=int, metavar="EDGES",
        help="generate EDGES random updates per batch instead",
    )
    stream.add_argument("--batches", type=int, default=5,
                        help="number of synthetic batches (default 5)")
    stream.add_argument("--remove-fraction", type=float, default=0.2,
                        help="fraction of synthetic updates that delete "
                             "existing edges (default 0.2)")
    stream.add_argument("--seed", type=int, default=0,
                        help="rng seed for --synthetic")
    stream.add_argument(
        "--algo",
        choices=["louvain", "lpa", "leiden", "sharded"],
        default="louvain",
        help="detection algorithm for the session (leiden refines every "
             "contraction, fixing deletion-induced disconnected "
             "communities; lpa = frontier-seeded label propagation; "
             "sharded = multi-process Louvain for full-pipeline batches)",
    )
    stream.add_argument("--screening", choices=["local", "exact"], default="local",
                        help="delta-screening mode (exact = bit-parity with a "
                             "full warm-started run)")
    stream.add_argument("--frontier-scope", choices=["community", "endpoints"],
                        default="community",
                        help="seed rule: full community screen, or endpoints "
                             "only (for graphs with few large communities)")
    stream.add_argument("--full-rerun-interval", type=int, default=0,
                        help="run the exact full pipeline every K batches and "
                             "report NMI/Q drift (0 = never)")
    stream.add_argument("--frontier-limit", type=float, default=0.5,
                        help="frontier fraction above which a batch falls back "
                             "to the full pipeline")
    stream.add_argument("--threshold-bin", type=float, default=1e-2)
    stream.add_argument("--threshold-final", type=float, default=1e-6)
    stream.add_argument("--bin-vertex-limit", type=int, default=100_000)
    stream.add_argument("--resolution", type=float, default=1.0)
    stream.add_argument("--warm-start", metavar="FILE",
                        help="previous 'vertex community' file for the "
                             "initial clustering")
    stream.add_argument("-o", "--output",
                        help="write the final 'vertex community' lines here")
    stream.add_argument("--trace", metavar="FILE",
                        help="write a repro.trace/1 JSON trace here (one run "
                             "report per batch plus the initial clustering)")
    stream.add_argument("--trace-summary", action="store_true",
                        help="print the per-batch trace summary tables")

    generate = sub.add_parser("generate", help="synthesise a graph")
    generate.add_argument(
        "family",
        choices=[
            "social", "rmat", "ba", "lfr", "caveman", "road", "rgg",
            "delaunay", "stencil", "kkt", "karate",
        ],
    )
    generate.add_argument("-n", type=int, default=1000, help="vertex count / side")
    generate.add_argument("-m", type=int, default=8, help="edges per vertex (social/ba)")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("-o", "--output", required=True)

    suite = sub.add_parser("suite", help="the Table-1 analog suite")
    group = suite.add_mutually_exclusive_group(required=True)
    group.add_argument("--list", action="store_true", help="list all 55 entries")
    group.add_argument("--name", help="materialise one entry's analog graph")
    suite.add_argument("--scale", type=float, default=1.0)
    suite.add_argument("-o", "--output", help="output path (with --name)")

    serve = sub.add_parser(
        "serve", help="multi-tenant detection-as-a-service HTTP server"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8077,
                       help="bind port; 0 picks an ephemeral port (default 8077)")
    serve.add_argument("--max-sessions", type=int, default=8,
                       help="resident-session LRU cap; 0 disables (default 8)")
    serve.add_argument("--max-bytes", type=int, default=None,
                       help="resident-memory budget in bytes (default: none)")
    serve.add_argument("--snapshot-dir", default="sessions",
                       help="directory for session snapshots (default ./sessions)")
    serve.add_argument("--no-coalesce", action="store_true",
                       help="apply every batch request individually instead of "
                            "folding queued bursts into one apply")
    serve.add_argument("--no-trace", action="store_true",
                       help="do not attach tracers (disables /report retrieval)")
    serve.add_argument("--no-metrics", action="store_true",
                       help="disable the metrics registry and GET /v1/metrics")
    serve.add_argument("--slow-request-ms", type=float, default=1000.0,
                       help="log a warning for requests slower than this "
                            "(default 1000 ms)")
    serve.add_argument("--log-level", default="info",
                       choices=("debug", "info", "warning", "error", "off"),
                       help="structured JSON log level on stderr (default info)")
    serve.add_argument("--no-flight", action="store_true",
                       help="disable the flight recorder (GET /v1/debug/flight, "
                            "crash journals, debug bundles)")
    serve.add_argument("--flight-bytes", type=int, default=1 << 20,
                       help="flight-recorder ring budget in bytes "
                            "(default 1 MiB)")
    serve.add_argument("--flight-dir", default=None,
                       help="directory for crash-surviving flight journals "
                            "(default <snapshot-dir>/flight; 'none' disables "
                            "journaling, keeping the in-memory ring only)")
    serve.add_argument("--stall-seconds", type=float, default=0.0,
                       help="watchdog: write a debug bundle when one apply "
                            "blocks the session worker longer than this "
                            "(0 = off)")
    serve.add_argument("--exemplar-ms", type=float, default=50.0,
                       help="attach trace-id exemplars to latency histogram "
                            "observations at or above this many milliseconds "
                            "(0 = every observation)")

    bundle = sub.add_parser(
        "debug-bundle",
        help="collect a debugging tarball (flight snapshot, metrics, stats, "
             "environment, bench-trajectory tail) from a live server or from "
             "crash journals",
    )
    bundle.add_argument("--host", default="127.0.0.1",
                        help="server address (default 127.0.0.1)")
    bundle.add_argument("--port", type=int, default=8077,
                        help="server port; pass 0 to skip the live server and "
                             "read --flight-dir journals only (default 8077)")
    bundle.add_argument("--flight-dir", default=None,
                        help="flight-journal directory to fall back to when "
                             "the server is unreachable (e.g. after a crash)")
    bundle.add_argument("--trajectory",
                        default="benchmarks/results/BENCH_trajectory.json",
                        help="bench-trajectory store whose tail to include")
    bundle.add_argument("--timeout", type=float, default=5.0,
                        help="live-server request timeout (default 5 s)")
    bundle.add_argument("-o", "--out", default=None,
                        help="output tarball path "
                             "(default debug-bundle-<pid>.tar.gz)")

    top = sub.add_parser(
        "top", help="live dashboard over a running repro.serve server"
    )
    top.add_argument("--host", default="127.0.0.1",
                     help="server address (default 127.0.0.1)")
    top.add_argument("--port", type=int, default=8077,
                     help="server port (default 8077)")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between polls (default 2)")
    top.add_argument("--count", type=int, default=0,
                     help="stop after N frames (default: until interrupted)")
    top.add_argument("--once", action="store_true",
                     help="print one frame without clearing the screen")
    top.add_argument("--json", action="store_true",
                     help="dump the raw /v1/stats payload once and exit")

    summary = sub.add_parser(
        "trace-summary", help="analyze a repro.trace/1 JSON file"
    )
    summary.add_argument("path", help="trace file (detect/stream --trace or "
                                      "a bench *.trace.json container)")
    summary.add_argument("--depth", type=int, default=3,
                         help="flame-view depth (default 3: run/level/stage)")
    summary.add_argument("--json", action="store_true",
                         help="print the per-span-path aggregates as JSON")

    tdiff = sub.add_parser(
        "trace-diff", help="diff two traces by span path (exit 1 on regression)"
    )
    tdiff.add_argument("baseline", help="baseline trace file")
    tdiff.add_argument("candidate", help="candidate trace file")
    tdiff.add_argument("--threshold", type=float, default=1.5,
                       help="allowed per-path slowdown ratio (default 1.5)")
    tdiff.add_argument("--min-seconds", type=float, default=1e-4,
                       help="absolute slowdown floor below which a path "
                            "never regresses (default 1e-4)")
    tdiff.add_argument("--all", action="store_true",
                       help="show paths within threshold too")
    tdiff.add_argument("--json", action="store_true",
                       help="print the machine-readable verdict document")

    traj = sub.add_parser(
        "trajectory", help="query the append-only perf-trajectory store"
    )
    traj.add_argument("--file", default="benchmarks/results/BENCH_trajectory.json",
                      help="trajectory store path (default: the committed "
                           "benchmarks/results/BENCH_trajectory.json)")
    traj.add_argument("--keys", action="store_true",
                      help="list distinct (graph, engine, fingerprint) keys")
    traj.add_argument("--graph", help="filter by graph name")
    traj.add_argument("--engine", help="filter by engine")
    traj.add_argument("--fingerprint", help="filter by config fingerprint")
    traj.add_argument("--metric", default="optimization_seconds",
                      help="metric to chart (default optimization_seconds)")
    traj.add_argument("--last", type=int, default=None,
                      help="only the most recent N matching entries")

    gate = sub.add_parser(
        "bench-gate", help="run the small suite and gate against the baseline"
    )
    gate.add_argument("--baseline",
                      default="benchmarks/results/BENCH_trajectory.json",
                      help="trajectory store holding the baseline history")
    gate.add_argument("--current", metavar="FILE",
                      help="gate a saved trace container instead of "
                           "running the suite (reports need meta['graph'])")
    gate.add_argument("--threshold", type=float, default=2.0,
                      help="allowed slowdown ratio vs the baseline window "
                           "minimum (default 2.0)")
    gate.add_argument("--window", type=int, default=5,
                      help="baseline entries per key to consider (default 5)")
    gate.add_argument("--scale", type=float, default=0.25,
                      help="suite scale for the gate runs (default 0.25)")
    gate.add_argument("--engines", default="vectorized,simulated",
                      help="comma-separated engines (default both)")
    gate.add_argument("--repeats", type=int, default=2,
                      help="runs per key, keeping the fastest (default 2)")
    gate.add_argument("--append", action="store_true",
                      help="append the current entries to the baseline "
                           "store after the check")
    gate.add_argument("--json", action="store_true",
                      help="print the machine-readable verdict document")

    return parser


def _cmd_info(args: argparse.Namespace) -> int:
    from .graph.io import load_graph

    graph = load_graph(args.path)
    degrees = graph.degrees
    print(f"vertices:        {graph.num_vertices}")
    print(f"edges:           {graph.num_edges}")
    print(f"total weight 2m: {graph.total_weight:g}")
    if degrees.size:
        print(f"degrees:         min {degrees.min()}  "
              f"median {int(np.median(degrees))}  max {degrees.max()}")
        print(f"avg degree:      {2 * graph.num_edges / graph.num_vertices:.2f}")
    loops = graph.self_loop_weights()
    print(f"self loops:      {int(np.count_nonzero(loops))}")
    return 0


def _read_membership(path: str, num_vertices: int) -> np.ndarray:
    """Read and validate a 'vertex community' file (the detect -o format).

    The engines require one label per vertex with labels inside
    ``[0, num_vertices)``; a stale or foreign warm-start file easily
    violates that (graph shrank, labels are external community ids).
    Validation happens here at the boundary: a malformed line or a
    vertex id outside the graph raises a :class:`ValueError` naming the
    file and line, and labels outside ``[0, num_vertices)`` are
    renumbered densely (preserving the partition) instead of failing
    deep inside the engine.  Valid in-range labels pass through
    untouched, so existing warm-start files keep their exact runs.

    Unlisted vertices default to singleton communities of their own id.
    """
    membership = np.arange(num_vertices, dtype=np.int64)
    with open(path) as handle:
        for lineno, raw in enumerate(handle, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(
                    f"{path}:{lineno}: expected 'vertex community', got {raw!r}"
                )
            try:
                v = int(parts[0])
                c = int(parts[1])
            except ValueError:
                raise ValueError(
                    f"{path}:{lineno}: expected integer 'vertex community', "
                    f"got {raw!r}"
                ) from None
            if not 0 <= v < num_vertices:
                raise ValueError(
                    f"{path}:{lineno}: vertex {v} out of range for a graph "
                    f"with {num_vertices} vertices"
                )
            membership[v] = c
    if membership.size and (
        membership.min() < 0 or membership.max() >= num_vertices
    ):
        # Out-of-range labels: renumber densely (first-seen-by-value
        # order, deterministic) — the partition is preserved and every
        # label lands in [0, num_vertices) as the engines require.
        _, membership = np.unique(membership, return_inverse=True)
        membership = membership.astype(np.int64)
    return membership


def _cmd_detect(args: argparse.Namespace) -> int:
    from .graph.io import load_graph

    graph = load_graph(args.path)
    tracing = bool(args.trace or args.trace_summary)
    tracer = None
    if tracing:
        from .trace import Tracer

        tracer = Tracer()
    start = time.perf_counter()
    if args.solver == "gpu":
        initial = None
        if args.warm_start:
            try:
                initial = _read_membership(args.warm_start, graph.num_vertices)
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        if args.engine == "sharded":
            if args.algo != "louvain":
                print("error: --engine sharded supports --algo louvain only",
                      file=sys.stderr)
                return 2
            from .shard import ShardConfig, sharded_louvain

            result = sharded_louvain(
                graph,
                shard=ShardConfig(
                    workers=args.workers,
                    partition=args.shard_partition,
                    mode=args.shard_mode,
                    pool=args.shard_pool,
                ),
                threshold_bin=args.threshold_bin,
                threshold_final=args.threshold_final,
                bin_vertex_limit=args.bin_vertex_limit,
                resolution=args.resolution,
                initial_communities=initial,
                tracer=tracer,
            )
        else:
            from .core.config import GPULouvainConfig
            from .core.engine import get_engine

            result = get_engine(args.algo).detect(
                graph,
                GPULouvainConfig(
                    engine=args.engine,
                    threshold_bin=args.threshold_bin,
                    threshold_final=args.threshold_final,
                    bin_vertex_limit=args.bin_vertex_limit,
                    resolution=args.resolution,
                ),
                initial_communities=initial,
                tracer=tracer,
            )
    else:
        # The reference solvers run behind the same Engine protocol.
        from .core.config import GPULouvainConfig
        from .core.engine import get_engine

        options = {"devices": args.devices} if args.solver == "multigpu" else {}
        result = get_engine(args.solver, **options).detect(
            graph,
            GPULouvainConfig(
                threshold_bin=args.threshold_bin,
                threshold_final=args.threshold_final,
                bin_vertex_limit=args.bin_vertex_limit,
                resolution=args.resolution,
            ),
        )
    seconds = time.perf_counter() - start

    print(f"solver:      {args.solver}")
    if args.solver == "gpu" and args.algo != "louvain":
        print(f"algo:        {args.algo}")
    print(f"modularity:  {result.modularity:.6f}")
    print(f"communities: {result.num_communities}")
    print(f"levels:      {result.num_levels}")
    print(f"seconds:     {seconds:.3f}")
    if args.levels:
        for k, ((n, e), q) in enumerate(
            zip(result.level_sizes, result.modularity_per_level)
        ):
            print(f"  level {k}: n={n} E={e} Q={q:.4f}")
    if tracing:
        # Non-gpu solvers have no live tracer; report_from_result falls
        # back to their RunTimings, so every solver emits the same shape.
        from .trace import report_from_result

        extra = (
            {"algo": args.algo}
            if args.solver == "gpu" and args.algo != "louvain"
            else {}
        )
        report = report_from_result(
            result,
            tracer=tracer,
            solver=args.solver,
            engine=args.engine if args.solver == "gpu" else args.solver,
            graph=str(args.path),
            **extra,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            seconds=round(seconds, 6),
        )
        if args.trace:
            with open(args.trace, "w") as handle:
                handle.write(report.to_json() + "\n")
            print(f"trace written to {args.trace}")
        if args.trace_summary:
            print(report.summary())
    if args.output:
        with open(args.output, "w") as handle:
            handle.write("# vertex community\n")
            for v, c in enumerate(result.membership):
                handle.write(f"{v} {c}\n")
        print(f"membership written to {args.output}")
    return 0


def _read_update_batches(
    path: str,
) -> list[tuple[tuple | None, tuple | None]]:
    """Parse an update file into ``(add, remove)`` batch tuples.

    Lines are ``+ u v [w]`` (insert; default weight 1) or ``- u v``
    (delete).  A blank line or a ``--`` line closes the current batch;
    ``#`` starts a comment.
    """
    batches: list[tuple[tuple | None, tuple | None]] = []
    add_u: list[int] = []
    add_v: list[int] = []
    add_w: list[float] = []
    rem_u: list[int] = []
    rem_v: list[int] = []

    def flush() -> None:
        nonlocal add_u, add_v, add_w, rem_u, rem_v
        if not add_u and not rem_u:
            return
        add = (
            (np.array(add_u), np.array(add_v), np.array(add_w))
            if add_u
            else None
        )
        remove = (np.array(rem_u), np.array(rem_v)) if rem_u else None
        batches.append((add, remove))
        add_u, add_v, add_w, rem_u, rem_v = [], [], [], [], []

    with open(path) as handle:
        for lineno, raw in enumerate(handle, 1):
            line = raw.split("#", 1)[0].strip()
            if not line or line == "--":
                flush()
                continue
            parts = line.split()
            op = parts[0]
            if op == "+" and len(parts) in (3, 4):
                add_u.append(int(parts[1]))
                add_v.append(int(parts[2]))
                add_w.append(float(parts[3]) if len(parts) == 4 else 1.0)
            elif op == "-" and len(parts) == 3:
                rem_u.append(int(parts[1]))
                rem_v.append(int(parts[2]))
            else:
                raise ValueError(
                    f"{path}:{lineno}: expected '+ u v [w]' or '- u v', got {raw!r}"
                )
    flush()
    return batches


def _synthetic_batches(
    session, num_batches: int, edges_per_batch: int, remove_fraction: float, seed: int
):
    """Yield random ``(add, remove)`` batches against the session's graph."""
    rng = np.random.default_rng(seed)
    for _ in range(num_batches):
        graph = session.graph
        n = graph.num_vertices
        num_remove = int(edges_per_batch * remove_fraction)
        num_add = edges_per_batch - num_remove
        add = None
        if num_add:
            au = rng.integers(0, n, num_add)
            av = (au + rng.integers(1, n, num_add)) % n
            add = (au, av, None)
        remove = None
        if num_remove:
            eu, ev, _ = graph.edge_list()
            not_loop = eu != ev
            eu, ev = eu[not_loop], ev[not_loop]
            if eu.size:
                pick = rng.choice(eu.size, size=min(num_remove, eu.size), replace=False)
                remove = (eu[pick], ev[pick])
        yield add, remove


def _cmd_stream(args: argparse.Namespace) -> int:
    from .graph.io import load_graph
    from .stream import StreamSession

    graph = load_graph(args.path)
    tracing = bool(args.trace or args.trace_summary)
    tracer = None
    if tracing:
        from .trace import Tracer

        tracer = Tracer()
    initial = None
    if args.warm_start:
        try:
            initial = _read_membership(args.warm_start, graph.num_vertices)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    session = StreamSession(
        graph,
        tracer=tracer,
        algo=args.algo,
        screening=args.screening,
        frontier_scope=args.frontier_scope,
        full_rerun_interval=args.full_rerun_interval,
        frontier_fraction_limit=args.frontier_limit,
        threshold_bin=args.threshold_bin,
        threshold_final=args.threshold_final,
        bin_vertex_limit=args.bin_vertex_limit,
        resolution=args.resolution,
        initial_membership=initial,
    )
    if args.algo != "louvain":
        print(f"algo: {args.algo}")
    print(f"initial: n={graph.num_vertices} E={graph.num_edges} "
          f"Q={session.modularity:.6f} "
          f"communities={session.result.num_communities}")

    if args.updates:
        batches = _read_update_batches(args.updates)
    else:
        batches = _synthetic_batches(
            session, args.batches, args.synthetic, args.remove_fraction, args.seed
        )

    header = (f"{'batch':>5s} {'mode':12s} {'+e':>6s} {'-e':>6s} "
              f"{'frontier':>9s} {'front%':>7s} {'sweeps':>6s} "
              f"{'Q':>9s} {'dQ_full':>9s} {'NMI':>6s} {'ms':>8s}")
    print(header)
    for add, remove in batches:
        result = session.apply(add=add, remove=remove)
        sweeps = sum(result.sweeps_per_level)
        drift = ("-" if result.q_full is None
                 else f"{result.modularity - result.q_full:+.2e}")
        nmi = "-" if result.nmi_vs_full is None else f"{result.nmi_vs_full:.3f}"
        print(f"{result.batch:5d} {result.mode:12s} {result.edges_added:6d} "
              f"{result.edges_removed:6d} {result.frontier_size:9d} "
              f"{result.frontier_fraction:7.2%} {sweeps:6d} "
              f"{result.modularity:9.6f} {drift:>9s} {nmi:>6s} "
              f"{result.seconds * 1e3:8.1f}")

    print(f"final: E={session.graph.num_edges} Q={session.modularity:.6f} "
          f"communities={session.result.num_communities}")
    if tracing:
        import json as _json

        from .trace import TRACE_SCHEMA

        if args.trace:
            payload = {
                "schema": TRACE_SCHEMA,
                "meta": {
                    "kind": "stream",
                    "graph": str(args.path),
                    "screening": args.screening,
                    "batches": session.batches,
                    **({"algo": args.algo} if args.algo != "louvain" else {}),
                },
                "initial": (
                    session.initial_report.to_dict()
                    if session.initial_report is not None
                    else None
                ),
                "batches": [report.to_dict() for report in session.reports],
            }
            with open(args.trace, "w") as handle:
                handle.write(_json.dumps(payload, indent=2) + "\n")
            print(f"trace written to {args.trace}")
        if args.trace_summary:
            from .obs import format_stream_aggregate, stream_aggregate

            for report in session.reports:
                print(f"--- batch {report.result.get('batch')} "
                      f"({report.result.get('mode')}) ---")
                print(report.summary())
            print(format_stream_aggregate(stream_aggregate(session.reports)))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write("# vertex community\n")
            for v, c in enumerate(session.membership):
                handle.write(f"{v} {c}\n")
        print(f"membership written to {args.output}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from .graph import generators as gen
    from .graph.io import write_edge_list

    n, m, seed = args.n, args.m, args.seed
    if args.family == "social":
        graph = gen.social_network(n, m, rng=seed)
    elif args.family == "rmat":
        scale = max(4, int(np.ceil(np.log2(max(n, 16)))))
        graph = gen.rmat(scale, m, rng=seed)
    elif args.family == "ba":
        graph = gen.barabasi_albert(n, m, rng=seed)
    elif args.family == "lfr":
        graph, _ = gen.lfr_like(n, rng=seed, avg_degree=max(m, 4))
    elif args.family == "caveman":
        graph, _ = gen.caveman(max(n // max(m, 2), 2), max(m, 2))
    elif args.family == "road":
        side = max(4, int(np.sqrt(n)))
        graph = gen.road_grid(side, side, rng=seed)
    elif args.family == "rgg":
        radius = float(np.sqrt(max(m, 4) / (np.pi * n)))
        graph = gen.random_geometric(n, radius, rng=seed)
    elif args.family == "delaunay":
        graph = gen.delaunay_graph(n, rng=seed)
    elif args.family == "stencil":
        side = max(3, round(n ** (1 / 3)))
        graph = gen.stencil3d(side, side, side)
    elif args.family == "kkt":
        side = max(3, round((n // 2) ** (1 / 3)))
        graph = gen.kkt_like(side, side, side, rng=seed)
    else:  # karate
        graph = gen.karate_club()
    write_edge_list(graph, args.output)
    print(f"{args.family}: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges -> {args.output}")
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    from .bench.suite import SUITE, load_suite_graph
    from .graph.io import write_edge_list

    if args.list:
        print(f"{'name':28s} {'family':13s} {'paper V':>12s} {'paper E':>13s} "
              f"{'seq s':>8s} {'gpu s':>7s}")
        for entry in SUITE:
            print(f"{entry.name:28s} {entry.family:13s} "
                  f"{entry.paper_vertices:12,d} {entry.paper_edges:13,d} "
                  f"{entry.paper_seq_seconds:8.2f} {entry.paper_gpu_seconds:7.2f}")
        return 0
    graph = load_suite_graph(args.name, args.scale)
    print(f"{args.name}: analog with {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges")
    if args.output:
        write_edge_list(graph, args.output)
        print(f"written to {args.output}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import os
    import signal
    import traceback
    from pathlib import Path

    from .obs.flight import build_debug_bundle, get_flight_recorder
    from .obs.logs import StructuredLogger
    from .serve import ReproServer, ServeConfig, SessionManager

    if args.flight_dir == "none":
        flight_dir = None
    elif args.flight_dir is not None:
        flight_dir = args.flight_dir
    else:
        flight_dir = str(Path(args.snapshot_dir) / "flight")
    manager = SessionManager(
        ServeConfig(
            max_sessions=args.max_sessions,
            max_bytes=args.max_bytes,
            snapshot_dir=args.snapshot_dir,
            trace=not args.no_trace,
            coalesce=not args.no_coalesce,
            metrics=not args.no_metrics,
            slow_request_seconds=args.slow_request_ms / 1000.0,
            flight=not args.no_flight,
            flight_bytes=args.flight_bytes,
            flight_dir=None if args.no_flight else flight_dir,
            exemplar_seconds=args.exemplar_ms / 1000.0,
            stall_seconds=args.stall_seconds,
        )
    )
    logger = (
        None
        if args.log_level == "off"
        else StructuredLogger("repro.serve", stream=sys.stderr,
                              level=args.log_level)
    )
    server = ReproServer(
        manager, host=args.host, port=args.port,
        coalesce=not args.no_coalesce, logger=logger,
    )
    signal.signal(signal.SIGTERM, lambda *_: server.request_shutdown())

    if not args.no_flight:
        def dump_flight(*_sig) -> None:
            # SIGUSR2: dump the live ring next to the journals (or the
            # snapshot dir when journaling is off) without stopping.
            target = Path(flight_dir or args.snapshot_dir)
            target.mkdir(parents=True, exist_ok=True)
            out = target / f"flight-dump-{os.getpid()}.json"
            get_flight_recorder().dump(out)
            print(f"flight snapshot written to {out}", flush=True)

        signal.signal(signal.SIGUSR2, dump_flight)

        previous_hook = sys.excepthook

        def crash_bundle(exc_type, exc, tb) -> None:
            # Unhandled crash: best-effort bundle from in-process state
            # before the traceback prints (port=None — the server loop
            # is already dead).
            try:
                target = Path(flight_dir or args.snapshot_dir)
                target.mkdir(parents=True, exist_ok=True)
                out = target / f"bundle-crash-{os.getpid()}.tar.gz"
                build_debug_bundle(
                    out, port=None, flight_dir=flight_dir,
                    reason=f"crash: {exc_type.__name__}: {exc}",
                )
                print(f"crash debug bundle written to {out}", file=sys.stderr,
                      flush=True)
            except Exception:  # noqa: BLE001 - never mask the real crash
                traceback.print_exc()
            previous_hook(exc_type, exc, tb)

        sys.excepthook = crash_bundle

    def ready(srv: ReproServer) -> None:
        print(f"repro.serve listening on http://{srv.host}:{srv.port}", flush=True)
        print(f"sessions: max {args.max_sessions or 'unbounded'} resident, "
              f"snapshots in {args.snapshot_dir}/, "
              f"coalescing {'off' if args.no_coalesce else 'on'}", flush=True)

    server.run(ready=ready)
    print("repro.serve stopped", flush=True)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from .serve.top import run_top

    return run_top(
        host=args.host,
        port=args.port,
        interval=args.interval,
        count=args.count,
        once=args.once,
        as_json=args.json,
    )


def _cmd_trace_summary(args: argparse.Namespace) -> int:
    from .obs import (
        critical_path,
        flatten_reports,
        format_stream_aggregate,
        load_trace,
        stage_table,
        stream_aggregate,
    )

    reports = load_trace(args.path)
    if not reports:
        print(f"{args.path}: no reports in trace")
        return 1
    if args.json:
        import json as _json

        aggregates = flatten_reports(reports)
        print(_json.dumps([a.to_dict() for a in aggregates.values()], indent=2))
        return 0
    for report in reports:
        if len(reports) > 1:
            meta = report.meta
            label = "  ".join(
                f"{key}={meta[key]}"
                for key in ("kind", "graph", "engine", "solver", "batch")
                if key in meta
            )
            print(f"--- {label or 'report'} ---")
        print(stage_table(report))
        print()
        print(critical_path(report, max_depth=args.depth))
        if len(reports) > 1:
            print()
    aggregate = stream_aggregate(reports)
    if aggregate["batches"]:
        print(format_stream_aggregate(aggregate))
    return 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    from .obs import diff_reports, load_trace

    diff = diff_reports(
        load_trace(args.baseline),
        load_trace(args.candidate),
        threshold=args.threshold,
        min_seconds=args.min_seconds,
    )
    if args.json:
        import json as _json

        print(_json.dumps(diff.to_dict(), indent=2))
    else:
        print(diff.format(show_all=args.all))
    return 0 if diff.ok else 1


def _cmd_trajectory(args: argparse.Namespace) -> int:
    import datetime

    from .bench.reporting import format_table
    from .obs import TrajectoryStore

    store = TrajectoryStore(args.file)
    if not store.path.exists():
        print(f"{args.file}: no trajectory store")
        return 1
    if args.keys:
        for graph, engine, fp in store.keys():
            print(f"{graph} [{engine}] {fp}")
        return 0
    rows = store.series(
        graph=args.graph,
        engine=args.engine,
        fingerprint=args.fingerprint,
        metric=args.metric,
        last=args.last,
    )
    if not rows:
        print("no trajectory entries match the filter")
        return 1
    in_seconds = args.metric.endswith("seconds")
    header = f"{args.metric} (ms)" if in_seconds else args.metric
    table_rows = []
    prev: float | None = None
    for entry, value in rows:
        when = datetime.datetime.fromtimestamp(entry.timestamp)
        change = "-" if not prev else f"{value / prev:.2f}x"
        table_rows.append(
            (
                when.strftime("%Y-%m-%d %H:%M"),
                entry.commit,
                entry.graph,
                entry.engine,
                f"{value * 1e3:.2f}" if in_seconds else f"{value:g}",
                change,
            )
        )
        prev = value
    print(format_table(
        ("when", "commit", "graph", "engine", header, "vs prev"), table_rows
    ))
    return 0


def _cmd_bench_gate(args: argparse.Namespace) -> int:
    from .obs import (
        TrajectoryStore,
        entry_from_report,
        evaluate_gate,
        load_trace,
        run_gate_entries,
    )

    store = TrajectoryStore(args.baseline)
    if args.current:
        current = [entry_from_report(r) for r in load_trace(args.current)]
    else:
        engines = tuple(e for e in args.engines.split(",") if e)
        current = run_gate_entries(
            engines=engines,
            scale=args.scale,
            repeats=args.repeats,
            progress=print,
        )
    result = evaluate_gate(
        current, store, threshold=args.threshold, window=args.window
    )
    if args.json:
        import json as _json

        print(_json.dumps(result.to_dict(), indent=2))
    else:
        print(result.format())
    if args.append:
        total = store.append(current)
        print(f"appended {len(current)} entries to {store.path} ({total} total)")
    return 0 if result.ok else 1


def _cmd_debug_bundle(args: argparse.Namespace) -> int:
    import json as _json
    import os

    from .obs.flight import build_debug_bundle

    out = args.out or f"debug-bundle-{os.getpid()}.tar.gz"
    manifest = build_debug_bundle(
        out,
        host=args.host,
        port=args.port or None,
        flight_dir=args.flight_dir,
        trajectory=args.trajectory,
        timeout=args.timeout,
        reason="cli",
    )
    print(f"debug bundle written to {out}")
    print(_json.dumps(manifest, indent=2))
    return 0 if manifest["pieces"] else 1


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info(args)
    if args.command == "detect":
        return _cmd_detect(args)
    if args.command == "stream":
        return _cmd_stream(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "suite":
        return _cmd_suite(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "debug-bundle":
        return _cmd_debug_bundle(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "trace-summary":
        return _cmd_trace_summary(args)
    if args.command == "trace-diff":
        return _cmd_trace_diff(args)
    if args.command == "trajectory":
        return _cmd_trajectory(args)
    if args.command == "bench-gate":
        return _cmd_bench_gate(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
