"""Tests for repro.graph.build."""

import numpy as np
import pytest
from hypothesis import given

from repro.graph.build import (
    empty_graph,
    ensure_connected_relabelled,
    from_directed_entries,
    from_edges,
    from_networkx,
    from_scipy,
    induced_subgraph,
    relabel,
)
from repro.graph.validation import validate

from ..conftest import csr_graphs, edge_lists


def test_from_edges_basic():
    g = from_edges([0, 1], [1, 2])
    assert g.num_vertices == 3
    assert g.num_edges == 2


def test_from_edges_symmetrizes():
    g = from_edges([0], [1])
    assert g.neighbors(1).tolist() == [0]


def test_from_edges_merges_duplicates():
    g = from_edges([0, 0, 1], [1, 1, 0], [1.0, 2.0, 4.0])
    assert g.num_edges == 1
    assert g.neighbor_weights(0).tolist() == [7.0]


def test_from_edges_merges_reverse_duplicates():
    g = from_edges([0, 1], [1, 0], [1.0, 1.0])
    assert g.num_edges == 1
    assert g.neighbor_weights(0).tolist() == [2.0]


def test_from_edges_default_weights():
    g = from_edges([0], [1])
    assert g.weights.tolist() == [1.0, 1.0]


def test_from_edges_num_vertices_override():
    g = from_edges([0], [1], num_vertices=5)
    assert g.num_vertices == 5
    assert g.degrees.tolist() == [1, 1, 0, 0, 0]


def test_from_edges_empty():
    g = from_edges([], [], num_vertices=4)
    assert g.num_vertices == 4
    assert g.num_edges == 0


def test_from_edges_rejects_negative():
    with pytest.raises(ValueError, match="non-negative"):
        from_edges([-1], [0])


def test_from_edges_rejects_too_small_n():
    with pytest.raises(ValueError, match="too small"):
        from_edges([0], [5], num_vertices=3)


def test_from_edges_rejects_mismatched():
    with pytest.raises(ValueError, match="same length"):
        from_edges([0, 1], [1])
    with pytest.raises(ValueError, match="length"):
        from_edges([0], [1], [1.0, 2.0])


def test_from_edges_self_loop():
    g = from_edges([2], [2], [3.5], num_vertices=3)
    assert g.self_loop_weight(2) == 3.5
    assert g.num_stored_edges == 1


def test_from_directed_entries_roundtrip():
    g = from_edges([0, 1, 2], [1, 2, 2], [1.0, 2.0, 3.0])
    u, v, w = g.edge_list(unique=False)
    g2 = from_directed_entries(u, v, w, g.num_vertices)
    assert g2 == g


def test_from_directed_entries_rejects_mismatch():
    with pytest.raises(ValueError, match="parallel"):
        from_directed_entries(
            np.array([0]), np.array([1, 2]), np.array([1.0]), 3
        )


def test_from_scipy():
    from scipy.sparse import csr_matrix

    mat = csr_matrix(np.array([[0.0, 2.0], [2.0, 1.0]]))
    g = from_scipy(mat)
    assert g.num_vertices == 2
    assert g.self_loop_weight(1) == 1.0
    assert g.neighbor_weights(0).tolist() == [2.0]


def test_from_scipy_rejects_rectangular():
    from scipy.sparse import csr_matrix

    with pytest.raises(ValueError, match="square"):
        from_scipy(csr_matrix(np.ones((2, 3))))


def test_from_networkx():
    nx = pytest.importorskip("networkx")
    nxg = nx.Graph()
    nxg.add_edge("a", "b", weight=2.0)
    nxg.add_edge("b", "c")
    g = from_networkx(nxg)
    assert g.num_vertices == 3
    assert g.num_edges == 2
    assert g.total_weight == pytest.approx(2 * (2.0 + 1.0))


def test_empty_graph():
    g = empty_graph(7)
    assert g.num_vertices == 7
    assert g.num_edges == 0


def test_relabel_identity(triangle):
    g = relabel(triangle, np.array([0, 1, 2]))
    assert g == triangle


def test_relabel_swap():
    g = from_edges([0], [1], [5.0], num_vertices=3)
    swapped = relabel(g, np.array([2, 1, 0]))
    assert swapped.neighbor_weights(2).tolist() == [5.0]
    assert swapped.neighbors(2).tolist() == [1]


def test_relabel_rejects_non_bijection(triangle):
    with pytest.raises(ValueError, match="bijection"):
        relabel(triangle, np.array([0, 0, 1]))
    with pytest.raises(ValueError, match="one entry"):
        relabel(triangle, np.array([0, 1]))


def test_induced_subgraph():
    g = from_edges([0, 1, 2, 0], [1, 2, 3, 3])
    sub = induced_subgraph(g, np.array([0, 1, 3]))
    # kept edges: (0,1) and (0,3)->(0,2 in new ids)
    assert sub.num_vertices == 3
    assert sub.num_edges == 2
    assert sub.neighbors(0).tolist() == [1, 2]


def test_induced_subgraph_keeps_weights():
    g = from_edges([0, 1], [1, 2], [4.0, 9.0])
    sub = induced_subgraph(g, np.array([1, 2]))
    assert sub.neighbor_weights(0).tolist() == [9.0]


def test_ensure_connected_picks_largest():
    # component {0,1,2} and component {3,4}
    g = from_edges([0, 1, 3], [1, 2, 4])
    largest = ensure_connected_relabelled(g)
    assert largest.num_vertices == 3
    assert largest.num_edges == 2


def test_ensure_connected_noop_when_connected(triangle):
    assert ensure_connected_relabelled(triangle) == triangle


@given(edge_lists(weighted=True))
def test_from_edges_always_canonical(data):
    us, vs, ws, n = data
    g = from_edges(us, vs, ws, num_vertices=n)
    validate(g)


@given(edge_lists(weighted=True))
def test_from_edges_preserves_total_weight(data):
    us, vs, ws, n = data
    g = from_edges(us, vs, ws, num_vertices=n)
    loops = sum(w for u, v, w in zip(us, vs, ws) if u == v)
    offdiag = sum(w for u, v, w in zip(us, vs, ws) if u != v)
    assert g.total_weight == pytest.approx(2 * offdiag + loops)


@given(csr_graphs(weighted=True))
def test_directed_entries_identity(g):
    u, v, w = g.edge_list(unique=False)
    assert from_directed_entries(u, v, w, g.num_vertices) == g


def test_update_edges_add():
    from repro.graph.build import update_edges

    g = from_edges([0], [1], num_vertices=4)
    g2 = update_edges(g, add=(np.array([1, 2]), np.array([2, 3]), None))
    assert g2.num_edges == 3
    assert g2.num_vertices == 4


def test_update_edges_add_sums_weights():
    from repro.graph.build import update_edges

    g = from_edges([0], [1], [2.0])
    g2 = update_edges(g, add=(np.array([0]), np.array([1]), np.array([3.0])))
    assert g2.neighbor_weights(0).tolist() == [5.0]


def test_update_edges_remove():
    from repro.graph.build import update_edges

    g = from_edges([0, 1, 2], [1, 2, 0])
    g2 = update_edges(g, remove=(np.array([1]), np.array([0])))  # any order
    assert g2.num_edges == 2
    assert 1 not in g2.neighbors(0)


def test_update_edges_remove_missing_raises():
    from repro.graph.build import update_edges

    g = from_edges([0], [1], num_vertices=3)
    with pytest.raises(ValueError, match="non-existent edge"):
        update_edges(g, remove=(np.array([1]), np.array([2])))


def test_update_edges_duplicate_adds_merge():
    from repro.graph.build import update_edges

    g = from_edges([0], [1], [1.0], num_vertices=3)
    # The same pair three times in one batch (both orientations) merges
    # into a single +6.0 before it is applied.
    g2 = update_edges(
        g,
        add=(np.array([0, 1, 0]), np.array([1, 0, 1]), np.array([1.0, 2.0, 3.0])),
    )
    assert g2.neighbor_weights(0).tolist() == [7.0]
    assert g2.neighbor_weights(1).tolist() == [7.0]
    # A brand-new pair duplicated in the batch appears once, merged.
    g3 = update_edges(
        g, add=(np.array([1, 2]), np.array([2, 1]), np.array([4.0, 5.0]))
    )
    assert g3.num_edges == 2
    assert g3.neighbor_weights(2).tolist() == [9.0]


def test_update_edges_remove_weighted_both_directions():
    from repro.graph.build import update_edges

    g = from_edges([0, 1], [1, 2], [5.0, 7.0])
    # The same undirected edge named in both directions deletes once.
    g2 = update_edges(g, remove=(np.array([0, 1]), np.array([1, 0])))
    assert g2.num_edges == 1
    assert g2.neighbors(0).tolist() == []
    assert g2.neighbors(1).tolist() == [2]
    assert g2.neighbor_weights(1).tolist() == [7.0]


def test_update_edges_remove_then_add_same_pair():
    from repro.graph.build import update_edges

    g = from_edges([0], [1], [5.0])
    # remove+add of the same pair in one batch = exactly the added weight.
    g2 = update_edges(
        g,
        add=(np.array([0]), np.array([1]), np.array([2.0])),
        remove=(np.array([1]), np.array([0])),
    )
    assert g2.neighbor_weights(0).tolist() == [2.0]


def test_apply_edge_batch_reports_deltas():
    from repro.graph.build import apply_edge_batch

    g = from_edges([0, 1], [1, 2], [1.0, 4.0])
    g2, du, dv, dw = apply_edge_batch(
        g,
        add=(np.array([0]), np.array([2]), np.array([3.0])),
        remove=(np.array([1]), np.array([2])),
    )
    pairs = sorted(zip(du.tolist(), dv.tolist(), dw.tolist()))
    assert pairs == [(0, 2, 3.0), (1, 2, -4.0)]
    assert g2.num_edges == 2


def test_apply_edge_batch_empty_is_identity():
    from repro.graph.build import apply_edge_batch

    g = from_edges([0, 1], [1, 2])
    g2, du, dv, dw = apply_edge_batch(g)
    assert g2 == g
    assert du.size == 0 and dv.size == 0 and dw.size == 0


@given(
    csr_graphs(weighted=True, min_edges=1),
    edge_lists(max_vertices=8, max_edges=12, weighted=True),
)
def test_apply_edge_batch_matches_rebuild(g, batch):
    """Differential: patching the CSR arrays ≡ rebuilding from edges."""
    from repro.graph.build import apply_edge_batch

    bu, bv, bw, _ = batch
    bu = np.asarray(bu, dtype=np.int64) % g.num_vertices
    bv = np.asarray(bv, dtype=np.int64) % g.num_vertices
    bw = np.abs(np.asarray(bw, dtype=np.float64)) + 0.5
    # Remove a prefix of the existing edges, add the drawn batch.
    eu, ev, ew = g.edge_list(unique=True)
    num_remove = min(2, eu.size)
    remove = (eu[:num_remove], ev[:num_remove])
    add = (bu, bv, bw) if bu.size else None

    g2, du, dv, dw = apply_edge_batch(g, add=add, remove=remove)
    validate(g2)

    # Rebuild from scratch: surviving old edges + the batch (merged).
    old = {}
    for u, v, w in zip(eu.tolist(), ev.tolist(), ew.tolist()):
        old[(u, v)] = w
    for u, v in zip(*(np.asarray(a).tolist() for a in remove)):
        old.pop((min(u, v), max(u, v)), None)
    merged = dict(old)
    for u, v, w in zip(bu.tolist(), bv.tolist(), bw.tolist()):
        key = (min(u, v), max(u, v))
        merged[key] = merged.get(key, 0.0) + w
    ru = np.array([p[0] for p in merged], dtype=np.int64)
    rv = np.array([p[1] for p in merged], dtype=np.int64)
    rw = np.array(list(merged.values()), dtype=np.float64)
    rebuilt = from_edges(ru, rv, rw, num_vertices=g.num_vertices)

    assert np.array_equal(g2.indptr, rebuilt.indptr)
    assert np.array_equal(g2.indices, rebuilt.indices)
    np.testing.assert_allclose(g2.weights, rebuilt.weights)

    # Deltas name every touched pair exactly once, canonically ordered.
    assert np.all(du <= dv)
    keys = du * g.num_vertices + dv
    assert np.all(np.diff(keys) > 0)


def test_update_edges_add_and_remove():
    from repro.graph.build import update_edges

    g = from_edges([0, 1], [1, 2])
    g2 = update_edges(
        g,
        add=(np.array([0]), np.array([2]), None),
        remove=(np.array([0]), np.array([1])),
    )
    assert sorted(map(tuple, zip(*g2.edge_list(unique=True)[:2]))) == [
        (0, 2),
        (1, 2),
    ]


def test_update_edges_validates_range():
    from repro.graph.build import update_edges

    g = from_edges([0], [1])
    with pytest.raises(ValueError):
        update_edges(g, add=(np.array([0]), np.array([9]), None))
    with pytest.raises(ValueError):
        update_edges(g, remove=(np.array([0]), np.array([9])))
