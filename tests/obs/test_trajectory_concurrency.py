"""Concurrent-appender regression test for :class:`TrajectoryStore`.

The pre-lock implementation was a read-modify-write with a temp-file
rename: atomic against torn reads but lossy under concurrent writers —
two processes both read N entries, both write N+1, and one append
vanishes.  The sidecar ``fcntl`` lock serialises the whole cycle; this
test spawns real processes hammering one store and asserts no entry is
lost.
"""

from __future__ import annotations

import multiprocessing

from repro.obs import TrajectoryEntry, TrajectoryStore


def _append_burst(path: str, writer: int, count: int) -> None:
    """Append ``count`` distinct entries from one worker process."""
    store = TrajectoryStore(path)
    for i in range(count):
        store.append(
            TrajectoryEntry(
                graph=f"writer-{writer}",
                engine="vectorized",
                fingerprint=f"fp-{writer}-{i}",
                commit="deadbee",
                timestamp=float(i),
                metrics={"optimization_seconds": float(i)},
            )
        )


def test_concurrent_appenders_lose_no_entries(tmp_path):
    path = str(tmp_path / "trajectory.json")
    writers, per_writer = 4, 6
    ctx = multiprocessing.get_context("fork")
    procs = [
        ctx.Process(target=_append_burst, args=(path, w, per_writer))
        for w in range(writers)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0

    entries = TrajectoryStore(path).load()
    assert len(entries) == writers * per_writer
    # every (writer, index) append survived exactly once
    seen = sorted(e.fingerprint for e in entries)
    expected = sorted(
        f"fp-{w}-{i}" for w in range(writers) for i in range(per_writer)
    )
    assert seen == expected


def test_lock_sidecar_and_store_coexist(tmp_path):
    store = TrajectoryStore(tmp_path / "t.json")
    store.append(
        TrajectoryEntry(
            graph="g", engine="vectorized", fingerprint="fp",
            commit="deadbee", timestamp=0.0, metrics={},
        )
    )
    assert store.path.exists()
    assert store.lock_path.exists()
    assert len(store.load()) == 1
