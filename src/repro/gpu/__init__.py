"""Simulated GPU execution substrate.

Everything the paper's CUDA kernels rely on, rebuilt so the algorithm can
run and be *measured* without a GPU: device specs, hash tables with the
paper's probing scheme, Thrust-style primitives, atomic accounting, a
warp/thread-group scheduler, and a first-order cycle cost model.
"""

from .atomics import AtomicArray, AtomicStats
from .costmodel import CostModel, CostParameters, WorkItem, warp_schedule
from .device import AMPERE_A100, SMALL_DEVICE, TESLA_K40M, DeviceSpec
from .hashtable import CommunityHashTable, HashTableStats
from .primes import hash_table_size, next_prime_above, primes_up_to
from .profiler import KernelStats, PhaseProfile, RunProfile
from .warp import ScheduleOutcome, simulate_schedule
from .thrust import (
    exclusive_scan,
    gather_rows,
    inclusive_scan,
    partition,
    reduce_by_key,
    stable_sort_by_key,
)

__all__ = [
    "DeviceSpec",
    "TESLA_K40M",
    "AMPERE_A100",
    "SMALL_DEVICE",
    "CommunityHashTable",
    "HashTableStats",
    "AtomicArray",
    "AtomicStats",
    "CostModel",
    "CostParameters",
    "WorkItem",
    "warp_schedule",
    "KernelStats",
    "PhaseProfile",
    "RunProfile",
    "primes_up_to",
    "next_prime_above",
    "hash_table_size",
    "exclusive_scan",
    "inclusive_scan",
    "partition",
    "stable_sort_by_key",
    "reduce_by_key",
    "gather_rows",
    "ScheduleOutcome",
    "simulate_schedule",
]
