"""Tests for repro.metrics.teps and repro.metrics.timing."""

import time

import pytest

from repro.graph.generators import ring
from repro.metrics.teps import TepsResult, teps
from repro.metrics.timing import RunTimings, StageTiming, Stopwatch


def test_teps_counts_stored_edges_per_sweep():
    g = ring(10)  # 10 undirected edges -> 20 stored
    result = teps(g, first_phase_sweeps=3, first_phase_seconds=2.0)
    assert result.edges_traversed == 60
    assert result.teps == pytest.approx(30.0)


def test_teps_units():
    r = TepsResult(edges_traversed=2_000_000_000, seconds=1.0)
    assert r.gteps == pytest.approx(2.0)
    assert r.mteps == pytest.approx(2000.0)


def test_teps_zero_seconds():
    r = TepsResult(edges_traversed=10, seconds=0.0)
    assert r.teps == 0.0


def test_teps_negative_sweeps_clamped():
    g = ring(5)
    assert teps(g, -1, 1.0).edges_traversed == 0


def test_stage_timing_total():
    s = StageTiming(stage=0, optimization_seconds=1.5, aggregation_seconds=0.5)
    assert s.total_seconds == pytest.approx(2.0)


def test_run_timings_aggregates():
    run = RunTimings()
    a = run.new_stage(10, 20)
    a.optimization_seconds = 3.0
    a.aggregation_seconds = 1.0
    b = run.new_stage(5, 8)
    b.optimization_seconds = 0.5
    b.aggregation_seconds = 0.5
    assert run.total_seconds == pytest.approx(5.0)
    assert run.optimization_seconds == pytest.approx(3.5)
    assert run.aggregation_seconds == pytest.approx(1.5)
    assert run.optimization_fraction() == pytest.approx(0.7)


def test_run_timings_stage_numbering():
    run = RunTimings()
    assert run.new_stage(1, 1).stage == 0
    assert run.new_stage(1, 1).stage == 1


def test_optimization_fraction_empty():
    assert RunTimings().optimization_fraction() == 0.0


def test_stopwatch_accumulates():
    stage = StageTiming(stage=0)
    with Stopwatch(stage, "optimization_seconds"):
        time.sleep(0.01)
    first = stage.optimization_seconds
    assert first >= 0.009
    with Stopwatch(stage, "optimization_seconds"):
        time.sleep(0.01)
    assert stage.optimization_seconds > first
