"""Atomic-operation emulation with contention accounting.

A serial Python execution is trivially atomic; what matters for the cost
model is *how many* atomic operations the kernels issue and how contended
they are.  :class:`AtomicArray` wraps an ndarray, applies updates exactly,
and counts operations; batch updates report the worst-case serialisation
(the maximum multiplicity of a single address within the batch), which is
how a warp's conflicting atomics serialise on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AtomicStats", "AtomicArray"]


@dataclass
class AtomicStats:
    """Counters for atomic traffic on one array."""

    adds: int = 0
    cas_attempts: int = 0
    max_batch_conflict: int = 1

    def merge(self, other: "AtomicStats") -> None:
        """Accumulate another array's counters."""
        self.adds += other.adds
        self.cas_attempts += other.cas_attempts
        self.max_batch_conflict = max(self.max_batch_conflict, other.max_batch_conflict)


class AtomicArray:
    """An ndarray whose updates go through counted atomic operations."""

    def __init__(self, values: np.ndarray) -> None:
        self.values = np.asarray(values).copy()
        self.stats = AtomicStats()

    def atomic_add(self, index: int, value) -> None:
        """``atomicAdd(&values[index], value)``; returns nothing."""
        self.values[index] += value
        self.stats.adds += 1

    def fetch_add(self, index: int, value):
        """``atomicAdd`` returning the previous value (Alg. 3 line 18)."""
        old = self.values[index]
        self.values[index] += value
        self.stats.adds += 1
        return old

    def cas(self, index: int, expected, new) -> bool:
        """Compare-and-swap; True on success."""
        self.stats.cas_attempts += 1
        if self.values[index] == expected:
            self.values[index] = new
            return True
        return False

    def batch_add(self, indices: np.ndarray, values: np.ndarray) -> None:
        """A concurrently-issued batch of atomicAdds (one warp-step).

        Applies all updates and records the worst per-address multiplicity
        as the serialisation factor of the batch.
        """
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values)
        if indices.size == 0:
            return
        np.add.at(self.values, indices, values)
        self.stats.adds += int(indices.size)
        multiplicity = int(np.bincount(indices).max())
        self.stats.max_batch_conflict = max(
            self.stats.max_batch_conflict, multiplicity
        )
