"""Tests for delta-screening (:func:`repro.stream.delta_frontier`)."""

import numpy as np
import pytest

from repro.graph.build import from_edges
from repro.stream import delta_frontier


def three_blocks():
    """Three triangles chained 0-1-2 | 3-4-5 | 6-7-8, one bridge each."""
    us = [0, 1, 2, 3, 4, 5, 6, 7, 8, 2, 5]
    vs = [1, 2, 0, 4, 5, 3, 7, 8, 6, 3, 6]
    graph = from_edges(us, vs)
    labels = np.repeat(np.arange(3), 3)
    return graph, labels


def test_endpoints_scope_is_just_the_endpoints():
    graph, labels = three_blocks()
    out = delta_frontier(
        graph, labels, np.array([2, 7]), np.array([3, 8]), scope="endpoints"
    )
    assert out.tolist() == [2, 3, 7, 8]


def test_community_scope_covers_members_and_neighbours():
    graph, labels = three_blocks()
    # Pair (0, 1) lives entirely in community 0: the screen is its
    # members {0,1,2} plus the endpoints' neighbours — all inside the
    # triangle.  Vertex 3 neighbours 2, but only *endpoint*
    # neighbourhoods are seeded, so it stays out.
    out = delta_frontier(graph, labels, np.array([0]), np.array([1]))
    assert out.tolist() == [0, 1, 2]


def test_community_scope_includes_endpoint_neighbours():
    graph, labels = three_blocks()
    # Pair (2, 3) bridges communities 0 and 1: both communities'
    # members, plus 2's and 3's neighbours.  6 neighbours 5 but not an
    # endpoint, so community 2 remains untouched.
    out = delta_frontier(graph, labels, np.array([2]), np.array([3]))
    assert out.tolist() == [0, 1, 2, 3, 4, 5]


def test_output_is_sorted_unique():
    graph, labels = three_blocks()
    u = np.array([2, 2, 3, 2])
    v = np.array([3, 3, 2, 3])
    out = delta_frontier(graph, labels, u, v, scope="endpoints")
    assert out.tolist() == [2, 3]


def test_empty_batch_gives_empty_frontier():
    graph, labels = three_blocks()
    out = delta_frontier(graph, labels, np.array([]), np.array([]))
    assert out.size == 0


def test_rejects_unknown_scope():
    graph, labels = three_blocks()
    with pytest.raises(ValueError, match="scope"):
        delta_frontier(graph, labels, np.array([0]), np.array([1]), scope="global")


def test_rejects_bad_membership_shape():
    graph, _ = three_blocks()
    with pytest.raises(ValueError, match="one label per vertex"):
        delta_frontier(graph, np.zeros(4, dtype=np.int64), np.array([0]), np.array([1]))


def test_rejects_out_of_range_endpoints():
    graph, labels = three_blocks()
    with pytest.raises(ValueError, match="out of range"):
        delta_frontier(graph, labels, np.array([0]), np.array([99]))
    with pytest.raises(ValueError, match="out of range"):
        delta_frontier(graph, labels, np.array([-1]), np.array([1]))
