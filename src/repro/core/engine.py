"""The Engine protocol: every detection algorithm behind one interface.

An :class:`Engine` owns one community-detection algorithm and exposes it
through two hooks that the CLI, :class:`~repro.stream.StreamSession` and
:mod:`repro.serve` all dispatch through:

* :meth:`Engine.detect` — a full (optionally warm-started) run on a
  graph, returning a :class:`~repro.result.LouvainResult`;
* :meth:`Engine.stream_batch` — one incremental re-optimization inside a
  streaming session (level-0 frontier pass, coarser full levels).

Three streaming-capable algorithms register under their ``--algo``
names:

``louvain``
    The paper's GPU Louvain pipeline, exactly as before — bit-identical
    results and trace spans to calling :func:`~repro.core.gpu_louvain`
    directly.
``leiden``
    Louvain plus the Leiden-style well-connectedness guarantee
    (:mod:`repro.core.refine`): an exploration run first (the plain
    Louvain trajectory, so quality never regresses on graphs Louvain
    already handles), then — only when the result contains an
    internally-disconnected community — one warm repair run that
    refines **every contraction commit**, which makes the final
    membership well-connected by construction.  Streaming batches
    always refine each contraction, closing the drift bug where CSR
    edge deletions strand disconnected fragments inside a stale
    community.
``lpa``
    Weighted GPU label propagation (:mod:`repro.core.label_prop`) — a
    single-level method reusing the bucketed sub-warp machinery; the
    streaming path seeds the propagation from the delta frontier.

The sequential and parallel reference solvers (``seq``, ``plm``,
``lu``, ``coarse``, ``sort``, ``multigpu``) register as detect-only
engines behind the same protocol, so ``repro detect`` dispatches every
solver uniformly.

Use :func:`get_engine` to resolve a name::

    engine = get_engine("leiden")
    result = engine.detect(graph, config, tracer=tracer)
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..result import LouvainResult, StreamResult
from ..trace import NullTracer, Tracer
from .config import GPULouvainConfig
from .gpu_louvain import gpu_louvain
from .label_prop import label_propagation
from .refine import connected_refinement

__all__ = [
    "ALGO_NAMES",
    "Engine",
    "LabelPropagationEngine",
    "LeidenEngine",
    "LouvainEngine",
    "ShardedEngine",
    "SolverEngine",
    "get_engine",
]


def _connected_hook(graph, communities, tracer):
    """The per-contraction refine hook: split disconnected communities."""
    return connected_refinement(graph, communities, tracer=tracer).refined


class Engine(ABC):
    """One detection algorithm behind the shared detect/stream interface.

    Class attributes describe capabilities: ``supports_warm_start``
    (whether :meth:`detect` accepts ``initial_communities``) and
    ``supports_stream`` (whether the engine can drive a
    :class:`~repro.stream.StreamSession`).  ``refine_hook`` is the
    per-contraction refinement callable threaded through the level
    loops (``None`` = contract by the raw optimisation outcome).
    """

    name: str = "?"
    supports_warm_start: bool = True
    supports_stream: bool = True
    refine_hook = None

    @abstractmethod
    def detect(
        self,
        graph,
        config: GPULouvainConfig | None = None,
        *,
        initial_communities: np.ndarray | None = None,
        tracer: Tracer | NullTracer | None = None,
    ) -> LouvainResult:
        """Run the algorithm on ``graph`` (optionally warm-started)."""

    def stream_batch(self, session, graph, frontier) -> StreamResult:
        """One incremental batch inside ``session`` (already patched graph).

        The default drives the session's Louvain-style pipeline
        (frontier level 0, full coarser levels) with this engine's
        ``refine_hook`` applied before every contraction commit.
        """
        return session._cluster_stream(graph, frontier, refine=self.refine_hook)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<{type(self).__name__} {self.name!r}>"


class LouvainEngine(Engine):
    """The paper's GPU Louvain algorithm — the default engine."""

    name = "louvain"

    def detect(
        self,
        graph,
        config: GPULouvainConfig | None = None,
        *,
        initial_communities: np.ndarray | None = None,
        tracer: Tracer | NullTracer | None = None,
    ) -> LouvainResult:
        return gpu_louvain(
            graph,
            config,
            initial_communities=initial_communities,
            tracer=tracer,
        )


class LeidenEngine(Engine):
    """Louvain with the Leiden well-connectedness guarantee.

    ``detect`` first runs the plain Louvain pipeline (identical
    trajectory and quality), then audits the result with
    :func:`~repro.core.refine.connected_refinement`.  Only when some
    community is internally disconnected does a warm **repair run**
    execute: it starts from the refined (split) partition and refines
    every contraction commit, so its output is well-connected by
    construction — each stored level contracts by connected components,
    and connectivity composes down the hierarchy.  One repair run
    therefore always suffices.

    Streaming batches refine every contraction directly (the level-0
    pass is warm-started from a near-converged membership, so the
    refinement splits are small and cheap).
    """

    name = "leiden"
    refine_hook = staticmethod(_connected_hook)

    def detect(
        self,
        graph,
        config: GPULouvainConfig | None = None,
        *,
        initial_communities: np.ndarray | None = None,
        tracer: Tracer | NullTracer | None = None,
    ) -> LouvainResult:
        result = gpu_louvain(
            graph,
            config,
            initial_communities=initial_communities,
            tracer=tracer,
        )
        outcome = connected_refinement(graph, result.membership, tracer=tracer)
        if outcome.changed:
            result = gpu_louvain(
                graph,
                config,
                initial_communities=outcome.refined,
                refine=self.refine_hook,
                tracer=tracer,
            )
        return result


class LabelPropagationEngine(Engine):
    """Weighted GPU label propagation (single-level, no modularity goal)."""

    name = "lpa"

    def detect(
        self,
        graph,
        config: GPULouvainConfig | None = None,
        *,
        initial_communities: np.ndarray | None = None,
        tracer: Tracer | NullTracer | None = None,
    ) -> LouvainResult:
        return label_propagation(
            graph,
            config,
            initial_communities=initial_communities,
            tracer=tracer,
        )

    def stream_batch(self, session, graph, frontier) -> StreamResult:
        """Frontier-seeded propagation warm-started from the membership."""
        result = label_propagation(
            graph,
            session.config.louvain,
            initial_communities=session.membership,
            frontier=frontier,
            tracer=session.tracer,
        )
        size = int(np.asarray(frontier).size)
        return StreamResult(
            levels=result.levels,
            level_sizes=result.level_sizes,
            membership=result.membership,
            modularity=result.modularity,
            modularity_per_level=result.modularity_per_level,
            sweeps_per_level=result.sweeps_per_level,
            timings=result.timings,
            frontier_size=size,
            frontier_fraction=size / max(graph.num_vertices, 1),
            mode="stream",
        )


class ShardedEngine(Engine):
    """Multi-process sharded Louvain (:mod:`repro.shard`) as an engine.

    ``detect`` dispatches to :func:`~repro.shard.engine.sharded_louvain`
    (lazily imported — the shard package pulls in multiprocessing
    machinery the single-process paths never need).  Streaming batches
    use the inherited Louvain-style session pipeline; only the periodic
    full reruns (``too_wide`` / audits) fan out across shard workers,
    which is exactly where the extra cores pay off.  Because
    :func:`sharded_louvain` propagates the caller's
    :class:`~repro.trace.TraceContext` over the command pipe, worker
    shard spans land in the same stitched request tree.
    """

    name = "sharded"

    def __init__(
        self,
        workers: int = 2,
        pool: str = "fork",
        mode: str = "sync",
        partition: str = "bfs",
    ) -> None:
        self.workers = int(workers)
        self.pool = str(pool)
        self.mode = str(mode)
        self.partition = str(partition)

    def detect(
        self,
        graph,
        config: GPULouvainConfig | None = None,
        *,
        initial_communities: np.ndarray | None = None,
        tracer: Tracer | NullTracer | None = None,
    ) -> LouvainResult:
        from ..shard.engine import ShardConfig, sharded_louvain

        return sharded_louvain(
            graph,
            config,
            shard=ShardConfig(
                workers=self.workers,
                pool=self.pool,
                mode=self.mode,
                partition=self.partition,
            ),
            initial_communities=initial_communities,
            tracer=tracer,
        )


class SolverEngine(Engine):
    """Adapter putting the reference solvers behind :meth:`detect`.

    The sequential baseline and the related-work parallel solvers take
    plain thresholds rather than the full config; this adapter maps the
    shared :class:`~repro.core.GPULouvainConfig` onto each solver's
    signature.  They support neither warm starts nor streaming.
    """

    supports_warm_start = False
    supports_stream = False

    def __init__(self, name: str, runner, **options) -> None:
        self.name = name
        self._runner = runner
        self._options = options

    def detect(
        self,
        graph,
        config: GPULouvainConfig | None = None,
        *,
        initial_communities: np.ndarray | None = None,
        tracer: Tracer | NullTracer | None = None,
    ) -> LouvainResult:
        if initial_communities is not None:
            raise ValueError(
                f"engine {self.name!r} does not support warm starts"
            )
        if config is None:
            config = GPULouvainConfig()
        return self._runner(graph, config, **self._options)


def _run_seq(graph, config):
    from ..seq.louvain import louvain

    return louvain(graph, threshold=config.threshold_final)


def _run_plm(graph, config):
    from ..parallel.plm import plm_louvain

    return plm_louvain(graph, threshold=config.threshold_final)


def _run_lu(graph, config):
    from ..parallel.lu_openmp import lu_louvain

    return lu_louvain(
        graph,
        threshold_bin=config.threshold_bin,
        threshold_final=config.threshold_final,
        bin_vertex_limit=config.bin_vertex_limit,
    )


def _run_coarse(graph, config):
    from ..parallel.coarse import coarse_louvain

    return coarse_louvain(graph, threshold=config.threshold_final)


def _run_sort(graph, config):
    from ..parallel.sortbased import sort_based_louvain

    return sort_based_louvain(graph, threshold=config.threshold_final)


def _run_multigpu(graph, config, devices=4):
    from ..parallel.multigpu import multigpu_louvain

    return multigpu_louvain(
        graph,
        num_devices=devices,
        threshold_bin=config.threshold_bin,
        threshold_final=config.threshold_final,
        bin_vertex_limit=config.bin_vertex_limit,
    )


_SOLVER_RUNNERS = {
    "seq": _run_seq,
    "plm": _run_plm,
    "lu": _run_lu,
    "coarse": _run_coarse,
    "sort": _run_sort,
    "multigpu": _run_multigpu,
}

#: The streaming-capable algorithm names (``--algo`` choices).
ALGO_NAMES = ("louvain", "leiden", "lpa", "sharded")

_ALGO_CLASSES = {
    "louvain": LouvainEngine,
    "leiden": LeidenEngine,
    "lpa": LabelPropagationEngine,
    "sharded": ShardedEngine,
}


def get_engine(name: str, **options) -> Engine:
    """Resolve an engine by name (``--algo`` / ``--solver`` values).

    ``options`` are engine-specific construction arguments (``sharded``
    takes ``workers`` / ``pool`` / ``mode`` / ``partition``; ``multigpu``
    takes ``devices``).  Raises :class:`ValueError` for unknown names,
    listing the valid ones.
    """
    if name == "sharded":
        return ShardedEngine(**options)
    if name in _ALGO_CLASSES:
        if options:
            raise TypeError(f"engine {name!r} takes no options")
        return _ALGO_CLASSES[name]()
    if name in _SOLVER_RUNNERS:
        return SolverEngine(name, _SOLVER_RUNNERS[name], **options)
    valid = sorted((*_ALGO_CLASSES, *_SOLVER_RUNNERS))
    raise ValueError(f"unknown engine: {name!r} (expected one of {valid})")
