#!/usr/bin/env bash
# Reproduce everything: install, test, and regenerate every table/figure.
#
# Usage:  ./scripts/reproduce.sh
#
# Outputs land in benchmarks/results/*.txt; compare against the paper
# numbers recorded in EXPERIMENTS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== install =="
pip install -e . --no-build-isolation --quiet

echo "== tests =="
python -m pytest tests/ 2>&1 | tee test_output.txt | tail -2

echo "== experiments (all paper tables & figures) =="
python -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt | tail -4

echo "== reproduced numbers =="
ls benchmarks/results/
echo
echo "Full tables in benchmarks/results/*.txt; paper-vs-measured analysis in EXPERIMENTS.md."
