"""Sequential Louvain method — the paper's baseline (Blondel et al. 2008).

This is a faithful pure-Python port of the original algorithm the paper
compares against ("for all sequential experiments we used the original code
from [1]"): an asynchronous greedy sweep over vertices in order, immediate
commit of each move, hash(dict)-based accumulation of neighbour-community
weights, followed by graph contraction, repeated until the modularity gain
of a whole stage drops below the threshold.

Two variants, as in Section 5:

* :func:`louvain` with a single ``threshold`` — the original algorithm;
* ``adaptive=True`` — the *adaptive sequential* variant of Figure 4, using
  the coarse ``threshold_bin`` while the current level's graph has more
  than ``bin_vertex_limit`` vertices and ``threshold_final`` below.

Being interpreted Python, this baseline plays the role of the scalar
reference that the data-parallel engines are sped up against (DESIGN.md §6).
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..metrics.modularity import modularity
from ..metrics.timing import RunTimings, Stopwatch
from ..result import LouvainResult, flatten_levels
from .aggregation import aggregate

__all__ = ["louvain", "one_level"]


def one_level(
    graph: CSRGraph,
    threshold: float,
    *,
    max_sweeps: int = 1000,
) -> tuple[np.ndarray, int]:
    """One modularity-optimization phase (phase 1) on ``graph``.

    Starts from singletons, sweeps vertices in index order moving each to
    the neighbouring community with the largest positive Eq.-(2) gain
    (ties to the lowest community id), until a sweep improves modularity by
    less than ``threshold`` or nothing moves.

    Returns ``(communities, sweeps)``.
    """
    n = graph.num_vertices
    indptr = graph.indptr
    indices = graph.indices
    weights = graph.weights
    k = graph.weighted_degrees
    loops = graph.self_loop_weights()
    m = graph.m
    comm = list(range(n))
    tot = k.astype(np.float64).copy()  # a_c per community label
    if m == 0.0 or n == 0:
        return np.arange(n, dtype=np.int64), 0

    # Internal weights per community for O(1) modularity tracking.
    in_w = loops.astype(np.float64).copy()
    two_m = 2.0 * m

    def current_modularity() -> float:
        q = 0.0
        for c in range(n):
            if tot[c] != 0.0 or in_w[c] != 0.0:
                q += in_w[c] / two_m - (tot[c] / two_m) ** 2
        return q

    cur_q = current_modularity()
    sweeps = 0
    indices_list = indices.tolist()
    weights_list = weights.tolist()
    indptr_list = indptr.tolist()
    k_list = k.tolist()
    loops_list = loops.tolist()

    while sweeps < max_sweeps:
        sweeps += 1
        nb_moves = 0
        for v in range(n):
            own = comm[v]
            kv = k_list[v]
            loop_v = loops_list[v]
            # Accumulate e_{v->c} over neighbour communities (self excluded).
            neigh: dict[int, float] = {own: 0.0}
            for e in range(indptr_list[v], indptr_list[v + 1]):
                nb = indices_list[e]
                if nb == v:
                    continue
                c = comm[nb]
                neigh[c] = neigh.get(c, 0.0) + weights_list[e]
            # Remove v from its community.
            e_own = neigh[own]
            tot[own] -= kv
            in_w[own] -= 2.0 * e_own + loop_v
            # Best insertion: maximise e_{v->c} - k_v * tot[c] / 2m.
            best_c = own
            best_score = e_own - kv * tot[own] / two_m
            for c, e_vc in neigh.items():
                if c == own:
                    continue
                score = e_vc - kv * tot[c] / two_m
                if score > best_score or (score == best_score and c < best_c):
                    best_score = score
                    best_c = c
            # Reinsert (possibly elsewhere).  Strictly-positive gain rule:
            # equal score to staying means no move.
            stay_score = e_own - kv * tot[own] / two_m
            if best_c != own and best_score > stay_score:
                comm[v] = best_c
                nb_moves += 1
            target = comm[v]
            tot[target] += kv
            in_w[target] += 2.0 * neigh.get(target, 0.0) + loop_v
        new_q = current_modularity()
        gain = new_q - cur_q
        cur_q = new_q
        if nb_moves == 0 or gain < threshold:
            break
    return np.asarray(comm, dtype=np.int64), sweeps


def louvain(
    graph: CSRGraph,
    *,
    threshold: float = 1e-6,
    adaptive: bool = False,
    threshold_bin: float = 1e-2,
    threshold_final: float = 1e-6,
    bin_vertex_limit: int = 100_000,
    max_levels: int = 200,
) -> LouvainResult:
    """Full sequential Louvain: phases of optimization + aggregation.

    Parameters
    ----------
    graph:
        Input graph.
    threshold:
        Per-sweep modularity-gain threshold of the original algorithm
        (ignored when ``adaptive=True``).
    adaptive:
        Use the paper's adaptive scheme: ``threshold_bin`` while the level
        graph has more than ``bin_vertex_limit`` vertices, else
        ``threshold_final``.
    max_levels:
        Safety bound on hierarchy depth.
    """
    timings = RunTimings()
    levels: list[np.ndarray] = []
    level_sizes: list[tuple[int, int]] = []
    sweeps_per_level: list[int] = []
    modularity_per_level: list[float] = []
    current = graph
    prev_q = -1.0

    for _ in range(max_levels):
        level_threshold = (
            (threshold_bin if current.num_vertices > bin_vertex_limit else threshold_final)
            if adaptive
            else threshold
        )
        stage = timings.new_stage(current.num_vertices, current.num_edges)
        with Stopwatch(stage, "optimization_seconds"):
            comm, sweeps = one_level(current, level_threshold)
        with Stopwatch(stage, "aggregation_seconds"):
            contracted, dense = aggregate(current, comm)
        levels.append(dense)
        level_sizes.append((current.num_vertices, current.num_edges))
        sweeps_per_level.append(sweeps)
        stage.sweeps = sweeps
        membership = flatten_levels(levels)
        q = modularity(graph, membership)
        modularity_per_level.append(q)
        stage.modularity = q
        stop_threshold = threshold_final if adaptive else threshold
        if q - prev_q < stop_threshold or contracted.num_vertices == current.num_vertices:
            current = contracted
            break
        prev_q = q
        current = contracted

    membership = flatten_levels(levels)
    return LouvainResult(
        levels=levels,
        level_sizes=level_sizes,
        membership=membership,
        modularity=modularity(graph, membership),
        modularity_per_level=modularity_per_level,
        sweeps_per_level=sweeps_per_level,
        timings=timings,
    )
