"""Tests for repro.graph.validation."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.generators import karate_club
from repro.graph.validation import (
    check_no_parallel_edges,
    check_sorted_rows,
    check_symmetric,
    validate,
)


def _raw(indptr, indices, weights):
    return CSRGraph(
        indptr=np.asarray(indptr),
        indices=np.asarray(indices),
        weights=np.asarray(weights, dtype=float),
    )


def test_validate_passes_on_canonical():
    validate(karate_club())


def test_asymmetric_detected():
    g = _raw([0, 1, 1], [1], [1.0])  # edge 0->1 without reverse
    with pytest.raises(AssertionError, match="symmetric"):
        check_symmetric(g)


def test_asymmetric_weights_detected():
    g = _raw([0, 1, 2], [1, 0], [1.0, 2.0])
    with pytest.raises(AssertionError, match="symmetric"):
        check_symmetric(g)


def test_unsorted_rows_detected():
    g = _raw([0, 2, 3, 4], [2, 1, 0, 0], [1.0, 1.0, 1.0, 1.0])
    with pytest.raises(AssertionError, match="sorted"):
        check_sorted_rows(g)


def test_parallel_edges_detected():
    g = _raw([0, 2, 4], [1, 1, 0, 0], [1.0, 1.0, 1.0, 1.0])
    with pytest.raises(AssertionError, match="parallel"):
        check_no_parallel_edges(g)


def test_self_loop_is_fine():
    g = _raw([0, 1], [0], [2.0])
    validate(g)


def test_empty_graph_is_fine():
    g = _raw([0, 0, 0], [], [])
    validate(g)
