"""Benchmark suite (Table-1 analogs), experiment runner, and reporting."""

from .reporting import banner, format_series, format_table, geometric_mean
from .runner import (
    SolverRun,
    StageRow,
    Table1Row,
    ThresholdCell,
    run_gpu,
    run_sequential,
    stage_breakdown,
    table1_rows,
    threshold_grid,
    timed,
)
from .suite import SUITE, SuiteEntry, load_suite_graph, small_suite, suite_names

__all__ = [
    "SUITE",
    "SuiteEntry",
    "suite_names",
    "load_suite_graph",
    "small_suite",
    "timed",
    "SolverRun",
    "run_gpu",
    "run_sequential",
    "Table1Row",
    "table1_rows",
    "ThresholdCell",
    "threshold_grid",
    "StageRow",
    "stage_breakdown",
    "banner",
    "format_table",
    "format_series",
    "geometric_mean",
]
