"""Snapshot/restore: a restored session is indistinguishable from the
uninterrupted one — bit-identical graph, membership and future applies."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import caveman, karate_club
from repro.serve import (
    SNAPSHOT_SCHEMA,
    restore_session,
    snapshot_paths,
    snapshot_session,
)
from repro.stream import StreamConfig, StreamSession
from repro.trace import Tracer


def _assert_sessions_equal(a: StreamSession, b: StreamSession) -> None:
    np.testing.assert_array_equal(a.graph.indptr, b.graph.indptr)
    np.testing.assert_array_equal(a.graph.indices, b.graph.indices)
    np.testing.assert_array_equal(a.graph.weights, b.graph.weights)
    np.testing.assert_array_equal(a.membership, b.membership)
    np.testing.assert_array_equal(a.result.membership, b.result.membership)
    assert a.modularity == b.modularity
    assert a.batches == b.batches
    assert a.config == b.config


def test_round_trip_preserves_state(tmp_path):
    graph, _ = caveman(5, 8)
    session = StreamSession(
        graph,
        StreamConfig(screening="exact", full_rerun_interval=3),
        tracer=Tracer(),
    )
    session.apply(add=(np.array([0, 8]), np.array([16, 24]), None))

    sidecar = snapshot_session(session, tmp_path / "alpha")
    assert sidecar == tmp_path / "alpha.json"
    assert (tmp_path / "alpha.npz").exists()
    restored = restore_session(tmp_path / "alpha", tracer=Tracer())
    _assert_sessions_equal(session, restored)
    assert len(restored.reports) == len(session.reports) == 1
    assert restored.initial_report is not None
    assert (
        restored.initial_report.meta["fingerprint"]
        == session.config.fingerprint()
    )


def test_sidecar_contents(tmp_path):
    session = StreamSession(karate_club(), StreamConfig())
    snapshot_session(session, tmp_path / "k")
    sidecar = json.loads((tmp_path / "k.json").read_text())
    assert sidecar["schema"] == SNAPSHOT_SCHEMA
    assert sidecar["batches"] == 0
    assert sidecar["num_vertices"] == 34
    assert sidecar["fingerprint"] == session.config.fingerprint()
    assert StreamConfig.from_dict(sidecar["config"]) == session.config
    assert sidecar["result"]["modularity"] == session.modularity


def test_dotted_names_keep_their_stem(tmp_path):
    npz, sidecar = snapshot_paths(tmp_path / "my.session.v2")
    assert npz.name == "my.session.v2.npz"
    assert sidecar.name == "my.session.v2.json"


def test_missing_sidecar_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        restore_session(tmp_path / "ghost")


def test_schema_mismatch_raises(tmp_path):
    session = StreamSession(karate_club(), StreamConfig())
    snapshot_session(session, tmp_path / "k")
    sidecar = tmp_path / "k.json"
    payload = json.loads(sidecar.read_text())
    payload["schema"] = "repro.serve-snapshot/999"
    sidecar.write_text(json.dumps(payload))
    with pytest.raises(ValueError, match="schema"):
        restore_session(tmp_path / "k")


# --------------------------------------------------------------------- #
# Property: snapshot -> restore -> apply is bit-identical to the
# uninterrupted session, including after deletions.
# --------------------------------------------------------------------- #
@st.composite
def interrupted_runs(draw):
    """(screening, first batch, second batch) against caveman(4, 6)."""
    graph, _ = caveman(4, 6)
    n = graph.num_vertices

    def batch():
        na = draw(st.integers(min_value=1, max_value=4))
        au = draw(st.lists(st.integers(0, n - 1), min_size=na, max_size=na))
        av = draw(st.lists(st.integers(0, n - 1), min_size=na, max_size=na))
        aw = [float(w) for w in
              draw(st.lists(st.integers(1, 3), min_size=na, max_size=na))]
        return np.array(au), np.array(av), np.array(aw)

    screening = draw(st.sampled_from(["local", "exact"]))
    return graph, screening, batch(), batch(), draw(st.booleans())


@settings(max_examples=25, deadline=None)
@given(data=interrupted_runs())
def test_restored_apply_bit_identical(tmp_path_factory, data):
    graph, screening, first, second, delete_some = data
    config = StreamConfig(screening=screening, full_rerun_interval=2)

    original = StreamSession(graph, config)
    original.apply(add=first)
    # Delete real edges so restore-after-removal is exercised too.
    remove = None
    if delete_some:
        eu, ev, _ = original.graph.edge_list(unique=True)
        remove = (eu[:2], ev[:2])

    base = tmp_path_factory.mktemp("snap") / "s"
    snapshot_session(original, base)
    restored = restore_session(base)
    _assert_sessions_equal(original, restored)

    result_a = original.apply(add=second, remove=remove)
    result_b = restored.apply(add=second, remove=remove)
    np.testing.assert_array_equal(result_a.membership, result_b.membership)
    np.testing.assert_array_equal(original.membership, restored.membership)
    assert result_a.modularity == result_b.modularity
    assert result_a.mode == result_b.mode
    assert result_a.frontier_size == result_b.frontier_size
    _assert_sessions_equal(original, restored)
