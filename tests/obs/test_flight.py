"""Tests for repro.obs.flight — ring bounds, journals, watchdog, bundles."""

from __future__ import annotations

import json
import tarfile
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.flight import (
    FLIGHT_SCHEMA,
    NULL_FLIGHT,
    FlightRecorder,
    Watchdog,
    build_debug_bundle,
    get_flight_recorder,
    load_journal,
    set_flight_recorder,
    stitch_spans,
    validate_flight,
)

# --------------------------------------------------------------------- #
# Ring budget
# --------------------------------------------------------------------- #


def test_ring_never_exceeds_byte_budget():
    recorder = FlightRecorder(2048)
    for i in range(500):
        recorder.record_log({"event": f"e{i}", "blob": "x" * (i % 80)})
        assert recorder.bytes <= 2048
    snap = recorder.snapshot()
    assert snap["bytes"] <= 2048
    assert snap["recorded"]["log"] == 500
    assert snap["dropped"]["log"] > 0
    # Newest entries survive, oldest are evicted.
    events = [entry["record"]["event"] for entry in snap["entries"]]
    assert events[-1] == "e499"
    assert "e0" not in events


@settings(max_examples=50, deadline=None)
@given(
    budget=st.integers(min_value=128, max_value=4096),
    sizes=st.lists(st.integers(min_value=0, max_value=600), max_size=60),
)
def test_ring_budget_property(budget, sizes):
    """Invariant: stored bytes never exceed the budget under any burst."""
    recorder = FlightRecorder(budget)
    for i, size in enumerate(sizes):
        kind = ("log", "metric", "span")[i % 3]
        if kind == "log":
            recorder.record_log({"event": "burst", "pad": "x" * size})
        elif kind == "metric":
            recorder.record_metric("m", float(size), labels={"pad": "x" * size})
        else:
            recorder.record_span(
                "s", path="a/b", seconds=0.1,
                attributes={"pad": "x" * size},
            )
        assert recorder.bytes <= budget
    snap = recorder.snapshot()
    assert snap["bytes"] <= budget
    assert sum(snap["recorded"].values()) - sum(snap["dropped"].values()) == len(
        snap["entries"]
    )
    assert validate_flight(snap) == []


def test_oversize_entry_is_dropped_not_stored():
    recorder = FlightRecorder(256)
    recorder.record_log({"event": "huge", "pad": "x" * 1000})
    assert recorder.bytes == 0
    assert recorder.snapshot()["dropped"]["log"] == 1


def test_snapshot_filters():
    recorder = FlightRecorder(1 << 16)
    recorder.record_span("a", path="", seconds=0.1, trace_id="tr-1")
    recorder.record_span("b", path="", seconds=0.1, trace_id="tr-2")
    recorder.record_log({"event": "x"}, )
    only = recorder.snapshot(trace_id="tr-1")
    assert [e["name"] for e in only["entries"]] == ["a"]
    spans = recorder.snapshot(kinds=("span",))
    assert {e["kind"] for e in spans["entries"]} == {"span"}


def test_null_flight_absorbs_everything():
    NULL_FLIGHT.record_log({"event": "x"})
    NULL_FLIGHT.record_span("s", path="", seconds=0.0)
    NULL_FLIGHT.record_metric("m", 1.0)
    snap = NULL_FLIGHT.snapshot()
    assert snap["entries"] == []
    assert validate_flight(snap) == []


def test_process_recorder_registry():
    original = get_flight_recorder()
    recorder = FlightRecorder(1024)
    try:
        set_flight_recorder(recorder)
        assert get_flight_recorder() is recorder
    finally:
        set_flight_recorder(original)


# --------------------------------------------------------------------- #
# Validation
# --------------------------------------------------------------------- #


def test_validate_flight_rejects_garbage():
    assert validate_flight([]) != []
    assert validate_flight({"schema": "nope"}) != []
    bad = FlightRecorder(1024).snapshot()
    bad["entries"] = [{"kind": "mystery", "ts": 1.0}]
    assert validate_flight(bad) != []


# --------------------------------------------------------------------- #
# Journal: the crash-surviving path
# --------------------------------------------------------------------- #


def test_journal_round_trip(tmp_path):
    journal = tmp_path / "flight-123.jsonl"
    recorder = FlightRecorder(1 << 16, journal=journal)
    recorder.record_log({"event": "one"})
    recorder.record_span("s", path="a", seconds=0.5, trace_id="tr-9")
    recorder.record_metric("m", 2.0)
    recorder.close()

    snap = load_journal(journal)
    assert snap["schema"] == FLIGHT_SCHEMA
    assert snap["source"] == "journal"
    assert len(snap["entries"]) == 3
    assert validate_flight(snap) == []


def test_journal_skips_torn_final_line(tmp_path):
    journal = tmp_path / "flight-1.jsonl"
    recorder = FlightRecorder(1 << 16, journal=journal)
    recorder.record_log({"event": "whole"})
    recorder.close()
    # Simulate a SIGKILL mid-write: a torn, non-JSON final line.
    with journal.open("a") as fh:
        fh.write('{"kind": "log", "ts": 1.0, "rec')

    snap = load_journal(journal)
    assert snap["torn_lines"] == 1
    assert [e["record"]["event"] for e in snap["entries"]] == ["whole"]


def test_journal_directory_merges_processes(tmp_path):
    for pid, event in ((11, "from-a"), (22, "from-b")):
        recorder = FlightRecorder(
            1 << 16, journal=tmp_path / f"flight-{pid}.jsonl"
        )
        recorder.record_log({"event": event})
        recorder.close()
    snap = load_journal(tmp_path)
    events = {e["record"]["event"] for e in snap["entries"]}
    assert events == {"from-a", "from-b"}
    assert len(snap["journal_files"]) == 2


def test_journal_budget_keeps_newest(tmp_path):
    journal = tmp_path / "flight-5.jsonl"
    recorder = FlightRecorder(1 << 20, journal=journal)
    for i in range(50):
        recorder.record_log({"event": f"e{i:03d}"})
    recorder.close()
    snap = load_journal(journal, max_bytes=512)
    events = [e["record"]["event"] for e in snap["entries"]]
    assert events[-1] == "e049"
    assert len(events) < 50
    assert events == sorted(events)  # oldest-first order preserved


# --------------------------------------------------------------------- #
# Stitching
# --------------------------------------------------------------------- #


def test_stitch_spans_rebuilds_tree():
    recorder = FlightRecorder(1 << 16)
    # Completed spans arrive leaves-first, like a real tracer run; every
    # recorded path ends with the span's own name (the span is still on
    # the tracer stack when it closes).
    recorder.record_span(
        "optimization", path="request/batch/run/level/optimization",
        seconds=0.2, trace_id="tr-x",
    )
    recorder.record_span("level", path="request/batch/run/level",
                         seconds=0.3, trace_id="tr-x")
    recorder.record_span("run", path="request/batch/run", seconds=0.4,
                         trace_id="tr-x")
    recorder.record_span("batch", path="request/batch", seconds=0.5,
                         trace_id="tr-x")
    recorder.record_span("request", path="request", seconds=0.6,
                         trace_id="tr-x")
    recorder.record_span("noise", path="noise", seconds=0.1)

    entries = recorder.snapshot(kinds=("span",))["entries"]
    trees = stitch_spans(entries)
    assert set(trees) == {"tr-x", "untraced"}
    root = trees["tr-x"]
    assert root.attributes["trace_id"] == "tr-x"
    assert len(root.children) == 1
    chain = []
    span = root.children[0]
    while span is not None:
        chain.append(span.name)
        span = span.children[0] if span.children else None
    assert chain == ["request", "batch", "run", "level", "optimization"]
    assert trees["tr-x"].find("batch")[0].seconds == 0.5


def test_stitch_spans_repeated_paths_become_siblings():
    recorder = FlightRecorder(1 << 16)
    for i in range(3):
        recorder.record_span("level", path="run/level", seconds=0.1 * (i + 1),
                             trace_id="tr-y")
    recorder.record_span("run", path="run", seconds=1.0, trace_id="tr-y")
    trees = stitch_spans(recorder.snapshot(kinds=("span",))["entries"])
    (run,) = trees["tr-y"].children
    assert run.name == "run"
    assert [child.name for child in run.children] == ["level"] * 3


# --------------------------------------------------------------------- #
# Watchdog
# --------------------------------------------------------------------- #


def test_watchdog_fires_once_per_arming():
    fired = []
    ready = threading.Event()

    def on_stall(note):
        fired.append(note)
        ready.set()

    dog = Watchdog(0.05, on_stall)
    try:
        dog.arm("apply session=s1")
        assert ready.wait(2.0), "watchdog did not fire"
        time.sleep(0.15)
        assert fired == ["apply session=s1"]  # one-shot per arming
        assert dog.fired == 1
    finally:
        dog.close()


def test_watchdog_disarm_and_beat_prevent_firing():
    fired = []
    dog = Watchdog(0.08, fired.append)
    try:
        dog.arm("a")
        dog.disarm()
        time.sleep(0.2)
        assert fired == []
        dog.arm("b")
        for _ in range(4):
            time.sleep(0.04)
            dog.beat()  # keep extending the deadline
        dog.disarm()
        assert fired == []
    finally:
        dog.close()


def test_watchdog_callback_errors_do_not_kill_thread():
    calls = []

    def explode(note):
        calls.append(note)
        raise RuntimeError("boom")

    dog = Watchdog(0.04, explode)
    try:
        dog.arm("first")
        time.sleep(0.15)
        dog.arm("second")
        time.sleep(0.15)
        assert calls == ["first", "second"]
    finally:
        dog.close()


# --------------------------------------------------------------------- #
# Debug bundles
# --------------------------------------------------------------------- #


def test_build_debug_bundle_from_journals(tmp_path):
    journal_dir = tmp_path / "flight"
    recorder = FlightRecorder(1 << 16, journal=journal_dir / "flight-9.jsonl")
    recorder.record_log({"event": "before-crash", "cid": "req-abc"})
    recorder.record_span("batch", path="request", seconds=0.2,
                         trace_id="tr-dead")
    recorder.close()

    out = tmp_path / "bundle.tar.gz"
    manifest = build_debug_bundle(
        out, port=None, flight_dir=journal_dir, trajectory=None,
        reason="test-crash",
    )
    assert out.exists()
    assert manifest["reason"] == "test-crash"
    assert "flight.json" in manifest["pieces"]
    with tarfile.open(out) as tar:
        names = tar.getnames()
        assert {"flight.json", "env.json", "MANIFEST.json"} <= set(names)
        flight = json.load(tar.extractfile("flight.json"))
    assert validate_flight(flight) == []
    assert flight["source"] == "journal"
    kinds = {entry["kind"] for entry in flight["entries"]}
    assert kinds == {"log", "span"}


def test_build_debug_bundle_survives_everything_missing(tmp_path):
    out = tmp_path / "empty.tar.gz"
    manifest = build_debug_bundle(
        out, port=None, flight_dir=tmp_path / "nowhere", trajectory=None
    )
    assert out.exists()
    # env.json and the manifest itself are always there.
    assert "env.json" in manifest["pieces"]


def test_recorder_requires_positive_budget():
    with pytest.raises(ValueError):
        FlightRecorder(0)
