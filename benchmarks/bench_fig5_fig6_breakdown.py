"""Figures 5 and 6: per-stage time breakdown (optimization vs aggregation).

Paper, Figure 5 (road_usa): the first stage dominates, followed by a long
tail of cheap stages; ~70% of total time is modularity optimization and
~30% aggregation.  Figure 6 (nlpkkt200): the first stages barely shrink
the graph, then one expensive mid-hierarchy optimization phase appears
before the size collapses — behaviour the paper attributes to graphs
without a natural initial community structure (also seen on channel-500).
"""

from __future__ import annotations

import numpy as np

from repro.bench.reporting import banner, format_table
from repro.bench.runner import run_gpu, stage_breakdown
from repro.bench.suite import load_suite_graph

from _util import emit


def _render(name: str, run) -> str:
    rows = stage_breakdown(run.result)
    table = format_table(
        ["stage", "n", "E", "opt s", "agg s", "sweeps", "Q"],
        [
            [r.stage, r.num_vertices, r.num_edges, r.optimization_seconds,
             r.aggregation_seconds, r.sweeps, r.modularity]
            for r in rows
        ],
        floatfmt=".4f",
    )
    frac = run.result.timings.optimization_fraction()
    return f"{table}\noptimization fraction: {frac:.2f} (paper: ~0.70)"


def test_fig5_road_usa(benchmark):
    graph = load_suite_graph("road_usa")
    run = benchmark.pedantic(lambda: run_gpu(graph), rounds=2, iterations=1)
    text = _render("road_usa", run)
    emit("fig5_road_usa", banner("Figure 5: road_usa stage breakdown") + "\n" + text)

    rows = stage_breakdown(run.result)
    # The typical shape: an expensive first stage and a tail of stages.
    assert len(rows) >= 4
    first = rows[0].optimization_seconds + rows[0].aggregation_seconds
    tail = sum(r.optimization_seconds + r.aggregation_seconds for r in rows[2:])
    assert first > 0
    assert rows[0].num_vertices > rows[-1].num_vertices  # hierarchy shrinks


def test_fig6_nlpkkt200(benchmark):
    graph = load_suite_graph("nlpkkt200")
    run = benchmark.pedantic(lambda: run_gpu(graph), rounds=2, iterations=1)
    text = _render("nlpkkt200", run)
    emit("fig6_nlpkkt200", banner("Figure 6: nlpkkt200 stage breakdown") + "\n" + text)

    rows = stage_breakdown(run.result)
    # The Figure-6 hallmark at this scale: unlike the road-network's
    # 1-3-sweep tail stages, the kkt hierarchy keeps needing long
    # optimization phases after the first contraction (the paper's
    # "time consuming modularity optimization phase" mid-hierarchy,
    # before the size finally collapses).
    assert len(rows) >= 2
    assert max(r.sweeps for r in rows[1:]) >= 5


def test_optimization_dominates_aggregation(benchmark):
    """Across classes, optimization takes the larger share (paper ~70/30)."""
    fractions = []
    for name in ("road_usa", "com-youtube", "nlpkkt120", "rgg_n_2_22_s0"):
        graph = load_suite_graph(name)
        run = run_gpu(graph)
        fractions.append(run.result.timings.optimization_fraction())
    benchmark.pedantic(
        lambda: run_gpu(load_suite_graph("com-youtube")), rounds=2, iterations=1
    )
    emit(
        "fig5_fig6_opt_fraction",
        "mean optimization fraction over 4 classes: "
        f"{np.mean(fractions):.2f} (paper: ~0.70)",
    )
    assert np.mean(fractions) > 0.5
