"""Dependency-free runtime metrics: counters, gauges, histograms.

The offline half of observability lives in :mod:`repro.trace` (span
trees, ``repro.trace/1`` reports).  This module is the *runtime* half: a
small Prometheus-style registry that the serve/stream/shard/gpu layers
record into while they run, rendered on demand as Prometheus text
exposition (``GET /v1/metrics`` on :class:`~repro.serve.ReproServer`).

Design constraints mirror :mod:`repro.trace`:

* stdlib only — no prometheus_client, no third-party deps;
* thread-safe — one :class:`threading.RLock` per registry guards every
  mutation (the asyncio server offloads applies to executor threads, and
  shard phases record from the parent after joining workers);
* a no-op :data:`NULL_REGISTRY` mirrors ``NULL_TRACER`` so the disabled
  path costs a handful of attribute lookups and nothing else;
* instruments are registered idempotently — asking for an existing
  family with the same type/labels returns it, so layers that start and
  stop repeatedly (sessions, managers) share process-wide series.

Histograms use fixed log-scale latency buckets
(:data:`DEFAULT_LATENCY_BUCKETS`, 100 µs … 26.2 s, ×4 per step) so p50/p99
estimates stay meaningful from sub-millisecond batch applies up to
multi-second full reruns without per-deployment tuning.

Example::

    from repro.obs.metrics import MetricsRegistry

    reg = MetricsRegistry()
    reqs = reg.counter("repro_serve_requests_total", "Requests.",
                       labels=("route",))
    reqs.labels(route="health").inc()
    lat = reg.histogram("repro_serve_request_seconds", "Latency.")
    lat.observe(0.003)
    text = reg.render()   # Prometheus text exposition
"""

from __future__ import annotations

import math
import re
import threading
import time
from bisect import bisect_left

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
]

#: Fixed log-scale latency buckets (seconds): 1e-4 * 4**i for i in 0..9.
#: Upper bounds ~100 µs .. 26.2 s; everything slower lands in +Inf.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = tuple(1e-4 * 4**i for i in range(10))

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name: {name!r}")
    return name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus text exposition expects."""
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    if bound == math.inf:
        return "+Inf"
    return f"{bound:.10g}"


def _format_exemplar(exemplar: dict | None) -> str:
    """OpenMetrics exemplar suffix for one ``_bucket`` line (or '')."""
    if not exemplar:
        return ""
    pairs = ",".join(
        f'{k}="{_escape_label_value(v)}"'
        for k, v in sorted(exemplar["labels"].items())
    )
    return (
        f" # {{{pairs}}} {_format_value(exemplar['value'])} {exemplar['ts']:.3f}"
    )


def _label_suffix(labelnames: tuple[str, ...], labelvalues: tuple[str, ...]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


# --------------------------------------------------------------------- #
# Child instruments (one per label-value combination)
# --------------------------------------------------------------------- #
class _CounterChild:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class _GaugeChild:
    """A value that can go up and down (or be collected via callback)."""

    __slots__ = ("_lock", "_value", "fn")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value = 0.0
        self.fn = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        if self.fn is not None:
            try:
                return float(self.fn())
            except Exception:
                return float("nan")
        return self._value


class _HistogramChild:
    """Cumulative-bucket histogram with quantile estimation.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``
    (non-cumulative storage; cumulated at render/quantile time), with a
    final implicit +Inf bucket at ``bucket_counts[-1]``.

    Each bucket additionally remembers its most recent **exemplar** —
    the trace id / correlation id labels a caller attached to one
    observation — so a p99 spike in the exposition points straight at
    the request that caused it (OpenMetrics-style ``# {...} value ts``
    suffixes on ``_bucket`` lines).
    """

    __slots__ = ("_lock", "bounds", "bucket_counts", "sum", "count", "_exemplars")

    def __init__(self, lock: threading.RLock, bounds: tuple[float, ...]) -> None:
        self._lock = lock
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self._exemplars: dict[int, dict] = {}

    def observe(
        self, value: float, *, exemplar: dict[str, str] | None = None
    ) -> None:
        value = float(value)
        if value != value:  # NaN would silently poison sum and quantiles
            raise ValueError("cannot observe NaN")
        with self._lock:
            index = bisect_left(self.bounds, value)
            self.bucket_counts[index] += 1
            self.sum += value
            self.count += 1
            if exemplar:
                self._exemplars[index] = {
                    "labels": {str(k): str(v) for k, v in exemplar.items()},
                    "value": value,
                    "ts": round(time.time(), 3),
                }

    def exemplars(self) -> dict[int, dict]:
        """Snapshot of per-bucket exemplars (bucket index → exemplar)."""
        with self._lock:
            return {i: dict(e) for i, e in self._exemplars.items()}

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (0..1) from bucket counts.

        Linear interpolation inside the bucket that crosses the target
        rank (the same estimate Prometheus' ``histogram_quantile``
        produces).  Pinned edge cases:

        * an **empty** histogram reports ``0.0`` for every q;
        * ``q=0`` interpolates to the lower edge of the first occupied
          bucket, ``q=1`` to the upper bound of the last occupied one;
        * observations in the **+Inf overflow bucket** clamp to the
          largest finite bound (``bounds[-1]``) — the estimate is a
          lower bound there, not an interpolation;
        * a NaN (or out-of-range) ``q`` raises :class:`ValueError`
          rather than propagating NaN into dashboards.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            total = self.count
            if total == 0:
                return 0.0
            rank = q * total
            cumulative = 0
            for i, n in enumerate(self.bucket_counts):
                cumulative += n
                if cumulative >= rank and n > 0:
                    if i >= len(self.bounds):  # +Inf bucket
                        return self.bounds[-1] if self.bounds else 0.0
                    lower = self.bounds[i - 1] if i > 0 else 0.0
                    upper = self.bounds[i]
                    fraction = (rank - (cumulative - n)) / n
                    return lower + (upper - lower) * fraction
            return self.bounds[-1] if self.bounds else 0.0


# --------------------------------------------------------------------- #
# Families (a named metric plus its labelled children)
# --------------------------------------------------------------------- #
class _Family:
    """Base class: a named metric family with labelled children.

    A family declared with no label names owns a single default child
    and proxies its methods, so ``reg.counter("x").inc()`` works without
    an explicit ``.labels()`` hop.
    """

    kind = "untyped"
    _child_cls: type

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        lock: threading.RLock,
        **child_kwargs,
    ) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name: {label!r}")
        self._lock = lock
        self._child_kwargs = child_kwargs
        self._children: dict[tuple[str, ...], object] = {}
        if not self.labelnames:
            self._default = self._make_child()
            self._children[()] = self._default

    def _make_child(self):
        return self._child_cls(self._lock, **self._child_kwargs)

    def labels(self, **labelvalues):
        """Return (creating on first use) the child for these label values."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[k]) for k in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
        return child

    def children(self):
        """Snapshot of (labelvalues_tuple, child) pairs, sorted."""
        with self._lock:
            return sorted(self._children.items())

    def compatible(self, kind: str, labelnames: tuple[str, ...]) -> bool:
        return self.kind == kind and self.labelnames == tuple(labelnames)


class Counter(_Family):
    """A monotonically increasing counter family."""

    kind = "counter"
    _child_cls = _CounterChild

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    @property
    def value(self) -> float:
        return self._default.value


class Gauge(_Family):
    """A gauge family; supports callback collection via ``fn``."""

    kind = "gauge"
    _child_cls = _GaugeChild

    def set(self, value: float) -> None:
        self._default.set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default.dec(amount)

    @property
    def value(self) -> float:
        return self._default.value


class Histogram(_Family):
    """A histogram family with fixed buckets."""

    kind = "histogram"
    _child_cls = _HistogramChild

    def observe(
        self, value: float, *, exemplar: dict[str, str] | None = None
    ) -> None:
        self._default.observe(value, exemplar=exemplar)

    def exemplars(self) -> dict[int, dict]:
        return self._default.exemplars()

    def quantile(self, q: float) -> float:
        return self._default.quantile(q)

    @property
    def sum(self) -> float:
        return self._default.sum

    @property
    def count(self) -> int:
        return self._default.count

    @property
    def buckets(self) -> tuple[float, ...]:
        return self._child_kwargs["bounds"]


# --------------------------------------------------------------------- #
# Registries
# --------------------------------------------------------------------- #
class MetricsRegistry:
    """A process-local collection of metric families.

    ``counter`` / ``gauge`` / ``histogram`` register idempotently: a
    second call with the same name returns the existing family (and
    raises :class:`ValueError` if the type or label names differ).
    Callback gauges (``fn=``) replace the previous callback on
    re-registration, so a restarted server rebinds its live gauges to
    the new instance instead of reporting a dead closure.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}

    def _register(self, cls, name: str, help: str, labelnames, **kwargs):
        labelnames = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if not family.compatible(cls.kind, labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as {family.kind} "
                        f"with labels {family.labelnames}"
                    )
                return family
            family = cls(name, help, labelnames, self._lock, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "", labels=()) -> Counter:
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels=(), fn=None) -> Gauge:
        gauge = self._register(Gauge, name, help, labels)
        if fn is not None:
            if gauge.labelnames:
                raise ValueError("callback gauges cannot have labels")
            gauge._default.fn = fn
        return gauge

    def histogram(
        self,
        name: str,
        help: str = "",
        labels=(),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        buckets = tuple(sorted(float(b) for b in buckets))
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        family = self._register(Histogram, name, help, labels, bounds=buckets)
        if family._child_kwargs["bounds"] != buckets:
            raise ValueError(
                f"metric {name!r} already registered with different buckets"
            )
        return family

    def get(self, name: str) -> _Family | None:
        """Return an already-registered family, or None."""
        with self._lock:
            return self._families.get(name)

    def families(self) -> list[_Family]:
        with self._lock:
            return [self._families[k] for k in sorted(self._families)]

    def render(self) -> str:
        """Prometheus text exposition (format version 0.0.4)."""
        lines: list[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labelvalues, child in family.children():
                suffix = _label_suffix(family.labelnames, labelvalues)
                if family.kind == "histogram":
                    exemplars = child.exemplars()
                    cumulative = 0
                    for i, (bound, n) in enumerate(
                        zip(child.bounds, child.bucket_counts)
                    ):
                        cumulative += n
                        le = _label_suffix(
                            family.labelnames + ("le",),
                            labelvalues + (_format_bound(bound),),
                        )
                        lines.append(
                            f"{family.name}_bucket{le} {cumulative}"
                            f"{_format_exemplar(exemplars.get(i))}"
                        )
                    cumulative += child.bucket_counts[-1]
                    le = _label_suffix(
                        family.labelnames + ("le",), labelvalues + ("+Inf",)
                    )
                    lines.append(
                        f"{family.name}_bucket{le} {cumulative}"
                        f"{_format_exemplar(exemplars.get(len(child.bounds)))}"
                    )
                    lines.append(
                        f"{family.name}_sum{suffix} {_format_value(child.sum)}"
                    )
                    lines.append(f"{family.name}_count{suffix} {child.count}")
                else:
                    lines.append(
                        f"{family.name}{suffix} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


class _NullInstrument:
    """Absorbs every instrument method; shared by all null families."""

    __slots__ = ()

    def labels(self, **labelvalues):
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float, *, exemplar=None) -> None:
        pass

    def exemplars(self):
        return {}

    def quantile(self, q: float) -> float:
        return 0.0

    def children(self):
        return []

    value = 0.0
    sum = 0.0
    count = 0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The do-nothing registry — the metrics analogue of ``NULL_TRACER``.

    Every accessor returns one shared inert instrument, so code can
    record unconditionally and pay nothing when metrics are disabled.
    """

    enabled = False

    def counter(self, name: str, help: str = "", labels=()):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", labels=(), fn=None):
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "", labels=(), buckets=()):
        return _NULL_INSTRUMENT

    def get(self, name: str):
        return None

    def families(self):
        return []

    def render(self) -> str:
        return ""


#: Shared inert registry for the disabled path.
NULL_REGISTRY = NullRegistry()

_default_registry: MetricsRegistry = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (used by shard/gpu layers)."""
    return _default_registry


def set_registry(registry) -> None:
    """Swap the process-wide default (tests, or ``NULL_REGISTRY`` to disable)."""
    global _default_registry
    with _default_lock:
        _default_registry = registry
