"""Structural invariant checks for CSR graphs.

These run in tests and (optionally) at the boundaries of the aggregation
phase; they are cheap relative to the algorithms and catch the classic
contraction bugs (missing reverse edge, doubled self-loop, weight drift).
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph

__all__ = ["check_symmetric", "check_sorted_rows", "check_no_parallel_edges", "validate"]


def check_symmetric(graph: CSRGraph, *, tol: float = 1e-9) -> None:
    """Raise ``AssertionError`` unless every edge has a matching reverse.

    The check compares the multiset of ``(u, v, w)`` with ``(v, u, w)``.
    """
    u = graph.vertex_of_edge
    v = graph.indices
    w = graph.weights
    fwd = np.lexsort((v, u))
    rev = np.lexsort((u, v))
    if not (
        np.array_equal(u[fwd], v[rev])
        and np.array_equal(v[fwd], u[rev])
        and np.allclose(w[fwd], w[rev], atol=tol, rtol=0)
    ):
        raise AssertionError("graph is not symmetric")


def check_sorted_rows(graph: CSRGraph) -> None:
    """Raise unless each row's neighbour ids are strictly increasing."""
    for v in range(graph.num_vertices):
        row = graph.neighbors(v)
        if row.size > 1 and np.any(np.diff(row) <= 0):
            raise AssertionError(f"row {v} is not strictly sorted")


def check_no_parallel_edges(graph: CSRGraph) -> None:
    """Raise if any row contains a repeated neighbour id."""
    u = graph.vertex_of_edge
    v = graph.indices
    key = u * graph.num_vertices + v
    if np.unique(key).size != key.size:
        raise AssertionError("graph contains parallel edges")


def validate(graph: CSRGraph) -> None:
    """Run all canonical-form checks (symmetry, sortedness, no duplicates)."""
    check_symmetric(graph)
    check_sorted_rows(graph)
    check_no_parallel_edges(graph)
