"""``computeMove`` (Algorithm 2): best-community selection per vertex.

Two interchangeable engines implement identical *semantics*:

* :func:`compute_moves_vectorized` — the NumPy data-parallel engine.  The
  per-vertex hash accumulation of ``e_{i->c}`` is replaced by a sort +
  segmented reduction over the bucket's edges, which computes exactly the
  same sums; scoring, the strict positive-gain rule, lowest-id tie-breaks
  and the singleton constraint follow the paper.
* :func:`compute_moves_simulated` — a thread-level replay using the real
  open-addressing hash tables of :mod:`repro.gpu.hashtable`, charging
  probes/atomics/divergence to the cost model and returning
  :class:`~repro.gpu.profiler.KernelStats`.

Both return, for each requested vertex, the community it should join —
``newComm`` of Alg. 1 line 7 — decided from the *current* snapshot (the
per-bucket synchronous model of the paper).

Scoring recap (Eq. 2, with the constant ``e_{i->C(i)\\{i}} / m`` term kept
so the move test is the full positive-gain rule):

* ``score(c) = e_{i->c} / m - k_i * a_c^{(-i)} / (2 m^2)`` where
  ``a_c^{(-i)}`` excludes ``i``'s own degree when ``c == C(i)``;
* move to ``argmax_c score(c)`` over neighbouring communities iff it
  strictly beats ``score(C(i))``; ties break to the lowest community id.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..gpu.costmodel import CostModel, WorkItem, warp_schedule
from ..gpu.hashtable import CommunityHashTable
from ..gpu.profiler import KernelStats
from ..gpu.thrust import gather_rows
from .buckets import Bucket

__all__ = ["compute_moves_vectorized", "compute_moves_simulated"]


def compute_moves_vectorized(
    graph: CSRGraph,
    comm: np.ndarray,
    volumes: np.ndarray,
    comm_sizes: np.ndarray,
    vertices: np.ndarray,
    *,
    k: np.ndarray | None = None,
    singleton_constraint: bool = True,
    resolution: float = 1.0,
) -> np.ndarray:
    """Vectorized Alg. 2 for a set of vertices; returns their new community.

    Parameters
    ----------
    comm, volumes, comm_sizes:
        Current community of every vertex, ``a_c`` per community label and
        community sizes (labels index all three).
    vertices:
        The bucket's members (any subset of vertices).
    k:
        Weighted degrees (recomputed if omitted).
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    n = graph.num_vertices
    if vertices.size == 0:
        return np.empty(0, dtype=np.int64)
    if k is None:
        k = graph.weighted_degrees
    m = graph.m
    own = comm[vertices]
    new_comm = own.copy()
    if m == 0.0:
        return new_comm

    edge_pos, owner_local = gather_rows(graph.indptr, vertices)
    dst = graph.indices[edge_pos]
    w = graph.weights[edge_pos]
    not_loop = dst != vertices[owner_local]
    owner_local = owner_local[not_loop]
    dst_comm = comm[dst[not_loop]]
    w = w[not_loop]
    if owner_local.size == 0:
        return new_comm

    # Segmented "hash accumulate": e_{i->c} per (vertex, community) pair.
    # A combined int64 key + stable argsort hits NumPy's radix path and is
    # ~50x faster than np.lexsort on these sizes (profiled; see the
    # optimization guide's "measure first" workflow).
    order = np.argsort(owner_local * np.int64(n) + dst_comm, kind="stable")
    owner_local = owner_local[order]
    dst_comm = dst_comm[order]
    w = w[order]
    is_boundary = np.concatenate(
        ([True], (owner_local[1:] != owner_local[:-1]) | (dst_comm[1:] != dst_comm[:-1]))
    )
    starts = np.flatnonzero(is_boundary)
    pv = owner_local[starts]  # local vertex index per pair
    pc = dst_comm[starts]  # community per pair
    pe = np.add.reduceat(w, starts)  # e_{i->c} per pair

    # Per-local-vertex quantities.
    e_own = np.zeros(vertices.size, dtype=np.float64)
    own_pair = pc == own[pv]
    e_own[pv[own_pair]] = pe[own_pair]
    kv = k[vertices]
    a_own_excl = volumes[own] - kv

    two_m_sq = 2.0 * m * m
    # Gain of moving local vertex pv to pc (candidates only).
    gain = (pe - e_own[pv]) / m + resolution * kv[pv] * (
        a_own_excl[pv] - volumes[pc]
    ) / two_m_sq
    valid = ~own_pair
    if singleton_constraint:
        i_singleton = comm_sizes[own[pv]] == 1
        target_singleton = comm_sizes[pc] == 1
        blocked = i_singleton & target_singleton & (pc > own[pv])
        valid &= ~blocked
    gain = np.where(valid, gain, -np.inf)

    # Per-vertex argmax with lowest-community-id tie-break.
    group_start = np.flatnonzero(
        np.concatenate(([True], pv[1:] != pv[:-1]))
    )
    group_vertex = pv[group_start]
    max_gain = np.maximum.reduceat(gain, group_start)
    max_gain_per_pair = np.repeat(max_gain, np.diff(np.append(group_start, pv.size)))
    tie_candidate = np.where(gain == max_gain_per_pair, pc, n)
    best_c = np.minimum.reduceat(tie_candidate, group_start)

    moves = max_gain > 0.0
    new_comm[group_vertex[moves]] = best_c[moves]
    return new_comm


def compute_moves_simulated(
    graph: CSRGraph,
    comm: np.ndarray,
    volumes: np.ndarray,
    comm_sizes: np.ndarray,
    bucket: Bucket,
    cost_model: CostModel,
    *,
    k: np.ndarray | None = None,
    singleton_constraint: bool = True,
    resolution: float = 1.0,
) -> tuple[np.ndarray, KernelStats]:
    """Thread-level Alg. 2 replay for one degree bucket.

    Hashes every neighbour (self-loops into the own community, as the CUDA
    kernel does), selects the best move with the same rules as the
    vectorized engine, and charges the cost model for the group-size /
    memory-space configuration of ``bucket``:

    * buckets with ``group_size < warp`` pack ``warp/group`` vertices per
      warp (divergence = max over the packed groups);
    * the last bucket (and only it) keeps its hash table in global memory
      and is charged global-latency probes/atomics — the shared/global
      distinction of Section 4.1.
    """
    vertices = bucket.members
    device = cost_model.device
    stats = KernelStats(name=f"computeMove[bucket {bucket.index}]")
    new_comm = comm[vertices].copy() if vertices.size else np.empty(0, dtype=np.int64)
    if vertices.size == 0:
        return new_comm, stats
    if k is None:
        k = graph.weighted_degrees
    m = graph.m
    shared = bucket.upper != -1  # unbounded (last) bucket -> global memory
    group = max(1, bucket.group_size)

    vertex_cycles = np.zeros(vertices.size, dtype=np.float64)
    table_sizes = np.zeros(vertices.size, dtype=np.float64)
    for idx, v in enumerate(vertices.tolist()):
        own = int(comm[v])
        neighbours = graph.neighbors(v)
        wts = graph.neighbor_weights(v)
        deg = int(neighbours.size)
        table = CommunityHashTable(deg)
        loop_weight = 0.0
        for nb, wt in zip(neighbours.tolist(), wts.tolist()):
            if nb == v:
                table.add(own, wt)
                loop_weight += wt
            else:
                table.add(int(comm[nb]), wt)

        kv = float(k[v])
        a_own_excl = float(volumes[own]) - kv
        e_own = table.get(own) - loop_weight
        two_m_sq = 2.0 * m * m
        best_c = own
        best_gain = 0.0
        for c, e_vc in sorted(table.items()):
            if c == own:
                continue
            if (
                singleton_constraint
                and comm_sizes[own] == 1
                and comm_sizes[c] == 1
                and c > own
            ):
                continue
            # Same expression (and evaluation order) as the vectorized
            # engine, so both compute bitwise-identical gains.
            gain = (e_vc - e_own) / m + resolution * kv * (
                a_own_excl - float(volumes[c])
            ) / two_m_sq
            if gain > best_gain:
                best_gain = gain
                best_c = c
        new_comm[idx] = best_c

        work = WorkItem(
            edges=deg,
            probes=table.stats.probes,
            atomics=table.stats.inserts
            + table.stats.accumulates
            + table.stats.cas_attempts,
        )
        vertex_cycles[idx] = cost_model.vertex_cycles(work, group, shared=shared)
        stats.active_thread_cycles += cost_model.active_cycles(work, shared=shared)
        stats.hash_stats.merge(table.stats)
        table_bytes = table.size * 12
        if shared:
            stats.shared_bytes += table_bytes
        else:
            table_sizes[idx] = table_bytes
        stats.num_edges += deg

    if group <= device.warp_size:
        groups_per_warp = device.warp_size // group
        warp_cycles, num_warps = warp_schedule(vertex_cycles, groups_per_warp)
    elif shared:
        # Block-wide processing (bucket 6): one vertex per 128-thread
        # block; the block's warps all run for the vertex's duration.
        warps_per_block = group // device.warp_size
        warp_cycles = float(vertex_cycles.sum()) * warps_per_block
        num_warps = vertices.size * warps_per_block
    else:
        # Bucket 7 (Section 4.1): global-memory tables are a fixed
        # allocation, so several vertices share a block and are processed
        # sequentially, re-using the table.  "To ensure a good load
        # balance ... vertices in group seven are initially sorted by
        # degree before the vertices are assigned to thread blocks in an
        # interleaved fashion."
        warps_per_block = group // device.warp_size
        concurrent_blocks = max(1, min(vertices.size, device.num_sms * 4))
        order = np.argsort(-graph.degrees[vertices], kind="stable")
        block_cycles = np.zeros(concurrent_blocks, dtype=np.float64)
        block_table = np.zeros(concurrent_blocks, dtype=np.float64)
        for position, vertex_idx in enumerate(order.tolist()):
            block = position % concurrent_blocks
            block_cycles[block] += vertex_cycles[vertex_idx]
            block_table[block] = max(block_table[block], table_sizes[vertex_idx])
        # Blocks run concurrently; each occupies its warps for its total.
        warp_cycles = float(block_cycles.sum()) * warps_per_block
        num_warps = concurrent_blocks * warps_per_block
        stats.global_bytes += int(block_table.sum())  # reused allocations
    stats.warp_cycles += warp_cycles
    stats.issued_thread_cycles += warp_cycles * device.warp_size
    stats.num_warps += num_warps
    stats.num_vertices += int(vertices.size)
    return new_comm, stats
