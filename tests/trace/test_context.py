"""TraceContext propagation and the tracer → flight-recorder hook."""

from __future__ import annotations

import pickle

from repro.obs.flight import FlightRecorder
from repro.trace import (
    NULL_TRACER,
    TraceContext,
    Tracer,
    bind_trace_context,
    current_trace_context,
    new_trace_id,
    trace_context,
    unbind_trace_context,
)


def test_new_trace_id_shape():
    tid = new_trace_id()
    assert tid.startswith("tr-")
    assert len(tid) == 3 + 16
    assert tid != new_trace_id()


def test_bind_unbind_round_trip():
    assert current_trace_context() is None
    ctx = TraceContext(new_trace_id())
    token = bind_trace_context(ctx)
    try:
        assert current_trace_context() is ctx
    finally:
        unbind_trace_context(token)
    assert current_trace_context() is None


def test_trace_context_manager_mints_when_missing():
    with trace_context() as ctx:
        assert current_trace_context() is ctx
        assert ctx.trace_id.startswith("tr-")
    assert current_trace_context() is None


def test_child_extends_span_path():
    ctx = TraceContext("tr-abc")
    child = ctx.child("request").child("batch")
    assert child.trace_id == "tr-abc"
    assert child.span_path == "request/batch"


def test_round_trips_dict_and_pickle():
    ctx = TraceContext("tr-abc", span_path="request")
    assert TraceContext.from_dict(ctx.to_dict()) == ctx
    assert TraceContext.from_dict({}) is None
    assert pickle.loads(pickle.dumps(ctx)) == ctx  # shard wire format


def test_tracer_records_closed_spans_into_flight():
    flight = FlightRecorder(1 << 16)
    tracer = Tracer(flight=flight, trace_id="tr-fixed")
    with tracer.span("run"):
        with tracer.span("level", level=0):
            with tracer.span("optimization") as span:
                span.count(moves=7)

    entries = flight.snapshot(kinds=("span",))["entries"]
    # Spans close inner-first; each path ends with the span's own name.
    assert [(e["name"], e["path"]) for e in entries] == [
        ("optimization", "run/level/optimization"),
        ("level", "run/level"),
        ("run", "run"),
    ]
    assert all(e["trace_id"] == "tr-fixed" for e in entries)
    assert entries[0]["counters"] == {"moves": 7}
    assert entries[1]["attributes"] == {"level": 0}


def test_attached_and_event_spans_reach_flight():
    from repro.trace import Span

    flight = FlightRecorder(1 << 16)
    tracer = Tracer(flight=flight, trace_id="tr-coord")
    with tracer.span("run"):
        tracer.event("gather", seconds=0.05, counters={"hits": 3})
        # A worker-built span carries its own trace id (wire format).
        tracer.attach(Span("shard", attributes={"trace_id": "tr-wire"},
                           seconds=0.2))

    entries = flight.snapshot(kinds=("span",))["entries"]
    by_name = {e["name"]: e for e in entries}
    assert by_name["gather"]["path"] == "run/gather"
    assert by_name["gather"]["trace_id"] == "tr-coord"
    assert by_name["shard"]["path"] == "run/shard"
    assert by_name["shard"]["trace_id"] == "tr-wire"  # span's own id wins


def test_tracer_without_flight_is_unchanged():
    tracer = Tracer()
    assert tracer.flight is None
    with tracer.span("run"):
        pass
    assert len(tracer.roots) == 1


def test_disabled_flight_is_dropped_at_construction():
    flight = FlightRecorder(1 << 16)
    flight.enabled = False
    assert Tracer(flight=flight).flight is None


def test_null_tracer_has_no_flight():
    assert NULL_TRACER.flight is None
    assert NULL_TRACER.trace_id is None


def test_flight_span_defaults_trace_id_from_context():
    flight = FlightRecorder(1 << 16)
    tracer = Tracer(flight=flight)  # no explicit trace id
    with trace_context(TraceContext("tr-ambient")):
        with tracer.span("run"):
            pass
    (entry,) = flight.snapshot(kinds=("span",))["entries"]
    assert entry["trace_id"] == "tr-ambient"
