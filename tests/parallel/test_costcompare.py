"""Tests for the work-distribution cost comparison (the bucketing thesis)."""


from repro.graph.generators import lattice3d, rmat, star
from repro.gpu.costmodel import CostModel
from repro.parallel.costcompare import (
    bucketed_sweep_cycles,
    estimate_work,
    node_centric_sweep_cycles,
    single_group_sweep_cycles,
)
from repro.parallel.sortbased import sort_kernel_cycles

CM = CostModel()


def test_estimate_work_fields():
    w = estimate_work(16)
    assert w.edges == 16
    assert w.probes == 20  # ceil(1.25 * 16)
    assert w.atomics == 16


def test_bucketed_beats_node_centric_on_skewed():
    """The paper's core claim, in the cost model."""
    g = rmat(11, 16, rng=0)
    assert g.degrees.max() > 300  # genuinely skewed
    bucketed = bucketed_sweep_cycles(g, CM)
    node_centric = node_centric_sweep_cycles(g, CM)
    assert node_centric > 3 * bucketed


def test_star_is_worst_case_for_node_centric():
    g = star(1000)
    bucketed = bucketed_sweep_cycles(g, CM)
    node_centric = node_centric_sweep_cycles(g, CM)
    assert node_centric > 5 * bucketed


def test_regular_graph_gap_is_small():
    """On uniform degrees the bucketing advantage shrinks to the
    shared-vs-global and threads-per-vertex constant factors."""
    g = lattice3d(12, 12, 12)  # uniform degree 6
    bucketed = bucketed_sweep_cycles(g, CM)
    node_centric = node_centric_sweep_cycles(g, CM)
    skew = rmat(11, 16, rng=0)
    skew_ratio = node_centric_sweep_cycles(skew, CM) / bucketed_sweep_cycles(skew, CM)
    regular_ratio = node_centric / bucketed
    assert regular_ratio < skew_ratio


def test_single_group_intermediate():
    """A single global group size sits between bucketing and node-centric
    on skewed inputs (it wastes threads on small vertices or strides on
    big ones)."""
    g = rmat(10, 16, rng=1)
    bucketed = bucketed_sweep_cycles(g, CM)
    fixed32 = single_group_sweep_cycles(g, CM, 32)
    fixed4 = single_group_sweep_cycles(g, CM, 4)
    assert bucketed <= fixed32 * 1.05  # bucketing never much worse
    assert bucketed <= fixed4 * 1.05


def test_sort_kernel_costlier_than_hash_per_edge():
    """deg*log(deg) sorting vs ~1.25 probes: hashing wins on dense rows."""
    g = rmat(10, 16, rng=2)
    hash_cycles = bucketed_sweep_cycles(g, CM)
    sort_cycles = sort_kernel_cycles(g, CM)
    assert sort_cycles > hash_cycles


def test_cycles_positive_and_scale():
    small = rmat(8, 8, rng=3)
    large = rmat(10, 8, rng=3)
    assert 0 < bucketed_sweep_cycles(small, CM) < bucketed_sweep_cycles(large, CM)
