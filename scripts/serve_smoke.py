#!/usr/bin/env python
"""Smoke test for ``python -m repro serve`` — the CI ``serve-smoke`` job.

Spawns a real server subprocess on an ephemeral port, then drives the
documented lifecycle over the wire with :class:`repro.serve.ServeClient`:

1. create two named sessions (generated graphs, exact screening),
2. stream interleaved edge batches into both,
3. partition queries (community_of / members / top-k),
4. RunReport retrieval with the config fingerprint,
5. snapshot + evict, then a query that transparently restores,
6. error-code checks (404 / 409 / 400 paths) — every error response
   carries an ``X-Repro-Cid`` header the client surfaces,
7. /v1/metrics scrape — required series present with sane values, and
   slow-path histograms carry ``# {...}`` exemplars with trace ids,
8. /v1/debug/flight returns a validating ``repro.flight/1`` snapshot,
   and ``repro debug-bundle`` builds a tarball from the live server,
9. delete, shutdown, and a clean subprocess exit,
10. every structured log line the server emitted validates against the
    ``repro.log/1`` schema, with session_created / batch_applied present.

Exits 0 on success; any assertion or protocol error is fatal.  Run from
the repository root: ``python scripts/serve_smoke.py``.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.obs.flight import stitch_spans, validate_flight  # noqa: E402
from repro.obs.logs import validate_log_line  # noqa: E402
from repro.serve import ServeClient, ServeError  # noqa: E402

#: Series the scrape must expose after the mixed workload above.
REQUIRED_SERIES = (
    "repro_serve_requests_total",
    "repro_serve_request_seconds_bucket",
    "repro_serve_batch_requests_total",
    "repro_serve_applies_total",
    "repro_serve_coalesced_requests_total",
    "repro_serve_coalesce_fold_ratio",
    "repro_serve_apply_seconds_bucket",
    "repro_serve_queue_depth",
    "repro_serve_workers_busy",
    "repro_serve_sessions_created_total",
    "repro_serve_sessions_restored_total",
    "repro_serve_sessions_evicted_total",
    "repro_serve_snapshots_total",
    "repro_serve_sessions_resident",
    "repro_serve_resident_bytes",
    "repro_serve_errors_total",
    "repro_stream_batch_seconds_bucket",
    "repro_stream_frontier_fraction",
)


def series_value(text: str, name: str, **labels: str) -> float:
    """The value of one exposition line (label order-insensitive)."""
    for line in text.splitlines():
        if not line.startswith(name) or line.startswith("#"):
            continue
        # Exemplar'd lines end with " # {labels} value ts" — the series
        # value is whatever precedes that suffix.
        line = line.split(" # ", 1)[0]
        metric, _, value = line.rpartition(" ")
        base, _, label_str = metric.partition("{")
        if base != name:
            continue
        have = dict(re.findall(r'(\w+)="([^"]*)"', label_str))
        if all(have.get(k) == v for k, v in labels.items()):
            return float(value)
    raise AssertionError(f"series {name} {labels} not found in exposition")


def expect_error(code: str, fn) -> None:
    try:
        fn()
    except ServeError as exc:
        assert exc.code == code, f"expected {code}, got {exc.code}: {exc.message}"
        assert exc.cid and exc.cid.startswith("req-"), (
            f"error envelope for {code} lost its correlation id: {exc.cid!r}"
        )
        print(f"  error path ok: {code} (HTTP {exc.status}, cid {exc.cid})")
        return
    raise AssertionError(f"expected ServeError {code}, got success")


def main() -> int:
    snapshot_dir = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    flight_dir = str(Path(snapshot_dir) / "flight")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--snapshot-dir", snapshot_dir, "--max-sessions", "4",
         "--flight-dir", flight_dir, "--exemplar-ms", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
        cwd=REPO,
    )
    captured: list[str] = []
    try:
        # Structured JSON log lines (stderr) interleave with the listen
        # banner (stdout) in the merged pipe; scan until the banner.
        match = None
        for _ in range(50):
            line = proc.stdout.readline()
            if not line:
                break
            captured.append(line)
            match = re.search(r"http://([\d.]+):(\d+)", line)
            if match:
                break
        assert match, f"no listen line from server, got: {captured!r}"
        port = int(match.group(2))
        print(f"server up on port {port}")

        client = ServeClient(port=port)
        health = client.health()
        assert health["ok"] is True and health["status"] == "ready", health
        assert health["uptime_seconds"] >= 0.0, health
        assert health["version"] and health["build"], health
        live = client.health(live=True)
        assert live["ok"] is True and live["status"] == "alive", live
        assert client.last_cid and client.last_cid.startswith("req-")
        print(f"health ok: ready; liveness probe alive "
              f"(v{health['version']} build {health['build']})")

        # 1. two sessions
        left = client.create_session(
            "left", generate={"family": "caveman", "n": 60, "m": 6},
            config={"screening": "exact"},
        )
        right = client.create_session(
            "right", generate={"family": "social", "n": 400, "m": 5, "seed": 3},
            config={"screening": "local"},
        )
        assert left["num_vertices"] == 60
        assert right["num_vertices"] == 400
        print(f"sessions created: left Q={left['modularity']:.4f}, "
              f"right Q={right['modularity']:.4f}")

        # 2. interleaved batches
        for i in range(3):
            a = client.batch("left", add=([i], [30 + i], [1.0]))
            b = client.batch("right", add=([i * 5], [i * 7 + 1]),
                             remove=None)
            assert a["batch"] == i + 1 and b["batch"] == i + 1
            assert a["coalesced"] >= 1
        print(f"streamed 3 batches each: left Q={a['modularity']:.4f}, "
              f"right Q={b['modularity']:.4f}")

        # 3. queries
        community = client.community_of("left", 0)
        members = client.members("left", community)
        assert 0 in members
        top = client.top("left", 3, by="size")
        assert len(top) == 3 and top[0]["size"] >= top[-1]["size"]
        volume_top = client.top("right", 2, by="volume")
        assert len(volume_top) == 2
        print(f"queries ok: v0 in community {community} "
              f"({len(members)} members); top sizes "
              f"{[t['size'] for t in top]}")

        # 4. reports carry the config fingerprint
        report = client.report("left", which="last")["report"]
        assert report["result"]["batch"] == 3
        fingerprint = report["meta"]["fingerprint"]
        assert re.fullmatch(r"[0-9a-f]{12}", fingerprint)
        print(f"report ok: batch 3, fingerprint {fingerprint}")

        # 5. snapshot, evict, transparent restore
        snapshot = client.snapshot("left")
        assert Path(snapshot).exists()
        before = [client.community_of("left", v) for v in range(60)]
        client.evict("left")
        rows = {r["name"]: r["resident"] for r in client.list_sessions()}
        assert rows == {"left": False, "right": True}
        after = [client.community_of("left", v) for v in range(60)]
        assert before == after, "restore changed the partition"
        stats = client.stats()
        assert stats["sessions"]["restored"] == 1
        assert stats["batches"]["requests"] == 6
        print(f"snapshot/evict/restore ok: stats {stats['sessions']}")

        # 6. error paths
        expect_error("session_not_found", lambda: client.info("ghost"))
        expect_error("session_exists",
                     lambda: client.create_session(
                         "left", generate={"family": "karate"}))
        expect_error("invalid_name",
                     lambda: client.create_session(
                         "no/slashes", generate={"family": "karate"}))
        expect_error("vertex_out_of_range",
                     lambda: client.community_of("left", 10 ** 9))
        expect_error("invalid_batch",
                     lambda: client.batch("left", remove=([0], [59])))

        # 7. metrics scrape: required series exist with sane values
        text = client.metrics()
        for series in REQUIRED_SERIES:
            assert series in text, f"missing series {series}"
        # 7 batch requests: 6 applied + the invalid_batch rejection, which
        # is counted on enqueue but never becomes an apply.
        assert series_value(text, "repro_serve_batch_requests_total") == 7
        assert series_value(text, "repro_serve_sessions_created_total") == 2
        assert series_value(text, "repro_serve_sessions_restored_total") == 1
        assert series_value(text, "repro_serve_sessions_evicted_total") == 1
        assert series_value(text, "repro_serve_snapshots_total") >= 1
        assert series_value(text, "repro_serve_sessions_resident") == 2
        assert series_value(text, "repro_serve_resident_bytes") > 0
        assert series_value(
            text, "repro_serve_errors_total", code="session_not_found") == 1
        assert series_value(
            text, "repro_serve_apply_seconds_count", session="left") >= 1
        applies = series_value(text, "repro_serve_applies_total")
        coalesced = series_value(text, "repro_serve_coalesced_requests_total")
        assert applies + coalesced == 6, (applies, coalesced)
        assert series_value(
            text, "repro_serve_requests_total",
            route="session/batch", method="POST") == 7
        # With --exemplar-ms 0 every batch observation carries an
        # exemplar; the exposition suffixes its bucket line with one.
        exemplar_lines = [
            line for line in text.splitlines()
            if line.startswith("repro_serve_apply_seconds_bucket")
            and " # {" in line and 'trace_id="tr-' in line
        ]
        assert exemplar_lines, "no exemplars in the apply histogram"
        stats = client.stats()
        assert stats["uptime_seconds"] >= 0.0 and stats["version"], stats
        exemplar_rows = stats["exemplars"]["repro_serve_apply_seconds"]
        trace_id = next(
            row["exemplar"]["labels"]["trace_id"]
            for row in exemplar_rows
            if row["exemplar"]["labels"].get("trace_id")
        )
        print(f"metrics ok: {len(REQUIRED_SERIES)} required series, "
              f"{applies:.0f} applies + {coalesced:.0f} coalesced, "
              f"exemplar → {trace_id}")

        # 8. flight recorder snapshot + debug bundle
        flight = client.debug_flight()
        problems = validate_flight(flight)
        assert not problems, problems
        assert flight["source"] == "ring" and flight["entries"]
        resolved = client.debug_flight(trace_id=trace_id, kinds="span")
        assert resolved["entries"], f"exemplar trace {trace_id} not in ring"
        trees = stitch_spans(resolved["entries"])
        assert trace_id in trees, (trace_id, sorted(trees))
        bundle_path = Path(snapshot_dir) / "smoke-bundle.tar.gz"
        bundle = subprocess.run(
            [sys.executable, "-m", "repro", "debug-bundle",
             "--port", str(port), "--flight-dir", flight_dir,
             "-o", str(bundle_path)],
            capture_output=True, text=True, env=env, cwd=REPO, timeout=60,
        )
        assert bundle.returncode == 0, bundle.stderr
        assert bundle_path.exists()
        import tarfile

        with tarfile.open(bundle_path) as tar:
            names = set(tar.getnames())
            assert {"flight.json", "metrics.txt", "stats.json",
                    "MANIFEST.json"} <= names, names
            bundled = json.load(tar.extractfile("flight.json"))
        assert not validate_flight(bundled), "bundled flight invalid"
        print(f"flight ok: {len(flight['entries'])} ring entries, "
              f"trace {trace_id} stitches; bundle has {len(names)} pieces")

        # 9. delete and clean shutdown
        client.delete("right")
        assert [r["name"] for r in client.list_sessions()] == ["left"]
        client.shutdown()
        code = proc.wait(timeout=15)
        assert code == 0, f"server exited {code}"
        print("clean shutdown: exit 0")

        # 10. every structured log line validates against repro.log/1
        captured.extend(proc.stdout.readlines())
        records = []
        for line in captured:
            line = line.strip()
            if not line.startswith("{"):
                continue  # human-readable banner lines
            record = json.loads(line)
            problems = validate_log_line(record)
            assert not problems, (problems, record)
            records.append(record)
        events = [r["event"] for r in records]
        for required in ("server_started", "session_created",
                         "batch_applied", "snapshot_written",
                         "session_evicted", "request_error",
                         "session_deleted", "server_stopping"):
            assert required in events, f"missing log event {required}"
        applied = next(r for r in records if r["event"] == "batch_applied")
        assert applied["span_path"].startswith("batch[")
        assert applied["cids"], "batch_applied lost its correlation ids"
        print(f"logs ok: {len(records)} lines validate, "
              f"{len(set(events))} distinct events")
        print("SERVE SMOKE OK")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        rest = proc.stdout.read()
        if rest.strip():
            print("--- server output ---")
            print(rest.strip())


if __name__ == "__main__":
    sys.exit(main())
