"""Scaling study: the speedup trend with graph size.

Not a single paper figure, but the pattern underlying Table 1: the paper's
largest speedups come from its largest graphs (the GPU amortises fixed
overheads and fills the device), while its smallest graphs gain least.
The same mechanism exists in this reproduction (NumPy amortises dispatch
overhead over array length), so the speedup of the data-parallel engine
over the interpreted baseline must *grow with scale* — evidence that the
measured Table-1 factors are substrate-limited, not algorithm-limited.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.reporting import banner, format_table
from repro.bench.runner import run_gpu, run_sequential
from repro.bench.suite import suite_entry
from repro.trace import report_from_result

from _util import emit, emit_report

GRAPH_NAMES = ("com-youtube", "italy_osm", "rgg_n_2_22_s0")
SCALES = (0.25, 0.5, 1.0, 2.0)


@pytest.fixture(scope="module")
def scaling_rows():
    rows = []
    reports = []
    for name in GRAPH_NAMES:
        entry = suite_entry(name)
        for scale in SCALES:
            graph = entry.load(scale)
            seq = run_sequential(graph)
            gpu = run_gpu(graph)
            rows.append(
                (
                    name,
                    scale,
                    graph.num_vertices,
                    graph.num_edges,
                    seq.seconds,
                    gpu.seconds,
                    seq.seconds / gpu.seconds,
                )
            )
            for run, engine in ((seq, "seq"), (gpu, "vectorized")):
                reports.append(
                    report_from_result(
                        run.result,
                        kind="run",
                        graph=name,
                        engine=engine,
                        solver=run.name,
                        scale=scale,
                        num_vertices=graph.num_vertices,
                        num_edges=graph.num_edges,
                        seconds=round(run.seconds, 6),
                    )
                )
    return rows, reports


def test_speedup_grows_with_scale(benchmark, scaling_rows):
    rows, reports = scaling_rows
    graph = suite_entry(GRAPH_NAMES[0]).load(1.0)
    benchmark.pedantic(lambda: run_gpu(graph), rounds=2, iterations=1)

    table = format_table(
        ["graph", "scale", "n", "E", "seq s", "gpu s", "speedup"],
        [list(r) for r in rows],
    )
    trends = []
    for name in GRAPH_NAMES:
        series = [r[6] for r in rows if r[0] == name]
        trends.append(series[-1] / series[0])
    summary = (
        "speedup(scale=2) / speedup(scale=0.25) per graph: "
        + ", ".join(f"{t:.2f}x" for t in trends)
        + "\n(the paper's Table-1 pattern: larger graphs -> larger speedups)"
    )
    emit("scaling_study", banner("Scaling study") + "\n" + table + "\n\n" + summary)
    emit_report("scaling_study", reports, trajectory=True)

    # The trend must be positive on average and for most graphs.
    assert np.mean(trends) > 1.3
    assert sum(1 for t in trends if t > 1.0) >= 2
