"""Tests for the multi-GPU driver (Section-6 future work)."""

import numpy as np
import pytest

from repro.graph.generators import caveman, lfr_like
from repro.metrics.modularity import modularity
from repro.metrics.quality import adjusted_rand_index
from repro.parallel.multigpu import cut_statistics, multigpu_louvain
from repro.seq.louvain import louvain as seq_louvain


def test_single_device_close_to_gpu(karate):
    from repro.core.gpu_louvain import gpu_louvain

    multi = multigpu_louvain(karate, num_devices=1)
    single = gpu_louvain(karate)
    # One device = the whole graph in phase A; merge adds a refinement
    # pass, so quality must be at least as good.
    assert multi.modularity >= single.modularity - 1e-9


def test_result_consistency(karate):
    result = multigpu_louvain(karate, num_devices=2, rng=0)
    assert result.membership.shape == (34,)
    assert modularity(karate, result.membership) == pytest.approx(result.modularity)
    assert result.num_devices == 2
    assert len(result.device_seconds) == 2
    assert result.parallel_seconds == max(result.device_seconds)
    assert result.emulated_total_seconds > result.parallel_seconds


def test_quality_loss_bounded():
    """Paper: Cheong-style multi-GPU loses up to ~9% modularity.

    With *random* device partitions on an LFR graph (communities sliced
    across every device) the loss is a bit worse — up to ~17% — and the
    optional global refinement pass recovers to within a few percent.
    """
    g, _ = lfr_like(1500, rng=3)
    seq_q = seq_louvain(g).modularity
    for devices in (2, 4, 8):
        q = multigpu_louvain(g, num_devices=devices, rng=1).modularity
        assert q > 0.80 * seq_q, f"{devices} devices lost too much quality"
        refined = multigpu_louvain(
            g, num_devices=devices, rng=1, refine=True
        ).modularity
        assert refined > 0.93 * seq_q


def test_phase_a_depth_tradeoff():
    """Deeper cut-blind local hierarchies bake in worse merges."""
    g, _ = lfr_like(1500, rng=3)
    shallow = multigpu_louvain(g, num_devices=4, rng=1, phase_a_levels=1)
    deep = multigpu_louvain(g, num_devices=4, rng=1, phase_a_levels=5)
    assert shallow.modularity >= deep.modularity - 0.02


def test_phase_a_levels_validated(karate):
    with pytest.raises(ValueError):
        multigpu_louvain(karate, phase_a_levels=0)


def test_caveman_recovery():
    g, truth = caveman(8, 10)
    result = multigpu_louvain(g, num_devices=2, rng=0)
    assert adjusted_rand_index(result.membership, truth) > 0.8


def test_explicit_parts(karate):
    parts = np.zeros(34, dtype=np.int64)
    parts[17:] = 1
    result = multigpu_louvain(karate, num_devices=2, parts=parts)
    assert result.cut is not None
    assert result.cut.num_devices == 2


def test_rejects_bad_inputs(karate):
    with pytest.raises(ValueError):
        multigpu_louvain(karate, num_devices=0)
    with pytest.raises(ValueError):
        multigpu_louvain(karate, parts=np.zeros(5, dtype=np.int64))
    with pytest.raises(TypeError):
        from repro.core.config import GPULouvainConfig

        multigpu_louvain(karate, config=GPULouvainConfig(), threshold_bin=1e-3)


def test_deterministic(karate):
    a = multigpu_louvain(karate, num_devices=3, rng=7)
    b = multigpu_louvain(karate, num_devices=3, rng=7)
    assert np.array_equal(a.membership, b.membership)


def test_cut_statistics(karate):
    parts = np.zeros(34, dtype=np.int64)
    parts[17:] = 1
    stats = cut_statistics(karate, parts)
    assert stats.num_devices == 2
    assert 0 < stats.cut_edges < karate.num_edges
    assert stats.cut_fraction == stats.cut_edges / karate.num_edges
    assert stats.largest_device_vertices == 17


def test_cut_statistics_no_cut(karate):
    stats = cut_statistics(karate, np.zeros(34, dtype=np.int64))
    assert stats.cut_edges == 0
    assert stats.cut_fraction == 0.0


def test_more_devices_more_cut():
    g, _ = lfr_like(1000, rng=4)
    from repro.parallel.coarse import random_parts

    cut2 = cut_statistics(g, random_parts(g.num_vertices, 2, rng=0))
    cut8 = cut_statistics(g, random_parts(g.num_vertices, 8, rng=0))
    assert cut8.cut_fraction > cut2.cut_fraction


def test_device_results_exposed(karate):
    result = multigpu_louvain(karate, num_devices=2, rng=0)
    assert len(result.device_results) == 2
    for sub in result.device_results:
        assert sub.modularity >= -1.0
