"""Micro-benchmarks of the GPU substrate and core kernels.

Not a paper experiment — these watch the building blocks (hash table,
Thrust primitives, the two phase kernels, contraction) for performance
regressions, pytest-benchmark style.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.suite import load_suite_graph
from repro.core.aggregate import aggregate_gpu
from repro.core.compute_move import compute_moves_vectorized
from repro.core.config import GPULouvainConfig
from repro.core.mod_opt import modularity_optimization
from repro.gpu.hashtable import CommunityHashTable
from repro.gpu.thrust import exclusive_scan, gather_rows, partition, reduce_by_key
from repro.metrics.modularity import modularity
from repro.seq.aggregation import aggregate as seq_aggregate

CFG = GPULouvainConfig()


@pytest.fixture(scope="module")
def graph():
    return load_suite_graph("com-youtube")


@pytest.fixture(scope="module")
def state(graph):
    k = graph.weighted_degrees
    comm = np.arange(graph.num_vertices, dtype=np.int64)
    volumes = k.copy()
    sizes = np.ones(graph.num_vertices, dtype=np.int64)
    return k, comm, volumes, sizes


def test_hashtable_insert_throughput(benchmark):
    rng = np.random.default_rng(0)
    communities = rng.integers(0, 64, size=256)
    weights = rng.random(256)

    def run():
        table = CommunityHashTable(256)
        table.add_edges(communities, weights)
        return table

    table = benchmark(run)
    assert len(table.items()) == np.unique(communities).size


def test_exclusive_scan_large(benchmark):
    values = np.random.default_rng(1).integers(0, 100, size=1_000_000)
    out = benchmark(lambda: exclusive_scan(values))
    assert out[-1] == values.sum()


def test_partition_large(benchmark):
    values = np.random.default_rng(2).integers(0, 1000, size=1_000_000)
    out, count = benchmark(lambda: partition(values, values < 500))
    assert count == (values < 500).sum()


def test_reduce_by_key_large(benchmark):
    keys = np.sort(np.random.default_rng(3).integers(0, 10_000, size=1_000_000))
    vals = np.ones(keys.size)
    uk, sums = benchmark(lambda: reduce_by_key(keys, vals))
    assert sums.sum() == keys.size


def test_gather_rows_kernel(benchmark, graph):
    vertices = np.arange(graph.num_vertices, dtype=np.int64)
    edge_pos, owner = benchmark(lambda: gather_rows(graph.indptr, vertices))
    assert edge_pos.size == graph.num_stored_edges


def test_compute_move_kernel(benchmark, graph, state):
    k, comm, volumes, sizes = state
    vertices = np.arange(graph.num_vertices, dtype=np.int64)
    new_comm = benchmark(
        lambda: compute_moves_vectorized(graph, comm, volumes, sizes, vertices, k=k)
    )
    assert new_comm.shape == vertices.shape


def test_modularity_optimization_phase(benchmark, graph):
    out = benchmark.pedantic(
        lambda: modularity_optimization(graph, CFG, 1e-2),
        rounds=3,
        iterations=1,
    )
    assert out.modularity > 0


def test_aggregation_kernel(benchmark, graph):
    out = modularity_optimization(graph, CFG, 1e-2)
    result = benchmark(lambda: aggregate_gpu(graph, out.communities, CFG))
    assert result.graph.num_vertices <= graph.num_vertices


def test_gpu_aggregation_vs_sequential_oracle_speed(benchmark, graph):
    """The vectorized contraction should massively outrun the dict oracle;
    benchmark records the vectorized side."""
    out = modularity_optimization(graph, CFG, 1e-2)
    import time

    start = time.perf_counter()
    seq_graph, _ = seq_aggregate(graph, out.communities)
    seq_seconds = time.perf_counter() - start
    result = benchmark(lambda: aggregate_gpu(graph, out.communities, CFG))
    assert result.graph == seq_graph
    assert seq_seconds > 0  # oracle ran; ratio visible in benchmark table


def test_modularity_metric(benchmark, graph):
    labels = np.arange(graph.num_vertices) % 64
    q = benchmark(lambda: modularity(graph, labels))
    assert -1 <= q <= 1
