"""Delta-screening: the affected-vertex frontier of an edge batch.

After a batch of edge insertions/deletions, only vertices whose
best-move inputs could have changed need re-scoring (Browet et al.'s
local-neighbourhood observation applied to the dynamic setting):

* the **endpoints** of every changed pair — their own rows changed;
* the **members of the endpoints' communities** — their community volume
  and internal weight changed;
* the **neighbours of the endpoints** — the gain of moving next to a
  changed vertex reads that vertex's (possibly changed) community
  totals.

The screen is a *seed*: the frontier optimizer expands it whenever a
committed move changes further community totals.  It is deliberately not
exactly sound — a batch changes the total weight ``2m``, which enters
every vertex's gain — so :class:`~repro.stream.StreamSession` offers
``screening="exact"`` (full first sweep) when bit-parity with a full
warm-started run is required.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..gpu.thrust import gather_rows

__all__ = ["delta_frontier"]


def delta_frontier(
    graph: CSRGraph,
    membership: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    *,
    scope: str = "community",
) -> np.ndarray:
    """Seed frontier for a batch whose changed pairs are ``(u[i], v[i])``.

    ``graph`` is the *updated* graph; ``membership`` the pre-batch
    labelling (dense, ``0..n-1``).  Returns sorted unique vertex ids.

    ``scope="community"`` is the full screen described above.
    ``scope="endpoints"`` seeds only the changed pairs' endpoints: on
    graphs whose communities each hold a sizeable fraction of the
    vertices the community rule degenerates to the whole vertex set, and
    the optimizer's sweep expansion discovers the ripple-out instead.
    """
    if scope not in ("community", "endpoints"):
        raise ValueError(f"unknown frontier scope: {scope!r}")
    n = graph.num_vertices
    membership = np.asarray(membership, dtype=np.int64)
    if membership.shape != (n,):
        raise ValueError("membership must assign one label per vertex")
    ends = np.unique(np.concatenate([np.asarray(u), np.asarray(v)])).astype(np.int64)
    if ends.size == 0:
        return np.empty(0, dtype=np.int64)
    if int(ends[0]) < 0 or int(ends[-1]) >= n:
        raise ValueError("changed-pair endpoints out of range")
    if scope == "endpoints":
        return ends
    mask = np.zeros(n, dtype=bool)
    mask[ends] = True
    # Members of the endpoints' communities (volume / internal changed).
    comm_mask = np.zeros(n, dtype=bool)
    comm_mask[membership[ends]] = True
    mask |= comm_mask[membership]
    # Neighbours of the endpoints (their best-move inputs changed).
    pos, _ = gather_rows(graph.indptr, ends)
    mask[graph.indices[pos]] = True
    return np.flatnonzero(mask)
