"""Community-recovery quality across mixing levels (LFR-style benchmark),
plus the per-algorithm streaming comparison table and its committed gate.

Part 1 is not a paper figure — the standard community-detection quality
protocol applied to every solver in the repository: sweep the LFR mixing
parameter (fraction of each vertex's edges leaving its community) and
measure NMI against the planted ground truth.  All fine-grained solvers
should track the sequential baseline's recovery curve; the coarse-grained
one is expected to fall off earliest (its phase A cannot see cross-part
structure) — consistent with the paper's §3 taxonomy.

Part 2 compares the :mod:`repro.core.engine` algorithms (louvain,
leiden, lpa) on the streaming churn scenario over small-suite graphs:
final Q, worst per-batch NMI against a warm full run (the audit
semantics), and wall time.  CI's ``quality-bench`` job fails if leiden's
NMI-vs-full on the nlpkkt200 scenario regresses below the floor
committed in ``results/BENCH_quality_gate.json`` — the streaming quality
degeneracy this repository's leiden engine exists to fix.
"""

from __future__ import annotations

import json
from time import perf_counter

import numpy as np
import pytest

from repro.bench.reporting import banner, format_table
from repro.bench.suite import SUITE
from repro.core.engine import ALGO_NAMES, get_engine
from repro.core.gpu_louvain import gpu_louvain
from repro.graph.generators import lfr_like
from repro.metrics.quality import normalized_mutual_information
from repro.parallel import coarse_louvain, lu_louvain, plm_louvain
from repro.seq.louvain import louvain as sequential_louvain
from repro.stream import StreamConfig, StreamSession

from _util import RESULTS_DIR, emit

MIXINGS = (0.1, 0.25, 0.4, 0.55)

SOLVERS = (
    ("gpu", lambda g: gpu_louvain(g, bin_vertex_limit=1_000)),
    ("seq", sequential_louvain),
    ("plm", plm_louvain),
    ("lu", lu_louvain),
    ("coarse", lambda g: coarse_louvain(g, num_parts=4)),
)


@pytest.fixture(scope="module")
def recovery():
    rows = {}
    for mixing in MIXINGS:
        graph, truth = lfr_like(1200, rng=17, avg_degree=14, mixing=mixing)
        for name, solver in SOLVERS:
            result = solver(graph)
            nmi = normalized_mutual_information(result.membership, truth)
            rows[(name, mixing)] = nmi
    return rows


def test_recovery_curves(benchmark, recovery):
    graph, _ = lfr_like(1200, rng=17, avg_degree=14, mixing=0.25)
    benchmark.pedantic(
        lambda: gpu_louvain(graph, bin_vertex_limit=1_000), rounds=3, iterations=1
    )

    table_rows = []
    for name, _ in SOLVERS:
        table_rows.append([name, *[recovery[(name, m)] for m in MIXINGS]])
    table = format_table(
        ["solver", *[f"mix={m}" for m in MIXINGS]], table_rows, floatfmt=".3f"
    )
    emit("quality_recovery", banner("LFR recovery (NMI vs mixing)") + "\n" + table)

    # Every fine-grained solver recovers near-perfectly at low mixing.
    for name, _ in SOLVERS:
        if name != "coarse":
            assert recovery[(name, 0.1)] > 0.95, name
    # The GPU engine tracks the sequential baseline across the sweep
    # (it trails a little at high mixing, where concurrent bucket commits
    # cost some recall — an honest gap, recorded in the emitted table).
    for m in MIXINGS:
        assert recovery[("gpu", m)] > recovery[("seq", m)] - 0.2
    # The coarse-grained solver falls off earliest (§3's taxonomy).
    for m in MIXINGS[1:]:
        fine_best = max(recovery[(n, m)] for n, _ in SOLVERS if n != "coarse")
        assert recovery[("coarse", m)] < fine_best
    # Recovery degrades with mixing for every solver (monotone-ish).
    for name, _ in SOLVERS:
        assert recovery[(name, 0.1)] >= recovery[(name, 0.55)] - 0.05, name


# --------------------------------------------------------------------- #
# Part 2: per-algorithm streaming comparison + the committed leiden gate
# --------------------------------------------------------------------- #

#: Small-suite graphs for the streaming scenario (scale 1.0), one per
#: structural regime; nlpkkt200 is the gate graph (near-tied partitions
#: make it the degeneracy-prone case the ISSUE's bugfix targets).
STREAM_GRAPHS = ("out.actor-collaboration", "uk-2002", "nlpkkt200", "road_usa")
STREAM_BATCHES = 4
STREAM_CHURN = 0.005
STREAM_REMOVE_FRACTION = 0.2

#: Committed regression floor for leiden's NMI-vs-full on nlpkkt200.
GATE_PATH = RESULTS_DIR / "BENCH_quality_gate.json"


def _churn_batch(graph, count, rng):
    """~80% random insertions, ~20% deletions (bench_stream's recipe)."""
    num_remove = int(count * STREAM_REMOVE_FRACTION)
    num_add = count - num_remove
    n = graph.num_vertices
    au = rng.integers(0, n, num_add)
    av = (au + rng.integers(1, n, num_add)) % n
    eu, ev, _ = graph.edge_list()
    not_loop = eu != ev
    eu, ev = eu[not_loop], ev[not_loop]
    pick = rng.choice(eu.size, size=min(num_remove, eu.size), replace=False)
    return (au, av, None), (eu[pick], ev[pick])


@pytest.fixture(scope="module")
def algo_comparison():
    rows = {}
    for name in STREAM_GRAPHS:
        entry = next(e for e in SUITE if e.name == name)
        base = entry.load(1.0)
        for algo in ALGO_NAMES:
            rng = np.random.default_rng(7)  # identical churn per algo
            config = StreamConfig(
                algo=algo, screening="local", frontier_scope="endpoints"
            )
            engine = get_engine(algo)
            start = perf_counter()
            session = StreamSession(base, config)
            worst = 1.0
            batch_edges = max(1, int(base.num_edges * STREAM_CHURN))
            for _ in range(STREAM_BATCHES):
                add, remove = _churn_batch(session.graph, batch_edges, rng)
                before = session.membership.copy()
                result = session.apply(add=add, remove=remove)
                full = engine.detect(
                    session.graph, config.louvain, initial_communities=before
                )
                worst = min(
                    worst,
                    normalized_mutual_information(
                        result.membership, full.membership
                    ),
                )
            rows[(name, algo)] = {
                "q_final": session.modularity,
                "worst_nmi_vs_full": worst,
                "seconds": perf_counter() - start,
            }
    return rows


def test_algo_comparison_table(algo_comparison):
    table_rows = [
        [
            name,
            algo,
            row["q_final"],
            row["worst_nmi_vs_full"],
            row["seconds"],
        ]
        for (name, algo), row in algo_comparison.items()
    ]
    table = format_table(
        ["graph", "algo", "Q final", "NMI vs full", "seconds"],
        table_rows,
        floatfmt=".4f",
    )
    emit(
        "quality_algos",
        banner(
            f"Engine comparison: {STREAM_BATCHES} batches x "
            f"{STREAM_CHURN:.1%} churn"
        )
        + "\n"
        + table,
    )
    # Every algorithm produces a valid, non-degenerate partition.
    for (name, algo), row in algo_comparison.items():
        assert row["q_final"] > 0.0, (name, algo)
        assert 0.0 <= row["worst_nmi_vs_full"] <= 1.0, (name, algo)


def test_leiden_gate_vs_committed_baseline(algo_comparison):
    """CI quality-bench gate: leiden NMI-vs-full must not regress below
    the committed floor on the nlpkkt200 streaming scenario."""
    gate = json.loads(GATE_PATH.read_text())
    floor = gate["min_nmi_vs_full"]["leiden"]
    row = algo_comparison[("nlpkkt200", "leiden")]
    assert row["worst_nmi_vs_full"] >= floor, (
        f"leiden nmi_vs_full {row['worst_nmi_vs_full']:.4f} regressed "
        f"below the committed floor {floor} "
        f"(see {GATE_PATH.name}; baseline before the engine refactor "
        f"drifted to ~0.61)"
    )
    # The fix must actually help: leiden never agrees *less* with the
    # warm full run than plain louvain does on the gate graph.
    louvain = algo_comparison[("nlpkkt200", "louvain")]
    assert (
        row["worst_nmi_vs_full"] >= louvain["worst_nmi_vs_full"] - 0.02
    )
