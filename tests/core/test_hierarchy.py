"""Tests for the dendrogram / hierarchy views."""

import numpy as np
import pytest

from repro.core.gpu_louvain import gpu_louvain
from repro.core.hierarchy import Dendrogram, best_level, cut_at_level
from repro.graph.generators import karate_club, lfr_like
from repro.metrics.modularity import modularity


@pytest.fixture(scope="module")
def karate_run():
    g = karate_club()
    return g, gpu_louvain(g)


def test_from_result(karate_run):
    g, result = karate_run
    d = Dendrogram.from_result(g, result)
    assert d.depth == result.num_levels


def test_membership_levels(karate_run):
    g, result = karate_run
    d = Dendrogram.from_result(g, result)
    final = d.membership()
    assert np.array_equal(final, result.membership)
    first = d.membership(0)
    assert np.array_equal(first, result.levels[0])


def test_membership_out_of_range(karate_run):
    g, result = karate_run
    d = Dendrogram.from_result(g, result)
    with pytest.raises(IndexError):
        d.membership(d.depth)


def test_modularities_increasing(karate_run):
    g, result = karate_run
    d = Dendrogram.from_result(g, result)
    values = d.modularities()
    assert values[-1] == pytest.approx(result.modularity)
    assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))


def test_community_counts_decreasing(karate_run):
    g, result = karate_run
    d = Dendrogram.from_result(g, result)
    counts = d.community_counts()
    assert all(a >= b for a, b in zip(counts, counts[1:]))
    assert counts[-1] == result.num_communities


def test_cut_at_level(karate_run):
    g, result = karate_run
    for level in range(result.num_levels):
        cut = cut_at_level(result, level)
        assert cut.shape == (34,)
        assert modularity(g, cut) == pytest.approx(
            Dendrogram.from_result(g, result).modularities()[level]
        )


def test_best_level(karate_run):
    g, result = karate_run
    level = best_level(g, result)
    d = Dendrogram.from_result(g, result)
    values = d.modularities()
    assert values[level] == max(values)


def test_fine_levels_have_more_communities():
    g, _ = lfr_like(500, rng=8)
    result = gpu_louvain(g)
    if result.num_levels > 1:
        d = Dendrogram.from_result(g, result)
        counts = d.community_counts()
        assert counts[0] > counts[-1]
