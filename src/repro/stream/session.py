"""StreamSession: incremental Louvain over batches of edge updates.

One session owns the evolving graph and its clustering.  Each
:meth:`StreamSession.apply` call patches the CSR arrays
(:func:`~repro.graph.build.apply_edge_batch`), computes the
delta-screened frontier, and re-clusters incrementally:

* **level 0** runs
  :func:`~repro.core.mod_opt.frontier_modularity_optimization`
  warm-started from the previous membership and restricted to the
  frontier (expanding as moves ripple);
* **coarser levels** re-run the ordinary full optimizer — the contracted
  graphs are orders of magnitude smaller, and under ``screening="local"``
  contraction itself uses the dense-histogram fast path
  (:func:`~repro.core.aggregate.aggregate_bincount`).

Guard rails against silent drift: the final modularity of every batch is
an exact recompute on the full updated graph; a batch whose frontier
exceeds ``frontier_fraction_limit`` of the vertices falls back to a full
warm-started run; and ``full_rerun_interval=k`` additionally runs the
exact full pipeline every ``k`` batches, reports the NMI / Q gap between
the streamed and exact results, and resyncs the session to the exact
membership.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from ..core.aggregate import aggregate_bincount, aggregate_gpu
from ..core.config import GPULouvainConfig
from ..core.engine import ALGO_NAMES, get_engine
from ..core.gpu_louvain import GPULouvainResult
from ..core.mod_opt import (
    _partition_modularity,
    frontier_modularity_optimization,
    modularity_optimization,
)
from ..graph.build import apply_edge_batch
from ..graph.csr import CSRGraph
from ..metrics.modularity import modularity
from ..metrics.quality import normalized_mutual_information
from ..metrics.timing import RunTimings, Stopwatch
from ..result import StreamResult, flatten_levels
from ..trace import (
    NullTracer,
    RunReport,
    Tracer,
    as_tracer,
    current_trace_context,
    report_from_result,
)
from .frontier import delta_frontier

__all__ = ["StreamConfig", "StreamSession"]


@dataclass(frozen=True)
class StreamConfig:
    """Configuration of a :class:`StreamSession`.

    Attributes
    ----------
    louvain:
        The underlying engine configuration (vectorized engine with the
        per-bucket commit discipline — the streaming optimizer requires
        both).
    screening:
        ``"local"`` (default) restricts every sweep to the expanding
        frontier — fast, not guaranteed identical to a full run.
        ``"exact"`` scores every vertex once per batch and is
        bit-identical to a full warm-started :func:`gpu_louvain` run.
    frontier_scope:
        Seed rule under ``"local"`` screening.  ``"community"``
        (default) is the full delta screen — endpoints, members of their
        communities, and the endpoints' neighbours.  ``"endpoints"``
        seeds only the endpoints and relies on sweep expansion; use it
        on graphs whose communities each hold a sizeable fraction of
        the vertices, where the community rule degenerates to the whole
        vertex set.  It also switches the sweep expansion from
        community-membership to movers' neighbourhoods.
    full_rerun_interval:
        Every this-many batches, additionally run the exact full
        pipeline, report NMI / Q against it, and resync.  ``0`` = never.
    frontier_fraction_limit:
        When the seed frontier exceeds this fraction of the vertices the
        incremental path cannot win; the batch runs the full warm-started
        pipeline instead (``mode="full"``).
    algo:
        Detection algorithm (:func:`~repro.core.engine.get_engine`):
        ``"louvain"`` (default — bit-identical to the pre-engine
        sessions), ``"leiden"`` (well-connectedness refinement on every
        contraction, full and incremental), ``"lpa"`` (frontier-
        seeded weighted label propagation), or ``"sharded"``
        (multi-process Louvain for the full-pipeline paths).
    shard:
        Engine options for ``algo="sharded"`` — a dict with any of
        ``workers`` / ``pool`` / ``mode`` / ``partition``, passed to
        :class:`~repro.core.engine.ShardedEngine`.  Only valid with the
        sharded algo.
    """

    louvain: GPULouvainConfig = field(default_factory=GPULouvainConfig)
    screening: str = "local"
    frontier_scope: str = "community"
    full_rerun_interval: int = 0
    frontier_fraction_limit: float = 0.5
    algo: str = "louvain"
    shard: dict | None = None

    def __post_init__(self) -> None:
        if self.algo not in ALGO_NAMES:
            raise ValueError(
                f"unknown algo: {self.algo!r} (expected one of {list(ALGO_NAMES)})"
            )
        if self.shard is not None:
            if self.algo != "sharded":
                raise ValueError("shard options require algo='sharded'")
            allowed = {"workers", "pool", "mode", "partition"}
            unknown = set(self.shard) - allowed
            if unknown:
                raise ValueError(
                    f"unknown shard options: {sorted(unknown)} "
                    f"(expected a subset of {sorted(allowed)})"
                )
        if self.screening not in ("local", "exact"):
            raise ValueError(f"unknown screening mode: {self.screening!r}")
        if self.frontier_scope not in ("community", "endpoints"):
            raise ValueError(f"unknown frontier scope: {self.frontier_scope!r}")
        if self.full_rerun_interval < 0:
            raise ValueError("full_rerun_interval must be >= 0")
        if not 0.0 < self.frontier_fraction_limit <= 1.0:
            raise ValueError("frontier_fraction_limit must be in (0, 1]")
        if self.louvain.engine == "simulated":
            raise ValueError("streaming requires the vectorized engine")
        if self.louvain.relaxed_updates:
            raise ValueError(
                "streaming requires the per-bucket commit discipline "
                "(relaxed_updates=False)"
            )

    #: Engine-config fields that are structured objects (device spec, cost
    #: model) rather than result-determining tunables.  They only matter
    #: to the simulated engine's profiler — which streaming rejects — so
    #: serialisation and fingerprinting skip them and restores rebuild
    #: them from their defaults.
    _STRUCTURED_LOUVAIN_FIELDS = ("device", "cost_parameters")

    def to_meta(self) -> dict:
        """Flat JSON-safe dict of every result-determining tunable.

        This is the *full* configuration of a session — the stream-layer
        fields plus every primitive :class:`~repro.core.GPULouvainConfig`
        field — in the shape :func:`repro.obs.config_fingerprint` hashes.
        Streaming :class:`~repro.trace.RunReport` metadata embeds it (as
        ``meta["config"]``) so a restored session reproduces the exact
        trajectory fingerprint of the original.
        """
        meta: dict = {
            "screening": self.screening,
            "frontier_scope": self.frontier_scope,
            "full_rerun_interval": self.full_rerun_interval,
            "frontier_fraction_limit": self.frontier_fraction_limit,
        }
        if self.algo != "louvain":
            # The default is omitted so pre-engine fingerprints (and the
            # committed trajectory baselines keyed on them) stay stable.
            meta["algo"] = self.algo
        if self.shard is not None:
            meta["shard"] = dict(self.shard)
        for spec in dataclasses.fields(GPULouvainConfig):
            if spec.name in self._STRUCTURED_LOUVAIN_FIELDS:
                continue
            value = getattr(self.louvain, spec.name)
            if isinstance(value, tuple):
                value = [list(v) if isinstance(v, tuple) else v for v in value]
            meta[spec.name] = value
        return meta

    # JSON persistence (snapshot sidecars) uses the same flat shape.
    to_dict = to_meta

    @classmethod
    def from_dict(cls, data: dict) -> "StreamConfig":
        """Rebuild a config from its :meth:`to_dict` form."""
        data = dict(data)
        stream_kwargs = {
            spec.name: data.pop(spec.name)
            for spec in dataclasses.fields(cls)
            if spec.name != "louvain" and spec.name in data
        }
        for key in (
            "degree_bucket_bounds", "group_sizes", "community_bucket_bounds"
        ):
            if key in data:
                data[key] = tuple(data[key])
        if data.get("threshold_schedule") is not None:
            data["threshold_schedule"] = tuple(
                (int(limit), float(threshold))
                for limit, threshold in data["threshold_schedule"]
            )
        return cls(louvain=GPULouvainConfig(**data), **stream_kwargs)

    def fingerprint(self) -> str:
        """The :mod:`repro.obs` trajectory fingerprint of this config."""
        from ..obs.trajectory import config_fingerprint

        return config_fingerprint(self.to_meta())


def _singleton_modularity(graph: CSRGraph, resolution: float) -> float:
    """Q of the singleton partition of a *contracted* graph.

    Contraction preserves modularity, so this equals the flattened
    partition's Q on the original graph (up to float association) at
    O(coarse) cost instead of O(E) — the level-break test of the local
    screening path.
    """
    two_m = graph.total_weight
    if two_m == 0.0:
        return 0.0
    internal = float(graph.self_loop_weights().sum())
    k = graph.weighted_degrees
    return internal / two_m - resolution * float(np.square(k).sum()) / (two_m * two_m)


def _count_batch_pairs(
    side: tuple | None, n: int, width: int
) -> int:
    """Distinct undirected pairs named by one side of a batch."""
    if side is None:
        return 0
    u = np.asarray(side[0], dtype=np.int64).ravel()
    v = np.asarray(side[1], dtype=np.int64).ravel()
    if u.size == 0:
        return 0
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    return int(np.unique(lo * np.int64(width) + hi).size)


class StreamSession:
    """Incremental community detection over a stream of edge batches.

    Parameters
    ----------
    graph:
        Initial graph (canonical CSR, as built by
        :func:`~repro.graph.build.from_edges`).
    config:
        A :class:`StreamConfig`; alternatively pass keyword overrides —
        :class:`StreamConfig` field names are consumed by the stream
        layer, everything else builds the inner
        :class:`~repro.core.GPULouvainConfig` (e.g.
        ``StreamSession(g, screening="exact", threshold_bin=1e-3)``).
    initial_membership:
        Warm-start the initial clustering from an existing partition.
    tracer:
        Optional :class:`~repro.trace.Tracer`.  When given, the initial
        clustering is recorded as a ``run`` span and every
        :meth:`apply` as a ``batch`` span (with nested level /
        optimization / aggregation / sweep spans), and a per-batch
        :class:`~repro.trace.RunReport` is appended to :attr:`reports`.

    Attributes
    ----------
    graph / membership / result:
        Current graph, flat clustering, and the result of the last
        (re-)clustering.  ``result`` is a :class:`StreamResult` after
        the first :meth:`apply`.
    batches:
        Number of batches applied so far.
    reports / initial_report:
        Per-batch :class:`~repro.trace.RunReport` list and the initial
        clustering's report; populated only when a tracer is attached.
    """

    def __init__(
        self,
        graph: CSRGraph,
        config: StreamConfig | None = None,
        *,
        initial_membership: np.ndarray | None = None,
        tracer: Tracer | NullTracer | None = None,
        **overrides,
    ) -> None:
        if config is None:
            stream_fields = {f.name for f in dataclasses.fields(StreamConfig)}
            stream_kwargs = {
                key: overrides.pop(key) for key in list(overrides) if key in stream_fields
            }
            if overrides:
                if "louvain" in stream_kwargs:
                    raise TypeError(
                        "pass either louvain= or engine keyword overrides, not both"
                    )
                stream_kwargs["louvain"] = GPULouvainConfig(**overrides)
            config = StreamConfig(**stream_kwargs)
        elif overrides:
            raise TypeError("pass either a config object or keyword overrides, not both")
        self.config = config
        self.graph = graph
        self.batches = 0
        self._metrics: dict | None = None
        self.tracer = as_tracer(tracer)
        self.reports: list[RunReport] = []
        self.initial_report: RunReport | None = None
        self._engine = get_engine(config.algo, **(config.shard or {}))
        result = self._engine.detect(
            graph,
            config.louvain,
            initial_communities=initial_membership,
            tracer=self.tracer,
        )
        self.result: GPULouvainResult | StreamResult = result
        self.membership = result.membership
        if self.tracer.enabled and self.tracer.roots:
            self.initial_report = report_from_result(
                result,
                spans=[self.tracer.roots[-1]],
                kind="run",
                engine=config.louvain.engine,
                initial=True,
                num_vertices=graph.num_vertices,
                num_edges=graph.num_edges,
                config=config.to_meta(),
                fingerprint=config.fingerprint(),
            )

    @classmethod
    def resume(
        cls,
        graph: CSRGraph,
        config: StreamConfig,
        *,
        result: GPULouvainResult | StreamResult,
        membership: np.ndarray | None = None,
        batches: int = 0,
        tracer: Tracer | NullTracer | None = None,
        reports: list[RunReport] | None = None,
        initial_report: RunReport | None = None,
    ) -> "StreamSession":
        """Rebuild a session from persisted state without re-clustering.

        The snapshot/restore path (:mod:`repro.serve.snapshot`):
        :meth:`apply` depends only on ``graph``, ``membership`` and
        ``config``, so a session resumed from the exact persisted state
        continues **bit-identically** to the uninterrupted original
        (property-tested).  ``membership`` defaults to
        ``result.membership``; the parameter remains for snapshots
        persisted before the ``full_rerun_interval`` resync kept
        ``result`` consistent with the audited membership (the two
        could then differ).
        """
        session = object.__new__(cls)
        session.config = config
        session.graph = graph
        session._metrics = None
        session._engine = get_engine(config.algo, **(config.shard or {}))
        session.batches = int(batches)
        session.tracer = as_tracer(tracer)
        session.reports = list(reports) if reports else []
        session.initial_report = initial_report
        session.result = result
        session.membership = (
            result.membership
            if membership is None
            else np.asarray(membership, dtype=np.int64)
        )
        if session.membership.shape != (graph.num_vertices,):
            raise ValueError("membership must assign one label per vertex")
        return session

    @property
    def modularity(self) -> float:
        """Modularity of the current clustering."""
        return self.result.modularity

    def bind_metrics(self, registry, **labels) -> None:
        """Record per-batch runtime metrics into ``registry``.

        ``labels`` become the series labels (the serve layer passes
        ``session=<name>``); label *names* must be consistent across
        every bound session in one registry.  Recorded series:
        ``repro_stream_batch_seconds`` (apply latency histogram),
        ``repro_stream_frontier_fraction`` (gauge, last batch),
        ``repro_stream_full_reruns_total`` / ``repro_stream_resyncs_total``
        (counters) and ``repro_stream_audit_nmi`` (gauge, last audit).
        """
        names = tuple(sorted(labels))
        self._metrics = {
            "seconds": registry.histogram(
                "repro_stream_batch_seconds",
                "StreamSession.apply latency per batch.",
                labels=names,
            ).labels(**labels),
            "frontier": registry.gauge(
                "repro_stream_frontier_fraction",
                "Frontier fraction of the most recent batch.",
                labels=names,
            ).labels(**labels),
            "full_reruns": registry.counter(
                "repro_stream_full_reruns_total",
                "Batches that fell back to (or audited with) a full rerun.",
                labels=names,
            ).labels(**labels),
            "resyncs": registry.counter(
                "repro_stream_resyncs_total",
                "Audit resyncs: session state replaced by the exact rerun.",
                labels=names,
            ).labels(**labels),
            "nmi": registry.gauge(
                "repro_stream_audit_nmi",
                "NMI of streamed vs exact membership at the last audit.",
                labels=names,
            ).labels(**labels),
        }

    def _record_metrics(self, result: StreamResult, seconds: float) -> None:
        m = self._metrics
        if m is None:
            return
        m["seconds"].observe(seconds)
        m["frontier"].set(result.frontier_fraction)
        if result.full_rerun or result.mode in ("full", "stream+full"):
            m["full_reruns"].inc()
        if result.mode == "stream+full":
            m["resyncs"].inc()
        if result.nmi_vs_full is not None:
            m["nmi"].set(result.nmi_vs_full)

    def apply(
        self,
        *,
        add: tuple | None = None,
        remove: tuple | None = None,
    ) -> StreamResult:
        """Apply one batch of edge updates and re-cluster incrementally.

        ``add=(u, v, w)`` inserts undirected edges (``w=None`` for unit
        weights; adding an existing edge sums onto its weight);
        ``remove=(u, v)`` deletes edges entirely (removing a
        non-existent edge raises :class:`ValueError`).  Returns a
        :class:`StreamResult`; the session state (``graph``,
        ``membership``, ``result``) advances to the batch's outcome.

        With a session tracer the batch is recorded as a ``batch`` span
        and a per-batch :class:`~repro.trace.RunReport` is appended to
        :attr:`reports`.
        """
        tracer = self.tracer
        if not tracer.enabled:
            result = self._apply(add, remove)
            self._record_metrics(result, result.seconds)
            return result
        trace_ctx = current_trace_context()
        with tracer.span("batch") as span:
            result = self._apply(add, remove)
            span.set(batch=result.batch, mode=result.mode)
            if trace_ctx is not None:
                span.set(trace_id=trace_ctx.trace_id)
            span.count(
                edges_added=result.edges_added,
                edges_removed=result.edges_removed,
                pairs_changed=result.pairs_changed,
                frontier_size=result.frontier_size,
                frontier_fraction=result.frontier_fraction,
                modularity=result.modularity,
            )
        self._record_metrics(result, result.seconds)
        self.reports.append(
            report_from_result(
                result,
                spans=[span],
                kind="batch",
                engine=self.config.louvain.engine,
                screening=self.config.screening,
                num_vertices=self.graph.num_vertices,
                num_edges=self.graph.num_edges,
                config=self.config.to_meta(),
                fingerprint=self.config.fingerprint(),
            )
        )
        return result

    # ------------------------------------------------------------------ #
    # Partition queries
    # ------------------------------------------------------------------ #
    def community_of(self, vertex: int) -> int:
        """Community label of ``vertex`` in the current clustering."""
        v = int(vertex)
        if not 0 <= v < self.graph.num_vertices:
            raise IndexError(
                f"vertex {v} out of range [0, {self.graph.num_vertices})"
            )
        return int(self.membership[v])

    def members(self, community: int) -> np.ndarray:
        """Sorted vertex ids of community ``community`` (empty if absent)."""
        return np.flatnonzero(self.membership == int(community))

    def top_k_communities(
        self, k: int = 10, *, by: str = "size"
    ) -> list[tuple[int, float]]:
        """The ``k`` largest communities as ``(label, value)`` pairs.

        ``by="size"`` ranks by member count; ``by="volume"`` by the sum
        of members' weighted degrees (the community's ``a_c``, what the
        null model of Eq. (1) charges it).  Ties break toward the
        smaller label; ``k`` larger than the community count returns
        them all.
        """
        if by not in ("size", "volume"):
            raise ValueError(f"unknown ranking: {by!r} (size or volume)")
        if k < 0:
            raise ValueError("k must be non-negative")
        labels = self.membership
        if labels.size == 0 or k == 0:
            return []
        counts = np.bincount(labels)
        if by == "size":
            scores = counts.astype(np.float64)
        else:
            scores = np.bincount(
                labels, weights=self.graph.weighted_degrees,
                minlength=counts.size,
            )
        present = np.flatnonzero(counts > 0)
        order = np.lexsort((present, -scores[present]))
        top = present[order[:k]]
        return [(int(c), float(scores[c])) for c in top]

    def _apply(self, add: tuple | None, remove: tuple | None) -> StreamResult:
        """:meth:`apply` body (tracing handled by the wrapper)."""
        start = perf_counter()
        cfg = self.config
        new_graph, du, dv, dw = apply_edge_batch(self.graph, add=add, remove=remove)
        self.batches += 1
        n = new_graph.num_vertices
        width = max(n, 1)
        edges_added = _count_batch_pairs(add, n, width)
        edges_removed = _count_batch_pairs(remove, n, width)
        pairs_changed = int(np.count_nonzero(dw))

        if du.size == 0:
            # Empty batch: nothing moved, keep the clustering as is.
            base = self.result
            result = StreamResult(
                levels=[level.copy() for level in base.levels],
                level_sizes=list(base.level_sizes),
                membership=self.membership,
                modularity=base.modularity,
                modularity_per_level=list(base.modularity_per_level),
                sweeps_per_level=list(base.sweeps_per_level),
                batch=self.batches,
                mode="stream",
                seconds=perf_counter() - start,
            )
            self.result = result
            return result

        frontier = delta_frontier(
            new_graph, self.membership, du, dv, scope=cfg.frontier_scope
        )
        frontier_fraction = frontier.size / width
        full_due = (
            cfg.full_rerun_interval > 0
            and self.batches % cfg.full_rerun_interval == 0
        )
        too_wide = frontier_fraction > cfg.frontier_fraction_limit

        if too_wide:
            full = self._engine.detect(
                new_graph,
                cfg.louvain,
                initial_communities=self.membership,
                tracer=self.tracer,
            )
            result = StreamResult(
                levels=full.levels,
                level_sizes=full.level_sizes,
                membership=full.membership,
                modularity=full.modularity,
                modularity_per_level=full.modularity_per_level,
                sweeps_per_level=full.sweeps_per_level,
                timings=full.timings,
                batch=self.batches,
                edges_added=edges_added,
                edges_removed=edges_removed,
                pairs_changed=pairs_changed,
                frontier_size=int(frontier.size),
                frontier_fraction=frontier_fraction,
                mode="full",
                full_rerun=True,
                q_full=full.modularity,
            )
            membership = full.membership
            store = result
        else:
            result = self._engine.stream_batch(self, new_graph, frontier)
            result.batch = self.batches
            result.edges_added = edges_added
            result.edges_removed = edges_removed
            result.pairs_changed = pairs_changed
            membership = result.membership
            store = result
            if full_due:
                full = self._engine.detect(
                    new_graph,
                    cfg.louvain,
                    initial_communities=self.membership,
                    tracer=self.tracer,
                )
                if self.tracer.enabled and self.tracer.current is not None:
                    # Label the audit run's span so reports can tell it
                    # from the batch's own incremental computation.
                    self.tracer.current.children[-1].set(audit=True)
                result.mode = "stream+full"
                result.full_rerun = True
                result.q_full = full.modularity
                result.nmi_vs_full = normalized_mutual_information(
                    result.membership, full.membership
                )
                # Resync: subsequent batches continue from the exact
                # clustering.  The *returned* result still describes the
                # incremental computation (plus the comparison fields),
                # but the session's own state must be internally
                # consistent — ``self.result`` describing the streamed
                # partition while ``self.membership`` holds the audited
                # one would make ``session.modularity`` (and any state
                # derived from the last result, e.g. the empty-batch
                # copy) describe a partition the session no longer uses.
                membership = full.membership
                store = StreamResult(
                    levels=full.levels,
                    level_sizes=full.level_sizes,
                    membership=full.membership,
                    modularity=full.modularity,
                    modularity_per_level=full.modularity_per_level,
                    sweeps_per_level=full.sweeps_per_level,
                    timings=full.timings,
                    batch=self.batches,
                    edges_added=edges_added,
                    edges_removed=edges_removed,
                    pairs_changed=pairs_changed,
                    frontier_size=result.frontier_size,
                    frontier_fraction=result.frontier_fraction,
                    mode="full",
                    full_rerun=True,
                    q_full=full.modularity,
                    nmi_vs_full=result.nmi_vs_full,
                )

        self.graph = new_graph
        self.membership = membership
        self.result = store
        result.seconds = perf_counter() - start
        store.seconds = result.seconds
        return result

    def _cluster_stream(
        self, graph: CSRGraph, frontier: np.ndarray, refine=None
    ) -> StreamResult:
        """Incremental pipeline: frontier level 0, full coarser levels.

        Mirrors :func:`~repro.core.gpu_louvain.gpu_louvain`'s level loop
        (same thresholds, degenerate-level drop, and break conditions);
        under ``screening="exact"`` the per-level Q is computed exactly
        as there, so the two are bit-identical end to end.

        ``refine`` is the engine's per-contraction hook (see
        :class:`~repro.core.engine.Engine`): when given, every level
        contracts by the refined partition, so the batch's membership is
        well-connected by construction — the leiden fix for deletion
        batches stranding disconnected fragments inside stale
        communities.
        """
        cfg = self.config
        lcfg = cfg.louvain
        exact = cfg.screening == "exact"
        timings = RunTimings()
        levels: list[np.ndarray] = []
        level_sizes: list[tuple[int, int]] = []
        sweeps_per_level: list[int] = []
        modularity_per_level: list[float] = []
        frontier_size = 0
        current = graph
        prev_q = -1.0

        tracer = self.tracer
        for level in range(lcfg.max_levels):
            threshold = lcfg.threshold_for(current.num_vertices)
            stage = timings.new_stage(current.num_vertices, current.num_edges)
            with tracer.span(
                "level",
                level=level,
                num_vertices=current.num_vertices,
                num_edges=current.num_edges,
                threshold=threshold,
            ) as level_span:
                with Stopwatch(stage, "optimization_seconds"):
                    if level == 0:
                        outcome = frontier_modularity_optimization(
                            current,
                            lcfg,
                            threshold,
                            initial_communities=self.membership,
                            frontier=frontier,
                            screening=cfg.screening,
                            expansion=(
                                "neighbors"
                                if cfg.frontier_scope == "endpoints"
                                else "community"
                            ),
                            tracer=tracer,
                        )
                        frontier_size = outcome.frontier_initial
                    else:
                        outcome = modularity_optimization(
                            current, lcfg, threshold, tracer=tracer
                        )
                contract_by = outcome.communities
                if refine is not None:
                    contract_by = refine(current, outcome.communities, tracer)
                with Stopwatch(stage, "aggregation_seconds"):
                    if exact:
                        agg = aggregate_gpu(
                            current, contract_by, lcfg, tracer=tracer
                        )
                    else:
                        agg = aggregate_bincount(
                            current, contract_by, lcfg, tracer=tracer
                        )

                no_contraction = agg.graph.num_vertices == current.num_vertices
                degenerate = (
                    no_contraction
                    and levels
                    and np.array_equal(
                        agg.dense_map, np.arange(current.num_vertices, dtype=np.int64)
                    )
                )
                if degenerate:
                    timings.stages.pop()
                    level_span.set(degenerate=True)
                    break

                levels.append(agg.dense_map)
                level_sizes.append((current.num_vertices, current.num_edges))
                sweeps_per_level.append(outcome.sweeps)
                stage.sweeps = outcome.sweeps
                stage.sweep_stats = outcome.profile.sweeps
                if exact:
                    q = modularity(
                        graph, flatten_levels(levels), resolution=lcfg.resolution
                    )
                else:
                    # Contraction preserves Q: the coarse singleton partition
                    # scores the flattened membership at O(coarse) cost.
                    q = _singleton_modularity(agg.graph, lcfg.resolution)
                modularity_per_level.append(q)
                stage.modularity = q
                level_span.count(sweeps=outcome.sweeps, modularity=q)

                current = agg.graph
                if q - prev_q < lcfg.threshold_final or no_contraction:
                    break
                prev_q = q

        membership = flatten_levels(levels)
        # The reported Q is always an exact recompute on the updated
        # graph — drift in the cheap per-level estimates cannot hide.
        if exact or graph.total_weight == 0.0:
            # metrics.modularity, same call as gpu_louvain (bit-parity;
            # also guards the all-edges-deleted graph, where Q := 0).
            q_exact = modularity(graph, membership, resolution=lcfg.resolution)
        else:
            q_exact = _partition_modularity(
                membership,
                (graph.vertex_of_edge, graph.indices, graph.weights),
                graph.weighted_degrees,
                graph.total_weight,
                lcfg.resolution,
            )
        return StreamResult(
            levels=levels,
            level_sizes=level_sizes,
            membership=membership,
            modularity=q_exact,
            modularity_per_level=modularity_per_level,
            sweeps_per_level=sweeps_per_level,
            timings=timings,
            frontier_size=frontier_size,
            frontier_fraction=frontier_size / max(graph.num_vertices, 1),
            mode="stream",
        )
