"""Fast vectorized contraction shared by the comparator implementations.

Semantically identical to :func:`repro.seq.aggregation.aggregate` (and
property-tested against it); one global sort + segmented reduction instead
of the paper's bucketed mergeCommunity, since the comparators don't model
GPU work placement.
"""

from __future__ import annotations

import numpy as np

from ..graph.build import from_directed_entries
from ..graph.csr import CSRGraph

__all__ = ["aggregate_vectorized"]


def aggregate_vectorized(
    graph: CSRGraph, communities: np.ndarray
) -> tuple[CSRGraph, np.ndarray]:
    """Contract ``graph`` by ``communities``; returns (new_graph, dense_map)."""
    communities = np.asarray(communities, dtype=np.int64)
    if communities.shape != (graph.num_vertices,):
        raise ValueError("communities must assign one label per vertex")
    if graph.num_vertices == 0:
        return graph, communities.copy()
    present = np.unique(communities)
    newid = np.full(int(communities.max()) + 1, -1, dtype=np.int64)
    newid[present] = np.arange(present.size, dtype=np.int64)
    dense = newid[communities]

    src = dense[graph.vertex_of_edge]
    dst = dense[graph.indices]
    w = graph.weights
    if src.size == 0:
        from ..graph.build import empty_graph

        return empty_graph(present.size), dense
    order = np.argsort(src * np.int64(present.size) + dst, kind="stable")
    src = src[order]
    dst = dst[order]
    w = w[order]
    boundary = np.flatnonzero(
        np.concatenate(([True], (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])))
    )
    new_u = src[boundary]
    new_v = dst[boundary]
    new_w = np.add.reduceat(w, boundary)
    return from_directed_entries(new_u, new_v, new_w, present.size), dense
