"""Tests for the Table-1 analog suite."""

import pytest

from repro.bench.suite import (
    SUITE,
    SuiteEntry,
    load_suite_graph,
    small_suite,
    suite_entry,
    suite_names,
)
from repro.graph.validation import validate


def test_suite_has_55_rows():
    assert len(SUITE) == 55


def test_names_unique():
    names = suite_names()
    assert len(names) == len(set(names))


def test_paper_numbers_sane():
    for entry in SUITE:
        assert entry.paper_vertices > 0
        assert entry.paper_edges > 0
        assert entry.paper_seq_seconds > 0
        assert entry.paper_gpu_seconds > 0
        assert entry.paper_speedup == pytest.approx(
            entry.paper_seq_seconds / entry.paper_gpu_seconds
        )


def test_table_order_roughly_by_avg_degree():
    """Table 1 orders graphs by decreasing average degree."""
    degrees = [e.paper_avg_degree for e in SUITE]
    # allow small local inversions (the paper's ordering has a few)
    violations = sum(1 for a, b in zip(degrees, degrees[1:]) if b > a * 1.3)
    assert violations <= 4


def test_small_suite_covers_families():
    families = {e.family for e in small_suite()}
    assert families == {e.family for e in SUITE}


def test_load_unknown_name():
    with pytest.raises(KeyError):
        load_suite_graph("no-such-graph")


@pytest.mark.parametrize("entry", small_suite(), ids=lambda e: e.name)
def test_family_representatives_build(entry: SuiteEntry):
    g = entry.load()
    validate(g)
    assert g.num_vertices >= 64
    assert g.num_edges >= 500
    # average degree within a factor ~5 of the paper's graph
    avg = 2 * g.num_edges / g.num_vertices
    assert avg > entry.paper_avg_degree / 8


def test_load_cached():
    a = load_suite_graph("road_usa")
    b = load_suite_graph("road_usa")
    assert a is b  # lru_cache


def test_deterministic_generation():
    entry = suite_entry("cnr-2000")
    assert entry.load() == entry.load()


@pytest.mark.parametrize("entry", small_suite(), ids=lambda e: e.name)
def test_deterministic_generation_every_family(entry: SuiteEntry):
    """Seeded generation: repeated loads are bit-identical (gate keys
    compare runs on *the same* graph, so this must hold per family)."""
    assert entry.load(0.5) == entry.load(0.5)


def test_scale_grows_graph():
    entry = suite_entry("com-dblp")
    small = entry.load(1.0)
    large = entry.load(2.0)
    assert large.num_edges > small.num_edges


@pytest.mark.parametrize("name", ["com-dblp", "italy_osm", "rgg_n_2_22_s0"])
def test_scale_parameter_is_monotone(name: str):
    """Edge counts grow strictly with the scale parameter."""
    edges = [suite_entry(name).load(scale).num_edges
             for scale in (0.25, 0.5, 1.0, 2.0)]
    assert edges == sorted(edges)
    assert len(set(edges)) == len(edges)


def test_suite_entry_lookup():
    entry = suite_entry("uk-2002")
    assert entry.name == "uk-2002"
    assert entry.family == "web"
    with pytest.raises(KeyError, match="no-such-graph"):
        suite_entry("no-such-graph")
