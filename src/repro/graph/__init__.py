"""Graph substrate: CSR storage, builders, generators, and file I/O."""

from .build import (
    empty_graph,
    ensure_connected_relabelled,
    from_edges,
    from_networkx,
    from_scipy,
    induced_subgraph,
    relabel,
    update_edges,
)
from .csr import CSRGraph
from .io import load_graph, read_edge_list, read_metis, write_edge_list, write_metis
from .validation import validate

__all__ = [
    "CSRGraph",
    "from_edges",
    "from_scipy",
    "from_networkx",
    "empty_graph",
    "relabel",
    "induced_subgraph",
    "update_edges",
    "ensure_connected_relabelled",
    "load_graph",
    "read_edge_list",
    "write_edge_list",
    "read_metis",
    "write_metis",
    "validate",
]
