"""Pin the no-op tracer's hot-path overhead below 5% (smoke-level).

``modularity_optimization`` is a thin wrapper around ``_optimize``:
with tracing disabled it normalises the tracer, checks one flag and
delegates.  Timing the wrapper against a direct ``_optimize`` call
therefore measures exactly what the tracing layer added to the
untraced hot path.  Best-of-N timing with a few whole-test retries
keeps this stable on noisy CI runners.
"""

from time import perf_counter

from repro.core.config import GPULouvainConfig
from repro.core.mod_opt import _optimize, modularity_optimization
from repro.graph.generators import planted_partition
from repro.trace import NULL_TRACER

ROUNDS = 5
ATTEMPTS = 4
MAX_OVERHEAD = 1.05


def _best(fn) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        start = perf_counter()
        fn()
        best = min(best, perf_counter() - start)
    return best


def test_noop_tracer_overhead_below_5_percent():
    graph, _ = planted_partition(20, 50, p_in=0.3, p_out=0.01, rng=9)
    config = GPULouvainConfig()
    threshold = config.threshold_for(graph.num_vertices)

    def raw():
        _optimize(graph, config, threshold, None, None, NULL_TRACER)

    def wrapped():
        modularity_optimization(graph, config, threshold)

    raw()
    wrapped()  # warm numpy buffers and caches before timing
    ratio = float("inf")
    for _ in range(ATTEMPTS):
        ratio = _best(wrapped) / _best(raw)
        if ratio <= MAX_OVERHEAD:
            break
    assert ratio <= MAX_OVERHEAD, (
        f"disabled-tracer wrapper is {ratio:.3f}x the raw hot path"
    )
