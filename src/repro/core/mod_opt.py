"""Modularity optimization phase (Algorithm 1).

One phase runs sweeps over the degree buckets until the modularity gain of
a sweep drops below the level's threshold.  Default update discipline is
the paper's: after each bucket's ``computeMove`` the community ids of that
bucket are committed and ``a_c`` is recomputed (Alg. 1 lines 8-11) — the
point "somewhere in between" pure fine-grained and sequential update that
Section 5's relaxed-vs-bucketed experiment studies.  ``relaxed=True``
switches to the relaxed discipline: all buckets decide from the same
snapshot and commit together at the end of the sweep.

Per-sweep cost discipline (the paper's "work proportional to the edges
actually touched"): with ``config.use_sweep_plan`` the vectorized engine
builds a :class:`~repro.core.sweep_plan.SweepPlan` once per phase — the
bucket edge gathers and pair structures are cached across sweeps — and
the sweep-end modularity is tracked *incrementally*: per-bucket commits
telescope, so one pass over the sweep's movers' CSR rows
(:func:`_sweep_internal_delta`) updates the internal edge weight instead
of re-scanning every edge.  An exact recompute runs every
``config.exact_q_interval`` sweeps and at phase end to bound float
drift; the final reported Q always comes from the exact recompute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from ..graph.csr import CSRGraph
from ..gpu.costmodel import CostModel
from ..gpu.profiler import PhaseProfile
from ..gpu.thrust import gather_rows
from ..metrics.timing import SweepStats
from ..trace import NullTracer, Tracer, as_tracer, sweep_span
from .buckets import Bucket, bucket_index, degree_buckets
from .compute_move import compute_moves_simulated, compute_moves_vectorized
from .config import GPULouvainConfig
from .sweep_plan import SweepPlan

__all__ = [
    "OptimizationOutcome",
    "FrontierOutcome",
    "modularity_optimization",
    "frontier_modularity_optimization",
]

#: Movers-row cutoff for the incremental internal-weight update: once
#: the movers' CSR rows reach ``1/_DELTA_EDGE_FACTOR`` of the edge
#: list, the plain full scan is both cheaper and drift-free.
_DELTA_EDGE_FACTOR = 2


@dataclass
class OptimizationOutcome:
    """Result of one modularity-optimization phase."""

    communities: np.ndarray
    sweeps: int
    modularity: float
    profile: PhaseProfile = field(default_factory=PhaseProfile)


@dataclass
class FrontierOutcome(OptimizationOutcome):
    """Result of a frontier-restricted optimization phase.

    Attributes
    ----------
    frontier_initial:
        Size of the seed frontier (after dropping degree-0 vertices).
    scored_total:
        Total vertex scorings across all sweeps — the work actually done,
        to compare against ``sweeps * n`` for a full run.
    """

    frontier_initial: int = 0
    scored_total: int = 0


def _partition_modularity(
    comm: np.ndarray,
    src_comm_weights_args: tuple[np.ndarray, np.ndarray, np.ndarray],
    k: np.ndarray,
    two_m: float,
    resolution: float = 1.0,
) -> float:
    """(Generalised) Q of the working partition from pre-gathered arrays."""
    src, dst, w = src_comm_weights_args
    internal = float(w[comm[src] == comm[dst]].sum())
    volumes = np.bincount(comm, weights=k)
    return internal / two_m - resolution * float(
        np.square(volumes).sum()
    ) / (two_m * two_m)


def _commit_moves(
    plan: SweepPlan,
    comm: np.ndarray,
    comm32: np.ndarray | None,
    movers: np.ndarray,
    old: np.ndarray,
    new: np.ndarray,
    volumes: np.ndarray,
    sizes: np.ndarray,
    k: np.ndarray,
) -> None:
    """Commit one bucket's moves (Alg. 1 lines 8-11) under a sweep plan.

    Only the movers' source and target communities change.  With
    integral weights a bincount delta added wholesale is exact
    (integer-valued float64) and much faster than four buffered
    ``np.add.at`` calls; otherwise ``np.add.at`` keeps the float
    accumulation order identical to the non-plan engine.

    ``comm32``, when given, is the plan's int32 label mirror and is kept
    in sync with ``comm``.
    """
    comm[movers] = new
    if comm32 is not None:
        comm32[movers] = new
    km = k[movers]
    if plan.integral_weights:
        volumes += np.bincount(
            new, weights=km, minlength=volumes.size
        ) - np.bincount(old, weights=km, minlength=volumes.size)
        sizes += np.bincount(new, minlength=sizes.size) - np.bincount(
            old, minlength=sizes.size
        )
    else:
        np.add.at(volumes, old, -km)
        np.add.at(volumes, new, km)
        np.add.at(sizes, old, -1)
        np.add.at(sizes, new, 1)
    plan.mark_moved(movers, old, new)


def _sweep_internal_delta(
    graph: CSRGraph,
    comm_before: np.ndarray,
    comm: np.ndarray,
    movers: np.ndarray,
    scratch: np.ndarray,
) -> float:
    """Change of the internal edge weight across one whole sweep.

    Per-bucket commits telescope: the internal weight after the sweep
    depends only on the sweep's *initial* and *final* labels, so one
    pass over the movers' CSR rows replaces per-batch bookkeeping.  For
    a stored direction ``(s, d)`` with ``s`` a mover, the contribution
    is ``w * ([cf_s==cf_d] - [ci_s==ci_d])``; directions owned by
    unmoved endpoints of mover-incident edges change symmetrically, so
    the total is twice the sum minus the mover-mover directions (which
    are gathered exactly once each).  Self-loops contribute zero (their
    match flag cannot change).  With integral weights every term is an
    exact integer, so the tracked internal weight never drifts.
    """
    edge_pos, which = gather_rows(graph.indptr, movers)
    dsts = graph.indices[edge_pos]
    w_e = graph.weights[edge_pos]
    cf_s = comm[movers][which]
    ci_s = comm_before[movers][which]
    diff = w_e * (
        (cf_s == comm[dsts]).astype(np.float64)
        - (ci_s == comm_before[dsts]).astype(np.float64)
    )
    scratch[movers] = True
    mm = scratch[dsts]
    scratch[movers] = False
    return 2.0 * float(diff.sum()) - float(diff[mm].sum())


def _count_thread_cycles(span, profile) -> None:
    """Thread-occupancy counters for simulated-engine spans.

    The vectorized path launches no simulated kernels (``issued`` stays
    0), so its spans are byte-identical to the pre-counter behaviour.
    """
    issued = sum(k.issued_thread_cycles for k in profile.kernels)
    if issued > 0:
        span.count(
            active_thread_cycles=sum(
                k.active_thread_cycles for k in profile.kernels
            ),
            issued_thread_cycles=issued,
        )


def modularity_optimization(
    graph: CSRGraph,
    config: GPULouvainConfig,
    threshold: float,
    *,
    initial_communities: np.ndarray | None = None,
    cost_model: CostModel | None = None,
    tracer: Tracer | NullTracer | None = None,
) -> OptimizationOutcome:
    """Run Alg. 1 on ``graph``; returns final communities and sweep count.

    ``threshold`` is the per-sweep modularity-gain cutoff (``t_bin`` or
    ``t_final``, chosen by the caller from the level's size).  With a
    live ``tracer`` the phase is recorded as an ``optimization`` span
    with one ``sweep`` child per sweep (moves, cache hits, Q drift).
    """
    tracer = as_tracer(tracer)
    if not tracer.enabled:
        return _optimize(graph, config, threshold, initial_communities, cost_model, tracer)
    with tracer.span("optimization") as span:
        outcome = _optimize(
            graph, config, threshold, initial_communities, cost_model, tracer
        )
        profile = outcome.profile
        span.count(
            sweeps=outcome.sweeps,
            moved=profile.total_moves,
            gather_reuse_hits=profile.gather_reuse_hits,
            pair_reuse_hits=profile.pair_reuse_hits,
            pair_patch_hits=profile.pair_patch_hits,
            max_q_drift=profile.max_q_drift,
            modularity=outcome.modularity,
        )
        _count_thread_cycles(span, profile)
    return outcome


def _optimize(
    graph: CSRGraph,
    config: GPULouvainConfig,
    threshold: float,
    initial_communities: np.ndarray | None,
    cost_model: CostModel | None,
    tracer: Tracer | NullTracer,
) -> OptimizationOutcome:
    """:func:`modularity_optimization` body (tracer already normalised)."""
    n = graph.num_vertices
    k = graph.weighted_degrees
    two_m = graph.total_weight
    profile = PhaseProfile()
    if initial_communities is None:
        comm = np.arange(n, dtype=np.int64)
    else:
        comm = np.asarray(initial_communities, dtype=np.int64).copy()
    if n == 0 or two_m == 0.0:
        return OptimizationOutcome(comm, 0, 0.0, profile)

    simulate = config.engine == "simulated"
    if simulate and cost_model is None:
        cost_model = CostModel(config.device, config.cost_parameters)

    # Degree buckets are fixed for the whole phase (degrees never change
    # inside a level), exactly as the repeated thrust::partition of Alg. 1
    # would recompute them.
    buckets: list[Bucket] = degree_buckets(
        graph.degrees, config.degree_bucket_bounds, config.group_sizes
    )

    src = graph.vertex_of_edge
    dst = graph.indices
    w = graph.weights
    edges_view = (src, dst, w)

    volumes = np.bincount(comm, weights=k, minlength=n)
    sizes = np.bincount(comm, minlength=n)

    plan = (
        SweepPlan.build(graph, buckets)
        if not simulate and config.use_sweep_plan
        else None
    )
    # Incremental Q tracking needs the per-bucket commit discipline (the
    # relaxed ablation recomputes volumes wholesale at sweep end anyway).
    incremental = plan is not None and not config.relaxed_updates
    comm32 = None
    if plan is not None:
        # Pair caches stay valid only while every commit is reported via
        # mark_moved — i.e. under the per-bucket commit discipline.
        plan.track_validity = incremental
        if incremental:
            # int32 label mirror for the half-width combined sort key;
            # the incremental commit keeps it in sync.
            comm32 = plan.bind_communities(comm)

    q = _partition_modularity(comm, edges_view, k, two_m, config.resolution)
    if incremental:
        internal = float(w[comm[src] == comm[dst]].sum())
    sweeps = 0
    trace_on = tracer.enabled
    sweep_seconds: list[float] = []

    while sweeps < config.max_sweeps_per_level:
        if trace_on:
            sweep_t0 = perf_counter()
        sweeps += 1
        moved = 0
        comm_before = comm.copy() if incremental else None
        moves_per_bucket = [0] * len(buckets)
        reuse_before = plan.gather_reuse_hits if plan is not None else 0
        pair_reuse_before = plan.pair_reuse_hits if plan is not None else 0
        pair_patch_before = plan.pair_patch_hits if plan is not None else 0
        pending: list[tuple[int, np.ndarray, np.ndarray]] = []
        for index, bucket in enumerate(buckets):
            if bucket.size == 0:
                continue
            if simulate:
                new_comm, stats = compute_moves_simulated(
                    graph,
                    comm,
                    volumes,
                    sizes,
                    bucket,
                    cost_model,
                    k=k,
                    singleton_constraint=config.singleton_constraint,
                    resolution=config.resolution,
                )
                profile.add(stats)
            else:
                bucket_plan = plan.for_bucket(index) if plan is not None else None
                new_comm = compute_moves_vectorized(
                    graph,
                    comm,
                    volumes,
                    sizes,
                    bucket.members,
                    k=k,
                    singleton_constraint=config.singleton_constraint,
                    resolution=config.resolution,
                    plan=bucket_plan,
                )
            if config.relaxed_updates:
                pending.append((index, bucket.members, new_comm))
            else:
                changed = new_comm != comm[bucket.members]
                if changed.any():
                    num_changed = int(changed.sum())
                    moved += num_changed
                    moves_per_bucket[index] = num_changed
                    movers = bucket.members[changed]
                    old = comm[movers]
                    new = new_comm[changed]
                    if incremental:
                        _commit_moves(
                            plan, comm, comm32, movers, old, new, volumes, sizes, k
                        )
                    else:
                        comm[movers] = new
                        # Incremental a_c / size update (Alg. 1 line 11):
                        # only the movers' source and target communities
                        # change.
                        np.add.at(volumes, old, -k[movers])
                        np.add.at(volumes, new, k[movers])
                        np.add.at(sizes, old, -1)
                        np.add.at(sizes, new, 1)
        if config.relaxed_updates:
            for index, members, new_comm in pending:
                changed = new_comm != comm[members]
                num_changed = int(changed.sum())
                moved += num_changed
                moves_per_bucket[index] += num_changed
                comm[members] = new_comm
            volumes = np.bincount(comm, weights=k, minlength=n)
            sizes = np.bincount(comm, minlength=n)

        sweep_stats = SweepStats(
            sweep=sweeps,
            moves_per_bucket=moves_per_bucket,
            gather_reuse_hits=(
                plan.gather_reuse_hits - reuse_before if plan is not None else 0
            ),
            pair_reuse_hits=(
                plan.pair_reuse_hits - pair_reuse_before if plan is not None else 0
            ),
            pair_patch_hits=(
                plan.pair_patch_hits - pair_patch_before if plan is not None else 0
            ),
        )
        if incremental:
            movers_sweep = np.flatnonzero(comm != comm_before)
            if movers_sweep.size:
                # When the movers' rows rival the whole edge list, a
                # fresh exact scan is both cheaper and drift-free.
                mover_edges = int(graph.degrees[movers_sweep].sum())
                if _DELTA_EDGE_FACTOR * mover_edges >= dst.size:
                    internal = float(w[comm[src] == comm[dst]].sum())
                else:
                    internal += _sweep_internal_delta(
                        comm_before=comm_before,
                        comm=comm,
                        movers=movers_sweep,
                        graph=graph,
                        scratch=plan.mover_scratch,
                    )
            # The sum(a_c^2) term is O(n) to evaluate exactly — only the
            # edge-scan term is worth tracking incrementally.
            vol_sq = float(np.square(volumes).sum())
            new_q = internal / two_m - config.resolution * vol_sq / (two_m * two_m)
            if sweeps % config.exact_q_interval == 0:
                exact_q = _partition_modularity(
                    comm, edges_view, k, two_m, config.resolution
                )
                sweep_stats.q_exact = exact_q
                sweep_stats.q_incremental = new_q
                # Snap the tracker so drift cannot compound across
                # recompute windows.
                internal = float(w[comm[src] == comm[dst]].sum())
                new_q = exact_q
            else:
                sweep_stats.q_incremental = new_q
        else:
            new_q = _partition_modularity(comm, edges_view, k, two_m, config.resolution)
            sweep_stats.q_incremental = new_q
            sweep_stats.q_exact = new_q
        profile.add_sweep(sweep_stats)
        if trace_on:
            sweep_seconds.append(perf_counter() - sweep_t0)
        gain = new_q - q
        q = new_q
        if moved == 0 or gain < threshold:
            break

    if incremental and profile.sweeps and profile.sweeps[-1].q_exact is None:
        # Final reported Q must come from the exact recompute (and the
        # last sweep's drift becomes observable).
        exact_q = _partition_modularity(comm, edges_view, k, two_m, config.resolution)
        profile.sweeps[-1].q_exact = exact_q
        q = exact_q

    if trace_on:
        # Emitted after the final q_exact patch so the last sweep's
        # drift is visible in the trace too.
        for stats, elapsed in zip(profile.sweeps, sweep_seconds):
            span = sweep_span(stats)
            span.seconds = elapsed
            tracer.attach(span)

    return OptimizationOutcome(comm, sweeps, q, profile)


def frontier_modularity_optimization(
    graph: CSRGraph,
    config: GPULouvainConfig,
    threshold: float,
    *,
    initial_communities: np.ndarray,
    frontier: np.ndarray,
    screening: str = "local",
    expansion: str = "community",
    tracer: Tracer | NullTracer | None = None,
) -> FrontierOutcome:
    """Run Alg. 1 restricted to an affected-vertex frontier (delta-screening).

    The streaming engine's workhorse: after a batch of edge updates only
    the vertices whose best-move inputs could have changed need scoring.
    A vertex is *active* when its inputs may have changed since it last
    chose to stay; scoring deactivates it, and every bucket commit
    re-activates the vertices the moves affect — members of the changed
    communities, neighbours of the movers, and (in ``"exact"`` mode)
    neighbours of the changed communities' members, since those vertices
    see a changed neighbouring-community volume.

    ``screening`` selects the soundness/speed trade:

    ``"exact"``
        Sweep 1 scores *every* vertex (an edge batch changes the total
        weight ``2m``, which enters every gain term, so no local frontier
        is exactly sound), and later sweeps use the sound expansion rule
        above.  The result is bit-identical to a full warm-started
        :func:`modularity_optimization` — inactive vertices are exactly
        those whose deterministic re-score would repeat their last
        "stay" decision.
    ``"local"``
        Every sweep is frontier-restricted, including the first, with the
        cheaper expansion (no changed-community neighbourhood).  Not
        guaranteed to match a full run, but empirically within noise for
        small-churn batches, at a fraction of the work.

    ``expansion`` picks the local-mode re-activation rule (ignored under
    ``"exact"``, which always uses the sound rule):

    ``"community"``
        Members of every community a move touched, plus the movers'
        neighbours.  Thorough, but on graphs whose communities hold a
        large fraction of the vertices it re-activates nearly everything
        each sweep.
    ``"neighbors"``
        Only the movers and their neighbours — the label-propagation
        style cascade.  Keeps sweeps small on few-large-community
        graphs.

    Requires the vectorized engine with the per-bucket commit discipline
    (the paper's default).  The returned outcome carries per-sweep
    ``frontier_size`` observability via :class:`SweepStats`; a live
    ``tracer`` additionally records an ``optimization`` span (attributes
    ``screening`` / ``expansion``) with one ``sweep`` child per sweep.
    """
    tracer = as_tracer(tracer)
    if not tracer.enabled:
        return _frontier_optimize(
            graph, config, threshold, initial_communities, frontier,
            screening, expansion, tracer,
        )
    with tracer.span("optimization", screening=screening, expansion=expansion) as span:
        outcome = _frontier_optimize(
            graph, config, threshold, initial_communities, frontier,
            screening, expansion, tracer,
        )
        profile = outcome.profile
        span.count(
            sweeps=outcome.sweeps,
            moved=profile.total_moves,
            gather_reuse_hits=profile.gather_reuse_hits,
            pair_reuse_hits=profile.pair_reuse_hits,
            pair_patch_hits=profile.pair_patch_hits,
            max_q_drift=profile.max_q_drift,
            modularity=outcome.modularity,
            frontier_initial=outcome.frontier_initial,
            scored_total=outcome.scored_total,
        )
        _count_thread_cycles(span, profile)
    return outcome


def _frontier_optimize(
    graph: CSRGraph,
    config: GPULouvainConfig,
    threshold: float,
    initial_communities: np.ndarray,
    frontier: np.ndarray,
    screening: str,
    expansion: str,
    tracer: Tracer | NullTracer,
) -> FrontierOutcome:
    """:func:`frontier_modularity_optimization` body (tracer normalised)."""
    if config.engine == "simulated":
        raise ValueError("frontier optimization requires the vectorized engine")
    if config.relaxed_updates:
        raise ValueError(
            "frontier optimization requires the per-bucket commit discipline "
            "(relaxed_updates=False)"
        )
    if screening not in ("local", "exact"):
        raise ValueError(f"unknown screening mode: {screening!r}")
    if expansion not in ("community", "neighbors"):
        raise ValueError(f"unknown expansion rule: {expansion!r}")
    exact = screening == "exact"

    n = graph.num_vertices
    k = graph.weighted_degrees
    two_m = graph.total_weight
    profile = PhaseProfile()
    comm = np.asarray(initial_communities, dtype=np.int64).copy()
    if comm.shape != (n,):
        raise ValueError("initial_communities must have one label per vertex")
    frontier = np.asarray(frontier, dtype=np.int64)
    if frontier.size and (int(frontier.min()) < 0 or int(frontier.max()) >= n):
        raise ValueError("frontier vertices out of range")
    active = np.zeros(n, dtype=bool)
    active[frontier] = True
    active &= graph.degrees > 0
    frontier_initial = int(active.sum())
    if n == 0 or two_m == 0.0:
        return FrontierOutcome(comm, 0, 0.0, profile, frontier_initial, 0)

    template: list[Bucket] = degree_buckets(
        graph.degrees, config.degree_bucket_bounds, config.group_sizes
    )
    vbucket = bucket_index(graph.degrees, config.degree_bucket_bounds)
    bucket_masks = [vbucket == bucket.index for bucket in template]

    src = graph.vertex_of_edge
    dst = graph.indices
    w = graph.weights
    edges_view = (src, dst, w)

    volumes = np.bincount(comm, weights=k, minlength=n)
    sizes = np.bincount(comm, minlength=n)

    if config.use_sweep_plan:
        if exact:
            # Sweep 1 scores everyone: build the full plan up front so the
            # first sweep pays the same gather a full phase would.
            plan = SweepPlan.build(graph, template)
        else:
            # Local mode never scores the whole graph — start from empty
            # bucket plans and build only what the frontier touches.
            no_members = np.empty(0, dtype=np.int64)
            plan = SweepPlan.build(
                graph,
                [
                    Bucket(
                        index=bucket.index,
                        lower=bucket.lower,
                        upper=bucket.upper,
                        members=no_members,
                        group_size=bucket.group_size,
                    )
                    for bucket in template
                ],
            )
    else:
        plan = None
    incremental = plan is not None
    comm32 = None
    if plan is not None:
        plan.track_validity = True
        comm32 = plan.bind_communities(comm)

    # One edge scan serves both the baseline Q and the incremental
    # tracker's seed (bit-identical to _partition_modularity: the
    # bincount-volumes square sum only appends exact zeros).
    internal = float(w[comm[src] == comm[dst]].sum())
    q = internal / two_m - config.resolution * float(
        np.square(volumes).sum()
    ) / (two_m * two_m)
    sweeps = 0
    scored_total = 0
    trace_on = tracer.enabled
    sweep_seconds: list[float] = []

    while sweeps < config.max_sweeps_per_level:
        if not active.any() and not (exact and sweeps == 0):
            break
        if trace_on:
            sweep_t0 = perf_counter()
        sweeps += 1
        moved = 0
        comm_before = comm.copy() if incremental else None
        moves_per_bucket = [0] * len(template)
        reuse_before = plan.gather_reuse_hits if plan is not None else 0
        pair_reuse_before = plan.pair_reuse_hits if plan is not None else 0
        pair_patch_before = plan.pair_patch_hits if plan is not None else 0
        scored_sweep = 0
        full_sweep = exact and sweeps == 1
        for index, bucket in enumerate(template):
            if full_sweep:
                members = bucket.members
            else:
                # Per-bucket extraction at processing time: a commit in an
                # earlier bucket of THIS sweep can activate vertices that a
                # later bucket must then score (matching the full engine's
                # read-after-commit discipline).
                members = np.flatnonzero(active & bucket_masks[index])
            if members.size == 0:
                continue
            scored_sweep += int(members.size)
            # Scoring consumes the activation; commits below re-activate
            # whatever the moves affect (possibly these same vertices).
            active[members] = False
            if plan is not None:
                cached = plan.bucket_plans[index].bucket.members
                if cached.size == members.size and np.array_equal(cached, members):
                    bucket_plan = plan.for_bucket(index)
                else:
                    plan.replace_bucket(
                        index,
                        graph,
                        Bucket(
                            index=index,
                            lower=bucket.lower,
                            upper=bucket.upper,
                            members=members,
                            group_size=bucket.group_size,
                        ),
                        k=k,
                    )
                    bucket_plan = plan.for_bucket(index)
            else:
                bucket_plan = None
            new_comm = compute_moves_vectorized(
                graph,
                comm,
                volumes,
                sizes,
                members,
                k=k,
                singleton_constraint=config.singleton_constraint,
                resolution=config.resolution,
                plan=bucket_plan,
            )
            changed = new_comm != comm[members]
            if changed.any():
                num_changed = int(changed.sum())
                moved += num_changed
                moves_per_bucket[index] = num_changed
                movers = members[changed]
                old = comm[movers]
                new = new_comm[changed]
                if incremental:
                    _commit_moves(
                        plan, comm, comm32, movers, old, new, volumes, sizes, k
                    )
                else:
                    comm[movers] = new
                    np.add.at(volumes, old, -k[movers])
                    np.add.at(volumes, new, k[movers])
                    np.add.at(sizes, old, -1)
                    np.add.at(sizes, new, 1)
                # Delta-screening expansion: every vertex whose own or
                # neighbouring community totals changed becomes active.
                pos, _ = gather_rows(graph.indptr, movers)
                active[graph.indices[pos]] = True
                if exact or expansion == "community":
                    comm_mask = np.zeros(n, dtype=bool)
                    comm_mask[old] = True
                    comm_mask[new] = True
                    member_mask = comm_mask[comm]
                    active |= member_mask
                    if exact:
                        # Sound rule: a changed community volume reaches
                        # every neighbour of every member, not just the
                        # movers'.
                        pos2, _ = gather_rows(
                            graph.indptr, np.flatnonzero(member_mask)
                        )
                        active[graph.indices[pos2]] = True
                else:
                    active[movers] = True

        sweep_stats = SweepStats(
            sweep=sweeps,
            moves_per_bucket=moves_per_bucket,
            gather_reuse_hits=(
                plan.gather_reuse_hits - reuse_before if plan is not None else 0
            ),
            pair_reuse_hits=(
                plan.pair_reuse_hits - pair_reuse_before if plan is not None else 0
            ),
            pair_patch_hits=(
                plan.pair_patch_hits - pair_patch_before if plan is not None else 0
            ),
            frontier_size=scored_sweep,
        )
        scored_total += scored_sweep
        # Sweep-end modularity: identical float path to
        # modularity_optimization so exact-mode runs terminate on the
        # same sweep with the same Q, bit for bit.
        if incremental:
            movers_sweep = np.flatnonzero(comm != comm_before)
            if movers_sweep.size:
                mover_edges = int(graph.degrees[movers_sweep].sum())
                if _DELTA_EDGE_FACTOR * mover_edges >= dst.size:
                    internal = float(w[comm[src] == comm[dst]].sum())
                else:
                    internal += _sweep_internal_delta(
                        comm_before=comm_before,
                        comm=comm,
                        movers=movers_sweep,
                        graph=graph,
                        scratch=plan.mover_scratch,
                    )
            vol_sq = float(np.square(volumes).sum())
            new_q = internal / two_m - config.resolution * vol_sq / (two_m * two_m)
            if sweeps % config.exact_q_interval == 0:
                exact_q = _partition_modularity(
                    comm, edges_view, k, two_m, config.resolution
                )
                sweep_stats.q_exact = exact_q
                sweep_stats.q_incremental = new_q
                internal = float(w[comm[src] == comm[dst]].sum())
                new_q = exact_q
            else:
                sweep_stats.q_incremental = new_q
        else:
            new_q = _partition_modularity(comm, edges_view, k, two_m, config.resolution)
            sweep_stats.q_incremental = new_q
            sweep_stats.q_exact = new_q
        profile.add_sweep(sweep_stats)
        if trace_on:
            sweep_seconds.append(perf_counter() - sweep_t0)
        gain = new_q - q
        q = new_q
        if moved == 0 or gain < threshold:
            break

    if incremental and profile.sweeps and profile.sweeps[-1].q_exact is None:
        exact_q = _partition_modularity(comm, edges_view, k, two_m, config.resolution)
        profile.sweeps[-1].q_exact = exact_q
        q = exact_q

    if trace_on:
        for stats, elapsed in zip(profile.sweeps, sweep_seconds):
            span = sweep_span(stats)
            span.seconds = elapsed
            tracer.attach(span)

    return FrontierOutcome(comm, sweeps, q, profile, frontier_initial, scored_total)
