"""Quality, modularity, timing, and throughput metrics."""

from .modularity import (
    community_internal_weights,
    community_volumes,
    modularity,
    move_gain,
    vertex_to_community_weights,
)
from .partition_measures import (
    conductance,
    coverage,
    performance,
    worst_conductance,
)
from .quality import (
    PartitionStats,
    adjusted_rand_index,
    community_sizes,
    normalized_mutual_information,
    normalize_labels,
    num_communities,
    partition_stats,
)
from .teps import TepsResult, teps
from .timing import RunTimings, StageTiming, Stopwatch, SweepStats

__all__ = [
    "modularity",
    "move_gain",
    "community_volumes",
    "community_internal_weights",
    "vertex_to_community_weights",
    "coverage",
    "performance",
    "conductance",
    "worst_conductance",
    "normalize_labels",
    "community_sizes",
    "num_communities",
    "normalized_mutual_information",
    "adjusted_rand_index",
    "PartitionStats",
    "partition_stats",
    "TepsResult",
    "teps",
    "RunTimings",
    "StageTiming",
    "Stopwatch",
    "SweepStats",
]
