"""Tests for repro.graph.generators."""

import numpy as np
import pytest

from repro.graph import generators as gen
from repro.graph.validation import validate


def test_ring():
    g = gen.ring(5)
    assert g.num_vertices == 5
    assert g.num_edges == 5
    assert set(g.degrees.tolist()) == {2}
    validate(g)


def test_ring_too_small():
    with pytest.raises(ValueError):
        gen.ring(2)


def test_path():
    g = gen.path(4)
    assert g.num_edges == 3
    assert g.degrees.tolist() == [1, 2, 2, 1]


def test_star():
    g = gen.star(6)
    assert g.degrees[0] == 5
    assert set(g.degrees[1:].tolist()) == {1}


def test_complete():
    g = gen.complete(5)
    assert g.num_edges == 10
    assert set(g.degrees.tolist()) == {4}


def test_binary_tree():
    g = gen.binary_tree(3)
    assert g.num_vertices == 7
    assert g.num_edges == 6
    assert g.degrees[0] == 2


def test_grid2d():
    g = gen.grid2d(3, 4)
    assert g.num_vertices == 12
    assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
    validate(g)


def test_grid2d_diagonal():
    plain = gen.grid2d(3, 3)
    diag = gen.grid2d(3, 3, diagonal=True)
    assert diag.num_edges == plain.num_edges + 4


def test_lattice3d():
    g = gen.lattice3d(3, 3, 3)
    assert g.num_vertices == 27
    # interior vertex has 6 neighbours
    assert g.degrees.max() == 6
    validate(g)


def test_stencil3d_interior_degree():
    g = gen.stencil3d(5, 5, 5)
    assert g.degrees.max() == 26
    validate(g)


def test_stencil3d_radius2():
    g = gen.stencil3d_radius(7, 7, 7, radius=2)
    assert g.degrees.max() == 124


def test_stencil3d_radius_invalid():
    with pytest.raises(ValueError):
        gen.stencil3d_radius(3, 3, 3, radius=0)


def test_kkt_like_two_blocks():
    g = gen.kkt_like(4, 4, 4, rng=0)
    assert g.num_vertices == 2 * 64
    validate(g)


def test_road_grid_degree_profile():
    g = gen.road_grid(30, 30, rng=0)
    assert g.num_vertices <= 900
    assert g.degrees.max() <= 8
    assert 1.5 < 2 * g.num_edges / g.num_vertices < 4.5
    validate(g)


def test_random_geometric():
    g = gen.random_geometric(300, 0.12, rng=1)
    assert g.num_vertices > 200  # largest component keeps most vertices
    validate(g)


def test_delaunay_graph():
    g = gen.delaunay_graph(200, rng=2)
    assert g.num_vertices == 200
    # planar triangulation: E <= 3n - 6
    assert g.num_edges <= 3 * 200 - 6
    validate(g)


def test_barabasi_albert_sizes():
    g = gen.barabasi_albert(200, 3, rng=3)
    assert g.num_vertices == 200
    # every non-seed vertex brings m edges (merges can only reduce)
    assert g.num_edges <= 3 * 197
    assert g.num_edges >= 3 * 197 * 0.9
    validate(g)


def test_barabasi_albert_skewed():
    g = gen.barabasi_albert(500, 2, rng=4)
    assert g.degrees.max() > 5 * np.median(g.degrees)


def test_barabasi_albert_invalid():
    with pytest.raises(ValueError):
        gen.barabasi_albert(3, 3)


def test_rmat_sizes():
    g = gen.rmat(8, 8, rng=5)
    assert g.num_vertices <= 2**8
    assert g.num_edges > 2**8
    validate(g)


def test_rmat_skewed_degrees():
    g = gen.rmat(10, 8, rng=6)
    assert g.degrees.max() > 10 * np.median(g.degrees)


def test_rmat_invalid_probs():
    with pytest.raises(ValueError):
        gen.rmat(5, 4, a=0.5, b=0.4, c=0.3)


def test_planted_partition_returns_truth():
    g, labels = gen.planted_partition(4, 20, 0.5, 0.01, rng=7)
    assert g.num_vertices == 80
    assert labels.shape == (80,)
    assert np.unique(labels).size == 4
    validate(g)


def test_planted_partition_density_ordering():
    g, labels = gen.planted_partition(4, 20, 0.6, 0.02, rng=8)
    src = g.vertex_of_edge
    intra = (labels[src] == labels[g.indices]).mean()
    assert intra > 0.5  # intra-community edges dominate


def test_lfr_like():
    g, labels = gen.lfr_like(400, rng=9)
    assert g.num_vertices == 400
    assert labels.shape == (400,)
    assert np.unique(labels).size >= 2
    validate(g)


def test_lfr_community_sizes_skewed():
    _, labels = gen.lfr_like(2000, rng=10, min_community=16)
    sizes = np.bincount(labels)
    assert sizes.max() >= 2 * sizes.min()


def test_clique_overlap():
    g = gen.clique_overlap(50, rng=11)
    assert g.num_vertices > 10
    validate(g)


def test_caveman():
    g, labels = gen.caveman(5, 6)
    assert g.num_vertices == 30
    assert np.unique(labels).size == 5
    # each cave is a clique: internal degree >= cave_size - 1
    assert g.degrees.min() >= 4
    validate(g)


def test_karate_club():
    g = gen.karate_club()
    assert g.num_vertices == 34
    assert g.num_edges == 78
    validate(g)


def test_with_random_weights():
    g = gen.with_random_weights(gen.ring(6), rng=12, low=2.0, high=3.0)
    assert g.num_edges == 6
    assert np.all(g.weights >= 2.0)
    assert np.all(g.weights < 3.0)


def test_generators_deterministic():
    a = gen.rmat(7, 4, rng=42)
    b = gen.rmat(7, 4, rng=42)
    assert a == b
    c, lc = gen.lfr_like(100, rng=42)
    d, ld = gen.lfr_like(100, rng=42)
    assert c == d
    assert np.array_equal(lc, ld)


def test_as_rng_passthrough():
    rng = np.random.default_rng(0)
    assert gen.as_rng(rng) is rng
    assert isinstance(gen.as_rng(5), np.random.Generator)
    assert isinstance(gen.as_rng(None), np.random.Generator)


def test_social_network_structure():
    g = gen.social_network(800, 6, rng=13)
    assert g.num_vertices > 600
    validate(g)
    # heavy tail AND strong communities
    assert g.degrees.max() > 4 * np.median(g.degrees)
    from repro.seq.louvain import louvain
    assert louvain(g).modularity > 0.45


def test_social_network_mixing_effect():
    tight = gen.social_network(600, 5, rng=14, mixing=0.05)
    loose = gen.social_network(600, 5, rng=14, mixing=0.6)
    from repro.seq.louvain import louvain
    assert louvain(tight).modularity > louvain(loose).modularity


def test_social_network_invalid():
    with pytest.raises(ValueError):
        gen.social_network(5, 5)


def test_clique_overlap_has_communities():
    g = gen.clique_overlap(400, rng=15, mean_group_size=10)
    from repro.seq.louvain import louvain
    assert louvain(g).modularity > 0.4
