"""Differential tests for the SweepPlan cache.

The plan is a pure optimization: ``use_sweep_plan=True`` must produce the
*bit-identical* run (same per-sweep moves, membership, modularity) as the
pre-plan engine and as the simulated hash-table engine, and the
incremental modularity tracking must agree with the exact recompute.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.buckets import degree_buckets
from repro.core.config import GPULouvainConfig
from repro.core.gpu_louvain import gpu_louvain
from repro.core.sweep_plan import SweepPlan
from repro.graph.build import from_edges
from repro.graph.generators import karate_club, lfr_like

from ..conftest import csr_graphs


def _run(graph, **overrides):
    return gpu_louvain(graph, **overrides)


# --------------------------------------------------------------------- #
# Plan vs no-plan vs simulated: identical moves
# --------------------------------------------------------------------- #
@settings(max_examples=40, deadline=None)
@given(csr_graphs(max_vertices=24, max_edges=60))
def test_plan_matches_no_plan(graph):
    with_plan = _run(graph, use_sweep_plan=True)
    without = _run(graph, use_sweep_plan=False)
    assert np.array_equal(with_plan.membership, without.membership)
    assert with_plan.modularity == without.modularity
    assert with_plan.sweeps_per_level == without.sweeps_per_level


@settings(max_examples=25, deadline=None)
@given(csr_graphs(max_vertices=20, max_edges=50, weighted=True))
def test_plan_matches_no_plan_weighted(graph):
    # Non-integral weights disable patching/delta shortcuts; the plan
    # must still reproduce the exact run through its rebuild path.
    with_plan = _run(graph, use_sweep_plan=True)
    without = _run(graph, use_sweep_plan=False)
    assert np.array_equal(with_plan.membership, without.membership)
    assert with_plan.modularity == without.modularity


@settings(max_examples=15, deadline=None)
@given(csr_graphs(max_vertices=16, max_edges=40))
def test_plan_matches_simulated_engine(graph):
    with_plan = _run(graph, use_sweep_plan=True)
    simulated = _run(graph, engine="simulated")
    assert np.array_equal(with_plan.membership, simulated.membership)
    assert with_plan.modularity == simulated.modularity


def test_plan_matches_no_plan_lfr():
    graph, _ = lfr_like(400, 7, avg_degree=12, mixing=0.2)
    with_plan = _run(graph, use_sweep_plan=True)
    without = _run(graph, use_sweep_plan=False)
    assert np.array_equal(with_plan.membership, without.membership)
    assert with_plan.modularity == without.modularity
    assert with_plan.sweeps_per_level == without.sweeps_per_level


# --------------------------------------------------------------------- #
# Incremental modularity vs exact recompute
# --------------------------------------------------------------------- #
@settings(max_examples=25, deadline=None)
@given(csr_graphs(max_vertices=24, max_edges=60, min_edges=1))
def test_incremental_q_tracks_exact(graph):
    # exact_q_interval=1 recomputes the exact value after every sweep, so
    # every sweep record carries a drift measurement.
    out = _run(graph, use_sweep_plan=True, exact_q_interval=1)
    assert out.timings.max_q_drift <= 1e-9


def test_incremental_q_tracks_exact_lfr():
    graph, _ = lfr_like(300, 3, avg_degree=10, mixing=0.25)
    out = _run(graph, use_sweep_plan=True, exact_q_interval=1)
    drifts = [
        s.q_drift
        for stage in out.timings.stages
        for s in stage.sweep_stats
        if s.q_drift is not None
    ]
    assert drifts, "exact_q_interval=1 must record a drift every sweep"
    assert max(drifts) <= 1e-9


def test_final_modularity_is_exact_recompute():
    graph = karate_club()
    out = _run(graph, use_sweep_plan=True, exact_q_interval=1000)
    # Even with a huge interval the phase end recomputes exactly, so the
    # reported per-level modularity matches an independent evaluation.
    from repro.metrics.modularity import modularity

    assert out.modularity == modularity(graph, out.membership)


# --------------------------------------------------------------------- #
# Plan internals
# --------------------------------------------------------------------- #
def test_build_gathers_match_fresh_gather():
    graph, _ = lfr_like(120, 1, avg_degree=8, mixing=0.2)
    config = GPULouvainConfig()
    buckets = degree_buckets(
        graph.degrees, config.degree_bucket_bounds, config.group_sizes
    )
    plan = SweepPlan.build(graph, buckets)
    for bp in plan.bucket_plans:
        members = bp.bucket.members
        assert bp.kv.shape == members.shape
        # Edge arrays exclude self-loops and cover each member's rows.
        for local, v in enumerate(members.tolist()):
            seg = slice(bp.edge_indptr[local], bp.edge_indptr[local + 1])
            dsts = bp.dst[seg]
            expected = [nb for nb in graph.neighbors(v) if nb != v]
            assert sorted(dsts.tolist()) == sorted(expected)


def test_unit_weight_flag_set_for_unweighted_graph():
    graph = karate_club()
    config = GPULouvainConfig()
    buckets = degree_buckets(
        graph.degrees, config.degree_bucket_bounds, config.group_sizes
    )
    plan = SweepPlan.build(graph, buckets)
    assert plan.integral_weights
    for bp in plan.bucket_plans:
        if bp.dst.size:
            assert bp.unit_weights == bp.can_increment


def test_unit_weight_flag_clear_for_weighted_graph():
    graph = from_edges([0, 1, 2], [1, 2, 0], [1.5, 2.5, 1.0], num_vertices=3)
    config = GPULouvainConfig()
    buckets = degree_buckets(
        graph.degrees, config.degree_bucket_bounds, config.group_sizes
    )
    plan = SweepPlan.build(graph, buckets)
    for bp in plan.bucket_plans:
        assert not bp.unit_weights


def test_gather_reuse_counted():
    graph, _ = lfr_like(200, 2, avg_degree=10, mixing=0.2)
    out = _run(graph, use_sweep_plan=True)
    total_sweeps = sum(out.sweeps_per_level)
    if total_sweeps > 1:
        assert out.timings.gather_reuse_hits > 0


def test_mark_moved_without_labels_disables_delta_scoring():
    graph = karate_club()
    config = GPULouvainConfig()
    buckets = degree_buckets(
        graph.degrees, config.degree_bucket_bounds, config.group_sizes
    )
    plan = SweepPlan.build(graph, buckets)
    plan.track_validity = True
    assert plan.delta_scoring_ok
    plan.mark_moved(np.array([0, 1], dtype=np.int64))
    assert not plan.delta_scoring_ok


def test_rejects_mismatched_vertex_set():
    from repro.core.compute_move import compute_moves_vectorized

    graph = karate_club()
    config = GPULouvainConfig()
    buckets = degree_buckets(
        graph.degrees, config.degree_bucket_bounds, config.group_sizes
    )
    plan = SweepPlan.build(graph, buckets)
    comm = np.arange(graph.num_vertices, dtype=np.int64)
    k = graph.weighted_degrees
    volumes = np.bincount(comm, weights=k, minlength=graph.num_vertices)
    sizes = np.bincount(comm, minlength=graph.num_vertices)
    nonempty = [bp for bp in plan.bucket_plans if bp.bucket.size]
    bp = nonempty[0]
    wrong = bp.bucket.members[:-1] if bp.bucket.size > 1 else np.array([0, 1])
    with pytest.raises(ValueError):
        compute_moves_vectorized(
            graph, comm, volumes, sizes, wrong, k=k, plan=bp
        )
