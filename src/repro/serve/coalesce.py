"""Batch coalescing: fold a burst of edge batches into one net batch.

The service layer's per-session queue merges every request that piles up
while an ``apply()`` is in flight into a **single** incremental
re-clustering (:class:`repro.serve.server.ReproServer`).  The fold lives
here, transport-free, so its equivalence guarantee is testable against
:func:`repro.graph.build.apply_edge_batch` directly:

* **graph equivalence** — applying the coalesced batch yields exactly
  the same CSR arrays as applying the burst's batches one at a time
  (bit-identical for integer-valued weights; for arbitrary float
  weights, summing ``w0 + a1 + a2`` in one order vs. ``w0 + (a1 + a2)``
  can differ in the last ulp — the only caveat);
* **clustering equivalence** — under ``screening="exact"`` a
  :class:`~repro.stream.StreamSession` apply of the coalesced batch is
  bit-identical to a full warm-started :func:`~repro.core.gpu_louvain.
  gpu_louvain` run on the sequentially-updated graph, so coalescing
  loses no information vs. re-clustering after the whole burst.

Per-pair folding rules (matching ``apply_edge_batch`` semantics —
inserts *sum* onto existing weights, removes delete entirely, a pair
both removed and added in one batch ends with exactly the added
weight):

====================================  =================================
burst history of pair ``{u, v}``      net batch contribution
====================================  =================================
adds only                             one add with the summed weight
existed, removed (maybe re-added w)   remove, plus an add of ``w`` if
                                      re-added after the last remove
created in burst, later removed       nothing
created in burst, still present       one add with the weight since the
                                      last remove
====================================  =================================

Each :meth:`BatchCoalescer.add_batch` call is validated **sequentially**
and transactionally: removing a pair that does not exist at that point
of the burst raises :class:`ValueError` (exactly as the sequential
apply would) and leaves the coalescer's state untouched, so the server
can reject one bad request and still fold the rest of the burst.
"""

from __future__ import annotations

import numpy as np

from ..graph.build import _canonical_batch_adds
from ..graph.csr import CSRGraph

__all__ = ["BatchCoalescer"]

# Per-pair fold state indices (lists, not a dataclass: this is the inner
# loop of every queued request).
_EXISTS = 0  # pair currently exists in the simulated graph
_WEIGHT = 1  # accumulated added weight since the last remove
_RESET = 2   # an entry existing in the base graph was removed at some point


class BatchCoalescer:
    """Folds a sequence of ``(add, remove)`` batches into one net batch.

    Parameters
    ----------
    graph:
        The canonical base graph the burst applies to (existence checks
        for removals resolve against it).

    Attributes
    ----------
    requests:
        Batches folded in so far (accepted ones only).
    pairs_touched:
        Distinct undirected pairs named by the accepted batches.
    """

    def __init__(self, graph: CSRGraph) -> None:
        n = graph.num_vertices
        self._n = n
        # Both directions are stored, so pair (lo, hi) exists iff the
        # canonical key lo*n + hi is among the stored keys — sorted for
        # canonical graphs, enabling binary search.
        self._stored = graph.vertex_of_edge * np.int64(max(n, 1)) + graph.indices
        self._state: dict[int, list] = {}
        self.requests = 0

    @property
    def pairs_touched(self) -> int:
        return len(self._state)

    def _base_exists(self, key: int) -> bool:
        """Whether the pair exists in the base graph."""
        stored = self._stored
        i = int(np.searchsorted(stored, key))
        return i < stored.size and int(stored[i]) == key

    def _get(self, key: int) -> list:
        state = self._state.get(key)
        if state is None:
            exists = self._base_exists(key)
            state = self._state[key] = [exists, 0.0, False]
        return state

    def add_batch(
        self,
        *,
        add: tuple | None = None,
        remove: tuple | None = None,
    ) -> None:
        """Fold one batch (same ``add``/``remove`` shape as ``apply``).

        Raises :class:`ValueError` — without mutating any state — when
        the batch is malformed or removes a pair that does not exist at
        this point of the burst.
        """
        n = self._n
        empty = np.empty(0, dtype=np.int64)
        akey, aw = (
            _canonical_batch_adds(add, n)
            if add is not None
            else (empty, np.empty(0, dtype=np.float64))
        )
        if remove is not None:
            ru = np.asarray(remove[0], dtype=np.int64).ravel()
            rv = np.asarray(remove[1], dtype=np.int64).ravel()
            if ru.shape != rv.shape:
                raise ValueError("remove arrays must be parallel")
            if ru.size and (
                min(ru.min(), rv.min()) < 0 or max(ru.max(), rv.max()) >= n
            ):
                raise ValueError("removal endpoints out of range")
            rkey = (
                np.unique(np.minimum(ru, rv) * n + np.maximum(ru, rv))
                if ru.size
                else empty
            )
        else:
            rkey = empty

        # Validate every removal against the pre-batch state before any
        # mutation (apply_edge_batch requires existence at batch start,
        # even for pairs re-added in the same batch).
        for key in map(int, rkey):
            state = self._state.get(key)
            exists = state[_EXISTS] if state is not None else self._base_exists(key)
            if not exists:
                raise ValueError(
                    f"cannot remove non-existent edge ({key // n}, {key % n})"
                )

        for key in map(int, rkey):
            state = self._get(key)
            state[_EXISTS] = False
            state[_WEIGHT] = 0.0
            if self._base_exists(key):
                state[_RESET] = True
        for key, w in zip(map(int, akey), aw):
            state = self._get(key)
            state[_EXISTS] = True
            state[_WEIGHT] += float(w)
        self.requests += 1

    def net(self) -> tuple[tuple | None, tuple | None]:
        """The coalesced ``(add, remove)`` batch (key-sorted, deterministic).

        Suitable for one :meth:`~repro.stream.StreamSession.apply` /
        :func:`~repro.graph.build.apply_edge_batch` call; either side is
        ``None`` when empty.  Pairs whose fold nets out to "no change"
        (burst-created then deleted, or a pure zero-weight touch of an
        existing entry) are dropped.
        """
        n = self._n
        add_u: list[int] = []
        add_v: list[int] = []
        add_w: list[float] = []
        rem_u: list[int] = []
        rem_v: list[int] = []
        for key in sorted(self._state):
            exists, weight, reset = self._state[key]
            lo, hi = key // n, key % n
            if reset:
                rem_u.append(lo)
                rem_v.append(hi)
                if exists:
                    add_u.append(lo)
                    add_v.append(hi)
                    add_w.append(weight)
            elif exists and self._base_exists(key):
                # Pure weight accumulation onto an existing entry; a net
                # zero would re-cluster a pair whose row never changed.
                if weight != 0.0:
                    add_u.append(lo)
                    add_v.append(hi)
                    add_w.append(weight)
            elif exists:
                # Created by the burst (possibly with weight 0.0 — a
                # structural change even then).
                add_u.append(lo)
                add_v.append(hi)
                add_w.append(weight)
        add = (
            (
                np.asarray(add_u, dtype=np.int64),
                np.asarray(add_v, dtype=np.int64),
                np.asarray(add_w, dtype=np.float64),
            )
            if add_u
            else None
        )
        remove = (
            (np.asarray(rem_u, dtype=np.int64), np.asarray(rem_v, dtype=np.int64))
            if rem_u
            else None
        )
        return add, remove
