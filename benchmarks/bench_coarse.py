"""Coarse-grained comparison (Section 3 / Section 6 observations).

Paper: the multi-GPU hierarchical algorithm of Cheong et al. loses up to
9% modularity from its coarse partitioning across GPUs, while the MPI
coarse-grained algorithms report quality on par with sequential; Section 6
remarks that coarse approaches "seem to consistently produce solutions of
high modularity even when using an initial random vertex partitioning".

The experiment: run the coarse-grained pipeline with random partitions of
increasing part count and record the modularity loss against sequential.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.reporting import banner, format_table
from repro.bench.runner import run_sequential, timed
from repro.bench.suite import SUITE
from repro.parallel.coarse import coarse_louvain

from _util import emit

GRAPH_NAMES = ("com-youtube", "coPapersDBLP", "italy_osm", "rgg_n_2_22_s0")
PART_COUNTS = (1, 2, 4, 8, 16)


@pytest.fixture(scope="module")
def results():
    rows = []
    for name in GRAPH_NAMES:
        entry = next(e for e in SUITE if e.name == name)
        graph = entry.load()
        seq = run_sequential(graph)
        per_parts = []
        for parts in PART_COUNTS:
            result, seconds = timed(lambda: coarse_louvain(graph, parts, rng=0))
            per_parts.append((parts, result.modularity, seconds))
        rows.append((entry, seq, per_parts))
    return rows


def test_coarse_grained_quality(benchmark, results):
    entry0 = results[0][0]
    graph0 = entry0.load()
    benchmark.pedantic(
        lambda: coarse_louvain(graph0, 4, rng=0), rounds=2, iterations=1
    )

    table_rows = []
    worst_losses = []
    for entry, seq, per_parts in results:
        for parts, q, seconds in per_parts:
            loss = (seq.modularity - q) / seq.modularity if seq.modularity else 0.0
            worst_losses.append(loss)
            table_rows.append(
                [entry.name, parts, q, seq.modularity, loss * 100, seconds]
            )
    table = format_table(
        ["graph", "parts", "Q coarse", "Q seq", "loss %", "s"], table_rows
    )
    summary = (
        f"max modularity loss over random partitionings: "
        f"{max(worst_losses) * 100:.2f}% "
        f"(paper: Cheong et al. multi-GPU loses up to 9%; MPI coarse on par)"
    )
    emit("coarse_grained", banner("Coarse-grained quality (Sections 3/6)") + "\n" + table + "\n\n" + summary)

    # "Consistently high modularity even with random partitioning".
    assert max(worst_losses) < 0.15
    assert np.mean(worst_losses) < 0.08
