"""SessionManager: naming, LRU eviction, pinning, budgets, stats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import caveman, karate_club, ring
from repro.serve import ServeConfig, SessionManager, session_nbytes, snapshot_paths
from repro.stream import StreamConfig


@pytest.fixture
def manager(tmp_path):
    return SessionManager(
        ServeConfig(max_sessions=2, snapshot_dir=tmp_path / "snaps")
    )


def test_create_get_has(manager):
    session = manager.create("a", karate_club())
    assert manager.has("a")
    assert manager.get("a") is session
    assert not manager.has("b")
    with pytest.raises(KeyError):
        manager.get("b")
    with pytest.raises(KeyError):
        manager.create("a", karate_club())


def test_config_validation():
    with pytest.raises(ValueError):
        ServeConfig(max_sessions=-1)
    with pytest.raises(ValueError):
        ServeConfig(max_bytes=0)
    with pytest.raises(TypeError):
        SessionManager(ServeConfig(), max_sessions=3)


@pytest.mark.parametrize("name", ["", ".hidden", "-dash", "a/b", "a b", "x" * 129])
def test_invalid_names_rejected(manager, name):
    with pytest.raises(ValueError):
        manager.create(name, karate_club())


def test_lru_eviction_snapshots_the_tail(manager):
    manager.create("a", ring(12))
    manager.create("b", ring(12))
    manager.create("c", ring(12))  # evicts "a", the LRU
    assert set(manager.sessions) == {"b", "c"}
    assert manager.snapshotted("a")
    assert manager.has("a")
    assert manager.evictions == 1
    # touching "b" makes "c" the LRU victim of the next create
    manager.get("b")
    manager.create("d", ring(12))
    assert set(manager.sessions) == {"b", "d"}


def test_get_restores_evicted_session(manager):
    session = manager.create("a", caveman(4, 6)[0])
    membership = session.membership.copy()
    manager.create("b", ring(12))
    manager.create("c", ring(12))
    assert "a" not in manager.sessions

    restored = manager.get("a")
    assert restored is not session
    np.testing.assert_array_equal(restored.membership, membership)
    assert manager.restored == 1
    assert "a" in manager.sessions


def test_byte_budget(tmp_path):
    manager = SessionManager(
        ServeConfig(max_sessions=0, max_bytes=1, snapshot_dir=tmp_path)
    )
    manager.create("a", ring(16))
    # one resident session never evicts itself, however large
    assert set(manager.sessions) == {"a"}
    manager.create("b", ring(16))
    assert len(manager.sessions) == 1
    assert "b" in manager.sessions


def test_pinned_sessions_survive_budget_and_reject_evict(manager):
    manager.create("a", ring(12))
    manager.pin("a")
    manager.create("b", ring(12))
    manager.create("c", ring(12))  # LRU is pinned "a": "b" is evicted instead
    assert set(manager.sessions) == {"a", "c"}

    manager.pin("c")
    manager.create("d", ring(12))  # every candidate pinned: soft overflow
    assert set(manager.sessions) == {"a", "c", "d"}

    with pytest.raises(RuntimeError, match="busy"):
        manager.evict("a")
    with pytest.raises(RuntimeError, match="busy"):
        manager.delete("a")
    manager.unpin("a")
    manager.unpin("c")
    manager.create("e", ring(12))
    assert "a" not in manager.sessions


def test_delete_removes_files(manager):
    manager.create("a", ring(12))
    manager.evict("a")
    npz, sidecar = snapshot_paths(manager.snapshot_dir / "a")
    assert npz.exists() and sidecar.exists()
    manager.delete("a")
    assert not npz.exists() and not sidecar.exists()
    assert not manager.has("a")
    with pytest.raises(KeyError):
        manager.delete("a")


def test_snapshot_keeps_resident(manager):
    manager.create("a", ring(12))
    path = manager.snapshot("a")
    assert path.exists()
    assert "a" in manager.sessions
    assert manager.snapshots == 1


def test_info_and_names(manager):
    manager.create("a", karate_club(), StreamConfig(screening="exact"))
    info = manager.info("a")
    assert info["resident"] is True
    assert info["num_vertices"] == 34
    assert info["fingerprint"] == StreamConfig(screening="exact").fingerprint()
    assert info["bytes"] == session_nbytes(manager.sessions["a"])

    manager.evict("a")
    info = manager.info("a")
    assert info["resident"] is False
    assert info["num_vertices"] == 34
    assert info["fingerprint"] == StreamConfig(screening="exact").fingerprint()
    assert manager.names() == ["a"]
    with pytest.raises(KeyError):
        manager.info("zzz")


def test_stats_contract(manager):
    manager.create("a", ring(12))
    manager.create("b", ring(12))
    manager.evict("a")
    stats = manager.stats()
    assert stats == {
        "resident": 1,
        "known": 2,
        "resident_bytes": session_nbytes(manager.sessions["b"]),
        "created": 2,
        "restored": 0,
        "evictions": 1,
        "budget_evictions": 0,
        "snapshots": 1,
        "eviction_pressure": False,
    }
