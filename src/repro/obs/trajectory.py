"""Persistent perf trajectory: an append-only store of benchmark runs.

One :class:`TrajectoryEntry` records one traced benchmark run — keyed by
``(graph, engine, config fingerprint, commit)`` — with a flat ``metrics``
dict (total / optimization / aggregation seconds, modularity, sweeps,
level-0 MTEPS) extracted from its :class:`~repro.trace.RunReport`.  The
:class:`TrajectoryStore` appends entries to a JSON file
(``benchmarks/results/BENCH_trajectory.json`` by convention) and answers
questions like *"how has mod-opt time on uk-2002 moved over the last N
runs?"* via :meth:`TrajectoryStore.series`.

The **config fingerprint** hashes every tunable that changes what a
runtime number means (engine, thresholds, bucket limits, graph scale…),
so entries are only ever compared within a fixed configuration — the
property the regression gate (:mod:`repro.obs.gate`) depends on.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

try:  # POSIX only; Windows falls back to unlocked appends
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from ..trace import RunReport

__all__ = [
    "TRAJECTORY_SCHEMA",
    "TrajectoryEntry",
    "TrajectoryStore",
    "fingerprint",
    "config_fingerprint",
    "entry_from_report",
    "current_commit",
]

TRAJECTORY_SCHEMA = "repro.bench-trajectory/1"

#: ``meta`` keys that describe one run, not its configuration — they
#: must not enter the fingerprint or identical configs would never match.
_VOLATILE_META = frozenset(
    {"kind", "seconds", "commit", "timestamp", "fingerprint", "initial"}
)


def fingerprint(mapping: dict[str, Any]) -> str:
    """12-hex-digit digest of a mapping, order-independent."""
    canonical = json.dumps(mapping, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


def config_fingerprint(config: Any = None, **extra: Any) -> str:
    """Fingerprint a solver configuration (plus e.g. graph / scale).

    ``config`` may be a mapping or a :class:`~repro.core.GPULouvainConfig`
    (any dataclass): primitive fields — numbers, strings, bools, tuples
    thereof — are hashed; structured fields (device spec, cost
    parameters) are reduced to their string form.  Keyword arguments are
    merged in and win over config fields of the same name.
    """
    payload: dict[str, Any] = {}
    if config is not None:
        if isinstance(config, dict):
            payload.update(config)
        else:  # dataclass-like: take its public fields
            fields = getattr(config, "__dataclass_fields__", None)
            if fields is None:
                raise TypeError(f"cannot fingerprint {type(config).__name__}")
            for name in fields:
                payload[name] = getattr(config, name)
    payload.update(extra)
    return fingerprint(payload)


def current_commit(cwd: str | Path | None = None) -> str:
    """Short git commit hash of the working tree (``unknown`` outside git)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 and out.stdout.strip() else "unknown"


@dataclass(frozen=True)
class TrajectoryEntry:
    """One benchmark run's point on the perf trajectory."""

    graph: str
    engine: str
    fingerprint: str
    commit: str
    timestamp: float
    metrics: dict[str, float] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> tuple[str, str, str]:
        """The comparison key: ``(graph, engine, fingerprint)``."""
        return (self.graph, self.engine, self.fingerprint)

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form."""
        return {
            "graph": self.graph,
            "engine": self.engine,
            "fingerprint": self.fingerprint,
            "commit": self.commit,
            "timestamp": self.timestamp,
            "metrics": dict(self.metrics),
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TrajectoryEntry":
        """Rebuild an entry from its :meth:`to_dict` form."""
        return cls(
            graph=str(data["graph"]),
            engine=str(data["engine"]),
            fingerprint=str(data["fingerprint"]),
            commit=str(data.get("commit", "unknown")),
            timestamp=float(data.get("timestamp", 0.0)),
            metrics={k: float(v) for k, v in data.get("metrics", {}).items()},
            meta=dict(data.get("meta", {})),
        )


def _report_metrics(report: RunReport) -> dict[str, float]:
    """Flat metric dict of one report's span tree + result payload."""
    total = sum(span.seconds for span in report.spans)
    opt = agg = 0.0
    sweeps = 0.0
    level0_mteps = 0.0
    for root in report.spans:
        for level in root.find("level"):
            for child in level.children:
                if child.name == "optimization":
                    opt += child.seconds
                    sweeps += child.counters.get("sweeps", 0)
                elif child.name == "aggregation":
                    agg += child.seconds
            if level.attributes.get("level") == 0:
                opt0 = next(
                    (c for c in level.children if c.name == "optimization"), None
                )
                edges = level.attributes.get("num_edges", 0)
                if opt0 is not None and opt0.seconds > 0:
                    level0_mteps = (
                        2.0 * edges * opt0.counters.get("sweeps", 0)
                        / opt0.seconds / 1e6
                    )
    metrics = {
        "total_seconds": total,
        "optimization_seconds": opt,
        "aggregation_seconds": agg,
        "sweeps": sweeps,
        "level0_mteps": level0_mteps,
    }
    for name in ("modularity", "num_communities", "num_levels"):
        value = report.result.get(name)
        if isinstance(value, (int, float)):
            metrics[name] = float(value)
    return metrics


def entry_from_report(
    report: RunReport,
    *,
    graph: str | None = None,
    engine: str | None = None,
    fingerprint_: str | None = None,
    commit: str | None = None,
    timestamp: float | None = None,
) -> TrajectoryEntry:
    """Build a :class:`TrajectoryEntry` from one run report.

    ``graph`` / ``engine`` / the fingerprint default to the report's
    ``meta`` (``meta["fingerprint"]`` if present, else a fingerprint of
    the non-volatile meta fields — which include the thresholds and
    scale the benchmark ran at).  Raises :class:`ValueError` when the
    graph cannot be determined, since an unkeyed entry is useless.
    """
    meta = report.meta
    graph = graph or meta.get("graph")
    if not graph:
        raise ValueError("trajectory entries need a graph name (meta['graph'])")
    engine = engine or meta.get("engine") or meta.get("solver") or "unknown"
    if fingerprint_ is None:
        fingerprint_ = meta.get("fingerprint")
    if fingerprint_ is None:
        config_meta = {
            k: v for k, v in meta.items() if k not in _VOLATILE_META
        }
        config_meta["engine"] = engine
        fingerprint_ = fingerprint(config_meta)
    return TrajectoryEntry(
        graph=str(graph),
        engine=str(engine),
        fingerprint=str(fingerprint_),
        commit=commit if commit is not None else current_commit(),
        timestamp=timestamp if timestamp is not None else time.time(),
        metrics=_report_metrics(report),
        meta={k: v for k, v in meta.items() if k not in ("kind",)},
    )


class TrajectoryStore:
    """Append-only JSON store of :class:`TrajectoryEntry` rows.

    The file is ``{"schema": "repro.bench-trajectory/1", "entries":
    [...]}``; :meth:`append` rewrites it atomically (temp file + rename)
    after extending the existing history, never truncating it.

    Concurrency: the temp-file + rename makes readers immune to torn
    writes, but the read→extend→replace cycle itself is not atomic — two
    concurrent appenders could both read N entries and both write N+1,
    silently losing one append (exactly what happens when sharded bench
    workers and the coordinator report together).  :meth:`append`
    therefore takes an exclusive ``fcntl`` lock on a sidecar
    ``<file>.lock`` for the whole cycle, serialising writers while
    keeping lock state out of the data file (a rename would drop locks
    held on the file itself).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    @property
    def lock_path(self) -> Path:
        """Sidecar lock file serialising concurrent appenders."""
        return self.path.with_suffix(self.path.suffix + ".lock")

    @contextlib.contextmanager
    def _locked(self):
        """Hold the exclusive append lock (no-op where flock is missing)."""
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.lock_path, "a") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def load(self) -> list[TrajectoryEntry]:
        """All entries, file order (chronological for an honest history)."""
        if not self.path.exists():
            return []
        data = json.loads(self.path.read_text())
        if data.get("schema") != TRAJECTORY_SCHEMA:
            raise ValueError(
                f"{self.path}: schema {data.get('schema')!r} is not "
                f"{TRAJECTORY_SCHEMA!r}"
            )
        return [TrajectoryEntry.from_dict(e) for e in data.get("entries", [])]

    def append(self, entries: list[TrajectoryEntry] | TrajectoryEntry) -> int:
        """Append entries and persist; returns the new total count.

        The read→extend→replace cycle runs under the exclusive sidecar
        lock, so concurrent appenders serialise instead of losing
        entries to a read-modify-write race.
        """
        if isinstance(entries, TrajectoryEntry):
            entries = [entries]
        with self._locked():
            history = self.load()
            history.extend(entries)
            payload = {
                "schema": TRAJECTORY_SCHEMA,
                "entries": [e.to_dict() for e in history],
            }
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            tmp.write_text(json.dumps(payload, indent=2, allow_nan=False) + "\n")
            tmp.replace(self.path)
        return len(history)

    def keys(self) -> list[tuple[str, str, str]]:
        """Distinct ``(graph, engine, fingerprint)`` keys, first-seen order."""
        seen: dict[tuple[str, str, str], None] = {}
        for entry in self.load():
            seen.setdefault(entry.key, None)
        return list(seen)

    def series(
        self,
        *,
        graph: str | None = None,
        engine: str | None = None,
        fingerprint: str | None = None,
        metric: str = "optimization_seconds",
        last: int | None = None,
    ) -> list[tuple[TrajectoryEntry, float]]:
        """The trajectory of one metric, filtered and optionally truncated.

        Answers "how has mod-opt time on uk-2002 moved over the last N
        runs": ``series(graph="uk-2002", metric="optimization_seconds",
        last=N)``.  Entries missing the metric are skipped.
        """
        rows = [
            (entry, entry.metrics[metric])
            for entry in self.load()
            if metric in entry.metrics
            and (graph is None or entry.graph == graph)
            and (engine is None or entry.engine == engine)
            and (fingerprint is None or entry.fingerprint == fingerprint)
        ]
        return rows[-last:] if last else rows

    def latest(self) -> dict[tuple[str, str, str], TrajectoryEntry]:
        """The most recent entry per ``(graph, engine, fingerprint)`` key."""
        latest: dict[tuple[str, str, str], TrajectoryEntry] = {}
        for entry in self.load():
            latest[entry.key] = entry
        return latest
