"""Flight recorder + trace propagation through the serve stack.

Covers the tentpole acceptance paths: ``GET /v1/debug/flight``,
``X-Repro-Cid`` / ``X-Repro-Trace`` response headers (success and error
envelopes), exemplars resolvable back to a trace id, and — with the
sharded engine behind a session — one stitched span tree per request
whose shard worker spans carry the request's trace id.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs.flight import stitch_spans, validate_flight
from repro.obs.logs import StructuredLogger
from repro.serve import (
    ReproServer,
    ServeClient,
    ServeConfig,
    ServeError,
    SessionManager,
)


def _start(manager, **kwargs):
    kwargs.setdefault("logger", StructuredLogger("repro.serve", level="debug"))
    srv = ReproServer(manager, port=0, **kwargs)
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: srv.run(ready=lambda _: ready.set()), daemon=True
    )
    thread.start()
    assert ready.wait(10), "server did not start"
    return srv, thread


@pytest.fixture
def server(tmp_path):
    manager = SessionManager(
        ServeConfig(
            max_sessions=4,
            snapshot_dir=tmp_path / "snaps",
            flight_dir=tmp_path / "flight",
            exemplar_seconds=0.0,  # tag every observation
        )
    )
    srv, thread = _start(manager)
    yield srv
    srv.request_shutdown()
    thread.join(10)
    assert not thread.is_alive()


@pytest.fixture
def client(server):
    with ServeClient(port=server.port) as c:
        yield c


def test_flight_endpoint_returns_valid_snapshot(client):
    client.health()
    flight = client.debug_flight()
    assert validate_flight(flight) == []
    assert flight["source"] == "ring"
    assert flight["entries"]


def test_every_response_carries_cid_and_trace_headers(client):
    client.health()
    first_cid, first_trace = client.last_cid, client.last_trace_id
    assert first_cid.startswith("req-")
    assert first_trace.startswith("tr-")
    client.stats()
    assert client.last_cid != first_cid
    assert client.last_trace_id != first_trace


def test_error_envelope_carries_cid_matching_server_log(server, client):
    with pytest.raises(ServeError) as excinfo:
        client.info("missing-session")
    cid = excinfo.value.cid
    assert cid is not None and cid.startswith("req-")
    assert cid == client.last_cid
    # The server logged the failing request under the exact same cid.
    logged = [
        line for line in server.log.lines()
        if line["event"] == "request_error" and line.get("cid") == cid
    ]
    assert logged and logged[0]["status"] == 404


def test_flight_endpoint_filters_by_trace_and_kind(client):
    client.create_session("f1", generate={"family": "ring", "n": 40})
    client.batch("f1", add=([0, 1], [5, 9]))
    trace_id = client.last_trace_id
    only = client.debug_flight(trace_id=trace_id, kinds="span")
    assert only["entries"], "no spans tagged with the request trace id"
    assert all(e["kind"] == "span" for e in only["entries"])
    assert all(e["trace_id"] == trace_id for e in only["entries"])


def test_flight_disabled_returns_404(tmp_path):
    manager = SessionManager(
        ServeConfig(snapshot_dir=tmp_path / "snaps", flight=False)
    )
    srv, thread = _start(manager)
    try:
        with ServeClient(port=srv.port) as client:
            with pytest.raises(ServeError) as excinfo:
                client.debug_flight()
            assert excinfo.value.code == "not_found"
            assert client.last_cid  # headers still present on errors
    finally:
        srv.request_shutdown()
        thread.join(10)


def test_health_and_stats_carry_uptime_and_build_stamp(client):
    health = client.health()
    assert health["ok"] is True
    assert health["uptime_seconds"] >= 0.0
    assert health["version"]
    assert health["build"]
    live = client.health(live=True)
    assert live["status"] == "alive"
    assert live["version"] == health["version"]
    stats = client.stats()
    assert stats["version"] == health["version"]
    assert stats["build"] == health["build"]
    assert stats["uptime_seconds"] >= health["uptime_seconds"]


def test_batch_exemplar_resolves_to_request_trace(client):
    client.create_session("ex1", generate={"family": "ring", "n": 40})
    client.batch("ex1", add=([0], [7]))
    trace_id = client.last_trace_id

    stats = client.stats()
    rows = stats["exemplars"]["repro_serve_apply_seconds"]
    tagged = [r for r in rows if r["exemplar"]["labels"].get("trace_id")]
    assert any(
        r["exemplar"]["labels"]["trace_id"] == trace_id for r in tagged
    ), f"no apply exemplar for {trace_id}: {rows}"

    # The same exemplar appears in the text exposition ...
    exposition = client.metrics()
    exemplar_lines = [
        line for line in exposition.splitlines()
        if " # {" in line and trace_id in line
    ]
    assert exemplar_lines, "exposition carries no exemplar for the trace"
    # ... and resolves to flight entries for that exact request.
    resolved = client.debug_flight(trace_id=trace_id)
    assert resolved["entries"]


def test_sharded_serve_request_yields_one_stitched_tree(server, client):
    # A graph big enough to clear shard_min_vertices (192), with a
    # frontier limit so tiny every batch takes the full-pipeline path —
    # which is what fans out across shard workers.
    client.create_session(
        "sh1",
        generate={"family": "social", "n": 300, "m": 6, "seed": 3},
        config={
            "algo": "sharded",
            "shard": {"pool": "inline", "workers": 2},
            "frontier_fraction_limit": 0.001,
        },
    )
    result = client.batch("sh1", add=([1, 2, 3], [50, 60, 70]))
    assert result["mode"] == "full"
    trace_id = client.last_trace_id

    # Live tracer view: request → batch → run → ... → shard, one tree.
    session = server.manager.get("sh1")
    requests = [s for s in session.tracer.roots if s.name == "request"]
    assert len(requests) == 1
    root = requests[0]
    assert root.attributes["trace_id"] == trace_id
    assert root.attributes["route"] == "session/batch"
    (batch,) = root.children
    assert batch.name == "batch"
    assert batch.attributes["trace_id"] == trace_id
    shards = root.find("shard")
    assert len(shards) >= 2, "expected spans from at least two shards"
    assert all(s.attributes["trace_id"] == trace_id for s in shards)

    # Flight view: the ring's span entries stitch to the same story.
    flight = client.debug_flight(trace_id=trace_id, kinds="span")
    trees = stitch_spans(flight["entries"])
    assert set(trees) == {trace_id}
    stitched = trees[trace_id]
    assert stitched.find("request") and stitched.find("batch")
    # Attached shard spans reach the ring too — the crash-proof copy
    # of the tree is as complete as the live one.
    assert stitched.find("shard")


def test_sharded_color_mode_reparents_worker_built_spans(server, client):
    client.create_session(
        "sh2",
        generate={"family": "social", "n": 300, "m": 6, "seed": 4},
        config={
            "algo": "sharded",
            "shard": {"pool": "inline", "workers": 2, "mode": "color"},
            "frontier_fraction_limit": 0.001,
        },
    )
    client.batch("sh2", add=([4], [80]))
    trace_id = client.last_trace_id
    session = server.manager.get("sh2")
    (root,) = [s for s in session.tracer.roots if s.name == "request"]
    shards = root.find("shard")
    assert shards, "color mode attached no shard spans"
    for span in shards:
        # Worker-built: stamped with the trace id and the builder's pid.
        assert span.attributes["trace_id"] == trace_id
        assert "worker_pid" in span.attributes


def test_batch_enqueued_log_precedes_apply(server, client):
    client.create_session("q1", generate={"family": "ring", "n": 30})
    client.batch("q1", add=([2], [11]))
    cid = client.last_cid
    events = [
        line["event"] for line in server.log.lines()
        if line.get("cid") == cid
    ]
    assert "batch_enqueued" in events
    assert events.index("batch_enqueued") < events.index("batch_applied")


def test_watchdog_stall_writes_bundle(tmp_path, monkeypatch):
    manager = SessionManager(
        ServeConfig(
            snapshot_dir=tmp_path / "snaps",
            flight_dir=tmp_path / "flight",
            stall_seconds=0.2,
        )
    )
    srv, thread = _start(manager)
    try:
        import repro.stream.session as session_mod

        original = session_mod.StreamSession.apply

        def slow_apply(self, add=None, remove=None):
            import time as _time

            _time.sleep(0.6)  # longer than stall_seconds
            return original(self, add=add, remove=remove)

        monkeypatch.setattr(session_mod.StreamSession, "apply", slow_apply)
        with ServeClient(port=srv.port) as client:
            client.create_session("w1", generate={"family": "ring", "n": 30})
            client.batch("w1", add=([1], [9]))
        stalls = [
            line for line in srv.log.lines()
            if line["event"] == "worker_stalled"
        ]
        assert stalls, "watchdog never fired"
        bundles = list((tmp_path / "flight").glob("bundle-stall-*.tar.gz"))
        assert bundles, "stall fired but no bundle was written"
    finally:
        srv.request_shutdown()
        thread.join(10)
