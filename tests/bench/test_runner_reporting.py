"""Tests for the experiment runner and reporting helpers."""

import pytest

from repro.bench.reporting import banner, format_series, format_table, geometric_mean
from repro.bench.runner import (
    run_gpu,
    run_sequential,
    stage_breakdown,
    table1_rows,
    threshold_grid,
    timed,
)
from repro.bench.suite import SUITE
from repro.graph.generators import karate_club, lfr_like


def test_timed_returns_result_and_seconds():
    from repro.seq.louvain import louvain

    g = karate_club()
    result, seconds = timed(lambda: louvain(g))
    assert seconds > 0
    assert result.modularity > 0.3


def test_run_gpu_and_sequential_agree_roughly():
    g, _ = lfr_like(400, rng=0)
    gpu = run_gpu(g)
    seq = run_sequential(g)
    assert gpu.modularity > 0.9 * seq.modularity
    assert gpu.name == "gpu"
    assert seq.name == "seq"


def test_run_sequential_adaptive_name():
    g = karate_club()
    assert run_sequential(g, adaptive=True).name == "seq-adaptive"


def test_table1_rows_subset():
    entries = [SUITE[43]]  # com-dblp, small
    rows = table1_rows(entries)
    assert len(rows) == 1
    row = rows[0]
    assert row.entry.name == "com-dblp"
    assert row.speedup > 0
    assert 0.8 < row.relative_modularity <= 1.1
    assert row.num_vertices > 0
    # Rows carry the full solver results so benchmarks can emit traces.
    assert row.gpu_result is not None
    assert row.gpu_result.modularity == pytest.approx(row.gpu_modularity)
    assert row.seq_result is not None
    assert row.seq_result.modularity == pytest.approx(row.seq_modularity)


def test_suite_report_is_traced_and_keyed():
    from repro.bench.runner import SUITE_GPU_DEFAULTS, suite_report
    from repro.bench.suite import suite_entry
    from repro.trace import validate_report

    report = suite_report(suite_entry("com-dblp"), scale=0.5)
    assert validate_report(report.to_dict()) == []
    meta = report.meta
    assert meta["graph"] == "com-dblp"
    assert meta["engine"] == "vectorized"
    assert meta["scale"] == 0.5
    for key, value in SUITE_GPU_DEFAULTS.items():
        assert meta[key] == value
    # Live spans, not the timings fallback: sweep children exist.
    assert report.spans[0].find("sweep")


def test_threshold_grid_shape_and_ordering():
    entries = [SUITE[43]]
    cells = threshold_grid(entries, [1e-1, 1e-3], [1e-3, 1e-5])
    # t_final > t_bin combinations dropped: (1e-3, 1e-3) kept? equal allowed
    assert all(c.threshold_final <= c.threshold_bin for c in cells)
    assert len(cells) == 4
    for cell in cells:
        assert 0.5 < cell.mean_relative_modularity <= 1.1
        assert cell.mean_seconds > 0
        assert len(cell.per_graph_seconds) == 1


def test_stage_breakdown():
    g, _ = lfr_like(300, rng=1)
    run = run_gpu(g)
    rows = stage_breakdown(run.result)
    assert len(rows) == run.levels
    assert rows[0].num_vertices == g.num_vertices
    assert all(r.optimization_seconds >= 0 for r in rows)
    assert rows[-1].modularity == pytest.approx(run.modularity, abs=1e-9)


def test_banner():
    text = banner("Hello")
    assert "Hello" in text
    assert text.count("=") >= 10


def test_format_table_alignment():
    table = format_table(["name", "x"], [["abc", 1.5], ["de", 22.25]])
    lines = table.splitlines()
    assert len(lines) == 4
    assert "abc" in lines[2]
    assert "22.250" in lines[3]


def test_format_table_floatfmt():
    table = format_table(["x"], [[1.23456]], floatfmt=".1f")
    assert "1.2" in table


def test_format_series():
    text = format_series("speedup", ["a", "b"], [1.0, 2.0])
    assert "series speedup:" in text
    assert "a = 1.0000" in text


def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert geometric_mean([]) == 0.0
    assert geometric_mean([2.0, 0.0, 8.0]) == pytest.approx(4.0)  # zeros skipped


def test_table1_rows_adaptive_variant():
    entries = [SUITE[43]]  # com-dblp
    rows = table1_rows(entries, adaptive_seq=True)
    assert len(rows) == 1
    assert rows[0].seq_seconds > 0


def test_run_gpu_overrides_passthrough():
    g = karate_club()
    run = run_gpu(g, engine="simulated")
    assert run.result.profile is not None


def test_threshold_grid_drops_inverted_cells():
    entries = [SUITE[43]]
    cells = threshold_grid(entries, [1e-3], [1e-1, 1e-4])
    # t_final=1e-1 > t_bin=1e-3 must be dropped
    assert len(cells) == 1
    assert cells[0].threshold_final == 1e-4
