"""Crash-proof debug bundle: SIGKILL the server, rebuild the story.

The acceptance path for the flight journal: run ``repro serve`` as a
real OS process with journaling on, complete one batch, enqueue another
(``batch_enqueued`` journals synchronously at enqueue time), SIGKILL
the process with the apply in flight, then build a bundle from the
journals alone and find the in-flight request's breadcrumbs inside.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tarfile
import threading
import time

import pytest

from repro.obs.flight import build_debug_bundle, validate_flight
from repro.serve import ServeClient

READY = re.compile(r"listening on http://[\d.]+:(\d+)")


@pytest.fixture
def killed_server(tmp_path):
    """A served process SIGKILLed with a batch apply in flight."""
    flight_dir = tmp_path / "flight"
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--snapshot-dir", str(tmp_path / "snaps"),
            "--flight-dir", str(flight_dir),
            "--log-level", "debug",
            "--exemplar-ms", "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
    )
    try:
        port = None
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            match = READY.search(line)
            if match:
                port = int(match.group(1))
                break
        assert port is not None, "server never printed its ready line"

        with ServeClient(port=port) as client:
            client.create_session(
                "crashy",
                generate={"family": "social", "n": 4000, "m": 8, "seed": 2},
                # Force the full pipeline on every batch so the apply
                # is slow enough to still be running when we SIGKILL.
                config={"frontier_fraction_limit": 1e-9},
            )
            client.batch("crashy", add=([0, 1], [7, 9]))  # completes
            completed_cid = client.last_cid

        def doomed_batch():
            # Fired from a throwaway connection; the SIGKILL lands
            # while this apply is in flight, so the request never
            # returns — only its journal breadcrumbs survive.
            try:
                with ServeClient(port=port, timeout=30) as doomed:
                    doomed.batch("crashy", add=([2, 3], [13, 17]))
            except Exception:  # noqa: BLE001 - the point of the test
                pass

        thread = threading.Thread(target=doomed_batch, daemon=True)
        thread.start()
        time.sleep(0.3)  # let the batch enqueue and the apply start
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10)
        thread.join(timeout=10)
        yield flight_dir, completed_cid
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


def test_bundle_from_killed_server_recovers_inflight_request(
    killed_server, tmp_path
):
    flight_dir, completed_cid = killed_server
    out = tmp_path / "bundle.tar.gz"
    manifest = build_debug_bundle(
        out, port=None, flight_dir=flight_dir, reason="sigkill-test"
    )
    assert out.exists()
    assert "flight.json" in manifest["pieces"]

    with tarfile.open(out) as tar:
        flight = json.load(tar.extractfile("flight.json"))
        assert "MANIFEST.json" in tar.getnames()
    assert validate_flight(flight) == []
    assert flight["source"] == "journal"

    logs = [e for e in flight["entries"] if e["kind"] == "log"]
    events_by_cid = {}
    for entry in logs:
        record = entry["record"]
        events_by_cid.setdefault(record.get("cid"), []).append(
            record["event"]
        )
    # The completed request left its full arc in the journal ...
    assert "batch_applied" in events_by_cid.get(completed_cid, [])
    # ... and the killed-mid-apply request left its enqueue breadcrumb
    # (journaled synchronously before the apply started) but never its
    # batch_applied line — that's the in-flight evidence.
    inflight = [
        cid for cid, events in events_by_cid.items()
        if cid is not None
        and "batch_enqueued" in events
        and "batch_applied" not in events
    ]
    assert inflight, f"no in-flight request in journal: {events_by_cid}"
    # Spans from the completed request survived the SIGKILL too.
    spans = [e for e in flight["entries"] if e["kind"] == "span"]
    assert any(e["name"] == "request" for e in spans)


def test_debug_bundle_cli_builds_from_journals_alone(killed_server, tmp_path):
    flight_dir, _completed = killed_server
    out = tmp_path / "cli-bundle.tar.gz"
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro", "debug-bundle",
            "--port", "0",  # 0 = no live server to query
            "--flight-dir", str(flight_dir),
            "-o", str(out),
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=60,
    )
    assert proc.returncode == 0, proc.stderr
    assert str(out) in proc.stdout
    assert out.exists()
    with tarfile.open(out) as tar:
        flight = json.load(tar.extractfile("flight.json"))
    assert validate_flight(flight) == []
    assert flight["entries"]
