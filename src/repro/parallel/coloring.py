"""Greedy distance-1 graph coloring.

Lu et al. [16] use a coloring to split vertices into independent sets so
that one set can move in parallel without races; their comparator
implementation here (:mod:`repro.parallel.lu_openmp`) needs the same.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["greedy_coloring", "color_classes"]


def greedy_coloring(graph: CSRGraph) -> np.ndarray:
    """First-fit greedy coloring in vertex-id order.

    Returns one color per vertex; adjacent vertices always differ (a
    self-loop does not constrain its own vertex).  Uses at most
    ``max_degree + 1`` colors.
    """
    n = graph.num_vertices
    colors = np.full(n, -1, dtype=np.int64)
    indices = graph.indices
    indptr = graph.indptr
    for v in range(n):
        forbidden = set()
        for e in range(indptr[v], indptr[v + 1]):
            nb = indices[e]
            if nb != v and colors[nb] >= 0:
                forbidden.add(int(colors[nb]))
        color = 0
        while color in forbidden:
            color += 1
        colors[v] = color
    return colors


def color_classes(colors: np.ndarray) -> list[np.ndarray]:
    """Vertices grouped by color, ascending color order."""
    colors = np.asarray(colors, dtype=np.int64)
    if colors.size == 0:
        return []
    order = np.argsort(colors, kind="stable")
    sorted_colors = colors[order]
    boundaries = np.flatnonzero(
        np.concatenate(([True], sorted_colors[1:] != sorted_colors[:-1]))
    )
    return np.split(order, boundaries[1:])
