"""Failure-injection tests for the graph readers."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.graph.generators import lfr_like
from repro.graph.io import (
    load_graph,
    read_edge_list,
    read_metis,
    write_edge_list,
    write_metis,
)

from ..conftest import csr_graphs


def test_edge_list_malformed_line(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("0 1\nnot numbers\n")
    with pytest.raises(ValueError, match=r"bad\.txt, line 2"):
        read_edge_list(path)


def test_edge_list_missing_endpoint(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("0\n")
    with pytest.raises(ValueError, match=r"bad\.txt, line 1.*'u v \[w\]'"):
        read_edge_list(path)


def test_edge_list_error_counts_comment_lines(tmp_path):
    # Line numbers are 1-based over the raw file, comments included.
    path = tmp_path / "bad.txt"
    path.write_text("# header\n0 1\n\n1 two\n")
    with pytest.raises(ValueError, match=r"bad\.txt, line 4.*'1 two'"):
        read_edge_list(path)


def test_edge_list_bad_weight(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("0 1 heavy\n")
    with pytest.raises(ValueError, match=r"bad\.txt, line 1"):
        read_edge_list(path)


def test_edge_list_negative_vertex(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("-1 2\n")
    with pytest.raises(ValueError):
        read_edge_list(path)


def test_edge_list_empty_file(tmp_path):
    path = tmp_path / "empty.txt"
    path.write_text("")
    graph = read_edge_list(path)
    assert graph.num_vertices == 0


def test_edge_list_comments_only(tmp_path):
    path = tmp_path / "c.txt"
    path.write_text("# a\n% b\n")
    assert read_edge_list(path).num_edges == 0


def test_metis_truncated(tmp_path):
    path = tmp_path / "bad.graph"
    path.write_text("3 3\n2 3\n")  # header claims 3 vertices, 1 line given
    g = read_metis(path)  # tolerated: missing rows read as isolated...
    # ...but symmetry is then broken and from_edges dedups; the reader
    # must still return a valid graph object.
    assert g.num_vertices == 3


def test_metis_bad_header(tmp_path):
    path = tmp_path / "bad.graph"
    path.write_text("abc def\n")
    with pytest.raises(ValueError):
        read_metis(path)


def test_metis_neighbor_out_of_range(tmp_path):
    path = tmp_path / "bad.graph"
    path.write_text("2 1\n5\n\n")  # neighbour 5 of a 2-vertex graph
    with pytest.raises(ValueError):
        read_metis(path)


def test_metis_rejects_unknown_fmt(tmp_path):
    path = tmp_path / "bad.graph"
    path.write_text("2 1 7\n2\n1\n")
    with pytest.raises(ValueError, match="fmt"):
        read_metis(path)


def test_metis_dangling_weight_field(tmp_path):
    # fmt=1 promises (neighbor, weight) pairs; an odd field count means
    # a weight (or neighbor) went missing.
    path = tmp_path / "bad.graph"
    path.write_text("2 1 1\n2 1.0\n1\n")
    with pytest.raises(ValueError, match="dangling"):
        read_metis(path)


def test_load_graph_missing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_graph(tmp_path / "nope.txt")


def test_unicode_and_blank_robustness(tmp_path):
    path = tmp_path / "g.txt"
    path.write_text("\n\n0 1 2.5\n\n   \n1 2\n")
    g = read_edge_list(path)
    assert g.num_edges == 2


@settings(max_examples=25, deadline=None)
@given(csr_graphs(max_vertices=15, max_edges=40, weighted=True))
def test_edge_list_roundtrip_property(tmp_path_factory, g):
    path = tmp_path_factory.mktemp("io") / "g.txt"
    write_edge_list(g, path)
    loaded = read_edge_list(path)
    # the "# vertices N" header preserves isolated trailing vertices
    assert loaded.num_vertices == g.num_vertices
    u1, v1, w1 = g.edge_list(unique=True)
    u2, v2, w2 = loaded.edge_list(unique=True)
    assert np.array_equal(u1, u2)
    assert np.array_equal(v1, v2)
    assert np.allclose(w1, w2)


@settings(max_examples=25, deadline=None)
@given(csr_graphs(max_vertices=15, max_edges=40, weighted=True))
def test_metis_roundtrip_property(tmp_path_factory, g):
    path = tmp_path_factory.mktemp("io") / "g.graph"
    write_metis(g, path)
    loaded = read_metis(path)
    assert loaded.num_vertices == g.num_vertices
    u1, v1, w1 = g.edge_list(unique=True)
    u2, v2, w2 = loaded.edge_list(unique=True)
    assert np.array_equal(u1, u2)
    assert np.allclose(w1, w2)


def test_large_roundtrip(tmp_path):
    g, _ = lfr_like(800, rng=0)
    path = tmp_path / "big.txt"
    write_edge_list(g, path)
    assert load_graph(path) == g
