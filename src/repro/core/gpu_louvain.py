"""The full GPU Louvain driver — the paper's main algorithm.

Alternates :func:`~repro.core.mod_opt.modularity_optimization` (Alg. 1)
and :func:`~repro.core.aggregate.aggregate_gpu` (Alg. 3), choosing the
sweep threshold adaptively (``t_bin`` above ``bin_vertex_limit`` vertices,
``t_final`` below — Section 5's ``(10^-2, 10^-6)`` default), until a whole
stage improves modularity by less than ``t_final``.

Use :func:`gpu_louvain` with ``engine="vectorized"`` for speed or
``engine="simulated"`` for thread-level device statistics and simulated
kernel timings (small graphs only).  Pass a :class:`~repro.trace.Tracer`
via ``tracer=`` to record a run → level → phase → sweep span tree on
**either** engine (see :mod:`repro.trace`); with no tracer the hot path
is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph
from ..gpu.costmodel import CostModel
from ..gpu.profiler import RunProfile
from ..metrics.modularity import modularity
from ..metrics.teps import TepsResult, teps
from ..metrics.timing import RunTimings, Stopwatch
from ..result import LouvainResult, flatten_levels
from ..trace import NullTracer, Tracer, as_tracer
from .aggregate import aggregate_gpu
from .config import GPULouvainConfig
from .mod_opt import modularity_optimization

__all__ = ["GPULouvainResult", "gpu_louvain"]


@dataclass
class GPULouvainResult(LouvainResult):
    """A :class:`~repro.result.LouvainResult` plus device-side accounting.

    ``profile`` and ``simulated_seconds`` are only populated by the
    simulated engine; ``first_phase_*`` feed the TEPS metric for any
    engine.
    """

    profile: RunProfile | None = None
    simulated_seconds: float | None = None
    simulated_transfer_seconds: float | None = None
    first_phase_sweeps: int = 0
    first_phase_seconds: float = 0.0

    def teps(self, graph: CSRGraph) -> TepsResult:
        """TEPS of the first modularity-optimization phase (paper §3)."""
        return teps(graph, self.first_phase_sweeps, self.first_phase_seconds)


def gpu_louvain(
    graph: CSRGraph,
    config: GPULouvainConfig | None = None,
    *,
    initial_communities: np.ndarray | None = None,
    refine=None,
    tracer: Tracer | NullTracer | None = None,
    **overrides,
) -> GPULouvainResult:
    """Run the paper's algorithm on ``graph``.

    Keyword overrides build a fresh :class:`GPULouvainConfig`, e.g.
    ``gpu_louvain(g, threshold_bin=1e-3, engine="simulated")``.

    ``initial_communities`` warm-starts the first level from an existing
    partition instead of singletons — the dynamic-network-analytics use
    case the paper's introduction motivates: after small updates to the
    graph, re-clustering from the previous membership converges in far
    fewer sweeps than from scratch.

    ``refine`` is the Leiden-style well-connectedness hook — a callable
    ``(graph, communities, tracer) -> refined_labels`` (see
    :func:`~repro.core.refine.connected_refinement`).  When given, each
    level contracts by the **refined** partition instead of the raw
    optimisation outcome, so internally-disconnected communities become
    separate contraction units the next level merges (or keeps apart)
    on merit — and every reported community induces a connected
    subgraph.  ``None`` (the default) is the paper's plain Louvain
    pipeline, bit-identical to the pre-hook behaviour.

    ``tracer`` records the run as a span tree (``run`` → ``level`` →
    ``optimization``/[``refinement``]/``aggregation`` → ``sweep``);
    tracing never alters the computation, only observes it.
    """
    if config is None:
        config = GPULouvainConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a config object or keyword overrides, not both")
    if initial_communities is not None:
        initial_communities = np.asarray(initial_communities, dtype=np.int64)
        if initial_communities.shape != (graph.num_vertices,):
            raise ValueError("initial_communities must assign one label per vertex")
        if initial_communities.size and (
            initial_communities.min() < 0
            or initial_communities.max() >= graph.num_vertices
        ):
            raise ValueError(
                "initial community labels must be existing vertex ids (0..n-1)"
            )

    tracer = as_tracer(tracer)
    if not tracer.enabled:
        return _run(graph, config, initial_communities, tracer, refine)
    with tracer.span(
        "run",
        engine=config.engine,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        warm_start=initial_communities is not None,
    ) as span:
        result = _run(graph, config, initial_communities, tracer, refine)
        span.count(
            modularity=result.modularity,
            num_levels=result.num_levels,
            num_communities=result.num_communities,
            sweeps=sum(result.sweeps_per_level),
        )
    return result


def _run(
    graph: CSRGraph,
    config: GPULouvainConfig,
    initial_communities: np.ndarray | None,
    tracer: Tracer | NullTracer,
    refine=None,
) -> GPULouvainResult:
    """:func:`gpu_louvain` body (config validated, tracer normalised).

    With a ``refine`` hook each level contracts by the refined
    partition, and the level's Q describes that refined membership —
    splitting a disconnected community never lowers Q (the pieces share
    no edges, so only the null-model cross term goes away), so the
    monotone stopping rule is unchanged.
    """
    timings = RunTimings()
    profile = RunProfile() if config.engine == "simulated" else None
    cost_model = (
        CostModel(config.device, config.cost_parameters)
        if config.engine == "simulated"
        else None
    )

    levels: list[np.ndarray] = []
    level_sizes: list[tuple[int, int]] = []
    sweeps_per_level: list[int] = []
    modularity_per_level: list[float] = []
    current = graph
    prev_q = -1.0
    first_phase_sweeps = 0
    first_phase_seconds = 0.0

    for level in range(config.max_levels):
        threshold = config.threshold_for(current.num_vertices)
        stage = timings.new_stage(current.num_vertices, current.num_edges)
        with tracer.span(
            "level",
            level=level,
            num_vertices=current.num_vertices,
            num_edges=current.num_edges,
            threshold=threshold,
        ) as level_span:
            with Stopwatch(stage, "optimization_seconds"):
                outcome = modularity_optimization(
                    current,
                    config,
                    threshold,
                    initial_communities=initial_communities if level == 0 else None,
                    cost_model=cost_model,
                    tracer=tracer,
                )
            if level == 0:
                first_phase_sweeps = outcome.sweeps
                first_phase_seconds = stage.optimization_seconds
            contract_by = outcome.communities
            if refine is not None:
                contract_by = refine(current, outcome.communities, tracer)
            with Stopwatch(stage, "aggregation_seconds"):
                agg = aggregate_gpu(
                    current,
                    contract_by,
                    config,
                    cost_model=cost_model,
                    tracer=tracer,
                )

            no_contraction = agg.graph.num_vertices == current.num_vertices
            # An aggregation that failed to contract onto the identity map is
            # a pure no-op level (no vertex moved, nothing merged): recording
            # it would inflate level counts in results and benchmarks without
            # changing the flattened membership.  Drop its records — unless it
            # is the only level, which keeps degenerate inputs (e.g. edgeless
            # graphs) well-formed.
            degenerate = (
                no_contraction
                and levels
                and np.array_equal(
                    agg.dense_map, np.arange(current.num_vertices, dtype=np.int64)
                )
            )
            if degenerate:
                timings.stages.pop()
                # The span stays in the trace (observability should show
                # the wasted level), labelled so reports can filter it.
                level_span.set(degenerate=True)
                break

            if profile is not None:
                profile.optimization.append(outcome.profile)
                profile.aggregation.append(agg.profile)

            levels.append(agg.dense_map)
            level_sizes.append((current.num_vertices, current.num_edges))
            sweeps_per_level.append(outcome.sweeps)
            stage.sweeps = outcome.sweeps
            stage.sweep_stats = outcome.profile.sweeps
            membership = flatten_levels(levels)
            q = modularity(graph, membership, resolution=config.resolution)
            modularity_per_level.append(q)
            stage.modularity = q
            level_span.count(sweeps=outcome.sweeps, modularity=q)

            current = agg.graph
            if q - prev_q < config.threshold_final or no_contraction:
                break
            prev_q = q

    membership = flatten_levels(levels)
    simulated_seconds = None
    simulated_transfer_seconds = None
    if profile is not None:
        # Publish device stats as live gauges.  Lazy import: repro.obs
        # pulls the bench/analyze stack, which imports this module.
        from ..obs.metrics import get_registry

        registry = get_registry()
        if registry.enabled:
            profile.record_metrics(registry)
    if profile is not None and cost_model is not None:
        launches = sum(
            len(p.kernels) for p in [*profile.optimization, *profile.aggregation]
        )
        simulated_seconds = cost_model.kernel_seconds(
            profile.total_warp_cycles(), launches=max(launches, 1)
        )
        # The one-off host->device copy of the input graph (Section 4.1).
        simulated_transfer_seconds = config.device.graph_transfer_seconds(
            graph.num_vertices, graph.num_stored_edges
        )

    return GPULouvainResult(
        levels=levels,
        level_sizes=level_sizes,
        membership=membership,
        modularity=modularity(graph, membership, resolution=config.resolution),
        modularity_per_level=modularity_per_level,
        sweeps_per_level=sweeps_per_level,
        timings=timings,
        profile=profile,
        simulated_seconds=simulated_seconds,
        simulated_transfer_seconds=simulated_transfer_seconds,
        first_phase_sweeps=first_phase_sweeps,
        first_phase_seconds=first_phase_seconds,
    )
