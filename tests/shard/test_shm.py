"""Shared-memory array plumbing (ISSUE satellite 4).

Pins the lifecycle rules of :mod:`repro.shard.shm`: views are
bit-identical after a detach/reattach round trip (in-process and across
a real fork), worker writes are visible to the coordinator, and the
coordinator's teardown is the only unlink.
"""

import multiprocessing

import numpy as np
import pytest

from repro.shard import ArraySpec, SharedArrays, attach_array


def test_spec_nbytes():
    assert ArraySpec("x", "<i8", (3, 4)).nbytes == 96
    assert ArraySpec("x", "<f8", ()).nbytes == 8


def test_round_trip_bit_identical():
    rng = np.random.default_rng(3)
    arrays = {
        "f": rng.standard_normal(257),
        "i": rng.integers(-(2**40), 2**40, 100),
        "b": rng.random(64) < 0.5,
        "empty": np.empty(0, dtype=np.int64),
    }
    with SharedArrays(prefix="repro-test") as shared:
        for name, array in arrays.items():
            view = shared.share(name, array)
            assert np.array_equal(view, array)
        for name, array in arrays.items():
            attached = attach_array(shared.spec(name))
            assert attached.array.dtype == array.dtype
            assert attached.array.shape == array.shape
            assert np.array_equal(attached.array, array)
            if array.size:
                assert attached.array.tobytes() == array.tobytes()
            attached.close()


def test_coordinator_view_is_writable_and_shared():
    with SharedArrays(prefix="repro-test") as shared:
        view = shared.share("x", np.zeros(8))
        attached = attach_array(shared.spec("x"))
        view[3] = 42.0
        assert attached.array[3] == 42.0  # same physical memory
        attached.array[5] = -1.0
        assert view[5] == -1.0
        attached.close()


def test_duplicate_name_rejected():
    with SharedArrays(prefix="repro-test") as shared:
        shared.share("x", np.zeros(4))
        with pytest.raises(ValueError):
            shared.share("x", np.zeros(4))


def test_close_unlinks():
    shared = SharedArrays(prefix="repro-test")
    view = shared.share("x", np.arange(5))
    spec = shared.spec("x")
    assert np.array_equal(view, np.arange(5))
    shared.close()
    with pytest.raises(FileNotFoundError):
        attach_array(spec)


def _child_round_trip(spec, reply_spec):
    attached = attach_array(spec)
    reply = attach_array(reply_spec)
    try:
        # write back a transform so the parent can verify both that the
        # child saw the exact bytes and that child writes are visible
        reply.array[...] = attached.array * 2
    finally:
        attached.close()
        reply.close()


def test_fork_child_sees_and_mutates():
    ctx = multiprocessing.get_context("fork")
    payload = np.arange(1000, dtype=np.float64) ** 2
    with SharedArrays(prefix="repro-test") as shared:
        shared.share("payload", payload)
        reply = shared.share("reply", np.zeros_like(payload))
        payload_spec = shared.spec("payload")
        proc = ctx.Process(
            target=_child_round_trip,
            args=(payload_spec, shared.spec("reply")),
        )
        proc.start()
        proc.join(timeout=60)
        assert proc.exitcode == 0
        # the child's exit did not unlink the segments out from under us
        # (attach suppresses resource_tracker adoption): both still live
        assert np.array_equal(shared.view("payload"), payload)
        assert np.array_equal(reply, payload * 2)
    # after the context exits, the coordinator's unlink has happened
    with pytest.raises(FileNotFoundError):
        attach_array(payload_spec)
