"""Tests for the modularity-optimization phase (Alg. 1)."""

import numpy as np
import pytest

from repro.core.config import GPULouvainConfig
from repro.core.mod_opt import modularity_optimization
from repro.graph.build import from_edges
from repro.graph.generators import caveman, lfr_like
from repro.metrics.modularity import modularity


def test_improves_modularity(karate):
    cfg = GPULouvainConfig()
    out = modularity_optimization(karate, cfg, 1e-6)
    assert out.modularity > 0.3  # one level; later levels close the gap
    assert modularity(karate, out.communities) == pytest.approx(out.modularity)
    assert out.sweeps >= 1


def test_caveman_first_level_groups_caves():
    g, truth = caveman(5, 8)
    cfg = GPULouvainConfig()
    out = modularity_optimization(g, cfg, 1e-6)
    # every cave collapses into a single community after one phase
    for cave in range(5):
        members = truth == cave
        assert np.unique(out.communities[members]).size == 1


def test_empty_graph():
    g = from_edges([], [], num_vertices=3)
    cfg = GPULouvainConfig()
    out = modularity_optimization(g, cfg, 1e-6)
    assert out.communities.tolist() == [0, 1, 2]
    assert out.sweeps == 0


def test_threshold_limits_sweeps():
    g, _ = lfr_like(500, rng=1)
    cfg = GPULouvainConfig()
    fine = modularity_optimization(g, cfg, 1e-7)
    coarse = modularity_optimization(g, cfg, 0.5)
    assert coarse.sweeps <= fine.sweeps


def test_max_sweeps_respected(karate):
    cfg = GPULouvainConfig(max_sweeps_per_level=1)
    out = modularity_optimization(karate, cfg, 1e-9)
    assert out.sweeps == 1


def test_initial_communities_used(karate):
    cfg = GPULouvainConfig()
    init = (np.arange(34) % 2).astype(np.int64)
    out = modularity_optimization(karate, cfg, 1e-6, initial_communities=init)
    assert modularity(karate, out.communities) >= modularity(karate, init) - 1e-9


def test_relaxed_mode_runs(karate):
    cfg = GPULouvainConfig(relaxed_updates=True)
    out = modularity_optimization(karate, cfg, 1e-6)
    assert out.modularity > 0.25


def test_relaxed_vs_bucketed_quality():
    """Section 5: full-run relaxed modularity is close, but slower (more
    sweeps) — the paper reports <0.13% difference and up to 10x slowdown."""
    from repro.core.gpu_louvain import gpu_louvain

    g, _ = lfr_like(600, rng=2)
    bucketed = gpu_louvain(g)
    relaxed = gpu_louvain(g, relaxed_updates=True)
    assert abs(bucketed.modularity - relaxed.modularity) < 0.03 * bucketed.modularity
    assert sum(relaxed.sweeps_per_level) >= sum(bucketed.sweeps_per_level)


def test_simulated_engine_equals_vectorized(karate):
    out_v = modularity_optimization(karate, GPULouvainConfig(), 1e-6)
    out_s = modularity_optimization(
        karate, GPULouvainConfig(engine="simulated"), 1e-6
    )
    assert np.array_equal(out_v.communities, out_s.communities)
    assert out_s.profile.kernels  # stats collected
    assert not out_v.profile.kernels  # vectorized collects none


def test_no_singleton_constraint_still_works(karate):
    cfg = GPULouvainConfig(singleton_constraint=False)
    out = modularity_optimization(karate, cfg, 1e-6)
    assert out.modularity > 0.3


def test_deterministic(karate):
    cfg = GPULouvainConfig()
    a = modularity_optimization(karate, cfg, 1e-6)
    b = modularity_optimization(karate, cfg, 1e-6)
    assert np.array_equal(a.communities, b.communities)
    assert a.sweeps == b.sweeps
