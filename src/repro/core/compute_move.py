"""``computeMove`` (Algorithm 2): best-community selection per vertex.

Two interchangeable engines implement identical *semantics*:

* :func:`compute_moves_vectorized` — the NumPy data-parallel engine.  The
  per-vertex hash accumulation of ``e_{i->c}`` is replaced by a sort +
  segmented reduction over the bucket's edges, which computes exactly the
  same sums; scoring, the strict positive-gain rule, lowest-id tie-breaks
  and the singleton constraint follow the paper.
* :func:`compute_moves_simulated` — a thread-level replay using the real
  open-addressing hash tables of :mod:`repro.gpu.hashtable`, charging
  probes/atomics/divergence to the cost model and returning
  :class:`~repro.gpu.profiler.KernelStats`.

Both return, for each requested vertex, the community it should join —
``newComm`` of Alg. 1 line 7 — decided from the *current* snapshot (the
per-bucket synchronous model of the paper).

Scoring recap (Eq. 2, with the constant ``e_{i->C(i)\\{i}} / m`` term kept
so the move test is the full positive-gain rule):

* ``score(c) = e_{i->c} / m - k_i * a_c^{(-i)} / (2 m^2)`` where
  ``a_c^{(-i)}`` excludes ``i``'s own degree when ``c == C(i)``;
* move to ``argmax_c score(c)`` over neighbouring communities iff it
  strictly beats ``score(C(i))``; ties break to the lowest community id.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..gpu.costmodel import CostModel, WorkItem, warp_schedule
from ..gpu.hashtable import CommunityHashTable
from ..gpu.profiler import KernelStats
from ..gpu.thrust import gather_rows
from .buckets import Bucket
from .sweep_plan import BucketPlan

__all__ = [
    "segment_sort_order",
    "compute_moves_vectorized",
    "compute_moves_simulated",
]

#: Largest combined radix key before the lexsort fallback kicks in
#: (module-level so tests can shrink it to exercise the fallback).
_MAX_RADIX_KEY = np.iinfo(np.int64).max


def _mark_scored(plan: BucketPlan) -> None:
    """Record that the bucket's decisions are current as of this commit.

    Only ever *skipping* the stamp is safe (it forces extra rescoring);
    the stamp itself must follow a scoring pass that covered every
    vertex whose inputs changed.
    """
    owner = plan.owner
    if owner is not None and owner.track_validity:
        plan.score_stamp = owner.move_counter
        plan.score_moved = owner.total_moved
        plan.rescore_local = None


def segment_sort_order(
    owner_local: np.ndarray,
    dst_comm: np.ndarray,
    num_vertices: int,
    *,
    owner_key: np.ndarray | None = None,
) -> np.ndarray:
    """Stable order of edges by ``(owner_local, dst_comm)``.

    A combined integer key + stable argsort hits NumPy's radix path and
    is ~50x faster than np.lexsort on these sizes (profiled; see the
    optimization guide's "measure first" workflow).  The combined key
    ``owner_local * num_vertices + dst_comm`` can overflow int64 when the
    bucket size times the vertex count exceeds 2^63 (large ``n x bucket``
    products); the overflow condition is checked in exact Python integers
    and the order falls back to ``np.lexsort`` — also stable, so every
    path produces the identical permutation.

    ``owner_key`` optionally supplies the pre-multiplied
    ``owner_local * num_vertices`` base from a
    :class:`~repro.core.sweep_plan.BucketPlan` (already overflow-checked
    at plan-build time); when it is int32 the sort moves half the bytes.
    The plain path deliberately keeps the pre-change int64 key so
    ``use_sweep_plan=False`` stays a faithful baseline.
    """
    if owner_local.size == 0:
        return np.empty(0, dtype=np.int64)
    if owner_key is not None:
        if owner_key.dtype == np.int32:
            return np.argsort(owner_key + dst_comm.astype(np.int32), kind="stable")
        return np.argsort(owner_key + dst_comm, kind="stable")
    # owner_local from gather_rows is nondecreasing, but take the true max
    # so the helper is safe on arbitrary inputs.
    max_key = int(owner_local.max()) * int(num_vertices) + int(num_vertices) - 1
    if max_key > _MAX_RADIX_KEY:
        return np.lexsort((dst_comm, owner_local))
    return np.argsort(
        owner_local * np.int64(num_vertices) + dst_comm, kind="stable"
    )


def compute_moves_vectorized(
    graph: CSRGraph,
    comm: np.ndarray,
    volumes: np.ndarray,
    comm_sizes: np.ndarray,
    vertices: np.ndarray,
    *,
    k: np.ndarray | None = None,
    singleton_constraint: bool = True,
    resolution: float = 1.0,
    plan: BucketPlan | None = None,
) -> np.ndarray:
    """Vectorized Alg. 2 for a set of vertices; returns their new community.

    Parameters
    ----------
    comm, volumes, comm_sizes:
        Current community of every vertex, ``a_c`` per community label and
        community sizes (labels index all three).
    vertices:
        The bucket's members (any subset of vertices).
    k:
        Weighted degrees (recomputed if omitted).
    plan:
        Optional pre-gathered edge arrays for exactly these ``vertices``
        (a :class:`~repro.core.sweep_plan.BucketPlan`); skips the
        per-sweep row gather and self-loop filtering.  The result is
        bit-identical with and without a plan.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    n = graph.num_vertices
    if vertices.size == 0:
        return np.empty(0, dtype=np.int64)
    if k is None:
        k = graph.weighted_degrees
    m = graph.m
    own = comm[vertices]
    new_comm = own.copy()
    if m == 0.0:
        return new_comm

    if plan is not None and plan.bucket.members.size != vertices.size:
        raise ValueError("plan does not match the requested vertex set")

    if plan is not None and not plan.pairs_valid:
        # Try an in-place patch of the cached pair table (exact for
        # integral weights; falls through to a rebuild for big deltas).
        plan.refresh_pairs(comm)

    if plan is not None and plan.pairs_valid:
        # Pair-cache hit: no destination vertex of this bucket changed
        # community since the pairs were built (or a patch restored
        # exactness), so the sorted (vertex, community) -> e_{i->c}
        # structure is exact.  Only the scoring below (volumes, sizes,
        # own labels) is re-evaluated.
        pv = plan.pv
        pc = plan.pc
        pe = plan.pe
        group_start = plan.group_start
        group_vertex = plan.group_vertex
        seg_lengths = plan.seg_lengths
        kv = plan.kv
        sweep_plan = plan.owner
        if (
            plan.score_stamp >= 0
            and sweep_plan is not None
            and sweep_plan.track_validity
            and sweep_plan.delta_scoring_ok
            and pv.size
            # Cheap density gate: each move dirties two communities, so
            # once the moves since this bucket's last scoring rival its
            # vertex count the dirty mask is near-certain to select
            # almost everyone — skip the mask-building passes outright.
            and (sweep_plan.total_moved - plan.score_moved) * 8
            < vertices.size
        ):
            # Delta scoring: a vertex whose own community, candidate
            # communities and e_{i->c} rows are all untouched since it
            # was last scored faces bit-identical gain inputs, so it
            # reproduces its previous decision — and every proposed move
            # is committed, so that decision was "stay".  Rescore only
            # vertices that (a) moved, (b) sit in a community whose
            # volume/size changed, (c) have a candidate community that
            # changed, or (d) had pair rows patched.
            stamp = plan.score_stamp
            need_vertex = sweep_plan.move_stamp[vertices] > stamp
            need_vertex |= sweep_plan.comm_stamp[own] > stamp
            if plan.rescore_local is not None and plan.rescore_local.size:
                need_vertex[plan.rescore_local] = True
            pair_dirty = sweep_plan.comm_stamp[pc] > stamp
            need_group = need_vertex[group_vertex] | np.logical_or.reduceat(
                pair_dirty, group_start
            )
            num_needed = int(np.count_nonzero(need_group))
            if num_needed == 0:
                _mark_scored(plan)
                return new_comm
            if num_needed * 8 < need_group.size * 7:
                # Compress to the dirty segments; scoring the subset is
                # elementwise/segmentwise identical to scoring it inside
                # the full arrays.
                pair_mask = np.repeat(need_group, seg_lengths)
                pv = pv[pair_mask]
                pc = pc[pair_mask]
                pe = pe[pair_mask]
                seg_lengths = seg_lengths[need_group]
                group_vertex = group_vertex[need_group]
                group_start = np.zeros(seg_lengths.size, dtype=np.int64)
                np.cumsum(seg_lengths[:-1], out=group_start[1:])
    elif plan is not None and plan.owner_key is not None:
        # Plan rebuild on the combined-key fast path: the sorted key
        # values themselves encode (owner_local, dst_comm), so the pair
        # boundaries and labels come straight from the sorted key with no
        # extra per-edge gathers.
        if plan.owner_local.size == 0:
            return new_comm
        owner_key = plan.owner_key
        if owner_key.dtype == np.int32:
            # comm32 is the int32 mirror of comm the commit keeps in sync;
            # gathering it directly skips a full-width astype pass.
            comm32 = plan.comm32 if plan.comm32 is not None else comm
            dc = comm32[plan.dst].astype(np.int32, copy=False)
        else:
            dc = comm[plan.dst]
        key = owner_key + dc
        if plan.can_increment:
            # Snapshot of the dst labels the table is built from — what
            # refresh_pairs diffs against on later sweeps.
            plan.dst_comm_snap = dc
        # Stable timsort: the keys keep long sorted runs (CSR edge order
        # plus the untouched majority of destinations), which the
        # adaptive stable sort exploits; an unstable introsort measured
        # slower here for exactly that reason.  With integral weights
        # (can_increment) the reduced sums are order-independent, so the
        # previous rebuild's permutation is a legal starting order — and
        # since only the moved destinations' keys left their slots, the
        # pre-permuted key array is near-sorted and timsort flies.
        hint = plan.sort_hint if plan.can_increment else None
        if hint is not None:
            order = hint[np.argsort(key[hint], kind="stable")]
        else:
            order = np.argsort(key, kind="stable")
        if plan.can_increment:
            plan.sort_hint = order
        key = key[order]
        # Boundary detection without materialising an edge-sized concat:
        # flatnonzero on the pairwise diff, then prepend position 0.
        starts = np.empty(0, dtype=np.int64)
        if key.size:
            inner = np.flatnonzero(key[1:] != key[:-1])
            starts = np.empty(inner.size + 1, dtype=np.int64)
            starts[0] = 0
            np.add(inner, 1, out=starts[1:])
        key_start = key[starts]
        pv = key_start // n  # local vertex index per pair
        pc = key_start - pv * n  # community per pair
        # Upcast once: scoring fancy-indexes through pv/pc every sweep,
        # and int32 index arrays cost NumPy an intp re-cast per gather.
        pv = pv.astype(np.int64, copy=False)
        pc = pc.astype(np.int64, copy=False)
        if plan.unit_weights:
            # All weights are 1.0, so e_{i->c} is the run length of each
            # key — an exact integer, bit-identical to the float64
            # reduction, without gathering/reducing the weight array.
            pe = np.diff(np.append(starts, key.size)).astype(np.float64)
        else:
            w = plan.weights[order]
            pe = np.add.reduceat(w, starts)  # e_{i->c} per pair
        kv = plan.kv

        group_start = np.flatnonzero(np.concatenate(([True], pv[1:] != pv[:-1])))
        group_vertex = pv[group_start]
        seg_lengths = np.diff(np.append(group_start, pv.size))
        plan.store_pairs(
            pv, pc, pe, group_start, group_vertex, seg_lengths, pk=key_start
        )
    else:
        if plan is not None:
            owner_local = plan.owner_local
            dst_comm = comm[plan.dst]
            w = plan.weights
            owner_key = plan.owner_key
            kv = plan.kv
        else:
            edge_pos, owner_local = gather_rows(graph.indptr, vertices)
            dst = graph.indices[edge_pos]
            w = graph.weights[edge_pos]
            not_loop = dst != vertices[owner_local]
            owner_local = owner_local[not_loop]
            dst_comm = comm[dst[not_loop]]
            w = w[not_loop]
            owner_key = None
            kv = k[vertices]
        if owner_local.size == 0:
            return new_comm

        # Segmented "hash accumulate": e_{i->c} per (vertex, community)
        # pair.
        order = segment_sort_order(owner_local, dst_comm, n, owner_key=owner_key)
        owner_local = owner_local[order]
        dst_comm = dst_comm[order]
        w = w[order]
        is_boundary = np.concatenate(
            (
                [True],
                (owner_local[1:] != owner_local[:-1])
                | (dst_comm[1:] != dst_comm[:-1]),
            )
        )
        starts = np.flatnonzero(is_boundary)
        pv = owner_local[starts]  # local vertex index per pair
        pc = dst_comm[starts]  # community per pair
        pe = np.add.reduceat(w, starts)  # e_{i->c} per pair

        # Per-vertex pair segments (for the argmax reductions below).
        group_start = np.flatnonzero(np.concatenate(([True], pv[1:] != pv[:-1])))
        group_vertex = pv[group_start]
        seg_lengths = np.diff(np.append(group_start, pv.size))
        if plan is not None:
            plan.store_pairs(pv, pc, pe, group_start, group_vertex, seg_lengths)
    if pv.size == 0:
        return new_comm

    # Per-local-vertex quantities.
    e_own = np.zeros(vertices.size, dtype=np.float64)
    own_p = own[pv]
    own_pair = pc == own_p
    e_own[pv[own_pair]] = pe[own_pair]
    a_own_excl = volumes[own] - kv

    two_m_sq = 2.0 * m * m
    # Gain of moving local vertex pv to pc (candidates only).
    gain = (pe - e_own[pv]) / m + resolution * kv[pv] * (
        a_own_excl[pv] - volumes[pc]
    ) / two_m_sq
    valid = ~own_pair
    if singleton_constraint:
        i_singleton = comm_sizes[own_p] == 1
        target_singleton = comm_sizes[pc] == 1
        blocked = i_singleton & target_singleton & (pc > own_p)
        valid &= ~blocked
    gain = np.where(valid, gain, -np.inf)

    # Per-vertex argmax with lowest-community-id tie-break.
    max_gain = np.maximum.reduceat(gain, group_start)
    max_gain_per_pair = np.repeat(max_gain, seg_lengths)
    tie_candidate = np.where(gain == max_gain_per_pair, pc, n)
    best_c = np.minimum.reduceat(tie_candidate, group_start)

    moves = max_gain > 0.0
    new_comm[group_vertex[moves]] = best_c[moves]
    if plan is not None:
        _mark_scored(plan)
    return new_comm


def compute_moves_simulated(
    graph: CSRGraph,
    comm: np.ndarray,
    volumes: np.ndarray,
    comm_sizes: np.ndarray,
    bucket: Bucket,
    cost_model: CostModel,
    *,
    k: np.ndarray | None = None,
    singleton_constraint: bool = True,
    resolution: float = 1.0,
) -> tuple[np.ndarray, KernelStats]:
    """Thread-level Alg. 2 replay for one degree bucket.

    Hashes every neighbour (self-loops into the own community, as the CUDA
    kernel does), selects the best move with the same rules as the
    vectorized engine, and charges the cost model for the group-size /
    memory-space configuration of ``bucket``:

    * buckets with ``group_size < warp`` pack ``warp/group`` vertices per
      warp (divergence = max over the packed groups);
    * the last bucket (and only it) keeps its hash table in global memory
      and is charged global-latency probes/atomics — the shared/global
      distinction of Section 4.1.
    """
    vertices = bucket.members
    device = cost_model.device
    stats = KernelStats(name=f"computeMove[bucket {bucket.index}]")
    new_comm = comm[vertices].copy() if vertices.size else np.empty(0, dtype=np.int64)
    if vertices.size == 0:
        return new_comm, stats
    if k is None:
        k = graph.weighted_degrees
    m = graph.m
    shared = bucket.upper != -1  # unbounded (last) bucket -> global memory
    group = max(1, bucket.group_size)

    vertex_cycles = np.zeros(vertices.size, dtype=np.float64)
    table_sizes = np.zeros(vertices.size, dtype=np.float64)
    for idx, v in enumerate(vertices.tolist()):
        own = int(comm[v])
        neighbours = graph.neighbors(v)
        wts = graph.neighbor_weights(v)
        deg = int(neighbours.size)
        table = CommunityHashTable(deg)
        loop_weight = 0.0
        for nb, wt in zip(neighbours.tolist(), wts.tolist()):
            if nb == v:
                table.add(own, wt)
                loop_weight += wt
            else:
                table.add(int(comm[nb]), wt)

        kv = float(k[v])
        a_own_excl = float(volumes[own]) - kv
        e_own = table.get(own) - loop_weight
        two_m_sq = 2.0 * m * m
        best_c = own
        best_gain = 0.0
        for c, e_vc in sorted(table.items()):
            if c == own:
                continue
            if (
                singleton_constraint
                and comm_sizes[own] == 1
                and comm_sizes[c] == 1
                and c > own
            ):
                continue
            # Same expression (and evaluation order) as the vectorized
            # engine, so both compute bitwise-identical gains.
            gain = (e_vc - e_own) / m + resolution * kv * (
                a_own_excl - float(volumes[c])
            ) / two_m_sq
            if gain > best_gain:
                best_gain = gain
                best_c = c
        new_comm[idx] = best_c

        work = WorkItem(
            edges=deg,
            probes=table.stats.probes,
            atomics=table.stats.inserts
            + table.stats.accumulates
            + table.stats.cas_attempts,
        )
        vertex_cycles[idx] = cost_model.vertex_cycles(work, group, shared=shared)
        stats.active_thread_cycles += cost_model.active_cycles(work, shared=shared)
        stats.hash_stats.merge(table.stats)
        table_bytes = table.size * 12
        if shared:
            stats.shared_bytes += table_bytes
        else:
            table_sizes[idx] = table_bytes
        stats.num_edges += deg

    if group <= device.warp_size:
        groups_per_warp = device.warp_size // group
        warp_cycles, num_warps = warp_schedule(vertex_cycles, groups_per_warp)
    elif shared:
        # Block-wide processing (bucket 6): one vertex per 128-thread
        # block; the block's warps all run for the vertex's duration.
        warps_per_block = group // device.warp_size
        warp_cycles = float(vertex_cycles.sum()) * warps_per_block
        num_warps = vertices.size * warps_per_block
    else:
        # Bucket 7 (Section 4.1): global-memory tables are a fixed
        # allocation, so several vertices share a block and are processed
        # sequentially, re-using the table.  "To ensure a good load
        # balance ... vertices in group seven are initially sorted by
        # degree before the vertices are assigned to thread blocks in an
        # interleaved fashion."
        warps_per_block = group // device.warp_size
        concurrent_blocks = max(1, min(vertices.size, device.num_sms * 4))
        order = np.argsort(-graph.degrees[vertices], kind="stable")
        block_cycles = np.zeros(concurrent_blocks, dtype=np.float64)
        block_table = np.zeros(concurrent_blocks, dtype=np.float64)
        for position, vertex_idx in enumerate(order.tolist()):
            block = position % concurrent_blocks
            block_cycles[block] += vertex_cycles[vertex_idx]
            block_table[block] = max(block_table[block], table_sizes[vertex_idx])
        # Blocks run concurrently; each occupies its warps for its total.
        warp_cycles = float(block_cycles.sum()) * warps_per_block
        num_warps = concurrent_blocks * warps_per_block
        stats.global_bytes += int(block_table.sum())  # reused allocations
    stats.warp_cycles += warp_cycles
    stats.issued_thread_cycles += warp_cycles * device.warp_size
    stats.num_warps += num_warps
    stats.num_vertices += int(vertices.size)
    return new_comm, stats
