"""Shared helpers for the benchmark harness.

Every experiment writes its formatted output (the reproduction of the
paper's table or figure) to ``benchmarks/results/<name>.txt`` *and* prints
it, so both ``pytest benchmarks/ --benchmark-only -s`` and the results
directory carry the numbers that EXPERIMENTS.md records.

:func:`emit_report` additionally persists :mod:`repro.trace` run reports
(``<name>.trace.json``), so BENCH_* artifacts carry a per-phase
breakdown — level / optimization / aggregation / sweep spans — instead
of a single end-to-end number.
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

__all__ = ["emit", "emit_report", "RESULTS_DIR", "TRAJECTORY_PATH"]


def emit(name: str, text: str) -> Path:
    """Print ``text`` and persist it under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
    return path


TRAJECTORY_PATH = RESULTS_DIR / "BENCH_trajectory.json"


def emit_report(
    name: str, reports, *, meta: dict | None = None, trajectory: bool = False
) -> Path:
    """Persist one or more run reports as ``benchmarks/results/<name>.trace.json``.

    ``reports`` is a single :class:`repro.trace.RunReport` or a list of
    them; the file is a ``repro.trace/1`` container with a ``reports``
    array (the same per-report schema the ``--trace`` CLI flag writes).

    With ``trajectory=True``, every report that carries a graph name in
    its meta is also appended to the perf-trajectory store
    (``BENCH_trajectory.json``) so ``python -m repro trajectory`` and the
    regression gate can see the run; reports without a graph name are
    skipped (they cannot be keyed).
    """
    from repro.trace import TRACE_SCHEMA, RunReport

    if isinstance(reports, RunReport):
        reports = [reports]
    payload = {
        "schema": TRACE_SCHEMA,
        "meta": {"kind": "bench", "benchmark": name, **(meta or {})},
        "reports": [report.to_dict() for report in reports],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.trace.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[trace written to {path}]")
    if trajectory:
        from repro.obs import TrajectoryStore, current_commit, entry_from_report

        commit = current_commit()
        entries = [
            entry_from_report(report, commit=commit)
            for report in reports
            if report.meta.get("graph")
        ]
        if entries:
            total = TrajectoryStore(TRAJECTORY_PATH).append(entries)
            print(f"[{len(entries)} trajectory entries appended "
                  f"to {TRAJECTORY_PATH} ({total} total)]")
    return path
