"""Span-path aggregation, derived metrics, flame view, trace loading."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    critical_path,
    critical_path_spans,
    flatten_report,
    flatten_reports,
    format_stream_aggregate,
    level_metrics,
    load_trace,
    span_component,
    stage_table,
    stream_aggregate,
)
from repro.trace import RunReport, Span


def test_span_component_uses_own_index_attribute():
    assert span_component(Span("run")) == "run"
    assert span_component(Span("level", attributes={"level": 2})) == "level[2]"
    # A differently-named attribute is not an index.
    assert span_component(Span("optimization", attributes={"level": 2})) == "optimization"
    # Bools and non-ints never index.
    assert span_component(Span("level", attributes={"level": True})) == "level"
    assert span_component(Span("level", attributes={"level": "x"})) == "level"


def test_flatten_report_paths_and_sums(make_report):
    flat = flatten_report(make_report(levels=2))
    assert "run" in flat
    assert "run/level[0]/optimization" in flat
    assert "run/level[1]/aggregation" in flat
    assert "run/level[0]/optimization/sweep[3]" in flat
    opt = flat["run/level[0]/optimization"]
    assert opt.count == 1
    assert opt.seconds == pytest.approx(0.002)
    assert opt.counters["moved"] == 40


def test_flatten_aggregates_equal_paths():
    # Two sibling spans with the same component fold into one aggregate.
    run = Span("run", children=[
        Span("optimization", counters={"moved": 3}, seconds=0.1),
        Span("optimization", counters={"moved": 4}, seconds=0.2),
    ])
    flat = flatten_report(RunReport(spans=[run]))
    agg = flat["run/optimization"]
    assert agg.count == 2
    assert agg.seconds == pytest.approx(0.3)
    assert agg.counters["moved"] == 7


def test_flatten_reports_merges_across_reports(make_report):
    flat = flatten_reports([make_report(), make_report()])
    assert flat["run/level[0]/optimization"].count == 2
    assert flat["run/level[0]/optimization"].seconds == pytest.approx(0.004)


def test_level_metrics_derived_values(make_report):
    (m,) = level_metrics(make_report())
    assert m.level == 0
    assert m.num_edges == 250
    assert m.sweeps == 4
    # 2E * sweeps / opt_seconds / 1e6 with the conftest numbers is exact.
    assert m.mteps == pytest.approx(1.0)
    assert m.moves_per_sweep == pytest.approx(10.0)
    assert m.probe_mrate == pytest.approx(1_000 / 0.001 / 1e6)
    assert m.frontier_fraction == pytest.approx(0.5)
    assert m.optimization_fraction == pytest.approx(2 / 3)
    assert m.total_seconds == pytest.approx(0.003)


def test_stage_table_renders(make_report):
    table = stage_table(make_report(levels=2))
    assert "MTEPS" in table and "opt%" in table
    assert len(table.splitlines()) == 4  # header + rule + two levels


def test_critical_path_marks_heaviest_chain(make_report):
    report = make_report(levels=2)
    chain = critical_path_spans(report)
    paths = [path for path, _ in chain]
    assert paths[0] == "run"
    # Both levels cost the same fabricated seconds; the chain follows one
    # of them down to its heaviest stage (optimization) and then a sweep.
    assert paths[1].startswith("run/level[")
    assert paths[2].endswith("/optimization")
    text = critical_path(report, max_depth=3)
    starred = [line for line in text.splitlines() if line.endswith("*")]
    assert len(starred) == 3  # one per rendered depth
    assert "run" in starred[0]


def test_critical_path_depth_prunes(make_report):
    text = critical_path(make_report(), max_depth=2)
    assert "optimization" not in text
    assert "level[0]" in text


def test_level_metrics_real_run(karate_report):
    rows = level_metrics(karate_report)
    assert rows
    assert all(m.mteps >= 0 for m in rows)
    assert sum(m.sweeps for m in rows) >= karate_report.result["num_levels"]


def test_load_trace_single_report(tmp_path, karate_report):
    path = tmp_path / "run.json"
    path.write_text(karate_report.to_json())
    (loaded,) = load_trace(path)
    assert loaded.result["modularity"] == pytest.approx(
        karate_report.result["modularity"]
    )


def test_load_trace_stream_container(tmp_path, make_report):
    payload = {
        "schema": "repro.trace/1",
        "meta": {"kind": "stream"},
        "initial": make_report().to_dict(),
        "batches": [make_report(meta={"kind": "batch"}).to_dict()],
    }
    path = tmp_path / "stream.json"
    path.write_text(json.dumps(payload))
    reports = load_trace(path)
    assert len(reports) == 2
    assert reports[1].meta["kind"] == "batch"


def test_load_trace_bench_container(tmp_path, make_report):
    payload = {
        "schema": "repro.trace/1",
        "meta": {"kind": "bench"},
        "reports": [make_report().to_dict() for _ in range(3)],
    }
    path = tmp_path / "bench.trace.json"
    path.write_text(json.dumps(payload))
    assert len(load_trace(path)) == 3


def test_load_trace_rejects_unknown_shape(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"schema": "repro.trace/1", "what": []}')
    with pytest.raises(ValueError, match="unrecognised"):
        load_trace(path)


def test_stream_aggregate_counts_batches_only(make_report):
    batches = [
        RunReport(
            meta={"kind": "batch"},
            result={"seconds": s, "frontier_size": f, "mode": mode},
        )
        for s, f, mode in [(0.01, 10, "delta"), (0.03, 30, "delta"), (0.02, 0, "full")]
    ]
    agg = stream_aggregate([make_report()] + batches)  # initial run skipped
    assert agg["batches"] == 3
    assert agg["median_seconds"] == pytest.approx(0.02)
    assert agg["total_seconds"] == pytest.approx(0.06)
    assert agg["total_frontier"] == 40
    assert agg["peak_frontier"] == 30
    assert agg["modes"] == {"delta": 2, "full": 1}
    text = format_stream_aggregate(agg)
    assert "3 batches" in text and "delta=2" in text
