"""Before/after harness for the SweepPlan subsystem.

``use_sweep_plan=False`` is the pre-plan vectorized engine (fresh edge
gathers every sweep, full-edge modularity scan); ``True`` adds the
per-phase :class:`~repro.core.sweep_plan.SweepPlan` caches plus the
incremental modularity tracking.  The plan is a pure optimization, so the
harness asserts *exact* equality of the final membership and modularity
before reporting speedups.

Methodology: the two engines are interleaved round by round and the
minimum modularity-optimization time per engine is compared —
back-to-back runs on a shared machine see ±10% noise that interleaved
minima cancel.  ``bin_vertex_limit=100_000`` (the
:class:`~repro.core.config.GPULouvainConfig` default) keeps the fine
``t_final`` threshold active for these graph sizes, matching how the
plan is used by default (see the config docs for the divergent
``run_gpu`` setting).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.reporting import banner, format_table
from repro.bench.suite import suite_entry
from repro.core.gpu_louvain import gpu_louvain
from repro.trace import report_from_result

from _util import emit, emit_report

#: The suite's two largest graphs by paper edge count, at scales where
#: the phase runs enough sweeps for a stable measurement.
CASES = (
    ("uk-2002", 5.0),
    ("nlpkkt200", 2.0),
)

ROUNDS = 5
BIN_VERTEX_LIMIT = 100_000

#: Acceptance bar: the plan must speed the mod-opt phase up by >= 1.5x.
MIN_SPEEDUP = 1.5


def _opt_seconds(out) -> float:
    return sum(stage.optimization_seconds for stage in out.timings.stages)


@pytest.fixture(scope="module")
def measurements():
    rows = []
    for name, scale in CASES:
        entry = suite_entry(name)
        graph = entry.load(scale)
        best = {False: np.inf, True: np.inf}
        runs = {}
        for _ in range(ROUNDS):
            for use_plan in (False, True):
                out = gpu_louvain(
                    graph,
                    bin_vertex_limit=BIN_VERTEX_LIMIT,
                    use_sweep_plan=use_plan,
                )
                best[use_plan] = min(best[use_plan], _opt_seconds(out))
                runs[use_plan] = out
        rows.append((entry, graph, best, runs))
    return rows


def test_sweep_plan_is_exact(measurements):
    for entry, _, _, runs in measurements:
        off, on = runs[False], runs[True]
        assert np.array_equal(on.membership, off.membership), entry.name
        assert on.modularity == off.modularity, entry.name
        assert on.sweeps_per_level == off.sweeps_per_level, entry.name
        # The plan run reports cache effectiveness.
        assert on.timings.gather_reuse_hits > 0, entry.name
        assert off.timings.gather_reuse_hits == 0, entry.name


def test_sweep_plan_speedup(benchmark, measurements):
    entry0, graph0, _, _ = measurements[0]
    benchmark.pedantic(
        lambda: gpu_louvain(
            graph0, bin_vertex_limit=BIN_VERTEX_LIMIT, use_sweep_plan=True
        ),
        rounds=2,
        iterations=1,
    )

    table_rows = []
    speedups = []
    for entry, graph, best, runs in measurements:
        on = runs[True]
        speedup = best[False] / best[True]
        speedups.append((entry.name, speedup))
        table_rows.append(
            (
                entry.name,
                graph.num_vertices,
                graph.num_edges,
                sum(on.sweeps_per_level),
                best[False] * 1e3,
                best[True] * 1e3,
                speedup,
                on.timings.pair_reuse_hits + on.timings.pair_patch_hits,
                on.timings.max_q_drift,
            )
        )

    text = "\n".join(
        [
            banner("SweepPlan: modularity-optimization phase, before/after"),
            f"min of {ROUNDS} interleaved rounds; bin_vertex_limit={BIN_VERTEX_LIMIT}",
            "",
            format_table(
                (
                    "graph",
                    "n",
                    "m",
                    "sweeps",
                    "off ms",
                    "on ms",
                    "speedup",
                    "pair hits",
                    "q drift",
                ),
                table_rows,
                floatfmt=".3g",
            ),
        ]
    )
    emit("bench_sweep_plan", text)

    scales = dict(CASES)
    reports = [
        report_from_result(
            runs[use_plan],
            kind="run",
            graph=entry.name,
            engine="vectorized",
            scale=scales[entry.name],
            use_sweep_plan=use_plan,
            bin_vertex_limit=BIN_VERTEX_LIMIT,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
        )
        for entry, graph, _, runs in measurements
        for use_plan in (False, True)
    ]
    emit_report("bench_sweep_plan", reports, trajectory=True)

    for name, speedup in speedups:
        assert speedup >= MIN_SPEEDUP, f"{name}: {speedup:.2f}x < {MIN_SPEEDUP}x"
