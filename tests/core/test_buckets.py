"""Tests for degree/community bucketing."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buckets import bucket_index, community_buckets, degree_buckets
from repro.core.config import DEGREE_BUCKETS, GROUP_SIZES
from repro.graph.generators import rmat, star


def test_bucket_index_boundaries():
    values = np.array([1, 4, 5, 8, 9, 16, 17, 32, 33, 84, 85, 319, 320, 10_000])
    idx = bucket_index(values, DEGREE_BUCKETS)
    assert idx.tolist() == [0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6]


def test_degree_buckets_partition_everything():
    degrees = np.array([0, 1, 3, 5, 20, 100, 400])
    buckets = degree_buckets(degrees, DEGREE_BUCKETS, GROUP_SIZES)
    assert len(buckets) == 7
    members = np.concatenate([b.members for b in buckets])
    # vertex 0 (degree 0) is excluded
    assert sorted(members.tolist()) == [1, 2, 3, 4, 5, 6]


def test_zero_degree_vertices_in_no_bucket():
    degrees = np.array([0, 0, 2])
    buckets = degree_buckets(degrees, DEGREE_BUCKETS, GROUP_SIZES)
    total = sum(b.size for b in buckets)
    assert total == 1


def test_bucket_metadata():
    degrees = np.array([2, 6, 500])
    buckets = degree_buckets(degrees, DEGREE_BUCKETS, GROUP_SIZES)
    assert buckets[0].group_size == 4
    assert buckets[0].upper == 4
    assert buckets[1].group_size == 8
    assert buckets[6].upper == -1  # unbounded
    assert buckets[6].group_size == 128
    assert buckets[6].members.tolist() == [2]


def test_members_keep_index_order():
    degrees = np.array([3, 1, 2, 4])
    buckets = degree_buckets(degrees, DEGREE_BUCKETS, GROUP_SIZES)
    assert buckets[0].members.tolist() == [0, 1, 2, 3]  # stable partition


def test_vertices_subset():
    degrees = np.array([1, 1, 1, 1])
    buckets = degree_buckets(
        degrees, DEGREE_BUCKETS, GROUP_SIZES, vertices=np.array([2, 0])
    )
    assert buckets[0].members.tolist() == [2, 0]


def test_star_hub_goes_to_block_bucket():
    g = star(400)
    buckets = degree_buckets(g.degrees, DEGREE_BUCKETS, GROUP_SIZES)
    assert 0 in buckets[6].members  # hub, degree 399 > 319
    assert buckets[0].size == 399  # spokes


def test_community_buckets():
    com_deg = np.array([50, 200, 1000, 10])
    buckets = community_buckets(np.array([0, 1, 2, 3]), com_deg, (127, 479))
    assert buckets[0].members.tolist() == [0, 3]
    assert buckets[1].members.tolist() == [1]
    assert buckets[2].members.tolist() == [2]


def test_community_buckets_subset_only():
    com_deg = np.array([50, 200, 1000, 10])
    buckets = community_buckets(np.array([2, 0]), com_deg, (127, 479))
    members = np.concatenate([b.members for b in buckets])
    assert sorted(members.tolist()) == [0, 2]


def test_rmat_bucket_occupancy():
    """A skewed graph populates several buckets — the paper's premise."""
    g = rmat(11, 16, rng=0)
    buckets = degree_buckets(g.degrees, DEGREE_BUCKETS, GROUP_SIZES)
    non_empty = sum(1 for b in buckets if b.size)
    assert non_empty >= 5


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=60))
def test_bucketing_is_exact_partition(raw):
    degrees = np.asarray(raw, dtype=np.int64)
    buckets = degree_buckets(degrees, DEGREE_BUCKETS, GROUP_SIZES)
    members = np.concatenate([b.members for b in buckets])
    expected = np.flatnonzero(degrees > 0)
    assert sorted(members.tolist()) == expected.tolist()
    for b in buckets:
        degs = degrees[b.members]
        if b.upper >= 0:
            assert np.all(degs <= b.upper)
        assert np.all(degs > b.lower)
