"""Tests for repro.metrics.modularity — Eq. (1) and Eq. (2)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.graph.build import from_edges
from repro.graph.generators import caveman, complete
from repro.metrics.modularity import (
    community_internal_weights,
    community_volumes,
    modularity,
    move_gain,
    vertex_to_community_weights,
)

from ..conftest import graphs_with_partitions


def test_single_community_modularity_zero():
    # All vertices together: internal = 2m, a = 2m -> Q = 1 - 1 = 0.
    g = complete(5)
    q = modularity(g, np.zeros(5, dtype=np.int64))
    assert q == pytest.approx(0.0)


def test_singletons_on_complete_graph_negative():
    g = complete(5)
    q = modularity(g, np.arange(5))
    assert q < 0


def test_two_cliques_high_modularity():
    g, labels = caveman(2, 8)
    q = modularity(g, labels)
    assert q > 0.4


def test_karate_known_value(karate):
    # The standard Louvain partition of karate scores ~0.41-0.42.
    labels = np.zeros(34, dtype=np.int64)
    # ground-truth split (instructor vs president factions)
    president = [8, 9, 14, 15, 18, 20, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33]
    labels[president] = 1
    q = modularity(karate, labels)
    assert q == pytest.approx(0.3715, abs=1e-3)


def test_matches_networkx(karate):
    nx = pytest.importorskip("networkx")
    nxg = nx.Graph()
    nxg.add_nodes_from(range(34))
    u, v, _ = karate.edge_list(unique=True)
    nxg.add_edges_from(zip(u.tolist(), v.tolist()))
    rng = np.random.default_rng(3)
    for _ in range(5):
        labels = rng.integers(0, 4, size=34)
        comms = [set(np.flatnonzero(labels == c).tolist()) for c in range(4)]
        comms = [c for c in comms if c]
        expected = nx.algorithms.community.modularity(nxg, comms)
        assert modularity(karate, labels) == pytest.approx(expected)


def test_weighted_modularity_scale_invariant(karate):
    u, v, w = karate.edge_list(unique=True)
    doubled = from_edges(u, v, 2.0 * w, num_vertices=34)
    labels = np.arange(34) % 3
    assert modularity(doubled, labels) == pytest.approx(modularity(karate, labels))


def test_empty_graph_modularity():
    g = from_edges([], [], num_vertices=3)
    assert modularity(g, np.zeros(3, dtype=np.int64)) == 0.0


def test_self_loop_included_in_own_community():
    g = from_edges([0, 0], [0, 1], [1.0, 1.0])
    labels = np.array([0, 1])
    internal = community_internal_weights(g, labels)
    assert internal.tolist() == [1.0, 0.0]


def test_community_volumes():
    g = from_edges([0, 1], [1, 2], [2.0, 3.0])
    labels = np.array([0, 0, 1])
    vols = community_volumes(g, labels)
    assert vols.tolist() == [2.0 + 5.0, 3.0]


def test_internal_weights_count_both_directions():
    g = from_edges([0], [1], [2.0])
    labels = np.array([0, 0])
    assert community_internal_weights(g, labels).tolist() == [4.0]


def test_partition_shape_checked(karate):
    with pytest.raises(ValueError, match="one label per vertex"):
        modularity(karate, np.zeros(3))
    with pytest.raises(ValueError, match="non-negative"):
        modularity(karate, -np.ones(34, dtype=np.int64))


def test_vertex_to_community_weights(karate):
    labels = np.arange(34) % 5
    weights = vertex_to_community_weights(karate, 0, labels)
    expected = {}
    for nb, w in zip(karate.neighbors(0), karate.neighbor_weights(0)):
        expected[labels[nb]] = expected.get(labels[nb], 0.0) + w
    assert weights == pytest.approx(expected)


def test_move_gain_matches_q_difference(karate):
    """Eq. (2) must equal the actual modularity difference of the move."""
    labels = np.arange(34) % 4
    for vertex in (0, 5, 33):
        for target in range(4):
            before = modularity(karate, labels)
            moved = labels.copy()
            moved[vertex] = target
            after = modularity(karate, moved)
            gain = move_gain(karate, labels, vertex, target)
            assert gain == pytest.approx(after - before, abs=1e-12)


def test_move_gain_same_community_zero(karate):
    labels = np.zeros(34, dtype=np.int64)
    assert move_gain(karate, labels, 0, 0) == 0.0


@settings(max_examples=60)
@given(graphs_with_partitions())
def test_modularity_bounded(data):
    graph, labels = data
    q = modularity(graph, labels)
    assert -1.0 <= q <= 1.0


@settings(max_examples=60)
@given(graphs_with_partitions())
def test_move_gain_is_exact_q_delta(data):
    """Property: Eq. (2) == Q(after) - Q(before) for arbitrary moves."""
    graph, labels = data
    if graph.num_vertices == 0 or graph.m == 0:
        return
    vertex = 0
    target = int(labels.max())
    before = modularity(graph, labels)
    moved = labels.copy()
    moved[vertex] = target
    after = modularity(graph, moved)
    assert move_gain(graph, labels, vertex, target) == pytest.approx(
        after - before, abs=1e-9
    )


@settings(max_examples=40)
@given(graphs_with_partitions())
def test_internal_plus_external_is_total(data):
    graph, labels = data
    internal = community_internal_weights(graph, labels).sum()
    src = labels[graph.vertex_of_edge]
    dst = labels[graph.indices]
    external = graph.weights[src != dst].sum()
    assert internal + external == pytest.approx(graph.total_weight)
