"""Streaming subsystem: incremental Louvain over edge-batch updates.

The dynamic-network-analytics workload the paper's introduction motivates
("input data changes continuously"): a :class:`StreamSession` holds the
current graph and clustering, ingests batches of edge insertions and
deletions, patches the CSR arrays in place of a rebuild
(:func:`repro.graph.build.apply_edge_batch`), screens the affected-vertex
frontier (:func:`delta_frontier`) and re-optimizes only that frontier
(:func:`repro.core.frontier_modularity_optimization`), warm-started from
the previous membership.
"""

from ..result import StreamResult
from .frontier import delta_frontier
from .session import StreamConfig, StreamSession

__all__ = ["StreamSession", "StreamConfig", "StreamResult", "delta_frontier"]
