"""Tests for the open-addressing community hash table (Alg. 2 core)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.hashtable import EMPTY, CommunityHashTable
from repro.gpu.primes import hash_table_size


def test_size_follows_paper_rule():
    table = CommunityHashTable(10)
    assert table.size == hash_table_size(10)


def test_explicit_size_override():
    table = CommunityHashTable(10, size=97)
    assert table.size == 97


def test_add_and_get():
    table = CommunityHashTable(4)
    table.add(3, 1.5)
    table.add(3, 2.0)
    table.add(9, 1.0)
    assert table.get(3) == pytest.approx(3.5)
    assert table.get(9) == pytest.approx(1.0)
    assert table.get(4) == 0.0


def test_as_dict_matches_inserts():
    table = CommunityHashTable(6)
    expected = {}
    for c, w in [(1, 1.0), (5, 2.0), (1, 0.5), (12, 3.0)]:
        table.add(c, w)
        expected[c] = expected.get(c, 0.0) + w
    assert table.as_dict() == pytest.approx(expected)


def test_add_edges_batch():
    table = CommunityHashTable(5)
    table.add_edges(np.array([1, 1, 2]), np.array([1.0, 1.0, 4.0]))
    assert table.get(1) == 2.0
    assert table.get(2) == 4.0


def test_rejects_negative_community():
    table = CommunityHashTable(3)
    with pytest.raises(ValueError):
        table.add(-1, 1.0)


def test_probe_sequence_is_double_hashing():
    table = CommunityHashTable(4, size=7)
    c = 10
    h1 = c % 7
    h2 = 1 + c % 6
    expected = [(h1 + it * h2) % 7 for it in range(7)]
    assert list(table.slot_sequence(c)) == expected


def test_probe_sequence_covers_table():
    # prime size + h2 co-prime => full cycle
    table = CommunityHashTable(8)
    for c in (0, 5, 100):
        seq = list(table.slot_sequence(c))
        assert sorted(seq) == list(range(table.size))


def test_stats_counting():
    table = CommunityHashTable(4)
    table.add(1, 1.0)  # insert: 1 probe, 1 CAS
    table.add(1, 1.0)  # accumulate: 1 probe
    assert table.stats.inserts == 1
    assert table.stats.accumulates == 1
    assert table.stats.cas_attempts == 1
    assert table.stats.probes >= 2
    assert table.stats.max_probe_length >= 1


def test_load_factor():
    table = CommunityHashTable(4, size=7)
    assert table.load_factor == 0.0
    table.add(1, 1.0)
    table.add(2, 1.0)
    assert table.load_factor == pytest.approx(2 / 7)


def test_collision_resolution_distinct_slots():
    table = CommunityHashTable(2, size=5)
    # communities 0 and 5 share h1 = 0 but must land in distinct slots
    table.add(0, 1.0)
    table.add(5, 2.0)
    assert table.get(0) == 1.0
    assert table.get(5) == 2.0
    occupied = (table.comm != EMPTY).sum()
    assert occupied == 2


def test_items_returns_all_entries():
    table = CommunityHashTable(6)
    for c in (2, 4, 8):
        table.add(c, float(c))
    assert sorted(table.items()) == [(2, 2.0), (4, 4.0), (8, 8.0)]


def test_argmax_by_score():
    table = CommunityHashTable(6)
    table.add(2, 5.0)
    table.add(7, 5.0)
    table.add(3, 1.0)
    best = table.argmax_by(lambda c, w: w)
    # tie on weight 5.0 -> lowest community id wins
    assert best == (2, 5.0)


def test_argmax_empty_table():
    assert CommunityHashTable(3).argmax_by(lambda c, w: w) is None


def test_stats_merge():
    a = CommunityHashTable(3)
    b = CommunityHashTable(3)
    a.add(1, 1.0)
    b.add(2, 1.0)
    b.add(2, 1.0)
    a.stats.merge(b.stats)
    assert a.stats.inserts == 2
    assert a.stats.accumulates == 1


@settings(max_examples=100)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=50),
            st.floats(min_value=0.125, max_value=10, width=32),
        ),
        min_size=0,
        max_size=40,
    )
)
def test_matches_dict_oracle(edges):
    """Property: the table always agrees with a plain dict accumulator."""
    table = CommunityHashTable(max(len(edges), 1))
    oracle: dict[int, float] = {}
    for c, w in edges:
        table.add(c, float(w))
        oracle[c] = oracle.get(c, 0.0) + float(w)
    assert table.as_dict() == pytest.approx(oracle)
    for c in range(51):
        assert table.get(c) == pytest.approx(oracle.get(c, 0.0))


@settings(max_examples=50)
@given(st.integers(min_value=1, max_value=64))
def test_never_overflows_at_paper_sizing(degree):
    """1.5x prime sizing always fits `degree` distinct communities."""
    table = CommunityHashTable(degree)
    for c in range(degree):
        table.add(c, 1.0)
    assert len(table.items()) == degree


def test_get_charges_probe_stats():
    """Lookups pay the same probe accounting as inserts (pinned counts)."""
    table = CommunityHashTable(4, size=7)
    table.add(1, 1.0)  # slot h1(1)=1, empty: exactly one probe
    assert table.stats.probes == 1
    assert table.stats.max_probe_length == 1

    assert table.get(1) == 1.0  # direct hit at slot 1: one probe
    assert table.stats.probes == 2

    assert table.get(0) == 0.0  # slot h1(0)=0 empty: one probe
    assert table.stats.probes == 3

    # 8 collides with 1 at slot 1 (8 % 7 == 1), steps by h2(8)=3 to the
    # empty slot 4: exactly two probes, raising the max probe length.
    assert table.get(8) == 0.0
    assert table.stats.probes == 5
    assert table.stats.max_probe_length == 2
