"""The paper's contribution: degree-bucketed, edge-parallel GPU Louvain."""

from .aggregate import AggregationOutcome, aggregate_bincount, aggregate_gpu
from .buckets import Bucket, bucket_index, community_buckets, degree_buckets
from .compute_move import (
    compute_moves_simulated,
    compute_moves_vectorized,
    segment_sort_order,
)
from .config import COMMUNITY_BUCKETS, DEGREE_BUCKETS, GROUP_SIZES, GPULouvainConfig
from .engine import (
    ALGO_NAMES,
    Engine,
    LabelPropagationEngine,
    LeidenEngine,
    LouvainEngine,
    ShardedEngine,
    SolverEngine,
    get_engine,
)
from .gpu_louvain import GPULouvainResult, gpu_louvain
from .hierarchy import Dendrogram, best_level, cut_at_level
from .label_prop import LabelPropagationResult, label_propagation
from .mod_opt import (
    FrontierOutcome,
    OptimizationOutcome,
    frontier_modularity_optimization,
    modularity_optimization,
)
from .refine import RefinementOutcome, connected_refinement, count_disconnected
from .sweep_plan import BucketPlan, SweepPlan

__all__ = [
    "gpu_louvain",
    "GPULouvainResult",
    "GPULouvainConfig",
    "Engine",
    "LouvainEngine",
    "LeidenEngine",
    "LabelPropagationEngine",
    "ShardedEngine",
    "SolverEngine",
    "get_engine",
    "ALGO_NAMES",
    "label_propagation",
    "LabelPropagationResult",
    "connected_refinement",
    "RefinementOutcome",
    "count_disconnected",
    "DEGREE_BUCKETS",
    "GROUP_SIZES",
    "COMMUNITY_BUCKETS",
    "modularity_optimization",
    "OptimizationOutcome",
    "frontier_modularity_optimization",
    "FrontierOutcome",
    "aggregate_gpu",
    "aggregate_bincount",
    "AggregationOutcome",
    "compute_moves_vectorized",
    "compute_moves_simulated",
    "segment_sort_order",
    "SweepPlan",
    "BucketPlan",
    "Bucket",
    "bucket_index",
    "degree_buckets",
    "community_buckets",
    "Dendrogram",
    "cut_at_level",
    "best_level",
]
