"""Ablation of the paper's central design choice: degree bucketing.

The paper's thesis: scaling threads-per-vertex with degree (7 buckets,
sub-warp groups -> warp -> block, shared tables where they fit) beats the
node-centric assignment of all earlier implementations, and the advantage
grows with degree skew.  The cost model replays one hashing sweep under
each strategy on the same K40m parameters:

* ``bucketed``      — the paper's scheme;
* ``node-centric``  — one thread per vertex (Forster [9], PLM-on-GPU);
* ``fixed-g``       — one group size for everything (no binning);
* ``sort-based``    — Cheong et al.'s sort kernel, node-centric.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.reporting import banner, format_table
from repro.bench.suite import SUITE
from repro.gpu.costmodel import CostModel
from repro.parallel.costcompare import (
    bucketed_sweep_cycles,
    node_centric_sweep_cycles,
    single_group_sweep_cycles,
)
from repro.parallel.sortbased import sort_kernel_cycles

from _util import emit

GRAPH_NAMES = (
    "uk-2002",  # heavy skew: bucketing's best case
    "com-orkut",
    "hollywood-2009",
    "audikw_1",  # dense uniform mesh
    "rgg_n_2_22_s0",
    "road_usa",  # uniform tiny degrees: worst case for bucketing gains
)


@pytest.fixture(scope="module")
def cost_rows():
    from repro.graph.generators import rmat

    cm = CostModel()
    rows = []
    # The suite's web analog trades some skew for community structure;
    # real uk-2002 has max degree ~194k, so include a raw R-MAT with the
    # full Graph500 skew as the extreme load-balance case.
    extreme = [("rmat-13 (web-degree skew)", rmat(13, 16, rng=0))]
    for name in GRAPH_NAMES:
        entry = next(e for e in SUITE if e.name == name)
        extreme_or_suite = entry.load()
        rows.append(
            (
                entry,
                extreme_or_suite,
                bucketed_sweep_cycles(extreme_or_suite, cm),
                node_centric_sweep_cycles(extreme_or_suite, cm),
                single_group_sweep_cycles(extreme_or_suite, cm, 8),
                single_group_sweep_cycles(extreme_or_suite, cm, 32),
                sort_kernel_cycles(extreme_or_suite, cm),
            )
        )
    for label, graph in extreme:
        fake = SUITE[0].__class__(
            name=label, family="web", paper_vertices=graph.num_vertices,
            paper_edges=graph.num_edges, paper_seq_seconds=1.0,
            paper_gpu_seconds=1.0,
        )
        rows.append(
            (
                fake,
                graph,
                bucketed_sweep_cycles(graph, cm),
                node_centric_sweep_cycles(graph, cm),
                single_group_sweep_cycles(graph, cm, 8),
                single_group_sweep_cycles(graph, cm, 32),
                sort_kernel_cycles(graph, cm),
            )
        )
    return rows


def test_bucketing_ablation(benchmark, cost_rows):
    cm = CostModel()
    entry0, graph0 = cost_rows[0][0], cost_rows[0][1]
    benchmark.pedantic(
        lambda: bucketed_sweep_cycles(graph0, cm), rounds=3, iterations=1
    )

    table_rows = []
    skew_ratios = []
    for entry, graph, bucketed, node_centric, fixed8, fixed32, sort_c in cost_rows:
        skew = graph.degrees.max() / max(graph.degrees.mean(), 1)
        skew_ratios.append((skew, node_centric / bucketed))
        table_rows.append(
            [
                entry.name,
                int(graph.degrees.max()),
                f"{skew:.1f}",
                f"{bucketed:.3g}",
                f"{node_centric / bucketed:.2f}",
                f"{fixed8 / bucketed:.2f}",
                f"{fixed32 / bucketed:.2f}",
                f"{sort_c / bucketed:.2f}",
            ]
        )
    table = format_table(
        ["graph", "max deg", "skew", "bucketed cyc", "node-centric x",
         "fixed-8 x", "fixed-32 x", "sort x"],
        table_rows,
    )
    # The load-balance win should grow with skew.
    skew_ratios.sort()
    low_skew_gain = np.mean([g for s, g in skew_ratios[:2]])
    high_skew_gain = np.mean([g for s, g in skew_ratios[-2:]])
    summary = (
        f"node-centric/bucketed ratio at low skew: {low_skew_gain:.2f}x, "
        f"at high skew: {high_skew_gain:.2f}x\n"
        "(the paper's premise: bucketing matters exactly where degrees vary;\n"
        " a fixed group size tuned to one graph's degree can win there —\n"
        " fixed-8 on uniform meshes — but no fixed size is near-best on\n"
        " every class, while bucketing always is)"
    )
    emit("bucketing_ablation", banner("Bucketing ablation (cost model)") + "\n" + table + "\n\n" + summary)

    best_fixed_gap = 0.0
    worst_fixed8 = worst_fixed32 = 0.0
    for _, _, bucketed, node_centric, fixed8, fixed32, _ in cost_rows:
        assert bucketed <= node_centric  # bucketing never loses to node-centric
        best_fixed_gap = max(best_fixed_gap, bucketed / min(fixed8, fixed32, bucketed))
        worst_fixed8 = max(worst_fixed8, fixed8 / bucketed)
        worst_fixed32 = max(worst_fixed32, fixed32 / bucketed)
    # Bucketing stays within a small factor of the per-graph best fixed
    # size, while each fixed size has a class it handles badly.
    assert best_fixed_gap < 3.0
    assert worst_fixed8 > 1.5
    assert worst_fixed32 > 1.5
    assert high_skew_gain > low_skew_gain


def test_shared_memory_matters(benchmark):
    """Re-pricing shared probes at global latency shows why the paper
    fights to keep tables in shared memory."""
    from repro.gpu.costmodel import CostParameters

    entry = next(e for e in SUITE if e.name == "com-orkut")
    graph = entry.load()
    normal = CostModel()
    no_shared = CostModel(
        params=CostParameters(probe_shared=60.0, atomic_shared=120.0)
    )
    fast = benchmark.pedantic(
        lambda: bucketed_sweep_cycles(graph, normal), rounds=3, iterations=1
    )
    slow = bucketed_sweep_cycles(graph, no_shared)
    emit(
        "shared_memory_ablation",
        f"bucketed sweep, shared tables: {fast:.3g} cycles; "
        f"tables priced at global latency: {slow:.3g} cycles "
        f"({slow / fast:.1f}x)",
    )
    assert slow > 2 * fast
