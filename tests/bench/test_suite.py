"""Tests for the Table-1 analog suite."""

import pytest

from repro.bench.suite import SUITE, SuiteEntry, load_suite_graph, small_suite, suite_names
from repro.graph.validation import validate


def test_suite_has_55_rows():
    assert len(SUITE) == 55


def test_names_unique():
    names = suite_names()
    assert len(names) == len(set(names))


def test_paper_numbers_sane():
    for entry in SUITE:
        assert entry.paper_vertices > 0
        assert entry.paper_edges > 0
        assert entry.paper_seq_seconds > 0
        assert entry.paper_gpu_seconds > 0
        assert entry.paper_speedup == pytest.approx(
            entry.paper_seq_seconds / entry.paper_gpu_seconds
        )


def test_table_order_roughly_by_avg_degree():
    """Table 1 orders graphs by decreasing average degree."""
    degrees = [e.paper_avg_degree for e in SUITE]
    # allow small local inversions (the paper's ordering has a few)
    violations = sum(1 for a, b in zip(degrees, degrees[1:]) if b > a * 1.3)
    assert violations <= 4


def test_small_suite_covers_families():
    families = {e.family for e in small_suite()}
    assert families == {e.family for e in SUITE}


def test_load_unknown_name():
    with pytest.raises(KeyError):
        load_suite_graph("no-such-graph")


@pytest.mark.parametrize("entry", small_suite(), ids=lambda e: e.name)
def test_family_representatives_build(entry: SuiteEntry):
    g = entry.load()
    validate(g)
    assert g.num_vertices >= 64
    assert g.num_edges >= 500
    # average degree within a factor ~5 of the paper's graph
    avg = 2 * g.num_edges / g.num_vertices
    assert avg > entry.paper_avg_degree / 8


def test_load_cached():
    a = load_suite_graph("road_usa")
    b = load_suite_graph("road_usa")
    assert a is b  # lru_cache


def test_deterministic_generation():
    entry = next(e for e in SUITE if e.name == "cnr-2000")
    assert entry.load() == entry.load()


def test_scale_grows_graph():
    entry = next(e for e in SUITE if e.name == "com-dblp")
    small = entry.load(1.0)
    large = entry.load(2.0)
    assert large.num_edges > small.num_edges
