"""Tests for coverage / performance / conductance."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.graph.build import from_edges
from repro.graph.generators import caveman
from repro.metrics.partition_measures import (
    conductance,
    coverage,
    performance,
    worst_conductance,
)

from ..conftest import graphs_with_partitions


def test_coverage_all_in_one(karate):
    assert coverage(karate, np.zeros(34, dtype=np.int64)) == pytest.approx(1.0)


def test_coverage_singletons_zero(karate):
    # no self-loops in karate: no internal weight at all
    assert coverage(karate, np.arange(34)) == pytest.approx(0.0)


def test_coverage_caveman_high():
    g, labels = caveman(6, 8)
    assert coverage(g, labels) > 0.9


def test_coverage_empty_graph():
    g = from_edges([], [], num_vertices=3)
    assert coverage(g, np.zeros(3, dtype=np.int64)) == 1.0


def test_performance_perfect_on_disjoint_cliques():
    # two disconnected triangles, perfectly classified
    g = from_edges([0, 0, 1, 3, 3, 4], [1, 2, 2, 4, 5, 5])
    labels = np.array([0, 0, 0, 1, 1, 1])
    assert performance(g, labels) == pytest.approx(1.0)


def test_performance_all_in_one_on_sparse_graph():
    # everything joined: only adjacent pairs count as correct
    g = from_edges([0], [1], num_vertices=4)
    labels = np.zeros(4, dtype=np.int64)
    assert performance(g, labels) == pytest.approx(1 / 6)


def test_performance_single_vertex():
    g = from_edges([], [], num_vertices=1)
    assert performance(g, np.zeros(1, dtype=np.int64)) == 1.0


def test_conductance_isolated_community_zero():
    g = from_edges([0], [1], num_vertices=3)
    labels = np.array([0, 0, 1])
    phi = conductance(g, labels)
    assert phi[0] == 0.0  # no cut edges
    assert phi[1] == 0.0  # zero volume


def test_conductance_split_edge():
    # one edge cut between two singleton communities: phi = 1 both sides
    g = from_edges([0], [1])
    phi = conductance(g, np.array([0, 1]))
    assert phi.tolist() == [1.0, 1.0]


def test_conductance_caveman_low():
    g, labels = caveman(6, 8)
    assert worst_conductance(g, labels) < 0.2


def test_worst_conductance_all_in_one(karate):
    assert worst_conductance(karate, np.zeros(34, dtype=np.int64)) == 0.0


def test_good_partition_beats_bad_on_all_measures(karate):
    from repro import gpu_louvain

    good = gpu_louvain(karate).membership
    rng = np.random.default_rng(0)
    bad = rng.integers(0, 4, size=34)
    assert coverage(karate, good) > coverage(karate, bad)
    assert worst_conductance(karate, good) < worst_conductance(karate, bad)


@settings(max_examples=50, deadline=None)
@given(graphs_with_partitions())
def test_measures_bounded(data):
    graph, labels = data
    assert 0.0 <= coverage(graph, labels) <= 1.0
    if graph.num_vertices >= 2:
        assert 0.0 <= performance(graph, labels) <= 1.0
    phi = conductance(graph, labels)
    assert np.all(phi >= 0.0)
    assert np.all(phi <= 1.0 + 1e-9)


@settings(max_examples=40, deadline=None)
@given(graphs_with_partitions())
def test_coverage_complements_cut(data):
    graph, labels = data
    if graph.total_weight == 0:
        return
    src = labels[graph.vertex_of_edge]
    dst = labels[graph.indices]
    cut = float(graph.weights[src != dst].sum())
    assert coverage(graph, labels) == pytest.approx(
        1.0 - cut / graph.total_weight
    )
