#!/usr/bin/env python
"""Dynamic network analytics: track communities as a graph evolves.

The paper's introduction motivates fast parallel Louvain with exactly
this: "Timing issues can also be critical in areas such as dynamic
network analytics where the input data changes continuously."  This
example feeds a stream of edge insertions *and deletions* on a social
network into a :class:`repro.stream.StreamSession`, which patches the
CSR graph in place, delta-screens the affected vertices, and
re-optimizes only that frontier warm-started from the previous
membership — against a cold from-scratch re-clustering for comparison.

Run:  python examples/dynamic_communities.py
"""

import time

import numpy as np

from repro import StreamSession, gpu_louvain
from repro.graph.generators import social_network
from repro.metrics.quality import normalized_mutual_information


def random_batch(graph, count, rng):
    """A batch of ~80% random insertions and ~20% deletions of real edges."""
    num_remove = count // 5
    eu = rng.integers(0, graph.num_vertices, count - num_remove)
    ev = rng.integers(0, graph.num_vertices, count - num_remove)
    keep = eu != ev
    add = (eu[keep], ev[keep], None)
    pu, pv, _ = graph.edge_list()
    not_loop = pu != pv
    pu, pv = pu[not_loop], pv[not_loop]
    pick = rng.choice(pu.size, size=min(num_remove, pu.size), replace=False)
    return add, (pu[pick], pv[pick])


def main() -> None:
    rng = np.random.default_rng(0)
    graph = social_network(6000, 8, rng=1)
    print(f"initial network: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges")

    start = time.perf_counter()
    # The social network holds a few large communities, so seed the
    # delta screen from the changed endpoints and let sweep expansion
    # ripple outward (frontier_scope="community" would cover everything).
    session = StreamSession(
        graph, frontier_scope="endpoints", bin_vertex_limit=1_000
    )
    print(f"initial clustering: Q = {session.modularity:.4f} "
          f"in {time.perf_counter() - start:.2f}s "
          f"({sum(session.result.sweeps_per_level)} sweeps)")

    batch = max(10, graph.num_edges // 200)  # ~0.5% churn per step
    print(f"\nstreaming {batch} edge updates per step (1/5 deletions):\n")
    print(f"{'step':>4s} {'edges':>7s} {'cold sweeps':>11s} {'warm sweeps':>11s} "
          f"{'frontier':>8s} {'speedup':>8s} {'Q warm':>8s} {'NMI to prev':>11s}")

    for step in range(1, 6):
        previous_membership = session.membership
        add, remove = random_batch(session.graph, batch, rng)

        start = time.perf_counter()
        result = session.apply(add=add, remove=remove)
        warm_seconds = time.perf_counter() - start

        start = time.perf_counter()
        cold = gpu_louvain(session.graph, bin_vertex_limit=1_000)
        cold_seconds = time.perf_counter() - start

        drift = normalized_mutual_information(
            result.membership, previous_membership
        )
        print(f"{step:4d} {session.graph.num_edges:7d} "
              f"{sum(cold.sweeps_per_level):11d} "
              f"{sum(result.sweeps_per_level):11d} "
              f"{result.frontier_size:8d} "
              f"{cold_seconds / max(warm_seconds, 1e-9):7.1f}x "
              f"{result.modularity:8.4f} {drift:11.3f}")

    print("\nwarm starts keep the hierarchy stable across updates (high NMI)"
          "\nwhile skipping the expensive from-singletons first phase —"
          "\nand delta-screening touches only the frontier of each batch.")


if __name__ == "__main__":
    main()
