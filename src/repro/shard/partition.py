"""CSR partitioning for the sharded engine.

A *shard plan* assigns every vertex to exactly one of ``num_shards``
shards and classifies each vertex as **interior** (every neighbour in
the same shard) or **boundary** (at least one cross-shard neighbour).
Interior vertices can be optimized concurrently by per-shard workers
without any cross-shard coordination: two interior vertices of different
shards are never adjacent (an edge between them would make both
boundary), so their candidate target communities are discovered through
disjoint neighbourhoods.  Boundary vertices are frozen during the
parallel phase and reconciled on the coordinator (see
:mod:`repro.shard.engine`).

Two partitioners:

``hash``
    Deterministic splitmix64 hash of the vertex id modulo shard count.
    Balanced by construction, oblivious to structure — high cut on
    meshes, the right default for adversarial/unknown graphs.
``bfs``
    BFS-grown blocks: repeatedly seed from the lowest-id unassigned
    vertex and grow a frontier until the block reaches ``ceil(n /
    num_shards)`` vertices.  On road networks and meshes this produces
    contiguous blocks with small perimeters, i.e. mostly-interior
    shards — the property the parallel phase's efficiency rides on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.thrust import gather_rows
from ..graph.csr import CSRGraph

__all__ = [
    "ShardPlan",
    "hash_partition",
    "bfs_partition",
    "boundary_mask",
]

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)


def hash_partition(num_vertices: int, num_shards: int) -> np.ndarray:
    """Deterministic splitmix64 hash of vertex id modulo ``num_shards``."""
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    x = (np.arange(num_vertices, dtype=np.uint64) + np.uint64(1)) * _GOLDEN
    x ^= x >> np.uint64(30)
    x *= _MIX_1
    x ^= x >> np.uint64(27)
    x *= _MIX_2
    x ^= x >> np.uint64(31)
    return (x % np.uint64(num_shards)).astype(np.int64)


def bfs_partition(graph: CSRGraph, num_shards: int) -> np.ndarray:
    """BFS-grown contiguous blocks of ~equal vertex count.

    Seeds from the lowest-id unassigned vertex, grows a whole frontier
    at a time (vectorized), and closes the block once it reaches
    ``ceil(n / num_shards)`` vertices; a closing frontier is truncated
    at the target, the truncated tail reseeding the next block, so
    blocks stay within one frontier of balanced.  Disconnected
    components simply reseed; the last shard absorbs any remainder.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    n = graph.num_vertices
    parts = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return parts
    target = -(-n // num_shards)  # ceil
    indices = graph.indices
    shard = 0
    filled = 0
    unassigned = n
    while unassigned:
        if filled >= target and shard < num_shards - 1:
            shard += 1
            filled = 0
        room = unassigned if shard == num_shards - 1 else target - filled
        seed = int(np.argmax(parts < 0))
        frontier = np.array([seed], dtype=np.int64)
        parts[seed] = shard
        filled += 1
        unassigned -= 1
        room -= 1
        while frontier.size and room > 0:
            pos, _ = gather_rows(graph.indptr, frontier)
            nxt = np.unique(indices[pos])
            nxt = nxt[parts[nxt] < 0]
            if nxt.size > room:
                nxt = nxt[:room]
            if nxt.size == 0:
                break
            parts[nxt] = shard
            filled += int(nxt.size)
            unassigned -= int(nxt.size)
            room -= int(nxt.size)
            frontier = nxt
    return parts


def boundary_mask(graph: CSRGraph, parts: np.ndarray) -> np.ndarray:
    """Boolean mask of vertices with at least one cross-shard neighbour.

    Symmetric by construction: an edge ``{u, v}`` with ``parts[u] !=
    parts[v]`` is stored in both rows, so it marks both endpoints.
    """
    parts = np.asarray(parts, dtype=np.int64)
    src_parts = np.repeat(parts, graph.degrees)
    cross = src_parts != parts[graph.indices]
    mask = np.zeros(graph.num_vertices, dtype=bool)
    if cross.any():
        mask[graph.vertex_of_edge[cross]] = True
    return mask


@dataclass(frozen=True)
class ShardPlan:
    """One level's vertex-to-shard assignment plus the interior split.

    Invariants (pinned in ``tests/shard/test_partition.py``): every
    vertex lives in exactly one shard; ``boundary`` is symmetric (if
    ``v`` is boundary because of neighbour ``u``, then ``u`` is boundary
    too); ``interior = ~boundary``; interior vertices of different
    shards are never adjacent.
    """

    num_shards: int
    parts: np.ndarray
    boundary: np.ndarray
    interior: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "parts", np.asarray(self.parts, dtype=np.int64))
        object.__setattr__(self, "boundary", np.asarray(self.boundary, dtype=bool))
        object.__setattr__(self, "interior", ~self.boundary)

    @classmethod
    def build(
        cls, graph: CSRGraph, num_shards: int, method: str = "bfs"
    ) -> "ShardPlan":
        """Partition ``graph`` into ``num_shards`` shards.

        ``method`` is ``"bfs"`` (contiguous blocks, low cut on spatial
        graphs) or ``"hash"`` (structure-oblivious, balanced).
        """
        if method == "hash":
            parts = hash_partition(graph.num_vertices, num_shards)
        elif method == "bfs":
            parts = bfs_partition(graph, num_shards)
        else:
            raise ValueError(f"unknown partition method: {method!r}")
        return cls(
            num_shards=num_shards,
            parts=parts,
            boundary=boundary_mask(graph, parts),
        )

    def shard_members(self, shard: int) -> np.ndarray:
        """All vertices assigned to ``shard``."""
        return np.flatnonzero(self.parts == shard)

    def interior_members(self, shard: int) -> np.ndarray:
        """Interior vertices of ``shard`` (the worker's move set)."""
        return np.flatnonzero((self.parts == shard) & self.interior)

    @property
    def boundary_vertices(self) -> np.ndarray:
        """All boundary vertices (the coordinator's reconciliation set)."""
        return np.flatnonzero(self.boundary)

    @property
    def interior_fraction(self) -> float:
        """Fraction of vertices the parallel phase may move."""
        n = self.parts.size
        return float(self.interior.sum()) / n if n else 0.0
