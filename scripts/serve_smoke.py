#!/usr/bin/env python
"""Smoke test for ``python -m repro serve`` — the CI ``serve-smoke`` job.

Spawns a real server subprocess on an ephemeral port, then drives the
documented lifecycle over the wire with :class:`repro.serve.ServeClient`:

1. create two named sessions (generated graphs, exact screening),
2. stream interleaved edge batches into both,
3. partition queries (community_of / members / top-k),
4. RunReport retrieval with the config fingerprint,
5. snapshot + evict, then a query that transparently restores,
6. error-code checks (404 / 409 / 400 paths),
7. delete, shutdown, and a clean subprocess exit.

Exits 0 on success; any assertion or protocol error is fatal.  Run from
the repository root: ``python scripts/serve_smoke.py``.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.serve import ServeClient, ServeError  # noqa: E402


def expect_error(code: str, fn) -> None:
    try:
        fn()
    except ServeError as exc:
        assert exc.code == code, f"expected {code}, got {exc.code}: {exc.message}"
        print(f"  error path ok: {code} (HTTP {exc.status})")
        return
    raise AssertionError(f"expected ServeError {code}, got success")


def main() -> int:
    snapshot_dir = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--snapshot-dir", snapshot_dir, "--max-sessions", "4"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
        cwd=REPO,
    )
    try:
        line = proc.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)", line)
        assert match, f"no listen line from server, got: {line!r}"
        port = int(match.group(2))
        print(f"server up on port {port}")

        client = ServeClient(port=port)
        assert client.health()

        # 1. two sessions
        left = client.create_session(
            "left", generate={"family": "caveman", "n": 60, "m": 6},
            config={"screening": "exact"},
        )
        right = client.create_session(
            "right", generate={"family": "social", "n": 400, "m": 5, "seed": 3},
            config={"screening": "local"},
        )
        assert left["num_vertices"] == 60
        assert right["num_vertices"] == 400
        print(f"sessions created: left Q={left['modularity']:.4f}, "
              f"right Q={right['modularity']:.4f}")

        # 2. interleaved batches
        for i in range(3):
            a = client.batch("left", add=([i], [30 + i], [1.0]))
            b = client.batch("right", add=([i * 5], [i * 7 + 1]),
                             remove=None)
            assert a["batch"] == i + 1 and b["batch"] == i + 1
            assert a["coalesced"] >= 1
        print(f"streamed 3 batches each: left Q={a['modularity']:.4f}, "
              f"right Q={b['modularity']:.4f}")

        # 3. queries
        community = client.community_of("left", 0)
        members = client.members("left", community)
        assert 0 in members
        top = client.top("left", 3, by="size")
        assert len(top) == 3 and top[0]["size"] >= top[-1]["size"]
        volume_top = client.top("right", 2, by="volume")
        assert len(volume_top) == 2
        print(f"queries ok: v0 in community {community} "
              f"({len(members)} members); top sizes "
              f"{[t['size'] for t in top]}")

        # 4. reports carry the config fingerprint
        report = client.report("left", which="last")["report"]
        assert report["result"]["batch"] == 3
        fingerprint = report["meta"]["fingerprint"]
        assert re.fullmatch(r"[0-9a-f]{12}", fingerprint)
        print(f"report ok: batch 3, fingerprint {fingerprint}")

        # 5. snapshot, evict, transparent restore
        snapshot = client.snapshot("left")
        assert Path(snapshot).exists()
        before = [client.community_of("left", v) for v in range(60)]
        client.evict("left")
        rows = {r["name"]: r["resident"] for r in client.list_sessions()}
        assert rows == {"left": False, "right": True}
        after = [client.community_of("left", v) for v in range(60)]
        assert before == after, "restore changed the partition"
        stats = client.stats()
        assert stats["sessions"]["restored"] == 1
        assert stats["batches"]["requests"] == 6
        print(f"snapshot/evict/restore ok: stats {stats['sessions']}")

        # 6. error paths
        expect_error("session_not_found", lambda: client.info("ghost"))
        expect_error("session_exists",
                     lambda: client.create_session(
                         "left", generate={"family": "karate"}))
        expect_error("invalid_name",
                     lambda: client.create_session(
                         "no/slashes", generate={"family": "karate"}))
        expect_error("vertex_out_of_range",
                     lambda: client.community_of("left", 10 ** 9))
        expect_error("invalid_batch",
                     lambda: client.batch("left", remove=([0], [59])))

        # 7. delete and clean shutdown
        client.delete("right")
        assert [r["name"] for r in client.list_sessions()] == ["left"]
        client.shutdown()
        code = proc.wait(timeout=15)
        assert code == 0, f"server exited {code}"
        print("clean shutdown: exit 0")
        print("SERVE SMOKE OK")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        rest = proc.stdout.read()
        if rest.strip():
            print("--- server output ---")
            print(rest.strip())


if __name__ == "__main__":
    sys.exit(main())
