"""Vectorized distance-1 graph coloring.

Lu et al. [16] use a coloring to split vertices into independent sets so
that one set can move in parallel without races; their comparator
implementation here (:mod:`repro.parallel.lu_openmp`) needs the same, and
the sharded engine (:mod:`repro.shard`) colors boundary vertices every
level so concurrent boundary moves stay race-free.

The original implementation was a pure-Python first-fit loop with a
``set`` per vertex — per-edge interpreter work that turned quadratic-ish
on the suite graphs once coloring landed on the reconciliation hot path.
This version is a deterministic Jones–Plassmann-style speculative
coloring, fully vectorized:

1. every uncolored vertex computes its *mex* (minimum excluded color)
   over already-colored neighbours from a per-vertex forbidden-color
   **bitmask** (``uint64`` words, OR-scattered from colored neighbour
   edges);
2. an uncolored vertex *commits* its tentative color unless an uncolored
   neighbour proposing the same color outranks it (deterministic
   splitmix64 hash priority, vertex id as tie-break);
3. committed colors are OR-ed into the remaining uncolored neighbours'
   bitmasks and the round repeats.

Hash priorities (rather than vertex ids) keep the expected round count
logarithmic even on path-like graphs, where id-priorities would ripple
one vertex per round.  The result is deterministic (no RNG state), a
valid distance-1 coloring, and uses at most ``max_degree + 1`` colors
(the mex bound) — but the concrete classes differ from the old
sequential first-fit order; the class-structure snapshots are pinned in
``tests/parallel/test_coloring.py``.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["greedy_coloring", "color_classes"]

#: splitmix64 multiplier constants (Steele et al.), used for the
#: deterministic per-vertex priorities.
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def _priorities(n: int) -> np.ndarray:
    """Deterministic pseudo-random ``uint64`` priority per vertex id."""
    x = (np.arange(n, dtype=np.uint64) + np.uint64(1)) * _GOLDEN
    x ^= x >> np.uint64(30)
    x *= _MIX_1
    x ^= x >> np.uint64(27)
    x *= _MIX_2
    x ^= x >> np.uint64(31)
    return x


def _mex_from_bitmask(forbidden: np.ndarray) -> np.ndarray:
    """Minimum excluded color per row of a ``(m, words)`` uint64 bitmask.

    Each row must have at least one zero bit (guaranteed when ``words``
    covers ``max_degree + 1`` colors: a vertex can forbid at most
    ``degree`` distinct colors).
    """
    inv = ~forbidden
    nonzero = inv != 0
    word = np.argmax(nonzero, axis=1)
    bits = inv[np.arange(inv.shape[0]), word]
    # Lowest set bit isolated; powers of two are exact in float64, so
    # log2 recovers the bit index exactly for all 64 positions.
    lsb = bits & (~bits + np.uint64(1))
    bit = np.log2(lsb.astype(np.float64)).astype(np.int64)
    return word.astype(np.int64) * 64 + bit


def greedy_coloring(graph: CSRGraph) -> np.ndarray:
    """Deterministic speculative greedy coloring, one color per vertex.

    Adjacent vertices always differ (a self-loop does not constrain its
    own vertex).  Uses at most ``max_degree + 1`` colors.  Deterministic
    for a given graph; see the module docstring for the algorithm.
    """
    n = graph.num_vertices
    colors = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return colors
    src = graph.vertex_of_edge
    dst = graph.indices
    keep = src != dst  # self-loops never constrain their own vertex
    src = src[keep]
    dst = dst[keep]

    max_colors = int(graph.degrees.max(initial=0)) + 1
    words = (max_colors + 63) // 64
    forbidden = np.zeros((n, words), dtype=np.uint64)
    prio = _priorities(n)
    uncolored = np.ones(n, dtype=bool)
    # mex of an empty forbidden set is 0, so every vertex opens bidding
    # on color 0; later rounds only re-bid where the bitmask changed.
    tentative = np.zeros(n, dtype=np.int64)

    unc = np.arange(n, dtype=np.int64)
    while unc.size:
        # A vertex loses its proposal when an uncolored neighbour wants
        # the same color with a higher (priority, id) rank.
        same = tentative[src] == tentative[dst]
        s, d = src[same], dst[same]
        outranked = (prio[d] > prio[s]) | ((prio[d] == prio[s]) & (d > s))
        loses = np.zeros(n, dtype=bool)
        loses[s[outranked]] = True

        winners = unc[~loses[unc]]
        won = tentative[winners]
        colors[winners] = won
        uncolored[winners] = False
        unc = unc[loses[unc]]

        # Fold the committed colors into the still-uncolored neighbours'
        # forbidden bitmasks, then drop the winners' edges from the live
        # set — every remaining round only touches uncolored-uncolored
        # edges, so the per-round scan shrinks as the coloring fills in.
        win_mask = np.zeros(n, dtype=bool)
        win_mask[winners] = True
        sel = win_mask[src] & uncolored[dst]
        nbs = dst[sel]
        cols = colors[src[sel]].astype(np.uint64)
        if nbs.size:
            np.bitwise_or.at(
                forbidden,
                (nbs, (cols >> np.uint64(6)).astype(np.int64)),
                np.uint64(1) << (cols & np.uint64(63)),
            )
            # Every loser neighbours a winner proposing its color, so the
            # fold targets are exactly the vertices whose mex can change.
            dirty = np.unique(nbs)
            tentative[dirty] = _mex_from_bitmask(forbidden[dirty])
        live = uncolored[src] & uncolored[dst]
        src = src[live]
        dst = dst[live]
    return colors


def color_classes(colors: np.ndarray) -> list[np.ndarray]:
    """Vertices grouped by color, ascending color order."""
    colors = np.asarray(colors, dtype=np.int64)
    if colors.size == 0:
        return []
    order = np.argsort(colors, kind="stable")
    sorted_colors = colors[order]
    boundaries = np.flatnonzero(
        np.concatenate(([True], sorted_colors[1:] != sorted_colors[:-1]))
    )
    return np.split(order, boundaries[1:])
