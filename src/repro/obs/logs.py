"""Structured JSON logging with correlation ids (``repro.log/1``).

One event per line, one JSON object per line.  Every record carries:

``schema``
    Always ``"repro.log/1"``.
``ts``
    Unix timestamp (float seconds).
``level``
    ``"debug" | "info" | "warning" | "error"``.
``logger``
    Dotted component name (``repro.serve``, ``repro.stream`` …).
``event``
    Machine-readable event name (``batch_applied``, ``slow_request`` …).
``cid`` *(optional)*
    Correlation id.  The serve layer mints one per HTTP request
    (``req-<12 hex>``); batch requests carry theirs into the apply
    worker, so the ``batch_applied`` line lists every folded request's
    cid next to the trace span path (``span_path: "batch[N]"``) of the
    ``repro.trace/1`` report that recorded the same apply.  That triple
    — cid ↔ log line ↔ span path — is what ties runtime logs to offline
    traces.

Arbitrary extra fields ride along at the top level (JSON scalars, lists
and dicts; non-finite floats are stringified the same way
:mod:`repro.trace` sanitises them).  Reserved keys win over collisions.

Correlation ids propagate via :mod:`contextvars`, so they survive
``await`` inside a single asyncio task.  Note that
``loop.run_in_executor`` does **not** copy the calling context into the
worker thread (only ``asyncio.to_thread`` does): code that offloads work
must re-bind the cid (and trace context) explicitly inside the callable,
as the serve apply path does.
"""

from __future__ import annotations

import contextvars
import io
import json
import math
import threading
import time
import uuid
from contextlib import contextmanager

__all__ = [
    "LOG_SCHEMA",
    "LEVELS",
    "StructuredLogger",
    "NULL_LOGGER",
    "new_correlation_id",
    "bind_correlation_id",
    "current_correlation_id",
    "correlation",
    "validate_log_line",
]

LOG_SCHEMA = "repro.log/1"

#: Numeric severities; ``off`` disables everything.
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40, "off": 100}

_RESERVED = ("schema", "ts", "level", "logger", "event")

_cid_var: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_correlation_id", default=None
)


def new_correlation_id(prefix: str = "req") -> str:
    """Mint a fresh correlation id, e.g. ``req-3f9a1c0b77de``."""
    return f"{prefix}-{uuid.uuid4().hex[:12]}"


def bind_correlation_id(cid: str | None):
    """Bind ``cid`` to the current context; returns a reset token."""
    return _cid_var.set(cid)


def unbind_correlation_id(token) -> None:
    _cid_var.reset(token)


def current_correlation_id() -> str | None:
    return _cid_var.get()


@contextmanager
def correlation(cid: str | None = None, *, prefix: str = "req"):
    """``with correlation() as cid:`` — bind a (fresh) cid for the block."""
    if cid is None:
        cid = new_correlation_id(prefix)
    token = _cid_var.set(cid)
    try:
        yield cid
    finally:
        _cid_var.reset(token)


def _json_safe(value):
    """Clamp non-JSON values: non-finite floats → strings, sets → lists."""
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class StructuredLogger:
    """Writes one ``repro.log/1`` JSON line per event.

    ``stream`` defaults to an internal buffer (handy in tests — read it
    back with :meth:`lines`); pass ``sys.stderr`` for a real server.
    Thread-safe: one lock per logger serialises writes.
    """

    def __init__(
        self,
        name: str = "repro",
        *,
        stream=None,
        level: str = "info",
        clock=time.time,
        flight=None,
    ) -> None:
        if level not in LEVELS:
            raise ValueError(f"unknown log level: {level!r}")
        self.name = name
        self.stream = stream if stream is not None else io.StringIO()
        self.level = level
        self._clock = clock
        self._lock = threading.Lock()
        # A repro.obs.flight.FlightRecorder (duck-typed to avoid the
        # import cycle): every emitted record is teed into its ring.
        self.flight = flight if flight is not None and flight.enabled else None

    @property
    def enabled(self) -> bool:
        return LEVELS[self.level] < LEVELS["off"]

    def child(self, suffix: str) -> "StructuredLogger":
        """A logger named ``<name>.<suffix>`` sharing stream and level."""
        child = StructuredLogger(
            f"{self.name}.{suffix}", stream=self.stream,
            level=self.level, clock=self._clock, flight=self.flight,
        )
        child._lock = self._lock
        return child

    def log(self, level: str, event: str, **fields) -> None:
        if LEVELS.get(level, 0) < LEVELS[self.level]:
            return
        record = {
            "schema": LOG_SCHEMA,
            "ts": round(float(self._clock()), 6),
            "level": level,
            "logger": self.name,
            "event": str(event),
        }
        cid = fields.pop("cid", None) or current_correlation_id()
        if cid is not None:
            record["cid"] = cid
        for key, value in fields.items():
            if key in _RESERVED or key == "cid":
                key = f"{key}_"
            record[key] = _json_safe(value)
        line = json.dumps(record, separators=(",", ":"), sort_keys=False)
        with self._lock:
            self.stream.write(line + "\n")
            flush = getattr(self.stream, "flush", None)
            if flush is not None:
                flush()
        if self.flight is not None:
            self.flight.record_log(record)

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)

    def lines(self) -> list[dict]:
        """Parse back every line written so far (StringIO streams only)."""
        getvalue = getattr(self.stream, "getvalue", None)
        if getvalue is None:
            raise TypeError("lines() requires an in-memory stream")
        return [json.loads(line) for line in getvalue().splitlines() if line]


class _NullLogger(StructuredLogger):
    """Drops everything; the logging analogue of ``NULL_TRACER``."""

    def __init__(self) -> None:
        super().__init__("null", level="off")

    def log(self, level: str, event: str, **fields) -> None:
        pass


#: Shared inert logger for the disabled path.
NULL_LOGGER = _NullLogger()


def validate_log_line(line) -> list[str]:
    """Validate one log line (a JSON string or a parsed dict).

    Returns a list of problems; empty means the line conforms to
    ``repro.log/1``.
    """
    problems: list[str] = []
    if isinstance(line, (str, bytes)):
        try:
            line = json.loads(line)
        except ValueError as exc:
            return [f"not JSON: {exc}"]
    if not isinstance(line, dict):
        return ["log line must be a JSON object"]
    if line.get("schema") != LOG_SCHEMA:
        problems.append(f"schema must be {LOG_SCHEMA!r}, got {line.get('schema')!r}")
    ts = line.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts <= 0:
        problems.append("ts must be a positive number")
    level = line.get("level")
    if level not in ("debug", "info", "warning", "error"):
        problems.append(f"invalid level: {level!r}")
    if not isinstance(line.get("logger"), str) or not line.get("logger"):
        problems.append("logger must be a non-empty string")
    if not isinstance(line.get("event"), str) or not line.get("event"):
        problems.append("event must be a non-empty string")
    cid = line.get("cid")
    if cid is not None and (not isinstance(cid, str) or "-" not in cid):
        problems.append("cid must be a '<prefix>-<hex>' string")
    return problems
