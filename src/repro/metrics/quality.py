"""Partition quality measures beyond modularity.

Used to verify that detected communities recover planted ground truth on
the synthetic suite (planted partition / LFR-like generators) and to report
community statistics for figures 5/6-style stage analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "normalize_labels",
    "community_sizes",
    "num_communities",
    "normalized_mutual_information",
    "adjusted_rand_index",
    "PartitionStats",
    "partition_stats",
]


def normalize_labels(labels: np.ndarray) -> np.ndarray:
    """Relabel arbitrary non-negative labels to dense ``0..k-1`` by first use."""
    labels = np.asarray(labels, dtype=np.int64)
    _, first_index, inverse = np.unique(labels, return_index=True, return_inverse=True)
    # np.unique orders by value; reorder so labels appear in first-use order.
    order = np.argsort(np.argsort(first_index))
    return order[inverse]


def community_sizes(labels: np.ndarray) -> np.ndarray:
    """Vector of community sizes, indexed by dense label."""
    return np.bincount(normalize_labels(labels))


def num_communities(labels: np.ndarray) -> int:
    """Number of distinct community labels."""
    return int(np.unique(np.asarray(labels)).size)


def _contingency(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    a = normalize_labels(a)
    b = normalize_labels(b)
    ka = int(a.max()) + 1 if a.size else 0
    kb = int(b.max()) + 1 if b.size else 0
    table = np.zeros((ka, kb), dtype=np.int64)
    np.add.at(table, (a, b), 1)
    return table


def normalized_mutual_information(a: np.ndarray, b: np.ndarray) -> float:
    """NMI between two labelings, arithmetic-mean normalisation, in [0, 1]."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError("labelings must have the same length")
    n = a.size
    if n == 0:
        return 1.0
    table = _contingency(a, b)
    pa = table.sum(axis=1) / n
    pb = table.sum(axis=0) / n
    pab = table / n
    with np.errstate(divide="ignore", invalid="ignore"):
        mi_terms = pab * np.log(pab / np.outer(pa, pb))
    mi = float(np.nansum(mi_terms))
    ha = float(-np.sum(pa[pa > 0] * np.log(pa[pa > 0])))
    hb = float(-np.sum(pb[pb > 0] * np.log(pb[pb > 0])))
    denom = (ha + hb) / 2.0
    if denom == 0.0:
        return 1.0
    # Floating-point noise in the log-sum can push the ratio a few ulp
    # outside [0, 1] (e.g. identical labelings giving 1.0000000000000002).
    return min(1.0, max(0.0, mi / denom))


def adjusted_rand_index(a: np.ndarray, b: np.ndarray) -> float:
    """Adjusted Rand index between two labelings (1 = identical)."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError("labelings must have the same length")
    n = a.size
    if n <= 1:
        return 1.0
    table = _contingency(a, b)

    def comb2(x: np.ndarray) -> np.ndarray:
        return x * (x - 1) / 2.0

    sum_cells = comb2(table).sum()
    sum_rows = comb2(table.sum(axis=1)).sum()
    sum_cols = comb2(table.sum(axis=0)).sum()
    total = comb2(np.array([n]))[0]
    expected = sum_rows * sum_cols / total
    maximum = (sum_rows + sum_cols) / 2.0
    if maximum == expected:
        return 1.0
    # sum_cells <= maximum exactly, but the division can overshoot 1 by
    # a few ulp; the index is bounded below by -1 the same way.
    return float(min(1.0, max(-1.0, (sum_cells - expected) / (maximum - expected))))


@dataclass(frozen=True)
class PartitionStats:
    """Summary statistics of a partition (used in stage reports)."""

    num_communities: int
    largest: int
    smallest: int
    mean_size: float
    singleton_fraction: float


def partition_stats(labels: np.ndarray) -> PartitionStats:
    """Compute :class:`PartitionStats` for a labeling."""
    sizes = community_sizes(labels)
    if sizes.size == 0:
        return PartitionStats(0, 0, 0, 0.0, 0.0)
    return PartitionStats(
        num_communities=int(sizes.size),
        largest=int(sizes.max()),
        smallest=int(sizes.min()),
        mean_size=float(sizes.mean()),
        singleton_fraction=float((sizes == 1).sum() / sizes.size),
    )
