"""Tests for the Thrust-analog primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import karate_club
from repro.gpu.thrust import (
    exclusive_scan,
    gather_rows,
    inclusive_scan,
    partition,
    reduce_by_key,
    stable_sort_by_key,
)


def test_exclusive_scan():
    out = exclusive_scan(np.array([3, 1, 4]))
    assert out.tolist() == [0, 3, 4, 8]


def test_exclusive_scan_empty():
    assert exclusive_scan(np.array([])).tolist() == [0]


def test_inclusive_scan():
    assert inclusive_scan(np.array([3, 1, 4])).tolist() == [3, 4, 8]


def test_partition_stable():
    values = np.array([5, 2, 8, 1, 9, 4])
    reordered, count = partition(values, values > 4)
    assert count == 3
    assert reordered.tolist() == [5, 8, 9, 2, 1, 4]  # both halves keep order


def test_partition_all_true():
    values = np.array([1, 2])
    reordered, count = partition(values, np.array([True, True]))
    assert count == 2
    assert reordered.tolist() == [1, 2]


def test_partition_shape_mismatch():
    with pytest.raises(ValueError):
        partition(np.array([1, 2]), np.array([True]))


def test_stable_sort_by_key():
    keys = np.array([2, 1, 2, 0])
    vals = np.array([10, 20, 30, 40])
    k, v = stable_sort_by_key(keys, vals)
    assert k.tolist() == [0, 1, 2, 2]
    assert v.tolist() == [40, 20, 10, 30]  # equal keys keep input order


def test_stable_sort_multiple_values():
    keys = np.array([1, 0])
    a = np.array([5, 6])
    b = np.array([7.0, 8.0])
    k, a2, b2 = stable_sort_by_key(keys, a, b)
    assert a2.tolist() == [6, 5]
    assert b2.tolist() == [8.0, 7.0]


def test_reduce_by_key():
    keys = np.array([0, 0, 1, 3, 3, 3])
    vals = np.array([1.0, 2.0, 5.0, 1.0, 1.0, 1.0])
    uk, sums = reduce_by_key(keys, vals)
    assert uk.tolist() == [0, 1, 3]
    assert sums.tolist() == [3.0, 5.0, 3.0]


def test_reduce_by_key_empty():
    uk, sums = reduce_by_key(np.array([]), np.array([]))
    assert uk.size == 0
    assert sums.size == 0


def test_gather_rows_karate():
    g = karate_club()
    vertices = np.array([0, 33, 5])
    edge_pos, owner = gather_rows(g.indptr, vertices)
    assert edge_pos.size == g.degrees[vertices].sum()
    # edges of vertex 0 come first
    assert np.all(owner[: g.degrees[0]] == 0)
    # gathered positions index the right rows
    expected = np.concatenate(
        [np.arange(g.indptr[v], g.indptr[v + 1]) for v in vertices]
    )
    assert edge_pos.tolist() == expected.tolist()


def test_gather_rows_empty_selection():
    g = karate_club()
    edge_pos, owner = gather_rows(g.indptr, np.array([], dtype=np.int64))
    assert edge_pos.size == 0
    assert owner.size == 0


def test_gather_rows_isolated_vertices():
    indptr = np.array([0, 0, 2, 2])  # vertices 0 and 2 isolated
    edge_pos, owner = gather_rows(indptr, np.array([0, 1, 2]))
    assert edge_pos.tolist() == [0, 1]
    assert owner.tolist() == [1, 1]


@settings(max_examples=60)
@given(st.lists(st.integers(min_value=0, max_value=50), min_size=0, max_size=30))
def test_exclusive_scan_property(values):
    arr = np.asarray(values, dtype=np.int64)
    out = exclusive_scan(arr)
    assert out[-1] == arr.sum()
    assert np.all(np.diff(out) == arr)


@settings(max_examples=60)
@given(
    st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=40),
)
def test_reduce_by_key_property(raw_keys):
    keys = np.sort(np.asarray(raw_keys, dtype=np.int64))
    vals = np.ones(keys.size)
    uk, sums = reduce_by_key(keys, vals)
    assert sums.sum() == keys.size
    assert np.array_equal(uk, np.unique(keys))


@settings(max_examples=60)
@given(st.lists(st.integers(min_value=-20, max_value=20), min_size=0, max_size=40))
def test_partition_preserves_multiset(values):
    arr = np.asarray(values, dtype=np.int64)
    reordered, count = partition(arr, arr >= 0)
    assert sorted(reordered.tolist()) == sorted(values)
    assert np.all(reordered[:count] >= 0)
    assert np.all(reordered[count:] < 0)
