"""Sharded engine: differential gate, config validation, tracing.

The ISSUE's acceptance gate — NMI >= 0.95 and Q within 1e-6 of the
single-process vectorized engine on every suite graph — is pinned here
in its strongest form: sync mode is asserted *bit-identical*
(``array_equal`` membership), which implies both bounds.
"""

import numpy as np
import pytest

from repro.bench.suite import small_suite
from repro.core.gpu_louvain import gpu_louvain
from repro.graph.generators import social_network
from repro.metrics.quality import normalized_mutual_information
from repro.shard import ShardConfig, sharded_louvain
from repro.trace import Tracer, report_from_result, validate_report

SCALE = 0.25


@pytest.fixture(scope="module")
def suite_graphs():
    return {entry.name: entry.load(SCALE) for entry in small_suite()}


@pytest.fixture(scope="module")
def baselines(suite_graphs):
    return {name: gpu_louvain(graph) for name, graph in suite_graphs.items()}


@pytest.mark.parametrize("entry", small_suite(), ids=lambda e: e.name)
def test_sync_differential_gate(entry, suite_graphs, baselines):
    """Sync mode vs vectorized across the whole small suite (satellite 4)."""
    graph = suite_graphs[entry.name]
    base = baselines[entry.name]
    result = sharded_louvain(
        graph,
        shard=ShardConfig(workers=2, pool="inline", shard_min_vertices=8),
    )
    # the ISSUE's gate...
    nmi = normalized_mutual_information(base.membership, result.membership)
    assert nmi >= 0.95, f"{entry.name}: NMI {nmi:.4f}"
    assert abs(result.modularity - base.modularity) <= 1e-6
    # ...and the stronger property that implies it
    assert np.array_equal(base.membership, result.membership)
    assert result.sweeps_per_level == base.sweeps_per_level


@pytest.mark.parametrize("workers", [1, 3, 4])
def test_sync_worker_count_invariant(workers):
    graph = social_network(600, 6, np.random.default_rng(5))
    base = gpu_louvain(graph)
    result = sharded_louvain(
        graph,
        shard=ShardConfig(
            workers=workers, pool="inline", shard_min_vertices=8, partition="hash"
        ),
    )
    assert np.array_equal(base.membership, result.membership)
    assert result.modularity == pytest.approx(base.modularity, abs=1e-12)


def test_sync_fork_real_processes():
    """The shared-memory fan-out with real fork workers stays identical."""
    graph = social_network(800, 6, np.random.default_rng(9))
    base = gpu_louvain(graph)
    result = sharded_louvain(
        graph, shard=ShardConfig(workers=2, pool="fork", shard_min_vertices=8)
    )
    assert np.array_equal(base.membership, result.membership)


def test_warm_start_matches_vectorized():
    graph = social_network(500, 5, np.random.default_rng(2))
    warm = gpu_louvain(graph).membership
    base = gpu_louvain(graph, initial_communities=warm)
    result = sharded_louvain(
        graph,
        shard=ShardConfig(workers=2, pool="inline", shard_min_vertices=8),
        initial_communities=warm,
    )
    assert np.array_equal(base.membership, result.membership)


def test_traced_run_validates_and_carries_shard_spans():
    graph = social_network(600, 6, np.random.default_rng(5))
    tracer = Tracer()
    result = sharded_louvain(
        graph,
        shard=ShardConfig(workers=2, pool="inline", shard_min_vertices=8),
        tracer=tracer,
    )
    report = report_from_result(
        result, tracer=tracer, graph="social", engine="sharded"
    )
    validate_report(report.to_dict())
    run = tracer.roots[0]
    assert run.attributes["engine"] == "sharded"
    opts = [
        child
        for level in run.find("level")
        for child in level.children
        if child.name == "optimization" and child.attributes.get("sharded")
    ]
    assert opts, "no sharded optimization span"
    for opt in opts:
        shards = [c for c in opt.children if c.name == "shard"]
        assert shards, "optimization span carries no per-shard spans"
        for shard_span in shards:
            assert "moves" in shard_span.counters
            assert "frontier" in shard_span.counters
        assert opt.counters["workers_seconds_total"] >= 0.0
        assert (
            opt.counters["workers_seconds_critical"]
            <= opt.counters["workers_seconds_total"] + 1e-12
        )


def test_small_levels_fall_back_to_single_process():
    graph = social_network(400, 5, np.random.default_rng(4))
    tracer = Tracer()
    sharded_louvain(
        graph,
        shard=ShardConfig(workers=2, pool="inline", shard_min_vertices=10_000),
        tracer=tracer,
    )
    run = tracer.roots[0]
    for level in run.find("level"):
        for child in level.children:
            if child.name == "optimization":
                assert not child.attributes.get("sharded")


def test_config_validation():
    with pytest.raises(ValueError):
        ShardConfig(workers=0)
    with pytest.raises(ValueError):
        ShardConfig(pool="threads")
    with pytest.raises(ValueError):
        ShardConfig(mode="chaotic")
    with pytest.raises(ValueError):
        ShardConfig(partition="metis")
    with pytest.raises(ValueError):
        ShardConfig(max_rounds=0)


def test_requires_vectorized_engine():
    graph = social_network(100, 4, np.random.default_rng(1))
    with pytest.raises(ValueError):
        sharded_louvain(graph, engine="simulated")


def test_rejects_bad_initial_communities():
    graph = social_network(100, 4, np.random.default_rng(1))
    with pytest.raises(ValueError):
        sharded_louvain(graph, initial_communities=np.zeros(3, dtype=np.int64))
