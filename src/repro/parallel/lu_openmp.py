"""Comparator: Lu, Halappanavar & Kalyanaraman's parallel heuristics [16].

The algorithm the paper benchmarks against in Figure 7 (their OpenMP code
on 2x Xeon E5-2680, 20 threads).  Distinguishing features, all implemented:

* a **graph coloring** divides vertices into independent sets; one
  modularity-optimization iteration runs over each color class in turn,
  with moves committed before the next class;
* the **singleton minimum-label rule**: a vertex that is a community by
  itself only moves to another singleton with a smaller community id;
* **lowest-id tie-break** among equal-gain targets;
* **adaptive thresholds**: a coarser sweep threshold on early (large)
  levels, the fine threshold below the vertex limit.

Within a color class no two vertices are adjacent, so a serial commit of
the class is exactly equal to the parallel one — this pure-Python
implementation is semantically the 20-thread run.  Wall-clock-wise it
plays the interpreted-CPU role in the reproduction's speedup comparisons
(DESIGN.md §6).
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..metrics.modularity import modularity
from ..metrics.timing import RunTimings, Stopwatch
from ..result import LouvainResult, flatten_levels
from ..seq.aggregation import aggregate
from .coloring import color_classes, greedy_coloring

__all__ = ["lu_louvain", "lu_one_level"]


def lu_one_level(
    graph: CSRGraph,
    threshold: float,
    *,
    max_sweeps: int = 1000,
) -> tuple[np.ndarray, int]:
    """One coloring-driven optimization phase; returns (communities, sweeps)."""
    n = graph.num_vertices
    k = graph.weighted_degrees
    loops = graph.self_loop_weights()
    m = graph.m
    if n == 0 or m == 0.0:
        return np.arange(n, dtype=np.int64), 0
    comm = np.arange(n, dtype=np.int64)
    tot = k.astype(np.float64).copy()
    sizes = np.ones(n, dtype=np.int64)
    classes = color_classes(greedy_coloring(graph))

    indptr = graph.indptr.tolist()
    indices = graph.indices.tolist()
    weights = graph.weights.tolist()
    k_list = k.tolist()
    loops_list = loops.tolist()
    two_m = 2.0 * m

    src = graph.vertex_of_edge
    dst = graph.indices

    def current_modularity() -> float:
        internal = float(graph.weights[comm[src] == comm[dst]].sum())
        return internal / two_m - float(np.square(tot).sum()) / (two_m * two_m)

    q = current_modularity()
    sweeps = 0
    while sweeps < max_sweeps:
        sweeps += 1
        moved = 0
        for cls in classes:
            # One parallel iteration over the class: every vertex decides
            # from the state committed by earlier classes (vertices in the
            # same class are never adjacent, so their decisions cannot see
            # each other's moves anyway); commits happen at class end.
            decisions: list[tuple[int, int]] = []
            for v in cls.tolist():
                own = int(comm[v])
                kv = k_list[v]
                neigh: dict[int, float] = {own: 0.0}
                for e in range(indptr[v], indptr[v + 1]):
                    nb = indices[e]
                    if nb == v:
                        continue
                    c = int(comm[nb])
                    neigh[c] = neigh.get(c, 0.0) + weights[e]
                e_own = neigh[own]
                a_own_excl = float(tot[own]) - kv
                best_c = own
                best_gain = 0.0
                v_singleton = sizes[own] == 1
                for c in sorted(neigh):
                    if c == own:
                        continue
                    if v_singleton and sizes[c] == 1 and c > own:
                        continue
                    gain = (neigh[c] - e_own) / m + kv * (
                        a_own_excl - float(tot[c])
                    ) / (2.0 * m * m)
                    if gain > best_gain:
                        best_gain = gain
                        best_c = c
                if best_c != own:
                    decisions.append((v, best_c))
            for v, best_c in decisions:
                own = int(comm[v])
                kv = k_list[v]
                comm[v] = best_c
                tot[own] -= kv
                tot[best_c] += kv
                sizes[own] -= 1
                sizes[best_c] += 1
                moved += 1
        new_q = current_modularity()
        gain = new_q - q
        q = new_q
        if moved == 0 or gain < threshold:
            break
    return comm, sweeps


def lu_louvain(
    graph: CSRGraph,
    *,
    threshold_bin: float = 1e-2,
    threshold_final: float = 1e-6,
    bin_vertex_limit: int = 100_000,
    max_levels: int = 200,
) -> LouvainResult:
    """Full Lu-et-al. Louvain with adaptive thresholds."""
    timings = RunTimings()
    levels: list[np.ndarray] = []
    level_sizes: list[tuple[int, int]] = []
    sweeps_per_level: list[int] = []
    modularity_per_level: list[float] = []
    current = graph
    prev_q = -1.0

    for _ in range(max_levels):
        threshold = (
            threshold_bin
            if current.num_vertices > bin_vertex_limit
            else threshold_final
        )
        stage = timings.new_stage(current.num_vertices, current.num_edges)
        with Stopwatch(stage, "optimization_seconds"):
            comm, sweeps = lu_one_level(current, threshold)
        with Stopwatch(stage, "aggregation_seconds"):
            contracted, dense = aggregate(current, comm)
        levels.append(dense)
        level_sizes.append((current.num_vertices, current.num_edges))
        sweeps_per_level.append(sweeps)
        stage.sweeps = sweeps
        membership = flatten_levels(levels)
        q = modularity(graph, membership)
        modularity_per_level.append(q)
        stage.modularity = q
        no_contraction = contracted.num_vertices == current.num_vertices
        current = contracted
        if q - prev_q < threshold_final or no_contraction:
            break
        prev_q = q

    membership = flatten_levels(levels)
    return LouvainResult(
        levels=levels,
        level_sizes=level_sizes,
        membership=membership,
        modularity=modularity(graph, membership),
        modularity_per_level=modularity_per_level,
        sweeps_per_level=sweeps_per_level,
        timings=timings,
    )
