"""The Engine protocol (repro.core.engine): registry, dispatch, leiden."""

import numpy as np
import pytest

from repro.core import GPULouvainConfig
from repro.core.engine import (
    ALGO_NAMES,
    Engine,
    LabelPropagationEngine,
    LeidenEngine,
    LouvainEngine,
    ShardedEngine,
    SolverEngine,
    get_engine,
)
from repro.core.gpu_louvain import gpu_louvain
from repro.core.refine import count_disconnected
from repro.graph.build import from_edges
from repro.graph.generators import caveman, karate_club, social_network
from repro.metrics.modularity import modularity


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
def test_registry_resolves_every_algo():
    assert ALGO_NAMES == ("louvain", "leiden", "lpa", "sharded")
    assert isinstance(get_engine("louvain"), LouvainEngine)
    assert isinstance(get_engine("leiden"), LeidenEngine)
    assert isinstance(get_engine("lpa"), LabelPropagationEngine)
    sharded = get_engine("sharded", workers=3, pool="inline")
    assert isinstance(sharded, ShardedEngine)
    assert (sharded.workers, sharded.pool) == (3, "inline")
    for name in ("seq", "plm", "lu", "coarse", "sort", "multigpu"):
        engine = get_engine(name)
        assert isinstance(engine, SolverEngine)
        assert engine.name == name
        assert not engine.supports_warm_start
        assert not engine.supports_stream


def test_registry_rejects_unknown_names_and_bad_options():
    with pytest.raises(ValueError, match="unknown engine: 'walktrap'"):
        get_engine("walktrap")
    with pytest.raises(TypeError):
        get_engine("louvain", devices=2)


def test_algo_engines_advertise_streaming():
    for name in ALGO_NAMES:
        engine = get_engine(name)
        assert isinstance(engine, Engine)
        assert engine.supports_stream
        assert engine.supports_warm_start


# --------------------------------------------------------------------- #
# detect() dispatch
# --------------------------------------------------------------------- #
def test_louvain_engine_is_bit_identical_to_gpu_louvain(karate):
    direct = gpu_louvain(karate)
    via_engine = get_engine("louvain").detect(karate)
    np.testing.assert_array_equal(via_engine.membership, direct.membership)
    assert via_engine.modularity == direct.modularity
    assert via_engine.num_levels == direct.num_levels


@pytest.mark.parametrize("algo", list(ALGO_NAMES))
def test_algo_detect_deterministic(algo):
    graph = social_network(300, 6, rng=2)
    engine = get_engine(algo)
    first = engine.detect(graph)
    second = engine.detect(graph)
    np.testing.assert_array_equal(first.membership, second.membership)
    assert first.modularity == second.modularity


@pytest.mark.parametrize("solver", ["seq", "plm", "lu", "coarse", "sort"])
def test_solver_engines_detect(karate, solver):
    result = get_engine(solver).detect(karate, GPULouvainConfig())
    assert 0.3 < result.modularity < 0.45
    assert result.membership.shape == (34,)


def test_multigpu_engine_takes_devices(karate):
    result = get_engine("multigpu", devices=2).detect(karate)
    assert result.membership.shape == (34,)
    assert result.modularity > 0.0


def test_solver_engine_rejects_warm_start(karate):
    with pytest.raises(ValueError, match="does not support warm starts"):
        get_engine("seq").detect(
            karate, initial_communities=np.zeros(34, dtype=np.int64)
        )


# --------------------------------------------------------------------- #
# Leiden: the well-connectedness guarantee
# --------------------------------------------------------------------- #
def test_leiden_matches_louvain_when_already_well_connected():
    graph, _ = caveman(6, 8)
    lou = get_engine("louvain").detect(graph)
    lei = get_engine("leiden").detect(graph)
    assert count_disconnected(graph, lou.membership) == 0
    np.testing.assert_array_equal(lei.membership, lou.membership)
    assert lei.modularity == lou.modularity


def _barbell_with_cut_bridge():
    """Two K5 cliques whose 3-edge bridge path is all one community.

    A warm start glues both cliques plus the path into one label; after
    the bridge's middle vertex is its own community the remaining label
    would be disconnected — the shape the streaming drift bug produces.
    """
    us, vs = [], []
    for base in (0, 7):
        for i in range(5):
            for j in range(i + 1, 5):
                us.append(base + i)
                vs.append(base + j)
    us.extend([4, 5, 6])
    vs.extend([5, 6, 7])
    return from_edges(us, vs, num_vertices=12)


def test_leiden_repairs_disconnected_warm_start():
    graph = _barbell_with_cut_bridge()
    # one community holding both cliques, the bridge vertices split off:
    # {cliques + path ends} is internally disconnected
    warm = np.zeros(12, dtype=np.int64)
    warm[5] = 5
    warm[6] = 5
    assert count_disconnected(graph, warm) == 1

    lou = get_engine("louvain").detect(graph, initial_communities=warm)
    lei = get_engine("leiden").detect(graph, initial_communities=warm)
    assert count_disconnected(graph, lei.membership) == 0
    assert lei.modularity >= lou.modularity - 1e-12
    assert lei.modularity == pytest.approx(
        modularity(graph, lei.membership)
    )


@pytest.mark.parametrize("algo", ["louvain", "leiden"])
def test_warm_start_round_trip(algo):
    graph = social_network(200, 5, rng=4)
    engine = get_engine(algo)
    base = engine.detect(graph)
    warm = engine.detect(graph, initial_communities=base.membership)
    assert warm.modularity >= base.modularity - 1e-12


def test_leiden_never_worse_on_suite_graphs():
    for graph in (
        karate_club(),
        social_network(400, 6, rng=3),
        caveman(5, 7)[0],
    ):
        lou = get_engine("louvain").detect(graph)
        lei = get_engine("leiden").detect(graph)
        assert lei.modularity >= lou.modularity - 1e-12
        assert count_disconnected(graph, lei.membership) == 0
