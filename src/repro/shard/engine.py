"""Sharded multi-process Louvain coordinator.

The driver mirrors :func:`~repro.core.gpu_louvain.gpu_louvain`'s level
loop (optimize → aggregate → recurse), but the optimization phase of a
large level is executed by **per-shard worker processes** over a
shared-memory CSR (:mod:`repro.shard.shm`).  Two protocols are
available (``ShardConfig.mode``):

``"sync"`` (default) — synchronized rounds.  The coordinator drives the
stock sweep/bucket schedule; each bucket's scoring fans out to the
workers (one disjoint vertex slice per shard, scored with the stock
``computeMove`` kernel against the live shared state) and commits stay
central and per-bucket.  Scoring is per-vertex pure, so the trajectory
— and the final membership — is bit-identical to the single-process
vectorized engine.  This is the mode the differential gate runs.

``"color"`` — asynchronous rounds over the interior/boundary split:

1. the level's vertices are partitioned into shards
   (:class:`~repro.shard.partition.ShardPlan`) and split into interior
   and boundary sets;
2. each worker runs restricted bucketed sweeps over its shard's
   *interior* vertices (:func:`~repro.shard.worker.optimize_interior`)
   and proposes label changes;
3. the coordinator applies every proposal batch under **exact-ΔQ
   validation**: the batch's true modularity delta is computed against
   the authoritative partition (internal-weight delta over the movers'
   CSR rows plus the volume-square delta); a batch that would lower Q is
   split recursively and individually-bad moves are dropped.  This is
   what makes stale worker scoring (two shards updating a spanning
   community's volume concurrently) safe: workers propose, the
   coordinator never commits a Q-decreasing step;
4. boundary vertices are reconciled on the coordinator: the
   boundary-induced subgraph is colored once per level
   (:func:`~repro.parallel.coloring.greedy_coloring`) and each color
   class — an independent set, so no two adjacent boundary vertices move
   in the same step — is scored with the stock ``computeMove`` kernel
   and committed under the same validation;
5. after each round the exact Q is recomputed; a round that *decreased*
   Q by more than ``Q_GUARD_EPS`` raises :class:`ReconciliationError`
   (with validation on this cannot happen — the guard exists to catch
   bookkeeping regressions, and is pinned by a validation-off test);
6. rounds repeat until the gain falls below the level threshold, then an
   optional single-process *polish* phase (a full warm-started
   :func:`~repro.core.mod_opt.modularity_optimization`) tightens the
   partition before aggregation.  Coarser levels (below
   ``shard_min_vertices``) fall back to the single-process engine.

Tracing: each level records an ``optimization`` span carrying per-shard
child spans (moves / sweeps / scored counters and worker seconds) plus
``workers_seconds_total`` / ``workers_seconds_critical`` counters — the
serial sum and the per-round max of worker time.  On a single-core host
the measured wall-clock is serial; ``critical`` is what a truly
concurrent run would pay for the worker phase (the same emulation
convention as :mod:`repro.parallel.multigpu`).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from time import perf_counter, process_time

import numpy as np

from ..core.aggregate import aggregate_gpu
from ..core.buckets import bucket_index, degree_buckets
from ..core.config import GPULouvainConfig
from ..core.gpu_louvain import GPULouvainResult
from ..core.mod_opt import (
    _DELTA_EDGE_FACTOR,
    OptimizationOutcome,
    _sweep_internal_delta,
    modularity_optimization,
)
from ..core.compute_move import compute_moves_vectorized
from ..gpu.profiler import PhaseProfile
from ..graph.build import induced_subgraph
from ..graph.csr import CSRGraph
from ..metrics.modularity import modularity
from ..metrics.timing import RunTimings, Stopwatch, SweepStats
from ..parallel.coloring import color_classes, greedy_coloring
from ..result import flatten_levels
from ..trace import (
    NullTracer,
    Span,
    Tracer,
    as_tracer,
    current_trace_context,
    sweep_span,
)
from .partition import ShardPlan
from .shm import SharedArrays
from .worker import (
    ShardProposal,
    ShardTask,
    SliceScorer,
    SyncShardTask,
    optimize_shard,
    run_sync_worker,
    run_worker,
)

__all__ = ["ShardConfig", "ReconciliationError", "sharded_louvain", "Q_GUARD_EPS"]

#: A reconciliation round may never lower the exact modularity by more
#: than this; beyond it the coordinator's bookkeeping is broken.
Q_GUARD_EPS = 1e-9

#: How long the coordinator waits on one worker result before declaring
#: the round lost (generous: suite levels take well under a second).
_WORKER_TIMEOUT_SECONDS = 600.0


class ReconciliationError(RuntimeError):
    """A reconciliation round decreased the exact modularity."""


@dataclass(frozen=True)
class ShardConfig:
    """Knobs of the sharded driver (solver knobs live in GPULouvainConfig).

    ``mode`` picks the concurrency protocol (both from the correctness
    playbook of the parallel-Louvain literature):

    ``"sync"`` (default)
        Synchronized rounds: the coordinator drives the stock
        sweep/bucket schedule and fans each bucket's *scoring* out to
        the per-shard workers (each scores its shard's slice of the
        bucket); commits are central and per-bucket, so no concurrent
        moves exist to race.  Scoring is per-vertex pure, so the result
        is **bit-identical** to the single-process vectorized engine —
        this is the mode the NMI/Q differential gate runs against.
    ``"color"``
        Asynchronous rounds: workers run restricted multi-sweep
        optimization over their interiors, the coordinator applies
        proposals under exact-ΔQ validation and reconciles boundary
        vertices one color class at a time.  Converges to a *different*
        (still validated-monotone) optimum; the exact-Q round guard and
        the heavy-cut-edge test pin its safety properties.

    ``pool`` selects how workers run: ``"fork"`` / ``"spawn"`` real
    processes over shared memory, or ``"inline"`` — same code path,
    executed serially in-process (deterministic tests, platforms without
    ``fork``).  ``polish`` (color mode only — sync mode must stay
    bit-identical) runs a full warm-started single-process phase after
    the rounds.  ``validate_commits`` exists for the guard regression
    test; production code must leave it on.
    """

    workers: int = 2
    partition: str = "bfs"
    pool: str = "fork"
    mode: str = "sync"
    shard_min_vertices: int = 192
    max_rounds: int = 16
    polish: bool = True
    validate_commits: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.pool not in ("fork", "spawn", "inline"):
            raise ValueError(f"unknown pool mode: {self.pool!r}")
        if self.mode not in ("sync", "color"):
            raise ValueError(f"unknown shard mode: {self.mode!r}")
        if self.partition not in ("bfs", "hash"):
            raise ValueError(f"unknown partition method: {self.partition!r}")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be at least 1")


class _Committer:
    """Validated monotone commits against the authoritative partition.

    Owns the level's ``comm`` / ``volumes`` / ``sizes`` / tracked
    internal weight.  :meth:`commit` applies a batch of ``(vertex,
    label)`` moves only if its *exact* modularity delta is non-negative;
    a failing batch is split recursively and individually-bad moves are
    dropped (a worker scored them against stale volumes).
    """

    def __init__(
        self,
        graph: CSRGraph,
        k: np.ndarray,
        resolution: float,
        comm: np.ndarray,
        *,
        validate: bool = True,
    ) -> None:
        self.graph = graph
        self.k = k
        self.two_m = graph.total_weight
        self.resolution = resolution
        self.comm = comm
        n = graph.num_vertices
        self.volumes = np.bincount(comm, weights=k, minlength=n)
        self.sizes = np.bincount(comm, minlength=n)
        self.validate = validate
        self._scratch = np.zeros(n, dtype=bool)
        src = graph.vertex_of_edge
        self.internal = float(graph.weights[comm[src] == comm[graph.indices]].sum())
        self.applied = 0
        self.dropped = 0

    @property
    def q(self) -> float:
        """Exact-by-construction Q of the tracked partition."""
        return self.internal / self.two_m - self.resolution * float(
            np.square(self.volumes).sum()
        ) / (self.two_m * self.two_m)

    def exact_q(self) -> float:
        """Q from a fresh edge scan; snaps the internal tracker."""
        graph = self.graph
        src = graph.vertex_of_edge
        self.internal = float(
            graph.weights[self.comm[src] == self.comm[graph.indices]].sum()
        )
        return self.q

    def _apply(self, movers: np.ndarray, labels: np.ndarray):
        """Tentatively apply a batch; returns ``(delta_q, delta_internal, undo)``."""
        comm = self.comm
        old = comm[movers].copy()
        comm_before = comm.copy()
        comm[movers] = labels
        delta_internal = _sweep_internal_delta(
            self.graph, comm_before, comm, movers, self._scratch
        )
        km = self.k[movers]
        affected = np.unique(np.concatenate([old, labels]))
        vol_before = self.volumes[affected].copy()
        size_before = self.sizes[affected].copy()
        np.add.at(self.volumes, old, -km)
        np.add.at(self.volumes, labels, km)
        np.add.at(self.sizes, old, -1)
        np.add.at(self.sizes, labels, 1)
        delta_volsq = float(np.square(self.volumes[affected]).sum()) - float(
            np.square(vol_before).sum()
        )
        delta_q = (
            delta_internal / self.two_m
            - self.resolution * delta_volsq / (self.two_m * self.two_m)
        )

        def undo() -> None:
            comm[movers] = old
            self.volumes[affected] = vol_before
            self.sizes[affected] = size_before

        return delta_q, delta_internal, undo

    def commit(self, movers: np.ndarray, labels: np.ndarray) -> int:
        """Apply as much of the batch as survives validation; count applied."""
        movers = np.asarray(movers, dtype=np.int64)
        labels = np.asarray(labels, dtype=np.int64)
        keep = self.comm[movers] != labels
        movers, labels = movers[keep], labels[keep]
        applied_before = self.applied
        stack = [(movers, labels)]
        while stack:
            mv, lb = stack.pop()
            if mv.size == 0:
                continue
            delta_q, delta_internal, undo = self._apply(mv, lb)
            if delta_q >= 0.0 or not self.validate:
                self.internal += delta_internal
                self.applied += int(mv.size)
                continue
            undo()
            if mv.size == 1:
                self.dropped += 1
                continue
            half = mv.size // 2
            stack.append((mv[half:], lb[half:]))
            stack.append((mv[:half], lb[:half]))
        return self.applied - applied_before


def _run_workers(
    tasks: list[ShardTask], pool: str
) -> list[ShardProposal]:
    """Run one round's worker set; returns proposals ordered by shard."""
    if pool == "inline":
        return [optimize_shard(task) for task in tasks]
    ctx = multiprocessing.get_context(pool)
    queue = ctx.Queue()
    procs = [ctx.Process(target=run_worker, args=(task, queue)) for task in tasks]
    for proc in procs:
        proc.start()
    proposals: list[ShardProposal] = []
    errors: list[tuple[int, str]] = []
    try:
        for _ in tasks:
            status, payload = queue.get(timeout=_WORKER_TIMEOUT_SECONDS)
            if status == "ok":
                proposals.append(payload)
            else:
                errors.append(payload)
    finally:
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
    if errors:
        detail = "; ".join(f"shard {s}: {msg}" for s, msg in errors)
        raise RuntimeError(f"shard workers failed: {detail}")
    proposals.sort(key=lambda p: p.shard)
    return proposals


class _SyncPool:
    """Persistent lockstep workers for one level (sync mode).

    Each worker holds zero-copy views of the level's shared arrays and
    scores its shard's slice of whatever bucket the coordinator
    requests; ``step`` fans one bucket out and gathers every reply.  In
    ``"inline"`` mode no processes exist and the slices are scored
    in-process through the identical code path.
    """

    def __init__(
        self,
        graph: CSRGraph,
        k: np.ndarray,
        comm: np.ndarray,
        volumes: np.ndarray,
        sizes: np.ndarray,
        tasks: list[SyncShardTask],
        interiors: dict[int, np.ndarray],
        config: GPULouvainConfig,
        pool: str,
    ) -> None:
        self.pool = pool
        self.tasks = tasks
        self._graph = graph
        self._k = k
        self._comm = comm
        self._volumes = volumes
        self._sizes = sizes
        self._config = config
        self._procs: list = []
        self._task_queues: list = []
        self._result_queue = None
        self._pending: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._startup: dict[int, float] = {}
        if pool == "inline":
            self._scorers: dict[int, SliceScorer] = {}
            for task in tasks:
                self._scorers[task.shard] = SliceScorer(
                    graph,
                    k,
                    comm,
                    volumes,
                    sizes,
                    interiors[task.shard],
                    singleton_constraint=config.singleton_constraint,
                    resolution=config.resolution,
                    degree_bucket_bounds=config.degree_bucket_bounds,
                )
                self._startup[task.shard] = self._scorers[task.shard].build_seconds
        else:
            ctx = multiprocessing.get_context(pool)
            self._result_queue = ctx.Queue()
            for task in tasks:
                task_queue = ctx.Queue()
                proc = ctx.Process(
                    target=run_sync_worker,
                    args=(task, task_queue, self._result_queue),
                )
                proc.start()
                self._task_queues.append(task_queue)
                self._procs.append(proc)

    def mark_moved(
        self, movers: np.ndarray, old: np.ndarray, new: np.ndarray
    ) -> None:
        """Queue a committed batch for every scorer's sweep plan.

        Workers are quiescent between steps, so the batch is stamped at
        the start of their next ``step`` — inline scorers follow the
        identical deferred protocol (inside the per-shard timed region,
        since on a parallel host each worker stamps concurrently).
        """
        self._pending.append((movers, old, new))

    def step(self, bucket: int) -> list[tuple[int, np.ndarray, np.ndarray, float, int]]:
        """Score one bucket across every shard; one reply per shard."""
        commits = self._pending
        self._pending = []
        if self.pool == "inline":
            replies = []
            for task in self.tasks:
                scorer = self._scorers[task.shard]
                t0 = process_time()  # match the worker-side CPU-time spans
                for movers, old, new in commits:
                    scorer.mark_moved(movers, old, new)
                movers, labels, scored = scorer.score(bucket)
                seconds = process_time() - t0 + self._startup.pop(task.shard, 0.0)
                replies.append((task.shard, movers, labels, seconds, scored))
            return replies
        for task_queue in self._task_queues:
            task_queue.put((bucket, commits))
        replies = []
        errors = []
        for _ in self.tasks:
            status, payload = self._result_queue.get(
                timeout=_WORKER_TIMEOUT_SECONDS
            )
            if status == "ok":
                replies.append(payload)
            else:
                errors.append(payload)
        if errors:
            detail = "; ".join(f"shard {s}: {msg}" for s, msg in errors)
            raise RuntimeError(f"sync shard workers failed: {detail}")
        return replies

    def close(self) -> None:
        """Shut workers down (idempotent)."""
        for task_queue in self._task_queues:
            try:
                task_queue.put(None)
            except Exception:  # pragma: no cover - queue already broken
                pass
        for proc in self._procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
        self._procs = []
        self._task_queues = []


def _record_shard_metrics(
    shard_seconds: dict[int, float], *, rounds: int = 0
) -> None:
    """Record per-worker CPU seconds (and reconciliation rounds) into the
    process-wide metrics registry.

    Imported lazily: ``repro.obs`` pulls the bench/analyze stack, which
    imports the core solvers — a module-level import here would cycle.
    """
    from ..obs.metrics import get_registry

    registry = get_registry()
    if not registry.enabled:
        return
    cpu = registry.counter(
        "repro_shard_worker_cpu_seconds_total",
        "CPU seconds spent in shard workers, by shard.",
        labels=("shard",),
    )
    for shard, seconds in sorted(shard_seconds.items()):
        cpu.labels(shard=str(shard)).inc(seconds)
    if rounds:
        registry.counter(
            "repro_shard_reconciliation_rounds_total",
            "Boundary reconciliation rounds executed (color mode).",
        ).inc(rounds)


def _sync_phase(
    graph: CSRGraph,
    config: GPULouvainConfig,
    shard_config: ShardConfig,
    threshold: float,
    initial_communities: np.ndarray | None,
    tracer: Tracer | NullTracer,
) -> OptimizationOutcome:
    """Synchronized-rounds optimization phase: lockstep bucket fan-out.

    Replays the stock engine's sweep/bucket schedule with the *scoring*
    of each bucket split across shard workers (each worker owns its
    shard's slice) and a single central commit per bucket.  Scoring is a
    per-vertex pure function of ``(comm, volumes, sizes)``, and with
    integral edge weights every tracked quantity is exact, so the phase
    is bit-identical to
    :func:`~repro.core.mod_opt.modularity_optimization` on the suite
    graphs (non-integral weights may flip a stop decision within float
    drift of the threshold).
    """
    n = graph.num_vertices
    k = graph.weighted_degrees
    two_m = graph.total_weight
    if initial_communities is None:
        init = np.arange(n, dtype=np.int64)
    else:
        init = np.asarray(initial_communities, dtype=np.int64).copy()

    plan = ShardPlan.build(graph, shard_config.workers, method=shard_config.partition)
    buckets = degree_buckets(
        graph.degrees, config.degree_bucket_bounds, config.group_sizes
    )
    src = graph.vertex_of_edge
    dst = graph.indices
    w = graph.weights
    profile = PhaseProfile()
    scratch = np.zeros(n, dtype=bool)
    empty = np.empty(0, dtype=np.int64)

    with tracer.span(
        "optimization",
        sharded=True,
        mode="sync",
        workers=shard_config.workers,
        partition=shard_config.partition,
        pool=shard_config.pool,
    ) as span:
        span.set(
            interior_fraction=round(plan.interior_fraction, 4),
            boundary_vertices=int(plan.boundary_vertices.size),
        )
        workers_total = 0.0
        workers_critical = 0.0
        shard_stats: dict[int, dict[str, float]] = {}
        sweep_seconds: list[float] = []
        trace_on = tracer.enabled
        trace_ctx = current_trace_context()

        with SharedArrays() as shared:
            shared.share("indptr", graph.indptr)
            shared.share("indices", graph.indices)
            shared.share("weights", graph.weights)
            shared.share("k", k)
            comm = shared.share("comm", init)
            volumes = shared.share(
                "volumes", np.bincount(init, weights=k, minlength=n)
            )
            sizes = shared.share("sizes", np.bincount(init, minlength=n))
            specs = shared.specs()
            tasks = []
            slices: dict[int, np.ndarray] = {}
            for shard in range(plan.num_shards):
                movable = plan.shard_members(shard)
                if movable.size == 0 or not (graph.degrees[movable] > 0).any():
                    continue
                shared.share(f"movable-{shard}", movable)
                slices[shard] = movable
                tasks.append(
                    SyncShardTask(
                        shard=shard,
                        specs=specs,
                        movable=shared.spec(f"movable-{shard}"),
                        resolution=config.resolution,
                        singleton_constraint=config.singleton_constraint,
                        degree_bucket_bounds=config.degree_bucket_bounds,
                        trace=trace_ctx,
                    )
                )
                shard_stats[shard] = {"seconds": 0.0, "moves": 0.0, "scored": 0.0}

            pool = _SyncPool(
                graph, k, comm, volumes, sizes, tasks, slices,
                config, shard_config.pool,
            )
            try:
                internal = float(w[comm[src] == comm[dst]].sum())
                q = internal / two_m - config.resolution * float(
                    np.square(volumes).sum()
                ) / (two_m * two_m)
                sweeps = 0
                while sweeps < config.max_sweeps_per_level:
                    sweep_t0 = perf_counter()
                    sweeps += 1
                    moved = 0
                    comm_before = comm.copy()
                    moves_per_bucket = [0] * len(buckets)
                    for index, bucket in enumerate(buckets):
                        if bucket.size == 0:
                            continue
                        replies = pool.step(index) if tasks else []
                        mover_parts = []
                        label_parts = []
                        step_seconds = []
                        for shard, movers, labels, seconds, scored in replies:
                            mover_parts.append(movers)
                            label_parts.append(labels)
                            step_seconds.append(seconds)
                            stats = shard_stats[shard]
                            stats["seconds"] += seconds
                            stats["moves"] += int(movers.size)
                            stats["scored"] += scored
                        if step_seconds:
                            workers_total += sum(step_seconds)
                            workers_critical += max(step_seconds)
                        movers = (
                            np.concatenate(mover_parts) if mover_parts else empty
                        )
                        if movers.size == 0:
                            continue
                        labels = np.concatenate(label_parts)
                        old = comm[movers].copy()
                        comm[movers] = labels
                        km = k[movers]
                        np.add.at(volumes, old, -km)
                        np.add.at(volumes, labels, km)
                        np.add.at(sizes, old, -1)
                        np.add.at(sizes, labels, 1)
                        if tasks:
                            pool.mark_moved(movers, old, labels)
                        moved += int(movers.size)
                        moves_per_bucket[index] = int(movers.size)

                    movers_sweep = np.flatnonzero(comm != comm_before)
                    if movers_sweep.size:
                        mover_edges = int(graph.degrees[movers_sweep].sum())
                        if _DELTA_EDGE_FACTOR * mover_edges >= dst.size:
                            internal = float(w[comm[src] == comm[dst]].sum())
                        else:
                            internal += _sweep_internal_delta(
                                graph, comm_before, comm, movers_sweep, scratch
                            )
                    new_q = internal / two_m - config.resolution * float(
                        np.square(volumes).sum()
                    ) / (two_m * two_m)
                    stats = SweepStats(
                        sweep=sweeps, moves_per_bucket=moves_per_bucket
                    )
                    stats.q_incremental = new_q
                    profile.add_sweep(stats)
                    sweep_seconds.append(perf_counter() - sweep_t0)
                    gain = new_q - q
                    q = new_q
                    if moved == 0 or gain < threshold:
                        break

                comm_out = comm.copy()
            finally:
                pool.close()

        # Final Q from a fresh exact scan, like the stock engine.
        internal = float(w[comm_out[src] == comm_out[dst]].sum())
        volumes_out = np.bincount(comm_out, weights=k, minlength=n)
        q = internal / two_m - config.resolution * float(
            np.square(volumes_out).sum()
        ) / (two_m * two_m)
        if profile.sweeps:
            profile.sweeps[-1].q_exact = q

        if trace_on:
            for stats, elapsed in zip(profile.sweeps, sweep_seconds):
                sspan = sweep_span(stats)
                sspan.seconds = elapsed
                tracer.attach(sspan)
            for shard, stats in sorted(shard_stats.items()):
                attributes: dict = {"shard": shard}
                if trace_ctx is not None:
                    # Sync-mode workers are pure slice scorers (one step
                    # per bucket, no spans of their own), so the
                    # coordinator stamps the request's trace id here.
                    attributes["trace_id"] = trace_ctx.trace_id
                tracer.attach(
                    Span(
                        name="shard",
                        attributes=attributes,
                        counters={
                            "moves": stats["moves"],
                            "frontier": stats["scored"],
                        },
                        seconds=stats["seconds"],
                    )
                )
        span.count(
            sweeps=sweeps,
            moved=profile.total_moves,
            modularity=q,
            workers_seconds_total=workers_total,
            workers_seconds_critical=workers_critical,
        )
    _record_shard_metrics(
        {shard: stats["seconds"] for shard, stats in shard_stats.items()}
    )
    return OptimizationOutcome(comm_out, sweeps, q, profile)


def _color_phase(
    graph: CSRGraph,
    config: GPULouvainConfig,
    shard_config: ShardConfig,
    threshold: float,
    initial_communities: np.ndarray | None,
    tracer: Tracer | NullTracer,
) -> OptimizationOutcome:
    """One level's optimization phase through the async coloring protocol."""
    n = graph.num_vertices
    k = graph.weighted_degrees
    if initial_communities is None:
        comm = np.arange(n, dtype=np.int64)
    else:
        comm = np.asarray(initial_communities, dtype=np.int64).copy()

    plan = ShardPlan.build(graph, shard_config.workers, method=shard_config.partition)
    committer = _Committer(
        graph, k, config.resolution, comm, validate=shard_config.validate_commits
    )

    # Boundary reconciliation schedule: color the boundary-induced
    # subgraph once (the level's structure is static) so that each color
    # class is an independent set — no two adjacent boundary vertices
    # ever move in the same reconciliation step.
    boundary = plan.boundary_vertices
    boundary = boundary[graph.degrees[boundary] > 0]
    if boundary.size:
        sub = induced_subgraph(graph, boundary)
        classes = [boundary[cls] for cls in color_classes(greedy_coloring(sub))]
    else:
        classes = []

    with tracer.span(
        "optimization",
        sharded=True,
        mode="color",
        workers=shard_config.workers,
        partition=shard_config.partition,
        pool=shard_config.pool,
    ) as span:
        span.set(
            interior_fraction=round(plan.interior_fraction, 4),
            boundary_vertices=int(boundary.size),
            color_classes=len(classes),
        )
        sweeps = 0
        rounds = 0
        interior_moves = 0
        boundary_moves = 0
        workers_total = 0.0
        workers_critical = 0.0
        shard_seconds: dict[int, float] = {}
        q = committer.q

        with SharedArrays() as shared:
            shared.share("indptr", graph.indptr)
            shared.share("indices", graph.indices)
            shared.share("weights", graph.weights)
            shared.share("k", k)
            comm_view = shared.share("comm", comm)
            specs = shared.specs()
            tasks = []
            trace_ctx = current_trace_context()
            for shard in range(plan.num_shards):
                movable = plan.interior_members(shard)
                if movable.size == 0:
                    continue
                shared.share(f"movable-{shard}", movable)
                tasks.append(
                    ShardTask(
                        shard=shard,
                        specs=specs,
                        movable=shared.spec(f"movable-{shard}"),
                        threshold=threshold,
                        max_sweeps=config.max_sweeps_per_level,
                        resolution=config.resolution,
                        singleton_constraint=config.singleton_constraint,
                        degree_bucket_bounds=config.degree_bucket_bounds,
                        group_sizes=config.group_sizes,
                        trace=trace_ctx,
                    )
                )

            while rounds < shard_config.max_rounds:
                rounds += 1
                round_t0 = perf_counter()
                round_moved = 0

                # --- parallel phase: per-shard interior proposals -----
                if tasks:
                    comm_view[...] = comm
                    proposals = _run_workers(tasks, shard_config.pool)
                    round_total = sum(p.seconds for p in proposals)
                    round_critical = max(p.seconds for p in proposals)
                    workers_total += round_total
                    workers_critical += round_critical
                    sweeps += max(p.sweeps for p in proposals)
                    for proposal in proposals:
                        applied = committer.commit(proposal.movers, proposal.labels)
                        interior_moves += applied
                        round_moved += applied
                        shard_seconds[proposal.shard] = (
                            shard_seconds.get(proposal.shard, 0.0)
                            + proposal.seconds
                        )
                        if tracer.enabled:
                            if proposal.span is not None:
                                # Worker-built span (carries trace_id and
                                # worker_pid): re-parent it under this
                                # coordinator's phase span.
                                shard_span = proposal.span
                                shard_span.set(round=rounds)
                                shard_span.count(applied=applied)
                            else:
                                shard_span = Span(
                                    name="shard",
                                    attributes={
                                        "shard": proposal.shard,
                                        "round": rounds,
                                    },
                                    counters={
                                        "moves": proposal.moved,
                                        "applied": applied,
                                        "sweeps": proposal.sweeps,
                                        "frontier": proposal.scored,
                                    },
                                    seconds=proposal.seconds,
                                )
                            tracer.attach(shard_span)

                # --- boundary reconciliation, one color class at a time
                reconciled = 0
                for members in classes:
                    new_comm = compute_moves_vectorized(
                        graph,
                        committer.comm,
                        committer.volumes,
                        committer.sizes,
                        members,
                        k=k,
                        singleton_constraint=config.singleton_constraint,
                        resolution=config.resolution,
                    )
                    changed = new_comm != committer.comm[members]
                    if changed.any():
                        reconciled += committer.commit(
                            members[changed], new_comm[changed]
                        )
                boundary_moves += reconciled
                round_moved += reconciled
                if reconciled:
                    sweeps += 1

                # --- round guard: exact Q must not move backwards -----
                new_q = committer.exact_q()
                if new_q < q - Q_GUARD_EPS:
                    raise ReconciliationError(
                        f"reconciliation round {rounds} decreased modularity "
                        f"from {q:.12f} to {new_q:.12f} "
                        f"(delta {new_q - q:.3e} < -{Q_GUARD_EPS:.0e})"
                    )
                gain = new_q - q
                q = new_q
                if tracer.enabled:
                    tracer.attach(
                        Span(
                            name="reconciliation",
                            attributes={"round": rounds},
                            counters={
                                "moved": round_moved,
                                "boundary_moved": reconciled,
                                "modularity": q,
                            },
                            seconds=perf_counter() - round_t0,
                        )
                    )
                if round_moved == 0 or gain < threshold:
                    break

        profile = PhaseProfile()
        outcome = OptimizationOutcome(comm, max(sweeps, 1), q, profile)

        # --- polish: full warm-started single-process phase -----------
        if shard_config.polish:
            polished = modularity_optimization(
                graph,
                config,
                threshold,
                initial_communities=comm,
                tracer=None,
            )
            if polished.modularity >= q - Q_GUARD_EPS:
                outcome = OptimizationOutcome(
                    polished.communities,
                    outcome.sweeps + polished.sweeps,
                    polished.modularity,
                    polished.profile,
                )

        span.count(
            sweeps=outcome.sweeps,
            rounds=rounds,
            moved=interior_moves + boundary_moves,
            interior_moves=interior_moves,
            boundary_moves=boundary_moves,
            dropped_moves=committer.dropped,
            workers_seconds_total=workers_total,
            workers_seconds_critical=workers_critical,
            modularity=outcome.modularity,
        )
    _record_shard_metrics(shard_seconds, rounds=rounds)
    return outcome


def sharded_louvain(
    graph: CSRGraph,
    config: GPULouvainConfig | None = None,
    *,
    shard: ShardConfig | None = None,
    initial_communities: np.ndarray | None = None,
    tracer: Tracer | NullTracer | None = None,
    **overrides,
) -> GPULouvainResult:
    """Multi-process Louvain over shared-memory CSR shards.

    Mirrors :func:`~repro.core.gpu_louvain.gpu_louvain` (same result
    type, same level/threshold/stopping rules); levels with at least
    ``shard.shard_min_vertices`` vertices run the sharded protocol,
    coarser levels fall back to the single-process vectorized engine.
    Keyword overrides build the solver config, e.g.
    ``sharded_louvain(g, shard=ShardConfig(workers=4))``.
    """
    if config is None:
        config = GPULouvainConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a config object or keyword overrides, not both")
    if config.engine != "vectorized":
        raise ValueError("the sharded driver requires the vectorized engine")
    if shard is None:
        shard = ShardConfig()
    if initial_communities is not None:
        initial_communities = np.asarray(initial_communities, dtype=np.int64)
        if initial_communities.shape != (graph.num_vertices,):
            raise ValueError("initial_communities must assign one label per vertex")

    tracer = as_tracer(tracer)
    if not tracer.enabled:
        return _run_sharded(graph, config, shard, initial_communities, tracer)
    with tracer.span(
        "run",
        engine="sharded",
        workers=shard.workers,
        partition=shard.partition,
        pool=shard.pool,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        warm_start=initial_communities is not None,
    ) as span:
        result = _run_sharded(graph, config, shard, initial_communities, tracer)
        span.count(
            modularity=result.modularity,
            num_levels=result.num_levels,
            num_communities=result.num_communities,
            sweeps=sum(result.sweeps_per_level),
        )
    return result


def _run_sharded(
    graph: CSRGraph,
    config: GPULouvainConfig,
    shard: ShardConfig,
    initial_communities: np.ndarray | None,
    tracer: Tracer | NullTracer,
) -> GPULouvainResult:
    """:func:`sharded_louvain` body (config validated, tracer normalised)."""
    timings = RunTimings()
    levels: list[np.ndarray] = []
    level_sizes: list[tuple[int, int]] = []
    sweeps_per_level: list[int] = []
    modularity_per_level: list[float] = []
    current = graph
    prev_q = -1.0
    first_phase_sweeps = 0
    first_phase_seconds = 0.0

    for level in range(config.max_levels):
        threshold = config.threshold_for(current.num_vertices)
        use_shards = (
            shard.workers > 1
            and current.num_vertices >= shard.shard_min_vertices
            and current.total_weight > 0.0
        )
        stage = timings.new_stage(current.num_vertices, current.num_edges)
        with tracer.span(
            "level",
            level=level,
            num_vertices=current.num_vertices,
            num_edges=current.num_edges,
            threshold=threshold,
            sharded=use_shards,
        ) as level_span:
            with Stopwatch(stage, "optimization_seconds"):
                if use_shards:
                    phase = _sync_phase if shard.mode == "sync" else _color_phase
                    outcome = phase(
                        current,
                        config,
                        shard,
                        threshold,
                        initial_communities if level == 0 else None,
                        tracer,
                    )
                else:
                    outcome = modularity_optimization(
                        current,
                        config,
                        threshold,
                        initial_communities=(
                            initial_communities if level == 0 else None
                        ),
                        tracer=tracer,
                    )
            if level == 0:
                first_phase_sweeps = outcome.sweeps
                first_phase_seconds = stage.optimization_seconds
            with Stopwatch(stage, "aggregation_seconds"):
                agg = aggregate_gpu(current, outcome.communities, config, tracer=tracer)

            no_contraction = agg.graph.num_vertices == current.num_vertices
            degenerate = (
                no_contraction
                and levels
                and np.array_equal(
                    agg.dense_map, np.arange(current.num_vertices, dtype=np.int64)
                )
            )
            if degenerate:
                timings.stages.pop()
                level_span.set(degenerate=True)
                break

            levels.append(agg.dense_map)
            level_sizes.append((current.num_vertices, current.num_edges))
            sweeps_per_level.append(outcome.sweeps)
            stage.sweeps = outcome.sweeps
            stage.sweep_stats = outcome.profile.sweeps
            membership = flatten_levels(levels)
            q = modularity(graph, membership, resolution=config.resolution)
            modularity_per_level.append(q)
            stage.modularity = q
            level_span.count(sweeps=outcome.sweeps, modularity=q)

            current = agg.graph
            if q - prev_q < config.threshold_final or no_contraction:
                break
            prev_q = q

    membership = flatten_levels(levels)
    return GPULouvainResult(
        levels=levels,
        level_sizes=level_sizes,
        membership=membership,
        modularity=modularity(graph, membership, resolution=config.resolution),
        modularity_per_level=modularity_per_level,
        sweeps_per_level=sweeps_per_level,
        timings=timings,
        first_phase_sweeps=first_phase_sweeps,
        first_phase_seconds=first_phase_seconds,
    )
