"""Shared helpers for the benchmark harness.

Every experiment writes its formatted output (the reproduction of the
paper's table or figure) to ``benchmarks/results/<name>.txt`` *and* prints
it, so both ``pytest benchmarks/ --benchmark-only -s`` and the results
directory carry the numbers that EXPERIMENTS.md records.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

__all__ = ["emit", "RESULTS_DIR"]


def emit(name: str, text: str) -> Path:
    """Print ``text`` and persist it under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
    return path
