"""The Table-1 analog suite.

Every one of the paper's 55 benchmark graphs has an entry here carrying
(a) the paper's reference numbers (vertices, edges, sequential seconds,
GPU seconds) and (b) a scaled-down synthetic analog from the generator
family that matches its class (DESIGN.md §2 documents the mapping).

Sizes: each analog targets ``paper_edges / 1000`` undirected edges,
clamped to ``[1e4, 1e5]``, so the full suite solves in minutes on a
laptop; pass ``scale != 1`` to :meth:`SuiteEntry.load` to grow or shrink
everything proportionally.  Seeds derive deterministically from the graph
name, so the suite is fully reproducible.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..graph import generators as gen
from ..graph.csr import CSRGraph

__all__ = [
    "SuiteEntry",
    "SUITE",
    "suite_names",
    "suite_entry",
    "load_suite_graph",
    "small_suite",
]


def _seed(name: str) -> int:
    return int.from_bytes(hashlib.sha256(name.encode()).digest()[:4], "little")


def _edges_target(paper_edges: int, scale: float) -> int:
    return int(np.clip(paper_edges / 1000, 10_000, 100_000) * scale)


@dataclass(frozen=True)
class SuiteEntry:
    """One Table-1 row and its synthetic analog."""

    name: str
    family: str
    paper_vertices: int
    paper_edges: int
    paper_seq_seconds: float
    paper_gpu_seconds: float

    @property
    def paper_avg_degree(self) -> float:
        """2E/V of the paper's graph."""
        return 2.0 * self.paper_edges / self.paper_vertices

    def load(self, scale: float = 1.0) -> CSRGraph:
        """Build the analog graph at the given size multiplier."""
        return _build(self, scale)

    @property
    def paper_speedup(self) -> float:
        """The paper's sequential/GPU runtime ratio for this graph."""
        return self.paper_seq_seconds / self.paper_gpu_seconds


def _build(entry: SuiteEntry, scale: float) -> CSRGraph:
    rng = np.random.default_rng(_seed(entry.name))
    target = _edges_target(entry.paper_edges, scale)
    avg = entry.paper_avg_degree
    family = entry.family

    if family == "collaboration":
        group_size = int(np.clip(2.0 * np.sqrt(avg), 6, 26))
        edges_per_group = group_size * (group_size - 1) / 2
        groups = max(64, int(target / edges_per_group * 2))  # ~50% overlap
        return gen.clique_overlap(groups, rng, mean_group_size=group_size)
    if family == "social":
        m = int(np.clip(round(avg / 2), 2, 24))
        n = max(m + 2, target // m)
        return gen.social_network(n, m, rng)
    if family == "web":
        # Web graphs pair extreme degree skew with very strong host-level
        # clustering (Louvain finds Q ~ 0.9+ on uk-2002/cnr-2000), so the
        # analog is preferential attachment inside power-law host
        # communities with low mixing.  (Plain R-MAT matches the skew but
        # has essentially no community structure, Q ~ 0.1.)
        m = int(np.clip(round(avg / 2), 4, 16))
        n = max(m + 2, target // m)
        return gen.social_network(
            n, m, rng, mixing=0.08, community_exponent=1.3, min_community=32
        )
    if family == "fem":
        # radius-2 stencils (interior degree 124) match the densest FEM
        # rows, but only when the cube is big enough that the interior
        # dominates; small targets fall back to the 27-point stencil.
        radius = 2 if avg >= 50 and target >= 45_000 else 1
        per_vertex = 62 if radius == 2 else 13
        n = max(64, target // per_vertex)
        side = max(5, round(n ** (1 / 3)))
        return gen.stencil3d_radius(side, side, side, radius=radius)
    if family == "kkt":
        n_block = max(64, target // 30)
        side = max(4, round(n_block ** (1 / 3)))
        return gen.kkt_like(side, side, side, rng)
    if family == "lattice":
        n = max(64, target // 3)
        side = max(4, round(n ** (1 / 3)))
        return gen.lattice3d(side, side, side)
    if family == "rgg":
        n = max(256, int(target / (avg / 2)))
        radius = float(np.sqrt(avg / (np.pi * n)))
        return gen.random_geometric(n, radius, rng)
    if family == "delaunay":
        n = max(256, target // 3)
        return gen.delaunay_graph(n, rng)
    if family == "mesh2d":
        n = max(256, target // 3)
        return gen.delaunay_graph(n, rng)
    if family == "road":
        n = max(256, int(target / 1.6))
        side = max(8, int(np.sqrt(n)))
        return gen.road_grid(side, side, rng, drop_fraction=0.12)
    if family == "osm":
        n = max(256, int(target / 1.05))
        side = max(8, int(np.sqrt(n)))
        return gen.road_grid(
            side, side, rng, drop_fraction=0.42, diagonal_fraction=0.0
        )
    raise ValueError(f"unknown family {family!r}")


def _entry(
    name: str, family: str, v: int, e: int, seq: float, gpu: float
) -> SuiteEntry:
    return SuiteEntry(
        name=name,
        family=family,
        paper_vertices=v,
        paper_edges=e,
        paper_seq_seconds=seq,
        paper_gpu_seconds=gpu,
    )


#: All 55 graphs of Table 1, in the paper's order (decreasing avg degree).
SUITE: tuple[SuiteEntry, ...] = (
    _entry("out.actor-collaboration", "collaboration", 382_220, 33_115_812, 6.81, 2.53),
    _entry("hollywood-2009", "collaboration", 1_139_905, 56_375_711, 17.49, 4.69),
    _entry("audikw_1", "fem", 943_695, 38_354_076, 42.42, 1.90),
    _entry("dielFilterV3real", "fem", 1_102_824, 44_101_598, 21.99, 1.54),
    _entry("F1", "fem", 343_791, 13_246_661, 9.81, 0.75),
    _entry("com-orkut", "social", 3_072_627, 117_185_083, 197.98, 16.83),
    _entry("Flan_1565", "fem", 1_564_794, 57_920_625, 115.55, 3.39),
    _entry("inline_1", "fem", 503_712, 18_156_315, 9.07, 1.29),
    _entry("bone010", "fem", 986_703, 35_339_811, 58.14, 0.94),
    _entry("boneS10", "fem", 914_898, 27_276_762, 24.48, 0.97),
    _entry("Long_Coup_dt6", "fem", 1_470_152, 42_809_420, 41.51, 1.40),
    _entry("Cube_Coup_dt0", "fem", 2_164_760, 62_520_692, 68.84, 2.70),
    _entry("Cube_Coup_dt6", "fem", 2_164_760, 62_520_692, 67.35, 2.69),
    _entry("coPapersDBLP", "collaboration", 540_486, 15_245_729, 3.33, 0.73),
    _entry("Serena", "fem", 1_391_349, 31_570_176, 38.15, 0.76),
    _entry("Emilia_923", "fem", 923_136, 20_041_035, 22.39, 0.57),
    _entry("Si87H76", "fem", 240_369, 5_210_631, 2.60, 0.77),
    _entry("Geo_1438", "fem", 1_437_960, 30_859_365, 40.94, 1.09),
    _entry("dielFilterV2real", "fem", 1_157_456, 23_690_748, 39.60, 0.62),
    _entry("Hook_1498", "fem", 1_498_023, 29_709_711, 36.49, 0.71),
    _entry("soc-pokec-relationships", "social", 1_632_803, 30_622_562, 36.61, 4.52),
    _entry("gsm_106857", "fem", 589_446, 10_584_739, 8.48, 0.34),
    _entry("uk-2002", "web", 18_520_486, 292_243_663, 385.34, 8.21),
    _entry("soc-LiveJournal1", "social", 4_847_571, 68_475_391, 117.61, 8.15),
    _entry("nlpkkt200", "kkt", 16_240_000, 215_992_816, 327.42, 26.11),
    _entry("nlpkkt160", "kkt", 8_345_600, 110_586_256, 168.56, 11.54),
    _entry("nlpkkt120", "kkt", 3_542_400, 46_651_696, 78.08, 3.97),
    _entry("bone010_M", "fem", 986_703, 11_451_036, 63.50, 0.52),
    _entry("cnr-2000", "web", 325_557, 3_128_710, 2.27, 0.26),
    _entry("boneS10_M", "fem", 914_898, 8_787_288, 27.42, 0.52),
    _entry("out.flickr-links", "social", 1_715_256, 15_551_249, 9.25, 2.64),
    _entry("channel-500x100x100-b050", "lattice", 4_802_000, 42_681_372, 934.17, 6.67),
    _entry("com-lj", "social", 4_036_538, 34_681_189, 78.09, 5.25),
    _entry("packing-500x100x100-b050", "lattice", 2_145_852, 17_488_243, 360.42, 1.19),
    _entry("rgg_n_2_24_s0", "rgg", 16_777_216, 132_557_200, 132.87, 4.95),
    _entry("offshore", "fem", 259_789, 1_991_442, 13.14, 0.15),
    _entry("rgg_n_2_23_s0", "rgg", 8_388_608, 63_501_393, 60.44, 2.42),
    _entry("rgg_n_2_22_s0", "rgg", 4_194_304, 30_359_198, 30.48, 1.20),
    _entry("StocF-1465", "fem", 1_465_137, 9_770_126, 177.86, 0.57),
    _entry("out.flixster", "social", 2_523_387, 7_918_801, 16.90, 2.11),
    _entry("delaunay_n24", "delaunay", 16_777_216, 50_331_601, 95.60, 1.60),
    _entry("out.youtube-u-growth", "social", 3_223_585, 9_375_369, 18.46, 2.62),
    _entry("com-youtube", "social", 1_157_828, 2_987_624, 4.58, 1.00),
    _entry("com-dblp", "collaboration", 425_957, 1_049_866, 2.40, 0.22),
    _entry("com-amazon", "social", 548_552, 925_872, 2.53, 0.26),
    _entry("hugetrace-00020", "mesh2d", 16_002_413, 23_998_813, 101.84, 1.43),
    _entry("hugebubbles-00020", "mesh2d", 21_198_119, 31_790_179, 126.79, 2.01),
    _entry("hugebubbles-00010", "mesh2d", 19_458_087, 29_179_764, 116.90, 1.87),
    _entry("hugebubbles-00000", "mesh2d", 18_318_143, 27_470_081, 115.88, 1.60),
    _entry("road_usa", "road", 23_947_347, 28_854_312, 132.38, 1.93),
    _entry("germany_osm", "osm", 11_548_845, 12_369_181, 42.48, 1.64),
    _entry("asia_osm", "osm", 11_950_757, 12_711_603, 42.86, 7.22),
    _entry("europe_osm", "osm", 50_912_018, 54_054_660, 197.07, 22.21),
    _entry("italy_osm", "osm", 6_686_493, 7_013_978, 24.33, 4.82),
    _entry("out.livejournal-links", "social", 5_204_175, 2_516_088, 25.33, 1.39),
)

_BY_NAME = {entry.name: entry for entry in SUITE}


def suite_names() -> list[str]:
    """Names of all suite graphs, Table-1 order."""
    return [entry.name for entry in SUITE]


def suite_entry(name: str) -> SuiteEntry:
    """The Table-1 entry for a graph name (:class:`KeyError` if unknown)."""
    if name not in _BY_NAME:
        raise KeyError(f"unknown suite graph {name!r}; see suite_names()")
    return _BY_NAME[name]


@lru_cache(maxsize=128)
def load_suite_graph(name: str, scale: float = 1.0) -> CSRGraph:
    """Build (and cache) the analog graph for a Table-1 name."""
    return suite_entry(name).load(scale)


def small_suite() -> list[SuiteEntry]:
    """A 10-entry cross-section (one per family) for quicker experiments."""
    picked: dict[str, SuiteEntry] = {}
    for entry in SUITE:
        picked.setdefault(entry.family, entry)
    return list(picked.values())
