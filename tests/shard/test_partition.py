"""Partition invariants for the sharded engine (ISSUE satellite 4).

The whole correctness argument of the color protocol hangs on three
structural facts pinned here: every vertex lives in exactly one shard,
the boundary classification is symmetric, and interior vertices of
different shards are never adjacent.
"""

import numpy as np
import pytest

from repro.graph.build import from_edges
from repro.graph.generators import caveman, karate_club, road_grid, social_network
from repro.shard import ShardPlan, bfs_partition, boundary_mask, hash_partition


def graphs():
    rng = np.random.default_rng(7)
    caves, _ = caveman(6, 8)
    return {
        "karate": karate_club(),
        "caveman": caves,
        "road": road_grid(9, 9, rng=rng),
        "social": social_network(300, 5, rng),
        "two_edges": from_edges([0, 2], [1, 3]),
    }


@pytest.fixture(params=list(graphs()))
def graph(request):
    return graphs()[request.param]


@pytest.mark.parametrize("method", ["bfs", "hash"])
@pytest.mark.parametrize("num_shards", [1, 2, 3, 5])
def test_every_vertex_in_exactly_one_shard(graph, method, num_shards):
    plan = ShardPlan.build(graph, num_shards, method=method)
    assert plan.parts.shape == (graph.num_vertices,)
    assert plan.parts.min() >= 0
    assert plan.parts.max() < num_shards
    counted = sum(plan.shard_members(s).size for s in range(num_shards))
    assert counted == graph.num_vertices
    # shard_members sets are disjoint by construction of flatnonzero on
    # an equality mask, but check the union anyway.
    union = np.concatenate([plan.shard_members(s) for s in range(num_shards)])
    assert np.array_equal(np.sort(union), np.arange(graph.num_vertices))


@pytest.mark.parametrize("method", ["bfs", "hash"])
def test_boundary_is_symmetric(graph, method):
    plan = ShardPlan.build(graph, 3, method=method)
    src = graph.vertex_of_edge
    dst = graph.indices
    cross = plan.parts[src] != plan.parts[dst]
    # every endpoint of a cross edge is boundary, in both directions
    assert plan.boundary[src[cross]].all()
    assert plan.boundary[dst[cross]].all()
    # and nothing else is: a boundary vertex must own a cross edge
    touched = np.zeros(graph.num_vertices, dtype=bool)
    touched[src[cross]] = True
    touched[dst[cross]] = True
    assert np.array_equal(plan.boundary, touched)


@pytest.mark.parametrize("method", ["bfs", "hash"])
def test_interiors_of_distinct_shards_never_adjacent(graph, method):
    plan = ShardPlan.build(graph, 4, method=method)
    src = graph.vertex_of_edge
    dst = graph.indices
    both_interior = plan.interior[src] & plan.interior[dst]
    assert (plan.parts[src][both_interior] == plan.parts[dst][both_interior]).all()


def test_more_shards_than_vertices():
    graph = from_edges([0, 1], [1, 2])
    for method in ("bfs", "hash"):
        plan = ShardPlan.build(graph, 10, method=method)
        assert plan.parts.shape == (3,)
        assert plan.parts.min() >= 0 and plan.parts.max() < 10


def test_disconnected_components_all_assigned():
    # three disjoint edges, bfs must reseed across components
    graph = from_edges([0, 2, 4], [1, 3, 5])
    parts = bfs_partition(graph, 2)
    assert (parts >= 0).all()
    counts = np.bincount(parts, minlength=2)
    assert counts.sum() == 6
    assert counts.max() <= 3  # ceil(6/2) balance


def test_bfs_blocks_are_balanced(graph):
    parts = bfs_partition(graph, 3)
    counts = np.bincount(parts, minlength=3)
    target = -(-graph.num_vertices // 3)
    # each closed block stops within one frontier of the target; the
    # last shard absorbs the remainder
    assert counts[:-1].max() <= target
    assert counts.sum() == graph.num_vertices


def test_hash_partition_deterministic_and_spread():
    a = hash_partition(1000, 4)
    b = hash_partition(1000, 4)
    assert np.array_equal(a, b)
    counts = np.bincount(a, minlength=4)
    assert counts.min() > 150  # splitmix64 spreads ~uniformly


def test_hash_partition_rejects_zero_shards():
    with pytest.raises(ValueError):
        hash_partition(10, 0)
    graph = from_edges([0], [1])
    with pytest.raises(ValueError):
        bfs_partition(graph, 0)


def test_boundary_mask_single_shard_is_empty(graph):
    parts = np.zeros(graph.num_vertices, dtype=np.int64)
    assert not boundary_mask(graph, parts).any()


def test_interior_fraction(graph):
    plan = ShardPlan.build(graph, 2, method="bfs")
    expected = 1.0 - plan.boundary.mean()
    assert plan.interior_fraction == pytest.approx(expected)
