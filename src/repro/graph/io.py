"""Graph file input/output.

Three formats cover what the paper's tool-chain consumed:

* **edge list** — whitespace-separated ``u v [w]`` lines (SNAP / Koblenz
  distribution format);
* **METIS** — the format of the graph-partitioning archive graphs
  (channel-500..., packing-500...);
* **Matrix Market** — the Florida sparse matrix collection format
  (audikw_1, nlpkkt*, ...), via :mod:`scipy.io`.
"""

from __future__ import annotations

from pathlib import Path


from .build import from_edges, from_scipy
from .csr import CSRGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_metis",
    "write_metis",
    "read_matrix_market",
    "write_matrix_market",
    "load_graph",
]


def read_edge_list(path: str | Path, *, comments: str = "#%") -> CSRGraph:
    """Read a whitespace-separated ``u v [w]`` edge-list file.

    A leading comment of the form ``# vertices N ...`` (as written by
    :func:`write_edge_list`) fixes the vertex count, so isolated trailing
    vertices survive a round trip.
    """
    us: list[int] = []
    vs: list[int] = []
    ws: list[float] = []
    num_vertices: int | None = None
    with open(path) as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line[0] in comments:
                parts = line.split()
                if (
                    num_vertices is None
                    and len(parts) >= 3
                    and parts[1] == "vertices"
                    and parts[2].isdigit()
                ):
                    num_vertices = int(parts[2])
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(
                    f"{path}, line {lineno}: expected 'u v [w]', got {line!r}"
                )
            try:
                u = int(parts[0])
                v = int(parts[1])
                w = float(parts[2]) if len(parts) > 2 else 1.0
            except ValueError:
                raise ValueError(
                    f"{path}, line {lineno}: malformed edge line {line!r}"
                ) from None
            us.append(u)
            vs.append(v)
            ws.append(w)
    return from_edges(us, vs, ws, num_vertices=num_vertices)


def write_edge_list(graph: CSRGraph, path: str | Path) -> None:
    """Write one ``u v w`` line per undirected edge (u <= v)."""
    u, v, w = graph.edge_list(unique=True)
    with open(path, "w") as handle:
        handle.write(f"# vertices {graph.num_vertices} edges {u.size}\n")
        for a, b, c in zip(u, v, w):
            handle.write(f"{a} {b} {c:g}\n")


def read_metis(path: str | Path) -> CSRGraph:
    """Read a METIS ``.graph`` file (1-based adjacency lists).

    The full three-digit ``fmt`` header code is honoured: ``fmt=ijk``
    where ``i`` marks vertex sizes, ``j`` vertex weights (``ncon`` of
    them per vertex, fourth header field) and ``k`` edge weights.  Codes
    are left-padded, so ``1`` means edge weights while ``10``/``11``
    mean vertex weights without/with edge weights.  Vertex sizes and
    weights are parsed past (the CSR graph keeps edge weights only) —
    the point is that they are no longer misread as neighbor ids.
    """
    with open(path) as handle:
        # Comments ('%') are skipped; blank lines are NOT — an empty row
        # is a legitimate isolated vertex.
        lines = [
            line for line in (raw.rstrip("\n") for raw in handle)
            if not line.lstrip().startswith("%")
        ]
    while lines and not lines[0].strip():
        lines.pop(0)
    header = lines[0].split()
    n = int(header[0])
    fmt = header[2] if len(header) > 2 else "0"
    if len(fmt) > 3 or set(fmt) - {"0", "1"}:
        raise ValueError(f"{path}: unsupported METIS fmt code {fmt!r}")
    fmt = fmt.zfill(3)
    has_sizes = fmt[0] == "1"
    has_vertex_weights = fmt[1] == "1"
    has_edge_weights = fmt[2] == "1"
    ncon = int(header[3]) if len(header) > 3 else (1 if has_vertex_weights else 0)
    skip = int(has_sizes) + (ncon if has_vertex_weights else 0)
    us: list[int] = []
    vs: list[int] = []
    ws: list[float] = []
    for i, line in enumerate(lines[1 : n + 1]):
        fields = line.split()[skip:]
        step = 2 if has_edge_weights else 1
        if len(fields) % step:
            raise ValueError(
                f"{path}: vertex {i + 1} has a dangling neighbor/weight "
                f"field (fmt={fmt})"
            )
        for j in range(0, len(fields), step):
            nb = int(fields[j]) - 1
            w = float(fields[j + 1]) if has_edge_weights else 1.0
            if nb >= i:  # each undirected edge listed from both sides
                us.append(i)
                vs.append(nb)
                ws.append(w)
    return from_edges(us, vs, ws, num_vertices=n)


def write_metis(graph: CSRGraph, path: str | Path) -> None:
    """Write METIS format with edge weights (fmt=001)."""
    with open(path, "w") as handle:
        handle.write(f"{graph.num_vertices} {graph.num_edges} 001\n")
        for v in range(graph.num_vertices):
            row = graph.neighbors(v)
            wts = graph.neighbor_weights(v)
            parts = [f"{nb + 1} {w:g}" for nb, w in zip(row, wts)]
            handle.write(" ".join(parts) + "\n")


def read_matrix_market(path: str | Path) -> CSRGraph:
    """Read a Matrix Market file as an undirected graph."""
    from scipy.io import mmread

    return from_scipy(mmread(str(path)))


def write_matrix_market(graph: CSRGraph, path: str | Path) -> None:
    """Write the adjacency matrix in Matrix Market coordinate format."""
    from scipy.io import mmwrite

    mmwrite(str(path), graph.to_scipy())


def load_graph(path: str | Path) -> CSRGraph:
    """Dispatch on file extension: ``.mtx``, ``.graph``/``.metis``, else edge list."""
    suffix = Path(path).suffix.lower()
    if suffix == ".mtx":
        return read_matrix_market(path)
    if suffix in (".graph", ".metis"):
        return read_metis(path)
    return read_edge_list(path)
