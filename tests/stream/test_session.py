"""Tests for :class:`repro.stream.StreamSession` and the frontier optimizer.

The load-bearing properties (ISSUE satellite: hypothesis equivalence):

* ``screening="exact"`` is *bit-identical* to a full warm-started run —
  both at the single-level optimizer granularity and end-to-end through
  :meth:`StreamSession.apply`;
* the reported modularity of every batch matches an exact recompute on
  the updated graph to within 1e-9 (no silent drift);
* the guard rails (frontier-width fallback, periodic full re-runs,
  strict deletion semantics) engage as documented.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.config import GPULouvainConfig
from repro.core.gpu_louvain import gpu_louvain
from repro.core.mod_opt import (
    frontier_modularity_optimization,
    modularity_optimization,
)
from repro.graph.build import apply_edge_batch, from_edges
from repro.graph.generators import caveman
from repro.metrics.modularity import modularity
from repro.metrics.quality import normalized_mutual_information
from repro.stream import StreamConfig, StreamSession, delta_frontier

from ..conftest import csr_graphs

CFG = GPULouvainConfig()


@st.composite
def graphs_with_batches(draw, max_vertices: int = 16, max_edges: int = 40):
    """(graph, add, remove): a small graph plus a random edge batch.

    Additions are arbitrary unit-weight pairs (duplicates and existing
    edges allowed — they merge); removals pick existing non-loop edges,
    the only pairs that can legally be deleted.
    """
    graph = draw(csr_graphs(max_vertices=max_vertices, max_edges=max_edges))
    n = graph.num_vertices
    vertex = st.integers(min_value=0, max_value=n - 1)
    adds = draw(st.lists(st.tuples(vertex, vertex), min_size=0, max_size=8))
    pu, pv, _ = graph.edge_list()
    upper = (pu < pv) & (pu != pv)
    pu, pv = pu[upper], pv[upper]
    if pu.size:
        picks = draw(
            st.lists(
                st.integers(min_value=0, max_value=pu.size - 1),
                min_size=0,
                max_size=min(4, pu.size),
                unique=True,
            )
        )
    else:
        picks = []
    add = (
        (np.array([a for a, _ in adds]), np.array([b for _, b in adds]), None)
        if adds
        else None
    )
    remove = (pu[np.array(picks)], pv[np.array(picks)]) if picks else None
    return graph, add, remove


@settings(max_examples=60, deadline=None)
@given(graphs_with_batches())
def test_exact_screening_matches_full_warm_optimizer(case):
    """frontier_modularity_optimization(exact) ≡ modularity_optimization."""
    graph, add, remove = case
    m0 = gpu_louvain(graph, CFG).membership
    new_graph, du, dv, _ = apply_edge_batch(graph, add=add, remove=remove)
    frontier = delta_frontier(new_graph, m0, du, dv)
    threshold = CFG.threshold_for(new_graph.num_vertices)

    warm = modularity_optimization(
        new_graph, CFG, threshold, initial_communities=m0
    )
    fast = frontier_modularity_optimization(
        new_graph,
        CFG,
        threshold,
        initial_communities=m0,
        frontier=frontier,
        screening="exact",
    )
    assert np.array_equal(fast.communities, warm.communities)
    assert fast.sweeps == warm.sweeps
    assert fast.modularity == warm.modularity  # bit-identical float path


@settings(max_examples=40, deadline=None)
@given(graphs_with_batches())
def test_exact_session_matches_full_warm_pipeline(case):
    """StreamSession(screening="exact").apply ≡ warm-started gpu_louvain.

    Holds for non-empty batches only: an empty batch intentionally keeps
    the previous clustering (see test_empty_batch_keeps_clustering),
    whereas a warm *restart* of the full pipeline is not idempotent —
    rebuilding the hierarchy from a converged membership can coarsen
    further.
    """
    graph, add, remove = case
    assume(add is not None or remove is not None)
    session = StreamSession(graph, screening="exact", frontier_fraction_limit=1.0)
    m0 = session.membership.copy()
    result = session.apply(add=add, remove=remove)

    expected_graph, _, _, _ = apply_edge_batch(graph, add=add, remove=remove)
    full = gpu_louvain(expected_graph, CFG, initial_communities=m0)
    assert np.array_equal(result.membership, full.membership)
    assert result.modularity == full.modularity
    assert np.array_equal(session.membership, full.membership)
    # Observability: incremental Q never silently drifts from exact.
    if result.timings is not None:
        assert result.timings.max_q_drift <= 1e-9


@settings(max_examples=40, deadline=None)
@given(graphs_with_batches(), st.sampled_from(["community", "endpoints"]))
def test_local_screening_reports_exact_modularity(case, scope):
    """Local mode may diverge from a full run, but its reported Q is an
    exact recompute of its own membership — drift ≤ 1e-9."""
    graph, add, remove = case
    session = StreamSession(
        graph, screening="local", frontier_scope=scope,
        frontier_fraction_limit=1.0,
    )
    result = session.apply(add=add, remove=remove)
    q_exact = modularity(
        session.graph, result.membership, resolution=CFG.resolution
    )
    assert result.modularity == pytest.approx(q_exact, abs=1e-9)
    assert result.membership.shape == (session.graph.num_vertices,)
    assert result.batch == 1


def test_local_screening_tracks_cold_run_on_caveman():
    graph, _ = caveman(8, 10)
    session = StreamSession(graph, frontier_scope="endpoints")
    rng = np.random.default_rng(3)
    for _ in range(3):
        u = rng.integers(0, graph.num_vertices, 6)
        v = rng.integers(0, graph.num_vertices, 6)
        keep = u != v
        result = session.apply(add=(u[keep], v[keep], None))
    cold = gpu_louvain(session.graph, CFG)
    nmi = normalized_mutual_information(result.membership, cold.membership)
    assert nmi > 0.9
    assert result.mode == "stream"
    assert 0 < result.frontier_size < session.graph.num_vertices
    assert result.frontier_fraction < 1.0


def test_full_rerun_interval_reports_gap_and_resyncs():
    graph, _ = caveman(6, 8)
    session = StreamSession(
        graph,
        screening="exact",
        full_rerun_interval=2,
        frontier_fraction_limit=1.0,
    )
    first = session.apply(add=([0, 8], [9, 17], None))
    assert first.mode == "stream"
    assert first.q_full is None and first.nmi_vs_full is None
    second = session.apply(add=([1, 10], [12, 20], None))
    assert second.mode == "stream+full"
    assert second.full_rerun
    assert second.q_full is not None
    # Exact screening == full pipeline, so the audit shows no gap.
    assert second.nmi_vs_full == pytest.approx(1.0)
    assert second.q_full == second.modularity


def test_wide_frontier_falls_back_to_full_run():
    graph, _ = caveman(4, 6)
    session = StreamSession(graph, frontier_fraction_limit=0.05)
    result = session.apply(add=([0, 6, 12], [7, 13, 19], None))
    assert result.mode == "full"
    assert result.full_rerun
    assert result.frontier_fraction > 0.05
    q_exact = modularity(session.graph, result.membership)
    assert result.modularity == pytest.approx(q_exact, abs=1e-9)


def test_empty_batch_keeps_clustering():
    graph, _ = caveman(4, 5)
    session = StreamSession(graph)
    before = session.membership.copy()
    result = session.apply()
    assert result.batch == 1
    assert result.edges_added == 0 and result.edges_removed == 0
    assert result.pairs_changed == 0
    assert np.array_equal(result.membership, before)
    assert result.modularity == session.modularity


def test_removing_every_edge_yields_zero_modularity():
    # Regression: the local-mode exact-Q recompute divided by 2m == 0.
    graph = from_edges([0, 1], [1, 2])
    session = StreamSession(graph, frontier_fraction_limit=1.0)
    result = session.apply(remove=([0, 1], [1, 2]))
    assert session.graph.num_edges == 0
    assert result.modularity == 0.0


def test_removing_nonexistent_edge_raises_and_preserves_state():
    graph, _ = caveman(4, 5)
    session = StreamSession(graph)
    membership = session.membership.copy()
    with pytest.raises(ValueError, match="non-existent edge"):
        session.apply(remove=([0], [12]))
    assert session.batches == 0
    assert session.graph is graph
    assert np.array_equal(session.membership, membership)


def test_initial_membership_warm_starts_first_clustering():
    graph, truth = caveman(8, 10)
    session = StreamSession(graph, initial_membership=truth)
    cold = gpu_louvain(graph, CFG)
    assert session.modularity == pytest.approx(cold.modularity, abs=1e-6)


def test_batch_accounting_fields():
    graph, _ = caveman(4, 6)
    session = StreamSession(graph, frontier_fraction_limit=1.0)
    result = session.apply(add=([0, 0, 6], [7, 7, 0], None), remove=([1], [2]))
    # (0,7) named twice and (6,0) once -> 2 distinct added pairs.
    assert result.edges_added == 2
    assert result.edges_removed == 1
    assert result.pairs_changed == 3
    assert result.batch == 1
    assert result.seconds > 0.0


def test_stream_config_validation():
    with pytest.raises(ValueError, match="screening"):
        StreamConfig(screening="fuzzy")
    with pytest.raises(ValueError, match="frontier scope"):
        StreamConfig(frontier_scope="galaxy")
    with pytest.raises(ValueError, match="full_rerun_interval"):
        StreamConfig(full_rerun_interval=-1)
    with pytest.raises(ValueError, match="frontier_fraction_limit"):
        StreamConfig(frontier_fraction_limit=0.0)
    with pytest.raises(ValueError, match="vectorized"):
        StreamConfig(louvain=GPULouvainConfig(engine="simulated"))
    with pytest.raises(ValueError, match="relaxed_updates"):
        StreamConfig(louvain=GPULouvainConfig(relaxed_updates=True))


def test_session_rejects_config_plus_overrides():
    graph, _ = caveman(3, 4)
    with pytest.raises(TypeError, match="not both"):
        StreamSession(graph, StreamConfig(), screening="exact")
    with pytest.raises(TypeError, match="not both"):
        StreamSession(graph, louvain=GPULouvainConfig(), resolution=1.5)


def test_frontier_optimizer_validation():
    graph, _ = caveman(3, 4)
    m0 = np.zeros(graph.num_vertices, dtype=np.int64)
    threshold = CFG.threshold_for(graph.num_vertices)
    with pytest.raises(ValueError, match="vectorized"):
        frontier_modularity_optimization(
            graph,
            GPULouvainConfig(engine="simulated"),
            threshold,
            initial_communities=m0,
            frontier=np.array([0]),
        )
    with pytest.raises(ValueError, match="screening"):
        frontier_modularity_optimization(
            graph, CFG, threshold,
            initial_communities=m0, frontier=np.array([0]), screening="fuzzy",
        )
    with pytest.raises(ValueError, match="expansion"):
        frontier_modularity_optimization(
            graph, CFG, threshold,
            initial_communities=m0, frontier=np.array([0]), expansion="cosmic",
        )
    with pytest.raises(ValueError, match="out of range"):
        frontier_modularity_optimization(
            graph, CFG, threshold,
            initial_communities=m0, frontier=np.array([10_000]),
        )


def test_empty_frontier_is_a_noop():
    graph, truth = caveman(4, 5)
    m0 = gpu_louvain(graph, CFG).membership
    out = frontier_modularity_optimization(
        graph,
        CFG,
        CFG.threshold_for(graph.num_vertices),
        initial_communities=m0,
        frontier=np.empty(0, dtype=np.int64),
    )
    assert np.array_equal(out.communities, m0)
    assert out.frontier_initial == 0
    assert out.scored_total == 0


def test_sweep_stats_expose_frontier_size():
    graph, _ = caveman(6, 8)
    session = StreamSession(graph, frontier_fraction_limit=1.0)
    result = session.apply(add=([0, 10], [9, 20], None))
    level0 = result.timings.stages[0]
    assert level0.sweep_stats
    assert all(s.frontier_size >= 0 for s in level0.sweep_stats)
    assert level0.sweep_stats[0].frontier_size > 0
