"""Weighted GPU label propagation (repro.core.label_prop)."""

import numpy as np
import pytest

from repro.core.config import GPULouvainConfig
from repro.core.label_prop import LabelPropagationResult, label_propagation
from repro.graph.build import from_edges
from repro.graph.generators import caveman, karate_club, planted_partition
from repro.metrics.modularity import modularity
from repro.metrics.quality import adjusted_rand_index
from repro.trace import Tracer


def test_caveman_exact_recovery():
    graph, truth = caveman(6, 8)
    result = label_propagation(graph)
    assert isinstance(result, LabelPropagationResult)
    assert result.converged
    assert adjusted_rand_index(result.membership, truth) == pytest.approx(1.0)


def test_planted_partition_recovery():
    graph, truth = planted_partition(4, 25, 0.7, 0.01, rng=0)
    result = label_propagation(graph)
    assert adjusted_rand_index(result.membership, truth) > 0.8


def test_result_structure():
    graph = karate_club()
    result = label_propagation(graph)
    n = graph.num_vertices
    assert result.num_levels == 1
    assert result.level_sizes == [(n, graph.num_edges)]
    np.testing.assert_array_equal(result.levels[0], result.membership)
    # membership is compacted: dense labels 0..k-1
    labels = np.unique(result.membership)
    np.testing.assert_array_equal(labels, np.arange(labels.size))
    assert result.modularity == pytest.approx(
        modularity(graph, result.membership)
    )
    assert result.modularity_per_level == [result.modularity]
    assert len(result.sweeps_per_level) == 1
    assert result.sweeps_per_level[0] >= 1


@pytest.mark.parametrize("mode", ["async", "sync"])
def test_deterministic(mode):
    graph, _ = planted_partition(3, 20, 0.5, 0.05, rng=3)
    first = label_propagation(graph, mode=mode)
    second = label_propagation(graph, mode=mode)
    np.testing.assert_array_equal(first.membership, second.membership)


def test_tie_breaks_toward_smaller_label():
    # Vertex 2 sees one unit edge to each side; both sides tie, and the
    # strict-majority rule keeps it in place from singletons (its own
    # label has weight 0 < 1, so it moves — to the smaller winner).
    graph = from_edges([0, 1, 2, 3], [1, 2, 3, 4], num_vertices=5)
    result = label_propagation(graph)
    # deterministic either way; the partition must be reproducible
    np.testing.assert_array_equal(
        result.membership, label_propagation(graph).membership
    )


def test_warm_start_preserves_converged_partition():
    graph, truth = caveman(5, 6)
    converged = label_propagation(graph).membership
    warm = label_propagation(graph, initial_communities=converged)
    np.testing.assert_array_equal(warm.membership, converged)
    assert warm.sweeps_per_level[0] == 1  # one confirming sweep


def test_warm_start_validation():
    graph, _ = caveman(3, 4)
    with pytest.raises(ValueError):
        label_propagation(graph, initial_communities=np.zeros(3, dtype=np.int64))
    bad = np.full(graph.num_vertices, graph.num_vertices, dtype=np.int64)
    with pytest.raises(ValueError):
        label_propagation(graph, initial_communities=bad)


def test_frontier_restricts_first_sweep():
    graph, _ = caveman(4, 6)
    converged = label_propagation(graph).membership
    # a frontier seed on a converged partition finds nothing to move
    result = label_propagation(
        graph,
        initial_communities=converged,
        frontier=np.array([0, 1], dtype=np.int64),
    )
    np.testing.assert_array_equal(result.membership, converged)
    # an empty frontier does no work at all
    untouched = label_propagation(
        graph,
        initial_communities=converged,
        frontier=np.array([], dtype=np.int64),
    )
    assert untouched.sweeps_per_level == [0]
    np.testing.assert_array_equal(untouched.membership, converged)


def test_sweep_cap_sets_converged_flag():
    graph, _ = caveman(4, 6)
    result = label_propagation(graph, config=GPULouvainConfig(max_sweeps_per_level=1))
    assert result.sweeps_per_level == [1]
    assert not result.converged


def test_mode_validation_and_config_exclusivity():
    graph = karate_club()
    with pytest.raises(ValueError):
        label_propagation(graph, mode="jacobi")
    with pytest.raises(TypeError):
        label_propagation(graph, config=GPULouvainConfig(), resolution=2.0)


def test_self_loops_do_not_vote():
    graph = from_edges([0, 1, 0], [1, 2, 0], [1.0, 1.0, 50.0], num_vertices=3)
    result = label_propagation(
        graph, initial_communities=np.array([0, 1, 1], dtype=np.int64)
    )
    # 0's only real neighbour votes for label 1 with weight 1 > 0; the
    # 50-weight self-loop must not count as a vote for staying put.
    assert result.converged
    assert np.unique(result.membership).size == 1


def test_empty_graph():
    graph = from_edges([], [], num_vertices=0)
    result = label_propagation(graph)
    assert result.membership.size == 0
    assert result.converged


def test_traced_propagation_span():
    graph, _ = caveman(3, 5)
    tracer = Tracer()
    result = label_propagation(graph, tracer=tracer)
    spans = [s for s in tracer.roots if s.name == "propagation"]
    assert len(spans) == 1
    span = spans[0]
    assert span.counters["sweeps"] == sum(result.sweeps_per_level)
    assert span.counters["converged"] == 1
    sweep_children = [c for c in span.children if c.name == "sweep"]
    assert len(sweep_children) == sum(result.sweeps_per_level)
