"""Sharded-engine scaling on the suite's two largest graphs.

Runs ``sharded_louvain`` over a worker sweep on the two largest suite
entries (uk-2002 and nlpkkt200), checks every run against the
single-process vectorized engine (the ISSUE gate: NMI >= 0.95 and |dQ|
<= 1e-6 — sync mode is in fact bit-identical), and reports both the
measured wall-clock and the **emulated-concurrency** wall-clock::

    emulated = wall - workers_seconds_total + workers_seconds_critical

i.e. the serial worker compute is replaced by the per-step critical
path (the same convention :mod:`repro.parallel.multigpu` uses).  On a
single-core container the measured wall cannot speed up — the emulated
column is what an actually-parallel host pays for the worker phase.

Standalone::

    PYTHONPATH=src python benchmarks/bench_shard.py --workers 2,4 --scale 4

exits non-zero if any run misses the NMI gate.  Under pytest
(``pytest benchmarks/bench_shard.py``) a scaled-down sweep runs with the
same gate.  Traced reports go to ``benchmarks/results/shard.trace.json``
and the perf-trajectory store via ``emit_report(trajectory=True)``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

if "repro" not in sys.modules:  # standalone invocation without PYTHONPATH
    try:
        import repro  # noqa: F401
    except ImportError:  # pragma: no cover - depends on caller's env
        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.reporting import banner, format_table
from repro.bench.suite import load_suite_graph
from repro.core.gpu_louvain import gpu_louvain
from repro.metrics.quality import normalized_mutual_information
from repro.shard import ShardConfig, sharded_louvain
from repro.trace import Tracer, report_from_result

from _util import emit, emit_report

#: The two largest Table-1 graphs (by paper edge count) in the suite.
GRAPHS = ("uk-2002", "nlpkkt200")

NMI_GATE = 0.95
Q_GATE = 1e-6


def _worker_seconds(tracer: Tracer) -> tuple[float, float]:
    """(total, critical) worker seconds over every optimization span."""
    total = critical = 0.0
    for root in tracer.roots:
        for level in root.find("level"):
            for child in level.children:
                if child.name == "optimization":
                    total += child.counters.get("workers_seconds_total", 0.0)
                    critical += child.counters.get("workers_seconds_critical", 0.0)
    return total, critical


def run_bench(
    *,
    workers: list[int],
    scale: float,
    partition: str = "hash",
    pool: str = "inline",
    mode: str = "sync",
    repeat: int = 3,
    graphs: tuple[str, ...] = GRAPHS,
    progress=print,
) -> dict:
    """Run the sweep; returns rows, reports, and the gate verdict."""
    sweep = sorted(set(workers) | {1})
    rows = []
    reports = []
    ok = True
    for name in graphs:
        graph = load_suite_graph(name, scale)
        t0 = time.perf_counter()
        base = gpu_louvain(graph)
        vec_wall = time.perf_counter() - t0
        progress(
            f"{name}: n={graph.num_vertices} E={graph.num_edges} "
            f"vectorized {vec_wall * 1e3:.0f} ms"
        )
        baseline_wall = None
        for count in sweep:
            config = ShardConfig(
                workers=count, partition=partition, pool=pool, mode=mode
            )
            # Best-of-``repeat``: wall time on a shared host is noisy and
            # the minimum is the least contaminated observation.
            best = None
            for _ in range(max(1, repeat)):
                attempt_tracer = Tracer()
                t0 = time.perf_counter()
                attempt = sharded_louvain(graph, shard=config, tracer=attempt_tracer)
                attempt_wall = time.perf_counter() - t0
                if best is None or attempt_wall < best[0]:
                    best = (attempt_wall, attempt, attempt_tracer)
            wall, result, tracer = best
            total, critical = _worker_seconds(tracer)
            emulated = wall - total + critical
            nmi = normalized_mutual_information(base.membership, result.membership)
            dq = result.modularity - base.modularity
            if baseline_wall is None:
                baseline_wall = wall
            passed = nmi >= NMI_GATE and abs(dq) <= Q_GATE
            ok = ok and passed
            rows.append(
                {
                    "graph": name,
                    "workers": count,
                    "wall": wall,
                    "emulated": emulated,
                    "workers_total": total,
                    "workers_critical": critical,
                    "speedup": baseline_wall / emulated,
                    "nmi": nmi,
                    "dq": dq,
                    "ok": passed,
                }
            )
            reports.append(
                report_from_result(
                    result,
                    tracer=tracer,
                    graph=name,
                    engine="sharded",
                    workers=count,
                    partition=partition,
                    pool=pool,
                    mode=mode,
                    scale=scale,
                    seconds=round(wall, 6),
                )
            )
            progress(
                f"  workers={count}: wall {wall * 1e3:7.0f} ms  "
                f"emulated {emulated * 1e3:7.0f} ms  "
                f"speedup {baseline_wall / emulated:4.2f}x  NMI {nmi:.4f}"
            )
    return {"rows": rows, "reports": reports, "ok": ok, "scale": scale}


def format_results(outcome: dict) -> str:
    table_rows = [
        [
            row["graph"],
            row["workers"],
            f"{row['wall'] * 1e3:.0f}",
            f"{row['workers_total'] * 1e3:.0f}",
            f"{row['workers_critical'] * 1e3:.0f}",
            f"{row['emulated'] * 1e3:.0f}",
            f"{row['speedup']:.2f}x",
            f"{row['nmi']:.4f}",
            f"{row['dq']:+.1e}",
            "ok" if row["ok"] else "FAIL",
        ]
        for row in outcome["rows"]
    ]
    table = format_table(
        [
            "graph", "workers", "wall ms", "worker ms", "critical ms",
            "emulated ms", "speedup", "NMI", "dQ", "gate",
        ],
        table_rows,
    )
    note = (
        "speedup = wall(workers=1) / emulated(workers=N); emulated replaces\n"
        "the serial worker compute with the per-step critical path (see\n"
        "module docstring) — the measured wall column cannot parallelize on\n"
        f"a single-core host.  gate: NMI >= {NMI_GATE} and |dQ| <= {Q_GATE:g}\n"
        "vs the single-process vectorized engine."
    )
    return (
        banner(f"Sharded engine scaling (scale {outcome['scale']:g})")
        + "\n" + table + "\n\n" + note
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--workers", default="2,4",
                        help="comma-separated worker counts (1 is always "
                             "included as the baseline)")
    parser.add_argument("--scale", type=float, default=4.0,
                        help="suite-analog size multiplier (default 4)")
    parser.add_argument("--partition", choices=["bfs", "hash"], default="hash")
    parser.add_argument("--pool", choices=["fork", "spawn", "inline"],
                        default="inline",
                        help="inline executes the identical worker code "
                             "path serially — the cleanest basis for the "
                             "emulated-concurrency column")
    parser.add_argument("--mode", choices=["sync", "color"], default="sync")
    parser.add_argument("--repeat", type=int, default=3,
                        help="runs per configuration; best (min wall) kept")
    args = parser.parse_args(argv)
    workers = [int(part) for part in args.workers.split(",") if part]
    outcome = run_bench(
        workers=workers,
        scale=args.scale,
        partition=args.partition,
        pool=args.pool,
        mode=args.mode,
        repeat=args.repeat,
    )
    emit("shard", format_results(outcome))
    emit_report("shard", outcome["reports"], trajectory=True,
                meta={"scale": args.scale, "pool": args.pool})
    if not outcome["ok"]:
        print("FAIL: a sharded run missed the NMI/Q differential gate",
              file=sys.stderr)
        return 1
    return 0


def test_shard_scaling(benchmark):
    """Pytest entry: scaled-down sweep, same differential gate."""
    outcome = benchmark.pedantic(
        lambda: run_bench(workers=[2], scale=0.25, progress=lambda *_: None),
        rounds=1,
        iterations=1,
    )
    emit("shard", format_results(outcome))
    emit_report("shard", outcome["reports"], trajectory=True,
                meta={"scale": 0.25, "pool": "inline"})
    assert outcome["ok"], "sharded run missed the NMI/Q differential gate"
    for row in outcome["rows"]:
        assert row["nmi"] >= NMI_GATE
        assert abs(row["dq"]) <= Q_GATE


if __name__ == "__main__":
    sys.exit(main())
