"""Tests for repro.metrics.quality."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.quality import (
    adjusted_rand_index,
    community_sizes,
    normalize_labels,
    normalized_mutual_information,
    num_communities,
    partition_stats,
)


def test_normalize_labels_first_use_order():
    out = normalize_labels(np.array([7, 7, 3, 7, 3, 9]))
    assert out.tolist() == [0, 0, 1, 0, 1, 2]


def test_normalize_labels_already_dense():
    out = normalize_labels(np.array([0, 1, 2]))
    assert out.tolist() == [0, 1, 2]


def test_community_sizes():
    assert community_sizes(np.array([5, 5, 2, 5])).tolist() == [3, 1]


def test_num_communities():
    assert num_communities(np.array([4, 4, 9])) == 2


def test_nmi_identical_is_one():
    labels = np.array([0, 0, 1, 1, 2])
    assert normalized_mutual_information(labels, labels) == pytest.approx(1.0)


def test_nmi_permuted_labels_is_one():
    a = np.array([0, 0, 1, 1])
    b = np.array([5, 5, 2, 2])
    assert normalized_mutual_information(a, b) == pytest.approx(1.0)


def test_nmi_independent_is_low():
    rng = np.random.default_rng(0)
    a = rng.integers(0, 4, 2000)
    b = rng.integers(0, 4, 2000)
    assert normalized_mutual_information(a, b) < 0.05


def test_nmi_single_cluster_degenerate():
    a = np.zeros(5, dtype=int)
    assert normalized_mutual_information(a, a) == 1.0


def test_nmi_shape_mismatch():
    with pytest.raises(ValueError):
        normalized_mutual_information(np.zeros(3), np.zeros(4))


def test_ari_identical_is_one():
    labels = np.array([0, 1, 1, 2, 2, 2])
    assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)


def test_ari_permuted_is_one():
    a = np.array([0, 0, 1, 1])
    b = np.array([1, 1, 0, 0])
    assert adjusted_rand_index(a, b) == pytest.approx(1.0)


def test_ari_independent_near_zero():
    rng = np.random.default_rng(1)
    a = rng.integers(0, 4, 3000)
    b = rng.integers(0, 4, 3000)
    assert abs(adjusted_rand_index(a, b)) < 0.05


def test_ari_against_sklearn_formula_small():
    # Hand-computed example: a=[0,0,1,1], b=[0,0,0,1]
    a = np.array([0, 0, 1, 1])
    b = np.array([0, 0, 0, 1])
    # contingency [[2,0],[1,1]]; sum comb2 cells = 1; rows = 2; cols = 3+0=3
    # total = 6; expected = 1.0; max = 2.5 -> ari = 0/1.5 = 0.0
    assert adjusted_rand_index(a, b) == pytest.approx(0.0)


def test_partition_stats():
    stats = partition_stats(np.array([0, 0, 0, 1, 2]))
    assert stats.num_communities == 3
    assert stats.largest == 3
    assert stats.smallest == 1
    assert stats.mean_size == pytest.approx(5 / 3)
    assert stats.singleton_fraction == pytest.approx(2 / 3)


def test_partition_stats_empty():
    stats = partition_stats(np.array([], dtype=int))
    assert stats.num_communities == 0


@given(st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=40))
def test_nmi_symmetric(labels):
    a = np.asarray(labels)
    b = a[::-1].copy()
    assert normalized_mutual_information(a, b) == pytest.approx(
        normalized_mutual_information(b, a)
    )


@given(st.lists(st.integers(min_value=0, max_value=6), min_size=2, max_size=40))
def test_ari_bounded_above_by_one(labels):
    a = np.asarray(labels)
    rng = np.random.default_rng(0)
    b = rng.permutation(a)
    assert adjusted_rand_index(a, b) <= 1.0 + 1e-12


@given(
    st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=60),
    st.randoms(use_true_random=False),
)
def test_nmi_within_unit_interval(labels, rnd):
    # Exact bounds, no epsilon: the implementation clamps away the
    # few-ulp overshoot that log-sum noise can produce.
    a = np.asarray(labels)
    b = np.asarray([rnd.randint(0, 8) for _ in labels])
    for x, y in ((a, a), (a, b), (b, a)):
        value = normalized_mutual_information(x, y)
        assert 0.0 <= value <= 1.0


@given(
    st.lists(st.integers(min_value=0, max_value=8), min_size=2, max_size=60),
    st.randoms(use_true_random=False),
)
def test_ari_within_bounds(labels, rnd):
    a = np.asarray(labels)
    b = np.asarray([rnd.randint(0, 8) for _ in labels])
    for x, y in ((a, a), (a, b), (b, a)):
        value = adjusted_rand_index(x, y)
        assert -1.0 <= value <= 1.0
