"""Unit tests for repro.trace primitives (Span, Tracer, reports, schema)."""

import json

import pytest

from repro.trace import (
    NULL_TRACER,
    TRACE_SCHEMA,
    NullTracer,
    RunReport,
    Span,
    Tracer,
    as_tracer,
    validate_report,
)


def test_span_nesting_and_find():
    tracer = Tracer()
    with tracer.span("run", engine="vectorized"):
        with tracer.span("level", level=0):
            with tracer.span("optimization") as opt:
                opt.count(sweeps=3)
        with tracer.span("level", level=1):
            pass
    assert len(tracer.roots) == 1
    run = tracer.roots[0]
    assert run.attributes == {"engine": "vectorized"}
    assert [c.name for c in run.children] == ["level", "level"]
    assert len(run.find("level")) == 2
    assert run.find("optimization")[0].counters["sweeps"] == 3


def test_span_timing_is_cumulative_and_nested():
    tracer = Tracer()
    with tracer.span("run"):
        with tracer.span("level"):
            pass
    run = tracer.roots[0]
    assert run.seconds >= run.children[0].seconds >= 0.0


def test_tracer_current_annotate_count():
    tracer = Tracer()
    assert tracer.current is None
    with tracer.span("run") as run:
        assert tracer.current is run
        tracer.annotate(engine="simulated")
        tracer.count(moves=7)
    assert run.attributes["engine"] == "simulated"
    assert run.counters["moves"] == 7
    # Outside any span both are silent no-ops.
    tracer.annotate(x=1)
    tracer.count(y=2)


def test_event_and_attach():
    tracer = Tracer()
    with tracer.span("optimization"):
        tracer.event("sweep", seconds=0.25, counters={"moved": 4})
        tracer.attach(Span("sweep", counters={"moved": 2}))
    opt = tracer.roots[0]
    assert [c.counters["moved"] for c in opt.children] == [4, 2]
    assert opt.children[0].seconds == 0.25


def test_span_add_accumulates():
    span = Span("x")
    span.add("hits", 2).add("hits", 3)
    assert span.counters["hits"] == 5


def test_span_dict_roundtrip():
    span = Span(
        "level",
        attributes={"level": 1},
        counters={"sweeps": 4},
        seconds=0.5,
        children=[Span("sweep", counters={"moved": 9})],
    )
    clone = Span.from_dict(span.to_dict())
    assert clone.to_dict() == span.to_dict()


def test_null_tracer_is_inert():
    tracer = NullTracer()
    assert tracer.enabled is False
    with tracer.span("run", engine="x") as span:
        span.set(a=1).count(b=2).add("c", 3)
        tracer.annotate(z=1)
        tracer.count(w=2)
        tracer.event("sweep", counters={"moved": 1})
    assert tracer.roots == []
    assert tracer.current is None
    # The shared null span never accumulates state.
    assert span.attributes == {}
    assert span.counters == {}


def test_as_tracer():
    assert as_tracer(None) is NULL_TRACER
    tracer = Tracer()
    assert as_tracer(tracer) is tracer
    assert as_tracer(NULL_TRACER) is NULL_TRACER


def test_run_report_json_roundtrip():
    report = RunReport(
        meta={"kind": "run", "engine": "vectorized"},
        result={"modularity": 0.42, "num_levels": 2},
        spans=[Span("run", counters={"sweeps": 5})],
    )
    data = json.loads(report.to_json())
    assert data["schema"] == TRACE_SCHEMA
    assert validate_report(data) == []
    clone = RunReport.from_json(report.to_json())
    assert clone.to_dict() == report.to_dict()


def test_run_report_rejects_wrong_schema():
    with pytest.raises(ValueError, match="schema"):
        RunReport.from_dict({"schema": "other/9", "meta": {}, "result": {}})


def test_validate_report_flags_problems():
    assert validate_report([]) == ["report must be a JSON object"]
    problems = validate_report({"schema": "nope"})
    assert any("schema" in p for p in problems)
    problems = validate_report(
        {
            "schema": TRACE_SCHEMA,
            "meta": {},  # missing kind
            "result": {},
            "spans": [{"name": 3, "seconds": "x", "attributes": {},
                       "counters": {"bad": "y"}, "children": []}],
        }
    )
    assert any("kind" in p for p in problems)
    assert any("name" in p for p in problems)
    assert any("seconds" in p for p in problems)
    assert any("'bad'" in p for p in problems)


def test_nonfinite_counters_roundtrip_as_strict_json():
    report = RunReport(
        meta={"kind": "run", "seconds": float("inf")},
        result={"modularity": float("nan"), "num_levels": 2},
        spans=[
            Span(
                "run",
                counters={"sweeps": 5, "max_q_drift": float("nan")},
                children=[Span("level", counters={"modularity": float("-inf")})],
            )
        ],
    )
    # Strict JSON (json.dumps(allow_nan=False)) must not raise…
    text = report.to_json()
    assert "NaN" not in text and "Infinity" not in text
    data = json.loads(text)
    # …and the serialised form passes validation: bad counters were moved
    # out of ``counters`` into an attribute note, finite ones survive.
    assert validate_report(data) == []
    run = data["spans"][0]
    assert run["counters"] == {"sweeps": 5}
    assert run["attributes"]["nonfinite_counters"] == {"max_q_drift": "nan"}
    assert data["spans"][0]["children"][0]["attributes"]["nonfinite_counters"] == {
        "modularity": "-inf"
    }
    assert data["meta"]["seconds"] is None
    assert data["result"]["modularity"] is None
    assert data["result"]["num_levels"] == 2
    clone = RunReport.from_json(text)
    assert clone.to_dict() == data


def test_nonfinite_seconds_are_zeroed_and_noted():
    span = Span("run", seconds=float("nan"))
    data = span.to_dict()
    assert data["seconds"] == 0.0
    assert "seconds" in data["attributes"]["nonfinite_counters"]


def test_validate_report_rejects_raw_nonfinite_values():
    report = {
        "schema": TRACE_SCHEMA,
        "meta": {"kind": "run"},
        "result": {},
        "spans": [
            {
                "name": "run",
                "seconds": float("inf"),
                "attributes": {},
                "counters": {"drift": float("nan")},
                "children": [],
            }
        ],
    }
    problems = validate_report(report)
    assert any("seconds must be finite" in p for p in problems)
    assert any("'drift' must be finite" in p for p in problems)


def test_summary_renders_missing_modularity_as_dash():
    report = RunReport(
        meta={"kind": "run"},
        result={"modularity": 0.5},
        spans=[
            Span(
                "run",
                children=[
                    Span("level", attributes={"level": 0, "degenerate": True})
                ],
            )
        ],
    )
    table = report.summary()
    assert "level" in table
    assert table.splitlines()[-1].strip().endswith("-")
