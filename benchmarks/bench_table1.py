"""Table 1 + Figure 3: the full 55-graph suite, sequential vs GPU engine.

Paper: sequential runtimes 2.27-934 s, GPU runtimes 0.15-26.1 s, speedups
2.7-312x (average 41.7x, Figure 3).  Here the analog suite is ~200-4000x
smaller and the contrast is NumPy-data-parallel vs interpreted-sequential
(DESIGN.md §6); the *shape* to check is that every graph speeds up, that
skew-degree and mesh graphs gain most, and that modularity stays within
~2% of sequential (the Table-1 claim pattern).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.reporting import banner, format_table, geometric_mean
from repro.bench.runner import run_gpu, table1_rows
from repro.bench.suite import SUITE, load_suite_graph
from repro.trace import report_from_result

from _util import emit, emit_report


@pytest.fixture(scope="module")
def rows():
    return table1_rows(SUITE)


def test_table1_reproduction(benchmark, rows):
    """Regenerate Table 1 (and the Figure-3 speedup series)."""
    # The benchmarked kernel: the GPU engine on a representative graph.
    graph = load_suite_graph("soc-LiveJournal1")
    benchmark.pedantic(
        lambda: run_gpu(graph), rounds=3, iterations=1, warmup_rounds=1
    )

    table = format_table(
        [
            "graph",
            "n",
            "E",
            "seq s",
            "gpu s",
            "speedup",
            "paper speedup",
            "relQ",
        ],
        [
            [
                r.entry.name,
                r.num_vertices,
                r.num_edges,
                r.seq_seconds,
                r.gpu_seconds,
                r.speedup,
                r.entry.paper_speedup,
                r.relative_modularity,
            ]
            for r in rows
        ],
    )
    speedups = [r.speedup for r in rows]
    rel_mods = [r.relative_modularity for r in rows]
    summary = (
        f"speedup: min={min(speedups):.2f} max={max(speedups):.2f} "
        f"mean={np.mean(speedups):.2f} geomean={geometric_mean(speedups):.2f}\n"
        f"paper:   min=2.7 max=312 mean=41.7 (K40m vs Xeon i5-6600)\n"
        f"relative modularity: mean={np.mean(rel_mods):.4f} "
        f"min={min(rel_mods):.4f} (paper: avg > 0.99, never < 0.98)"
    )
    emit("table1_fig3", banner("Table 1 / Figure 3 reproduction") + "\n" + table + "\n\n" + summary)

    reports = [
        report_from_result(
            result,
            kind="run",
            graph=r.entry.name,
            engine=engine,
            solver=solver,
            num_vertices=r.num_vertices,
            num_edges=r.num_edges,
            seconds=round(seconds, 6),
        )
        for r in rows
        for solver, engine, result, seconds in (
            ("gpu", "vectorized", r.gpu_result, r.gpu_seconds),
            ("seq", "seq", r.seq_result, r.seq_seconds),
        )
        if result is not None
    ]
    emit_report("table1_fig3", reports, trajectory=True)

    assert all(s > 1.0 for s in speedups[:20]) or np.mean(speedups) > 2.0
    assert np.mean(rel_mods) > 0.97
