"""Partition quality measures beyond modularity (coverage, conductance...).

Modularity is the paper's objective, but a community-detection library is
routinely asked for the complementary measures (Fortunato's survey [10],
which the paper cites, defines them all):

* **coverage** — fraction of edge weight that is intra-community;
* **performance** — fraction of vertex pairs "correctly classified"
  (intra pairs joined + inter pairs separated);
* **conductance** — per community, cut weight / min(volume, complement
  volume); lower is better.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from .modularity import _check_partition, community_volumes

__all__ = ["coverage", "performance", "conductance", "worst_conductance"]


def coverage(graph: CSRGraph, communities: np.ndarray) -> float:
    """Intra-community edge weight / total edge weight, in [0, 1].

    The trivial all-in-one partition scores 1; modularity's null-model
    term is exactly what penalises that degenerate optimum.
    """
    communities = _check_partition(graph, communities)
    total = graph.total_weight
    if total == 0:
        return 1.0
    src = communities[graph.vertex_of_edge]
    dst = communities[graph.indices]
    internal = float(graph.weights[src == dst].sum())
    return internal / total


def performance(graph: CSRGraph, communities: np.ndarray) -> float:
    """Fraction of correctly classified vertex pairs, in [0, 1].

    A pair is correct if it is joined and adjacent, or separated and
    non-adjacent.  Uses structural adjacency (weights ignored); self-pairs
    excluded.  O(E + k) via counting, no pairwise loop.
    """
    communities = _check_partition(graph, communities)
    n = graph.num_vertices
    if n < 2:
        return 1.0
    src = communities[graph.vertex_of_edge]
    dst = communities[graph.indices]
    not_loop = graph.vertex_of_edge != graph.indices
    # stored entries count each undirected edge twice
    intra_edges = int((src[not_loop] == dst[not_loop]).sum()) // 2
    inter_edges = int((src[not_loop] != dst[not_loop]).sum()) // 2
    sizes = np.bincount(communities)
    intra_pairs = int((sizes * (sizes - 1) // 2).sum())
    total_pairs = n * (n - 1) // 2
    # correct = adjacent intra pairs + non-adjacent inter pairs
    inter_pairs = total_pairs - intra_pairs
    correct = intra_edges + (inter_pairs - inter_edges)
    return correct / total_pairs


def conductance(graph: CSRGraph, communities: np.ndarray) -> np.ndarray:
    """Conductance of every community (dense-label order), in [0, 1].

    ``phi(c) = cut(c) / min(vol(c), vol(V) - vol(c))``; communities whose
    volume is zero (isolated vertices) get 0.  Lower is better; a good
    community keeps most of its edge weight inside.
    """
    communities = _check_partition(graph, communities)
    volumes = community_volumes(graph, communities)
    size = volumes.size
    src = communities[graph.vertex_of_edge]
    dst = communities[graph.indices]
    external = src != dst
    cut = np.bincount(
        src[external], weights=graph.weights[external], minlength=size
    )
    total = graph.total_weight
    denom = np.minimum(volumes, total - volumes)
    out = np.zeros(size, dtype=np.float64)
    positive = denom > 0
    out[positive] = cut[positive] / denom[positive]
    return out


def worst_conductance(graph: CSRGraph, communities: np.ndarray) -> float:
    """Max conductance over non-empty communities (0 for no communities)."""
    communities = _check_partition(graph, communities)
    if communities.size == 0:
        return 0.0
    values = conductance(graph, communities)
    present = np.bincount(communities, minlength=values.size) > 0
    if not present.any():
        return 0.0
    return float(values[present].max())
