"""Zero-copy shared-memory arrays for the sharded engine.

The coordinator places each level's CSR arrays (``indptr`` / ``indices``
/ ``weights``), the weighted-degree vector, the membership vector, and
the shard plan into :class:`multiprocessing.shared_memory.SharedMemory`
segments.  Workers attach by name and build ``np.ndarray`` views
directly over the segment buffer — no pickling or copying of graph data
crosses the process boundary; a task message carries only the
:class:`ArraySpec` (name, dtype, shape) per array.

Lifecycle rules (the part that actually bites):

* The **coordinator** owns every segment: it creates, closes, and
  unlinks them.  :class:`SharedArrays` is a context manager so a crashed
  level still unlinks its segments.
* **Workers** must attach without adopting ownership.  CPython's
  ``resource_tracker`` registers every ``SharedMemory`` a process opens
  and unlinks leaked segments at interpreter exit — correct for owners,
  wrong for attachers: a worker exiting early would tear the segment out
  from under the coordinator and its siblings.  ``attach_array`` therefore
  unregisters the attachment from the tracker (the documented workaround
  until the ``track=`` parameter arrives in Python 3.13).
* A view into a segment keeps the mapping alive only while the
  ``SharedMemory`` object lives; :class:`AttachedArray` bundles the two
  so the array cannot dangle.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = ["ArraySpec", "AttachedArray", "SharedArrays", "attach_array"]


@dataclass(frozen=True)
class ArraySpec:
    """Everything a worker needs to rebuild a view: name, dtype, shape."""

    name: str
    dtype: str
    shape: tuple[int, ...]

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize


class AttachedArray:
    """A worker-side view plus the segment handle keeping it mapped."""

    def __init__(self, segment: shared_memory.SharedMemory, array: np.ndarray) -> None:
        self._segment = segment
        self.array = array

    def close(self) -> None:
        """Drop the view and unmap the segment (does not unlink)."""
        self.array = None  # type: ignore[assignment]
        self._segment.close()


def attach_array(spec: ArraySpec) -> AttachedArray:
    """Attach to an existing segment and view it as ``spec`` describes.

    Registration with the ``resource_tracker`` is suppressed for the
    attachment: the tracker is for owners, and under the fork context it
    is *shared* with the coordinator, so an unregister-after-attach would
    evict the owner's own registration (tracker KeyErrors at unlink) and
    a plain attach would unlink the segment when the worker exits.
    """
    original_register = resource_tracker.register

    def _no_shm_register(name: str, rtype: str) -> None:
        if rtype != "shared_memory":  # pragma: no cover - shm only here
            original_register(name, rtype)

    resource_tracker.register = _no_shm_register
    try:
        segment = shared_memory.SharedMemory(name=spec.name)
    finally:
        resource_tracker.register = original_register
    array = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf)
    return AttachedArray(segment, array)


class SharedArrays:
    """Coordinator-owned named arrays backed by shared memory.

    ``share(name, array)`` copies ``array`` into a fresh segment and
    returns the writable view; ``spec(name)`` yields the pickled-to-task
    descriptor; ``close()`` (or context-manager exit) unlinks everything.
    """

    def __init__(self, prefix: str = "repro-shard") -> None:
        self._prefix = prefix
        self._stack = ExitStack()
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._specs: dict[str, ArraySpec] = {}
        self._views: dict[str, np.ndarray] = {}
        self._counter = 0

    def share(self, name: str, array: np.ndarray) -> np.ndarray:
        """Copy ``array`` into shared memory; returns the shared view."""
        if name in self._segments:
            raise ValueError(f"array {name!r} already shared")
        array = np.ascontiguousarray(array)
        self._counter += 1
        nbytes = max(int(array.nbytes), 1)  # zero-size segments are invalid
        segment = shared_memory.SharedMemory(
            create=True,
            size=nbytes,
            name=f"{self._prefix}-{name}-{id(self):x}-{self._counter}",
        )
        self._stack.callback(self._release, segment)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        self._segments[name] = segment
        self._specs[name] = ArraySpec(
            name=segment.name, dtype=array.dtype.str, shape=tuple(array.shape)
        )
        self._views[name] = view
        return view

    @staticmethod
    def _release(segment: shared_memory.SharedMemory) -> None:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def view(self, name: str) -> np.ndarray:
        """The coordinator's writable view of a shared array."""
        return self._views[name]

    def spec(self, name: str) -> ArraySpec:
        """The attach descriptor for ``name`` (what tasks carry)."""
        return self._specs[name]

    def specs(self) -> dict[str, ArraySpec]:
        """All attach descriptors, keyed by logical name."""
        return dict(self._specs)

    def close(self) -> None:
        """Unlink every segment; views become invalid."""
        self._views.clear()
        self._segments.clear()
        self._specs.clear()
        self._stack.close()

    def __enter__(self) -> "SharedArrays":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
