"""Tests for sequential aggregation — the contraction oracle."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.graph.build import from_edges
from repro.graph.generators import caveman
from repro.graph.validation import validate
from repro.metrics.modularity import modularity
from repro.seq.aggregation import aggregate

from ..conftest import graphs_with_partitions


def test_identity_partition_is_isomorphic(karate):
    contracted, dense = aggregate(karate, np.arange(34))
    assert contracted == karate
    assert dense.tolist() == list(range(34))


def test_all_in_one_community(karate):
    contracted, dense = aggregate(karate, np.zeros(34, dtype=np.int64))
    assert contracted.num_vertices == 1
    # Self-loop weight = 2m (all edges internal).
    assert contracted.self_loop_weight(0) == pytest.approx(karate.total_weight)


def test_two_communities_weights():
    # path 0-1-2 with communities {0,1},{2}
    g = from_edges([0, 1], [1, 2], [3.0, 5.0])
    contracted, dense = aggregate(g, np.array([0, 0, 1]))
    assert contracted.num_vertices == 2
    assert contracted.self_loop_weight(0) == pytest.approx(6.0)  # 2*w(0,1)
    assert contracted.neighbor_weights(1).tolist() == [5.0]


def test_labels_renumbered_by_id_order():
    g = from_edges([0, 1], [1, 2])
    _, dense = aggregate(g, np.array([9, 9, 4]))
    # community 4 < 9 so it becomes new vertex 0
    assert dense.tolist() == [1, 1, 0]


def test_self_loops_carried_over():
    g = from_edges([0, 0, 1], [0, 1, 2], [7.0, 1.0, 1.0])
    contracted, _ = aggregate(g, np.array([0, 0, 1]))
    # loop(0) + 2 * w(0,1) = 7 + 2 = 9
    assert contracted.self_loop_weight(0) == pytest.approx(9.0)


def test_parallel_inter_edges_merged():
    # two communities joined by two distinct edges -> one merged edge
    g = from_edges([0, 1], [2, 3], [2.0, 5.0])
    contracted, _ = aggregate(g, np.array([0, 0, 1, 1]))
    assert contracted.num_edges == 1
    assert contracted.neighbor_weights(0).tolist() == [7.0]


def test_weighted_degree_preserved(karate):
    """k of each new vertex equals a_c of its community — the invariant."""
    labels = np.arange(34) % 5
    contracted, dense = aggregate(karate, labels)
    k_old = karate.weighted_degrees
    for c in range(5):
        expected = k_old[labels == c].sum()
        assert contracted.weighted_degrees[dense[labels == c][0]] == pytest.approx(
            expected
        )


def test_total_weight_preserved(karate):
    labels = np.arange(34) % 7
    contracted, _ = aggregate(karate, labels)
    assert contracted.total_weight == pytest.approx(karate.total_weight)


def test_modularity_invariant_karate(karate):
    """THE Louvain invariant: Q(G, C) == Q(aggregate(G, C), singletons)."""
    labels = np.arange(34) % 4
    contracted, dense = aggregate(karate, labels)
    q_before = modularity(karate, labels)
    q_after = modularity(contracted, np.arange(contracted.num_vertices))
    assert q_after == pytest.approx(q_before)


def test_caveman_contracts_to_ring_of_caves():
    g, labels = caveman(5, 6)
    contracted, _ = aggregate(g, labels)
    assert contracted.num_vertices == 5
    validate(contracted)


@settings(max_examples=80, deadline=None)
@given(graphs_with_partitions())
def test_modularity_invariant_property(data):
    """Modularity is preserved by contraction for arbitrary partitions."""
    graph, labels = data
    contracted, dense = aggregate(graph, labels)
    validate(contracted)
    q_before = modularity(graph, labels)
    q_after = modularity(contracted, np.arange(contracted.num_vertices))
    assert q_after == pytest.approx(q_before, abs=1e-9)


@settings(max_examples=50, deadline=None)
@given(graphs_with_partitions())
def test_total_weight_invariant_property(data):
    graph, labels = data
    contracted, _ = aggregate(graph, labels)
    assert contracted.total_weight == pytest.approx(graph.total_weight, abs=1e-9)


@settings(max_examples=50, deadline=None)
@given(graphs_with_partitions())
def test_dense_map_is_composition_ready(data):
    graph, labels = data
    contracted, dense = aggregate(graph, labels)
    if graph.num_vertices:
        assert dense.min() >= 0
        assert dense.max() == contracted.num_vertices - 1
        # same community <-> same new id
        for c in np.unique(labels):
            members = labels == c
            assert np.unique(dense[members]).size == 1
