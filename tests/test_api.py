"""Top-level public API smoke tests."""

import numpy as np

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_public_names():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_flow():
    """The README's four-line quickstart must work verbatim."""
    graph = repro.from_edges([0, 1, 2, 3], [1, 2, 3, 0])
    result = repro.gpu_louvain(graph)
    assert isinstance(result, repro.GPULouvainResult)
    assert result.membership.shape == (4,)
    assert -1.0 <= result.modularity <= 1.0


def test_sequential_entry_point():
    graph = repro.from_edges([0, 1, 2], [1, 2, 0])
    result = repro.sequential_louvain(graph)
    assert result.num_communities >= 1


def test_modularity_export():
    graph = repro.from_edges([0], [1])
    assert repro.modularity(graph, np.array([0, 0])) == 0.0


def test_config_exported():
    cfg = repro.GPULouvainConfig(threshold_bin=1e-1)
    assert cfg.threshold_bin == 1e-1
