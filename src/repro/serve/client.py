"""A minimal blocking client for the ``repro.serve`` HTTP API.

Stdlib only (:mod:`http.client`), one persistent keep-alive connection,
JSON in / JSON out.  Protocol errors surface as
:class:`~repro.serve.protocol.ServeError` carrying the server's
machine-readable code — callers switch on ``exc.code``, never on
message text.  Used by the tests, the smoke driver
(``scripts/serve_smoke.py``) and ``benchmarks/bench_serve.py``; also a
reasonable starting point for real clients (see ``docs/API.md``).
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from typing import Any
from urllib.parse import urlencode

from .protocol import PROTOCOL_VERSION, ServeError

__all__ = ["ServeClient"]


class ServeClient:
    """Talks to one :class:`~repro.serve.server.ReproServer`.

    Not thread-safe (one underlying connection); create one client per
    thread.  Usable as a context manager.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8077, *,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: HTTPConnection | None = None
        #: Correlation / trace ids echoed by the server on the most
        #: recent response (``X-Repro-Cid`` / ``X-Repro-Trace``).
        self.last_cid: str | None = None
        self.last_trace_id: str | None = None

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def _connection(self) -> HTTPConnection:
        if self._conn is None:
            self._conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> ServeClient:
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _raw(
        self,
        method: str,
        path: str,
        *,
        body: dict[str, Any] | None = None,
        params: dict[str, Any] | None = None,
    ) -> tuple[int, bytes]:
        """One round-trip under ``/v1``; returns ``(status, raw body)``.

        Retries once on a dropped connection (the server may have closed
        an idle keep-alive socket between requests).
        """
        target = f"/{PROTOCOL_VERSION}{path}"
        if params:
            target += "?" + urlencode(params)
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, target, body=payload, headers=headers)
                response = conn.getresponse()
                data = response.read()
                self.last_cid = response.getheader("X-Repro-Cid")
                self.last_trace_id = response.getheader("X-Repro-Trace")
                return response.status, data
            except (ConnectionError, OSError):
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def request(
        self,
        method: str,
        path: str,
        *,
        body: dict[str, Any] | None = None,
        params: dict[str, Any] | None = None,
        tolerate: tuple[int, ...] = (),
    ) -> dict[str, Any]:
        """One JSON round-trip; raises :class:`ServeError` on errors.

        ``tolerate`` lists non-2xx statuses whose (non-envelope) bodies
        are returned instead of raised — the health probe uses it to
        read readiness payloads off a 503.
        """
        status, data = self._raw(method, path, body=body, params=params)
        try:
            decoded = json.loads(data) if data else {}
        except json.JSONDecodeError as exc:
            raise ServeError(
                "server_error", f"non-JSON response ({status}): {data[:200]!r}"
            ) from exc
        if "error" in decoded or (status >= 400 and status not in tolerate):
            error = decoded.get("error", {})
            raise ServeError(
                error.get("code", "server_error"),
                error.get("message", f"HTTP {status}"),
                cid=self.last_cid,
            )
        return decoded

    # ------------------------------------------------------------------ #
    # Session lifecycle
    # ------------------------------------------------------------------ #
    def create_session(
        self,
        name: str,
        *,
        edges: dict[str, Any] | None = None,
        path: str | None = None,
        generate: dict[str, Any] | None = None,
        config: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Create a session from exactly one graph source; returns its info."""
        body: dict[str, Any] = {"name": name}
        if edges is not None:
            body["edges"] = edges
        if path is not None:
            body["path"] = path
        if generate is not None:
            body["generate"] = generate
        if config is not None:
            body["config"] = config
        return self.request("POST", "/sessions", body=body)

    def list_sessions(self) -> list[dict[str, Any]]:
        return self.request("GET", "/sessions")["sessions"]

    def info(self, name: str) -> dict[str, Any]:
        return self.request("GET", f"/sessions/{name}")

    def snapshot(self, name: str) -> str:
        return self.request("POST", f"/sessions/{name}/snapshot")["snapshot"]

    def evict(self, name: str) -> str:
        return self.request("POST", f"/sessions/{name}/evict")["snapshot"]

    def delete(self, name: str) -> None:
        self.request("DELETE", f"/sessions/{name}")

    # ------------------------------------------------------------------ #
    # Mutation and queries
    # ------------------------------------------------------------------ #
    def batch(
        self,
        name: str,
        *,
        add: tuple | list | None = None,
        remove: tuple | list | None = None,
    ) -> dict[str, Any]:
        """Apply an edge batch; ``add=(u, v[, w])``, ``remove=(u, v)``.

        Blocks until the (possibly coalesced) apply finishes; the result
        payload carries the apply's ``batch`` id and the ``coalesced``
        request count.
        """
        body: dict[str, Any] = {}
        if add is not None:
            u, v, *rest = add
            body["add"] = {
                "u": [int(x) for x in u],
                "v": [int(x) for x in v],
                "w": [float(x) for x in rest[0]] if rest and rest[0] is not None
                else None,
            }
        if remove is not None:
            u, v = remove
            body["remove"] = {"u": [int(x) for x in u], "v": [int(x) for x in v]}
        return self.request("POST", f"/sessions/{name}/batch", body=body)

    def community_of(self, name: str, vertex: int) -> int:
        return self.request(
            "GET", f"/sessions/{name}/community", params={"vertex": vertex}
        )["community"]

    def members(self, name: str, community: int) -> list[int]:
        return self.request(
            "GET", f"/sessions/{name}/members", params={"community": community}
        )["members"]

    def top(self, name: str, k: int = 10, *, by: str = "size") -> list[dict[str, Any]]:
        return self.request(
            "GET", f"/sessions/{name}/top", params={"k": k, "by": by}
        )["communities"]

    def report(self, name: str, *, which: str = "last") -> dict[str, Any]:
        """A session's RunReport(s): ``which`` is last, initial or all."""
        return self.request(
            "GET", f"/sessions/{name}/report", params={"which": which}
        )

    # ------------------------------------------------------------------ #
    # Server-level
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        return self.request("GET", "/stats")

    def health(self, *, live: bool = False) -> dict[str, Any]:
        """The health payload: ``{"ok": bool, "status": ...}``.

        Readiness by default (``ok`` False while draining/degraded, read
        off the 503 without raising); ``live=True`` asks the liveness
        probe, which stays 200 while the process answers at all.
        """
        params = {"live": 1} if live else None
        return self.request(
            "GET", "/health", params=params, tolerate=(503,)
        )

    def debug_flight(
        self,
        *,
        trace_id: str | None = None,
        cid: str | None = None,
        kinds: str | None = None,
    ) -> dict[str, Any]:
        """The flight-recorder snapshot from ``GET /v1/debug/flight``.

        Optional filters: ``trace_id`` / ``cid`` match entries tagged
        with that id; ``kinds`` is a comma-separated subset of
        ``span,log,metric``.
        """
        params = {
            key: value
            for key, value in
            (("trace_id", trace_id), ("cid", cid), ("kinds", kinds))
            if value is not None
        }
        return self.request("GET", "/debug/flight", params=params or None)

    def metrics(self) -> str:
        """The Prometheus text exposition from ``GET /v1/metrics``."""
        status, data = self._raw("GET", "/metrics")
        if status >= 400:
            try:
                error = json.loads(data).get("error", {})
            except json.JSONDecodeError:
                error = {}
            raise ServeError(
                error.get("code", "server_error"),
                error.get("message", f"HTTP {status}"),
                cid=self.last_cid,
            )
        return data.decode("utf-8")

    def shutdown(self) -> None:
        self.request("POST", "/shutdown")
        self.close()
