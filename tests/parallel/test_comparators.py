"""Tests for the comparator Louvain implementations."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.graph.build import from_edges
from repro.graph.generators import caveman, lfr_like
from repro.metrics.modularity import modularity
from repro.metrics.quality import adjusted_rand_index
from repro.parallel.chunked import chunked_one_level
from repro.parallel.coarse import coarse_louvain, random_parts
from repro.parallel.lu_openmp import lu_louvain, lu_one_level
from repro.parallel.plm import plm_louvain
from repro.parallel.sortbased import sort_based_louvain
from repro.parallel.vector_aggregate import aggregate_vectorized
from repro.seq.aggregation import aggregate as seq_aggregate
from repro.seq.louvain import louvain as seq_louvain

from ..conftest import graphs_with_partitions

ALL_SOLVERS = [plm_louvain, lu_louvain, coarse_louvain, sort_based_louvain]


@pytest.mark.parametrize("solver", ALL_SOLVERS)
def test_result_consistency_karate(solver, karate):
    result = solver(karate)
    assert result.membership.shape == (34,)
    assert modularity(karate, result.membership) == pytest.approx(result.modularity)
    assert result.modularity > 0.3


@pytest.mark.parametrize(
    "solver", [plm_louvain, coarse_louvain, sort_based_louvain]
)
def test_caveman_recovery(solver):
    g, truth = caveman(6, 8)
    result = solver(g)
    assert adjusted_rand_index(result.membership, truth) > 0.9


def test_lu_caveman_partial_recovery():
    """Lu's coloring processes all cave heads before any cave has formed,
    so the head-to-head ring edges chain neighbouring caves together —
    an artefact of the color-class ordering on this pathologically
    symmetric graph.  Quality degrades but must stay in Louvain range."""
    g, truth = caveman(6, 8)
    result = lu_louvain(g)
    assert adjusted_rand_index(result.membership, truth) > 0.5
    assert result.modularity > 0.6


@pytest.mark.parametrize("solver", ALL_SOLVERS)
def test_deterministic(solver, karate):
    a = solver(karate)
    b = solver(karate)
    assert np.array_equal(a.membership, b.membership)


@pytest.mark.parametrize("solver", ALL_SOLVERS)
def test_quality_near_sequential(solver):
    """All comparators land within a few percent of the sequential Q."""
    g, _ = lfr_like(500, rng=7)
    q_seq = seq_louvain(g).modularity
    q = solver(g).modularity
    assert q > 0.8 * q_seq


def test_lu_one_level_moves(karate):
    comm, sweeps = lu_one_level(karate, 1e-6)
    assert sweeps >= 1
    assert modularity(karate, comm) > 0.3


def test_lu_adaptive_thresholds():
    g, _ = lfr_like(600, rng=9)
    coarse = lu_louvain(g, threshold_bin=0.5, bin_vertex_limit=100)
    fine = lu_louvain(g, threshold_bin=0.5, bin_vertex_limit=10_000)
    assert coarse.sweeps_per_level[0] <= fine.sweeps_per_level[0]


def test_chunked_one_level_shuffle_beats_sync():
    """The shuffle matters: index-order chunks oscillate on mutual adoption."""
    g, _ = lfr_like(500, rng=7)
    comm_shuffled, _ = chunked_one_level(g, 1e-6, num_threads=32, shuffle_seed=0)
    comm_sync, _ = chunked_one_level(
        g, 1e-6, num_threads=10**9, shuffle_seed=None, max_inflight_fraction=1.0
    )
    assert modularity(g, comm_shuffled) > modularity(g, comm_sync)


def test_chunked_empty():
    g = from_edges([], [], num_vertices=3)
    comm, sweeps = chunked_one_level(g, 1e-6)
    assert comm.tolist() == [0, 1, 2]
    assert sweeps == 0


def test_random_parts_balanced():
    parts = random_parts(100, 4, rng=0)
    counts = np.bincount(parts)
    assert counts.size == 4
    assert counts.min() >= 20


def test_coarse_with_explicit_parts(karate):
    parts = np.zeros(34, dtype=np.int64)
    parts[17:] = 1
    result = coarse_louvain(karate, parts=parts)
    assert result.modularity > 0.3


def test_coarse_part_count_effect():
    """More parts -> more structure invisible in phase A, but the merge
    phase recovers most quality (the Section-6 observation)."""
    g, _ = lfr_like(600, rng=10)
    q1 = coarse_louvain(g, num_parts=2, rng=1).modularity
    q8 = coarse_louvain(g, num_parts=8, rng=1).modularity
    q_seq = seq_louvain(g).modularity
    assert q1 > 0.8 * q_seq
    assert q8 > 0.7 * q_seq


def test_coarse_rejects_bad_parts(karate):
    with pytest.raises(ValueError):
        coarse_louvain(karate, parts=np.zeros(3, dtype=np.int64))


def test_plm_num_threads_parameter(karate):
    few = plm_louvain(karate, num_threads=2)
    many = plm_louvain(karate, num_threads=64)
    assert few.modularity > 0.3
    assert many.modularity > 0.3


@settings(max_examples=50, deadline=None)
@given(graphs_with_partitions())
def test_vector_aggregate_matches_oracle(data):
    graph, labels = data
    fast_graph, fast_dense = aggregate_vectorized(graph, labels)
    seq_graph, seq_dense = seq_aggregate(graph, labels)
    assert fast_graph == seq_graph
    assert np.array_equal(fast_dense, seq_dense)
