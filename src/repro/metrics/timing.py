"""Timing records for the per-stage breakdowns of figures 5 and 6.

A Louvain run is a sequence of *stages* (levels of the hierarchy), each
made of a *modularity optimization* phase and an *aggregation* phase.  The
solvers in :mod:`repro.core` and :mod:`repro.seq` fill a
:class:`RunTimings` as they go; the figure-5/6 benchmark prints it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["SweepStats", "StageTiming", "RunTimings", "Stopwatch"]


@dataclass
class SweepStats:
    """Per-sweep observability record of one modularity-optimization sweep.

    Attributes
    ----------
    sweep:
        1-based sweep index within the phase.
    moves_per_bucket:
        Vertices moved by each degree bucket this sweep (parallel to the
        phase's bucket list; empty buckets report 0).
    gather_reuse_hits:
        Bucket edge-gathers served from the :class:`SweepPlan` cache this
        sweep instead of being rebuilt (0 on the first sweep and whenever
        no plan is active).
    pair_reuse_hits:
        Buckets whose cached sorted ``(vertex, community)`` pair
        structure was still valid this sweep (no destination vertex of
        the bucket had changed community), skipping the sort and
        segmented reduction entirely.
    pair_patch_hits:
        Buckets whose cached pair structure was patched in place from
        the moved destination vertices' edges instead of being rebuilt
        (only possible with integral edge weights, where float summation
        order cannot change the sums).
    q_incremental:
        Modularity after the sweep as tracked by the incremental update
        (equals the exact value when no incremental tracking is active).
    q_exact:
        Exact recomputed modularity, only set on sweeps where the
        periodic recompute ran (every ``exact_q_interval`` sweeps and at
        phase end).
    frontier_size:
        Number of vertices actually scored this sweep.  Equal to the
        graph's (non-isolated) vertex count for full sweeps; smaller for
        frontier-restricted sweeps in the streaming engine.
    """

    sweep: int
    moves_per_bucket: list[int] = field(default_factory=list)
    gather_reuse_hits: int = 0
    pair_reuse_hits: int = 0
    pair_patch_hits: int = 0
    q_incremental: float = 0.0
    q_exact: float | None = None
    frontier_size: int = 0

    @property
    def moved(self) -> int:
        """Total vertices moved this sweep."""
        return sum(self.moves_per_bucket)

    @property
    def q_drift(self) -> float | None:
        """|incremental - exact| modularity, where exact was recomputed."""
        if self.q_exact is None:
            return None
        return abs(self.q_incremental - self.q_exact)


@dataclass
class StageTiming:
    """Wall-clock seconds spent in one stage of the hierarchy."""

    stage: int
    optimization_seconds: float = 0.0
    aggregation_seconds: float = 0.0
    num_vertices: int = 0
    num_edges: int = 0
    sweeps: int = 0
    modularity: float = 0.0
    sweep_stats: list[SweepStats] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """Optimization plus aggregation time."""
        return self.optimization_seconds + self.aggregation_seconds

    @property
    def gather_reuse_hits(self) -> int:
        """Cached bucket gathers served across the stage's sweeps."""
        return sum(s.gather_reuse_hits for s in self.sweep_stats)

    @property
    def pair_reuse_hits(self) -> int:
        """Cached pair structures served across the stage's sweeps."""
        return sum(s.pair_reuse_hits for s in self.sweep_stats)

    @property
    def pair_patch_hits(self) -> int:
        """Cached pair structures patched in place across the stage."""
        return sum(s.pair_patch_hits for s in self.sweep_stats)

    @property
    def max_q_drift(self) -> float:
        """Worst incremental-vs-exact modularity drift observed."""
        drifts = [s.q_drift for s in self.sweep_stats if s.q_drift is not None]
        return max(drifts, default=0.0)


@dataclass
class RunTimings:
    """All stage timings of one solver run."""

    stages: list[StageTiming] = field(default_factory=list)

    def new_stage(self, num_vertices: int, num_edges: int) -> StageTiming:
        """Append and return a fresh :class:`StageTiming`."""
        stage = StageTiming(
            stage=len(self.stages), num_vertices=num_vertices, num_edges=num_edges
        )
        self.stages.append(stage)
        return stage

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time across stages."""
        return sum(s.total_seconds for s in self.stages)

    @property
    def optimization_seconds(self) -> float:
        """Total time in modularity optimization phases."""
        return sum(s.optimization_seconds for s in self.stages)

    @property
    def aggregation_seconds(self) -> float:
        """Total time in aggregation phases."""
        return sum(s.aggregation_seconds for s in self.stages)

    def optimization_fraction(self) -> float:
        """Fraction of total time spent optimizing (paper reports ~0.7)."""
        total = self.total_seconds
        return self.optimization_seconds / total if total > 0 else 0.0

    @property
    def gather_reuse_hits(self) -> int:
        """Cached bucket gathers served across the whole run."""
        return sum(s.gather_reuse_hits for s in self.stages)

    @property
    def pair_reuse_hits(self) -> int:
        """Cached pair structures served across the whole run."""
        return sum(s.pair_reuse_hits for s in self.stages)

    @property
    def pair_patch_hits(self) -> int:
        """Cached pair structures patched in place across the whole run."""
        return sum(s.pair_patch_hits for s in self.stages)

    @property
    def max_q_drift(self) -> float:
        """Worst incremental-vs-exact modularity drift across stages."""
        return max((s.max_q_drift for s in self.stages), default=0.0)


class Stopwatch:
    """Context manager that adds elapsed seconds to an attribute.

    >>> stage = StageTiming(stage=0)
    >>> with Stopwatch(stage, "optimization_seconds"):
    ...     pass
    """

    def __init__(self, record: object, attribute: str) -> None:
        self._record = record
        self._attribute = attribute
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        elapsed = time.perf_counter() - self._start
        setattr(
            self._record,
            self._attribute,
            getattr(self._record, self._attribute) + elapsed,
        )
