"""Tests for the device model, atomics, cost model and profiler."""

import numpy as np
import pytest

from repro.gpu.atomics import AtomicArray
from repro.gpu.costmodel import CostModel, CostParameters, WorkItem, warp_schedule
from repro.gpu.device import TESLA_K40M, DeviceSpec
from repro.gpu.profiler import KernelStats, PhaseProfile, RunProfile


# ------------------------------ device ------------------------------- #
def test_k40m_preset():
    assert TESLA_K40M.total_cores == 2880
    assert TESLA_K40M.threads_per_block == 128
    assert TESLA_K40M.clock_mhz == 745.0


def test_cycles_to_seconds():
    d = DeviceSpec(name="x", num_sms=1, cores_per_sm=32, clock_mhz=1000.0)
    assert d.cycles_to_seconds(1e9) == pytest.approx(1.0)


def test_shared_table_capacity():
    # 48 KiB / 12 B = 4096 slots; must hold bucket 6 (deg <= 319 -> prime ~ 487)
    assert TESLA_K40M.shared_table_capacity() == 4096
    assert TESLA_K40M.shared_table_capacity() > 1.5 * 319


def test_concurrent_warps():
    assert TESLA_K40M.concurrent_warps == 60


# ------------------------------ atomics ------------------------------ #
def test_atomic_add_and_fetch():
    arr = AtomicArray(np.zeros(3))
    arr.atomic_add(1, 2.0)
    old = arr.fetch_add(1, 3.0)
    assert old == 2.0
    assert arr.values[1] == 5.0
    assert arr.stats.adds == 2


def test_atomic_cas():
    arr = AtomicArray(np.array([0, 7]))
    assert arr.cas(0, 0, 5)
    assert not arr.cas(0, 0, 9)
    assert arr.values[0] == 5
    assert arr.stats.cas_attempts == 2


def test_batch_add_conflict_tracking():
    arr = AtomicArray(np.zeros(4))
    arr.batch_add(np.array([0, 0, 0, 2]), np.ones(4))
    assert arr.values.tolist() == [3.0, 0.0, 1.0, 0.0]
    assert arr.stats.max_batch_conflict == 3


def test_batch_add_empty():
    arr = AtomicArray(np.zeros(2))
    arr.batch_add(np.array([], dtype=np.int64), np.array([]))
    assert arr.stats.adds == 0


# ----------------------------- warp_schedule ------------------------- #
def test_warp_schedule_max_of_groups():
    # two groups per warp: warp time is max of the pair
    cycles, warps = warp_schedule(np.array([10.0, 4.0, 7.0, 7.0]), 2)
    assert warps == 2
    assert cycles == pytest.approx(10.0 + 7.0)


def test_warp_schedule_padding():
    cycles, warps = warp_schedule(np.array([5.0, 1.0, 9.0]), 2)
    assert warps == 2
    assert cycles == pytest.approx(5.0 + 9.0)


def test_warp_schedule_empty():
    cycles, warps = warp_schedule(np.array([]), 4)
    assert cycles == 0.0
    assert warps == 0


def test_warp_schedule_balance_beats_imbalance():
    """The bucketing thesis in miniature: balanced packing wins."""
    skewed = np.array([100.0, 1.0, 1.0, 1.0])
    balanced = np.array([25.75, 25.75, 25.75, 25.75])
    t_skew, _ = warp_schedule(skewed, 4)
    t_bal, _ = warp_schedule(balanced, 4)
    assert t_bal < t_skew


# ------------------------------ cost model --------------------------- #
def test_vertex_cycles_scale_with_strides():
    cm = CostModel()
    w = WorkItem(edges=64, probes=80, atomics=64)
    fast = cm.vertex_cycles(w, 32, shared=True)
    slow = cm.vertex_cycles(w, 4, shared=True)
    assert slow > fast  # fewer threads -> more strides -> more cycles


def test_shared_cheaper_than_global():
    cm = CostModel()
    w = WorkItem(edges=16, probes=20, atomics=16)
    assert cm.vertex_cycles(w, 8, shared=True) < cm.vertex_cycles(
        w, 8, shared=False
    )


def test_zero_edge_vertex_costs_overhead_only():
    cm = CostModel()
    w = WorkItem(edges=0, probes=0, atomics=0)
    assert cm.vertex_cycles(w, 1, shared=True) == pytest.approx(
        cm.params.vertex_overhead
    )


def test_reduction_grows_with_group():
    cm = CostModel()
    w = WorkItem(edges=4, probes=4, atomics=4)
    # same strides (4/4=1 vs 4/32->1) but bigger reduction for 32 threads
    assert cm.vertex_cycles(w, 32, shared=True) > cm.vertex_cycles(
        w, 4, shared=True
    )


def test_kernel_seconds_positive_and_monotone():
    cm = CostModel()
    a = cm.kernel_seconds(1e6)
    b = cm.kernel_seconds(2e6)
    assert 0 < a < b


def test_custom_parameters_respected():
    cheap = CostModel(params=CostParameters(probe_global=60.0))
    pricey = CostModel(params=CostParameters(probe_global=600.0))
    w = WorkItem(edges=10, probes=15, atomics=10)
    assert pricey.vertex_cycles(w, 4, shared=False) > cheap.vertex_cycles(
        w, 4, shared=False
    )


# ------------------------------ profiler ----------------------------- #
def test_kernel_stats_merge():
    a = KernelStats(name="k", warp_cycles=10, active_thread_cycles=5,
                    issued_thread_cycles=20, num_warps=1)
    b = KernelStats(name="k", warp_cycles=30, active_thread_cycles=15,
                    issued_thread_cycles=40, num_warps=2)
    a.merge(b)
    assert a.warp_cycles == 40
    assert a.num_warps == 3
    assert a.active_thread_fraction == pytest.approx(20 / 60)


def test_active_fraction_clamped():
    k = KernelStats(name="k", active_thread_cycles=10, issued_thread_cycles=5)
    assert k.active_thread_fraction == 1.0
    empty = KernelStats(name="k")
    assert empty.active_thread_fraction == 0.0


def test_phase_profile_aggregation():
    phase = PhaseProfile()
    phase.add(KernelStats(name="a", warp_cycles=10, issued_thread_cycles=10,
                          active_thread_cycles=5))
    phase.add(KernelStats(name="a", warp_cycles=20, issued_thread_cycles=10,
                          active_thread_cycles=10))
    phase.add(KernelStats(name="b", warp_cycles=5, issued_thread_cycles=2,
                          active_thread_cycles=1))
    assert phase.warp_cycles == 35
    merged = phase.by_kernel()
    assert set(merged) == {"a", "b"}
    assert merged["a"].warp_cycles == 30


def test_run_profile_totals():
    run = RunProfile()
    p = PhaseProfile()
    p.add(KernelStats(name="a", warp_cycles=7, issued_thread_cycles=10,
                      active_thread_cycles=4))
    run.optimization.append(p)
    q = PhaseProfile()
    q.add(KernelStats(name="b", warp_cycles=3, issued_thread_cycles=10,
                      active_thread_cycles=8))
    run.aggregation.append(q)
    assert run.total_warp_cycles() == 10
    assert run.active_thread_fraction() == pytest.approx(12 / 20)
