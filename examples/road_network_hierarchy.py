#!/usr/bin/env python
"""Hierarchical regions in a road network (the Figure-5 workload).

Road networks are the paper's long-tail case: many cheap hierarchy levels
that progressively merge blocks into districts into regions.  This example
clusters a road grid, then uses the dendrogram to extract a clustering at
a chosen granularity — the operation a map-rendering or routing pipeline
would perform.

Run:  python examples/road_network_hierarchy.py
"""

import numpy as np

from repro import gpu_louvain
from repro.bench.runner import stage_breakdown
from repro.core.hierarchy import Dendrogram, best_level
from repro.graph.generators import road_grid


def main() -> None:
    graph = road_grid(160, 160, rng=7)
    print(f"road network: {graph.num_vertices} intersections, "
          f"{graph.num_edges} road segments "
          f"(avg degree {2 * graph.num_edges / graph.num_vertices:.2f})")

    result = gpu_louvain(graph, bin_vertex_limit=1_000)
    print(f"\nfull clustering: Q = {result.modularity:.4f}, "
          f"{result.num_levels} levels")

    # --- the Figure-5 stage profile ------------------------------------ #
    print("\nper-stage breakdown (optimization vs aggregation seconds):")
    for row in stage_breakdown(result):
        print(f"  stage {row.stage}: n={row.num_vertices:6d} "
              f"opt={row.optimization_seconds:.4f}s "
              f"agg={row.aggregation_seconds:.4f}s sweeps={row.sweeps}")
    frac = result.timings.optimization_fraction()
    print(f"  optimization fraction: {frac:.2f} (paper reports ~0.70)")

    # --- pick a granularity from the hierarchy ------------------------- #
    dendrogram = Dendrogram.from_result(graph, result)
    counts = dendrogram.community_counts()
    print("\navailable granularities (communities per level):", counts)

    # "districts": the first level with fewer than 200 regions
    district_level = next(
        (k for k, c in enumerate(counts) if c < 200), len(counts) - 1
    )
    districts = dendrogram.membership(district_level)
    sizes = np.bincount(districts)
    print(f"\ndistrict view (level {district_level}): "
          f"{sizes.size} districts, "
          f"sizes {sizes.min()}..{sizes.max()} "
          f"(median {int(np.median(sizes))})")

    # --- best modularity cut -------------------------------------------- #
    level = best_level(graph, result)
    print(f"\nbest-modularity cut: level {level} "
          f"with Q = {dendrogram.modularities()[level]:.4f}")

    # Regions should be spatially contiguous: verify a sample district is
    # connected within the road graph.
    from repro.graph.build import induced_subgraph
    from scipy.sparse.csgraph import connected_components

    sample = int(np.argmax(sizes))
    members = np.flatnonzero(districts == sample)
    sub = induced_subgraph(graph, members)
    ncomp, _ = connected_components(sub.to_scipy(), directed=False)
    print(f"\nlargest district ({members.size} intersections) has "
          f"{ncomp} connected component(s)")


if __name__ == "__main__":
    main()
