"""Figure 4: GPU speedup versus the *adaptive* sequential algorithm.

Paper: giving the sequential baseline the same adaptive thresholds makes
it ~7.3x faster on average (modularity drops only 0.13%), which shrinks
the GPU speedup to 1-27x, average 6.7x.  The shape to reproduce: the
adaptive baseline closes most of the gap but the GPU engine still wins
on every class, and adaptive-seq modularity is nearly unchanged.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.reporting import banner, format_table, geometric_mean
from repro.bench.runner import run_gpu, run_sequential
from repro.bench.suite import small_suite

from _util import emit


@pytest.fixture(scope="module")
def runs():
    rows = []
    for entry in small_suite():
        graph = entry.load()
        seq = run_sequential(graph)
        adaptive = run_sequential(graph, adaptive=True)
        gpu = run_gpu(graph)
        rows.append((entry, graph, seq, adaptive, gpu))
    return rows


def test_fig4_adaptive_sequential(benchmark, runs):
    entry, graph, _, _, _ = runs[0]
    benchmark.pedantic(
        lambda: run_sequential(graph, adaptive=True), rounds=2, iterations=1
    )

    table_rows = []
    adaptive_gains = []
    gpu_speedups = []
    mod_drops = []
    for entry, graph, seq, adaptive, gpu in runs:
        adaptive_gains.append(seq.seconds / adaptive.seconds)
        gpu_speedups.append(adaptive.seconds / gpu.seconds)
        mod_drops.append(
            (seq.modularity - adaptive.modularity) / seq.modularity
            if seq.modularity
            else 0.0
        )
        table_rows.append(
            [
                entry.name,
                seq.seconds,
                adaptive.seconds,
                gpu.seconds,
                adaptive.seconds / gpu.seconds,
                adaptive.modularity / seq.modularity if seq.modularity else 1.0,
            ]
        )
    table = format_table(
        ["graph", "seq s", "adaptive s", "gpu s", "gpu speedup vs adaptive", "adaptive relQ"],
        table_rows,
    )
    summary = (
        f"adaptive-seq gain over original seq: mean={np.mean(adaptive_gains):.2f}x "
        f"geomean={geometric_mean(adaptive_gains):.2f}x (paper: 7.3x)\n"
        f"GPU speedup vs adaptive seq: min={min(gpu_speedups):.2f} "
        f"max={max(gpu_speedups):.2f} mean={np.mean(gpu_speedups):.2f} "
        f"(paper: 1-27x, avg 6.7)\n"
        f"adaptive modularity drop: mean={np.mean(mod_drops) * 100:.2f}% "
        f"(paper: 0.13%)"
    )
    emit("fig4_adaptive_seq", banner("Figure 4: vs adaptive sequential") + "\n" + table + "\n\n" + summary)

    assert np.mean(adaptive_gains) > 1.0  # adaptive thresholds speed seq up
    assert np.mean(mod_drops) < 0.05  # without costing much quality
    assert np.mean(gpu_speedups) > 1.0  # GPU engine still ahead on average
