"""Comparator: Cheong et al.'s sort-based single-GPU Louvain [4].

Their kernel avoids hashing entirely: each vertex's neighbour list is
sorted by the neighbours' community ids and the per-community weights come
from a run-length accumulation.  Node-centric (one thread per vertex), and
only the modularity-optimization phase is parallel — the aggregation is
host-side and serial.

The move semantics otherwise match a plain synchronous fine-grained sweep
without singleton protection; the hierarchical multi-GPU layer of [4] is
modelled by :func:`repro.parallel.coarse.coarse_louvain` with
``num_parts = num_gpus``.

The implementation's *cost signature* differs from the hash-based kernel:
``sort_cost = deg * log2(deg)`` comparisons per vertex instead of ~1.5
probes per edge, which :func:`sort_kernel_cycles` exposes for the
ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from ..gpu.costmodel import CostModel, warp_schedule
from .chunked import chunked_one_level
from ..graph.csr import CSRGraph
from ..metrics.modularity import modularity
from ..metrics.timing import RunTimings, Stopwatch
from ..result import LouvainResult, flatten_levels
from ..seq.aggregation import aggregate

__all__ = ["sort_based_louvain", "sort_one_level", "sort_kernel_cycles"]


def sort_one_level(
    graph: CSRGraph,
    threshold: float,
    *,
    num_threads: int = 32,
    max_sweeps: int = 1000,
) -> tuple[np.ndarray, int]:
    """One node-centric phase with sort-based accumulation.

    Move decisions are identical to the hash-based kernel (the sorted
    run-length accumulation computes the same ``e_{i->c}`` sums); the
    chunk-asynchronous commit discipline models the device's immediate
    global-memory updates.  No singleton-protection rule, as in [4].
    """
    return chunked_one_level(
        graph,
        threshold,
        num_threads=num_threads,
        singleton_constraint=False,
        max_sweeps=max_sweeps,
    )


def sort_based_louvain(
    graph: CSRGraph,
    *,
    threshold: float = 1e-6,
    max_levels: int = 200,
) -> LouvainResult:
    """Full sort-based Louvain (parallel phase 1, serial aggregation)."""
    timings = RunTimings()
    levels: list[np.ndarray] = []
    level_sizes: list[tuple[int, int]] = []
    sweeps_per_level: list[int] = []
    modularity_per_level: list[float] = []
    current = graph
    prev_q = -1.0

    for _ in range(max_levels):
        stage = timings.new_stage(current.num_vertices, current.num_edges)
        with Stopwatch(stage, "optimization_seconds"):
            comm, sweeps = sort_one_level(current, threshold)
        with Stopwatch(stage, "aggregation_seconds"):
            contracted, dense = aggregate(current, comm)  # serial, as in [4]
        levels.append(dense)
        level_sizes.append((current.num_vertices, current.num_edges))
        sweeps_per_level.append(sweeps)
        stage.sweeps = sweeps
        membership = flatten_levels(levels)
        q = modularity(graph, membership)
        modularity_per_level.append(q)
        stage.modularity = q
        no_contraction = contracted.num_vertices == current.num_vertices
        current = contracted
        if q - prev_q < threshold or no_contraction:
            break
        prev_q = q

    membership = flatten_levels(levels)
    return LouvainResult(
        levels=levels,
        level_sizes=level_sizes,
        membership=membership,
        modularity=modularity(graph, membership),
        modularity_per_level=modularity_per_level,
        sweeps_per_level=sweeps_per_level,
        timings=timings,
    )


def sort_kernel_cycles(graph: CSRGraph, cost_model: CostModel) -> float:
    """Simulated warp-cycles of one sort-based node-centric sweep.

    One thread per vertex (32 vertices per warp, original order);
    per-vertex work is a ``deg * ceil(log2 deg)``-comparison sort plus one
    pass of run-length reduction, all in registers/local memory (charged
    at shared-probe latency).
    """
    degrees = graph.degrees
    p = cost_model.params
    logd = np.ceil(np.log2(np.maximum(degrees, 2)))
    per_vertex = (
        degrees * p.edge_load
        + degrees * logd * p.probe_shared
        + degrees * p.probe_shared
        + p.vertex_overhead
    )
    warp_cycles, _ = warp_schedule(per_vertex, cost_model.device.warp_size)
    return warp_cycles
