"""End-to-end integration and property tests across the whole stack."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import gpu_louvain, modularity, sequential_louvain
from repro.core.aggregate import aggregate_gpu
from repro.core.config import GPULouvainConfig
from repro.graph.generators import (
    lfr_like,
    planted_partition,
    with_random_weights,
)
from repro.metrics.quality import normalized_mutual_information
from repro.parallel import lu_louvain, plm_louvain
from repro.seq.aggregation import aggregate as seq_aggregate

from .conftest import csr_graphs


@settings(max_examples=40, deadline=None)
@given(csr_graphs(max_vertices=20, max_edges=50, weighted=True))
def test_gpu_louvain_total_function(g):
    """The solver must accept any canonical graph and return a coherent
    result: valid membership, self-consistent modularity, shrinking
    hierarchy."""
    result = gpu_louvain(g)
    assert result.membership.shape == (g.num_vertices,)
    if g.num_vertices:
        assert result.membership.min() >= 0
    assert modularity(g, result.membership) == pytest.approx(
        result.modularity, abs=1e-9
    )
    sizes = [n for n, _ in result.level_sizes]
    assert all(a >= b for a, b in zip(sizes, sizes[1:]))


@settings(max_examples=40, deadline=None)
@given(csr_graphs(max_vertices=20, max_edges=50, weighted=True))
def test_sequential_never_below_singletons(g):
    """For the *asynchronous* baseline this is a theorem: every committed
    move has positive gain against the live state."""
    result = sequential_louvain(g)
    singleton_q = modularity(g, np.arange(g.num_vertices))
    assert result.modularity >= singleton_q - 1e-9


@settings(max_examples=40, deadline=None)
@given(csr_graphs(max_vertices=20, max_edges=50, weighted=True))
def test_gpu_close_to_singleton_floor(g):
    """For the concurrent engine it is NOT a theorem: two vertices in the
    same bucket can each make an individually-positive move whose
    combination overshoots (e.g. a mutual merge on a 3-vertex weighted
    graph loses ~0.05 Q).  The paper's per-bucket commit bounds but does
    not eliminate this; assert the overshoot stays small."""
    result = gpu_louvain(g)
    singleton_q = modularity(g, np.arange(g.num_vertices))
    assert result.modularity >= singleton_q - 0.15


@settings(max_examples=25, deadline=None)
@given(csr_graphs(max_vertices=18, max_edges=40, weighted=True))
def test_engines_identical_end_to_end(g):
    """Vectorized and simulated engines agree on full runs, any graph."""
    vec = gpu_louvain(g, engine="vectorized")
    sim = gpu_louvain(g, engine="simulated")
    assert np.array_equal(vec.membership, sim.membership)


def test_gpu_vs_sequential_statistical_parity():
    """The paper's quality claim is statistical: across a spread of graph
    classes, the GPU engine's modularity averages within ~2% of the
    sequential optimum.  (Per-graph it can win or lose a basin — on tiny
    adversarial graphs the concurrent bucket commits plus the min-label
    singleton rule can capture vertices whose better targets were
    label-blocked for one sweep, so a per-example bound is not a theorem.)
    """
    graphs = [lfr_like(400, rng=s)[0] for s in range(4)]
    graphs += [planted_partition(4, 25, 0.5, 0.02, rng=s)[0] for s in range(2)]
    from repro.graph.generators import social_network

    graphs += [social_network(500, 6, rng=s) for s in range(2)]
    ratios = []
    for g in graphs:
        q_seq = sequential_louvain(g).modularity
        q_gpu = gpu_louvain(g).modularity
        ratios.append(q_gpu / q_seq if q_seq else 1.0)
    assert np.mean(ratios) > 0.95
    assert min(ratios) > 0.8


@settings(max_examples=30, deadline=None)
@given(csr_graphs(max_vertices=20, max_edges=50, weighted=True))
def test_full_pipeline_aggregation_consistency(g):
    """Contracting by the solver's own membership preserves its Q."""
    result = gpu_louvain(g)
    contracted, dense = seq_aggregate(g, result.membership)
    q_contracted = modularity(
        contracted, np.arange(contracted.num_vertices)
    )
    assert q_contracted == pytest.approx(result.modularity, abs=1e-9)


@settings(max_examples=20, deadline=None)
@given(csr_graphs(max_vertices=16, max_edges=40))
def test_aggregation_idempotent_on_fixed_point(g):
    """Re-aggregating an already-contracted graph by singletons is a no-op."""
    cfg = GPULouvainConfig()
    result = gpu_louvain(g)
    out1 = aggregate_gpu(g, result.membership, cfg)
    out2 = aggregate_gpu(
        out1.graph, np.arange(out1.graph.num_vertices), cfg
    )
    assert out2.graph == out1.graph


def test_planted_structure_recovered_by_all_fine_grained():
    g, truth = planted_partition(6, 30, 0.5, 0.005, rng=2)
    for solver in (gpu_louvain, sequential_louvain, plm_louvain, lu_louvain):
        result = solver(g)
        nmi = normalized_mutual_information(result.membership, truth)
        assert nmi > 0.85, solver.__name__


def test_weights_shift_partition():
    """Scaling one community's internal weights must keep it together."""
    g, truth = lfr_like(300, rng=6)
    u, v, w = g.edge_list(unique=True)
    boost = (truth[u] == 0) & (truth[v] == 0)
    w = w.copy()
    w[boost] *= 10.0
    from repro.graph.build import from_edges

    boosted = from_edges(u, v, w, num_vertices=g.num_vertices)
    result = gpu_louvain(boosted)
    community_zero = truth == 0
    labels = result.membership[community_zero]
    dominant = np.bincount(labels).max()
    assert dominant / community_zero.sum() > 0.9


def test_random_weights_still_valid(karate):
    for seed in range(3):
        g = with_random_weights(karate, rng=seed)
        result = gpu_louvain(g)
        assert modularity(g, result.membership) == pytest.approx(
            result.modularity
        )
        assert result.modularity > 0.2


def test_hierarchy_composition_matches_membership():
    g, _ = lfr_like(500, rng=8)
    result = gpu_louvain(g)
    # Recompose manually.
    membership = np.asarray(result.levels[0]).copy()
    for level in result.levels[1:]:
        membership = np.asarray(level)[membership]
    assert np.array_equal(membership, result.membership)


def test_all_solvers_share_result_contract():
    """Every solver's result satisfies the LouvainResult invariants."""
    from repro.parallel import (
        coarse_louvain,
        multigpu_louvain,
        sort_based_louvain,
    )

    g, _ = lfr_like(300, rng=9)
    solvers = [
        gpu_louvain,
        sequential_louvain,
        plm_louvain,
        lu_louvain,
        coarse_louvain,
        sort_based_louvain,
        multigpu_louvain,
    ]
    for solver in solvers:
        result = solver(g)
        assert len(result.levels) == len(result.level_sizes), solver.__name__
        assert len(result.sweeps_per_level) == len(result.levels)
        assert len(result.modularity_per_level) == len(result.levels)
        assert result.level_sizes[0][0] == g.num_vertices
        assert modularity(g, result.membership) == pytest.approx(
            result.modularity, abs=1e-9
        ), solver.__name__
