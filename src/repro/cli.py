"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``      print a graph file's structural statistics
``detect``    run community detection and write/print the membership
``generate``  synthesise a graph from one of the generator families
``suite``     list or materialise the Table-1 analog benchmark suite

Examples::

    python -m repro generate social -n 5000 -m 8 -o social.txt
    python -m repro info social.txt
    python -m repro detect social.txt --solver gpu -o communities.txt
    python -m repro suite --name road_usa -o road.txt
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Community Detection on the GPU (IPDPS 2017) — reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="print graph statistics")
    info.add_argument("path", help="edge list / METIS / MatrixMarket file")

    detect = sub.add_parser("detect", help="detect communities")
    detect.add_argument("path", help="input graph file")
    detect.add_argument(
        "--solver",
        choices=["gpu", "seq", "plm", "lu", "coarse", "sort", "multigpu"],
        default="gpu",
        help="algorithm to run (default: the paper's GPU algorithm)",
    )
    detect.add_argument(
        "--engine",
        choices=["vectorized", "simulated"],
        default="vectorized",
        help="gpu solver execution engine",
    )
    detect.add_argument("--threshold-bin", type=float, default=1e-2)
    detect.add_argument("--threshold-final", type=float, default=1e-6)
    detect.add_argument("--bin-vertex-limit", type=int, default=100_000)
    detect.add_argument("--resolution", type=float, default=1.0,
                        help="gamma of the generalised modularity (gpu solver)")
    detect.add_argument("--warm-start", metavar="FILE",
                        help="previous 'vertex community' file to warm-start "
                             "from (gpu solver)")
    detect.add_argument("--devices", type=int, default=4,
                        help="device count for --solver multigpu")
    detect.add_argument("-o", "--output", help="write 'vertex community' lines here")
    detect.add_argument("--levels", action="store_true",
                        help="also print the per-level hierarchy summary")

    generate = sub.add_parser("generate", help="synthesise a graph")
    generate.add_argument(
        "family",
        choices=[
            "social", "rmat", "ba", "lfr", "caveman", "road", "rgg",
            "delaunay", "stencil", "kkt", "karate",
        ],
    )
    generate.add_argument("-n", type=int, default=1000, help="vertex count / side")
    generate.add_argument("-m", type=int, default=8, help="edges per vertex (social/ba)")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("-o", "--output", required=True)

    suite = sub.add_parser("suite", help="the Table-1 analog suite")
    group = suite.add_mutually_exclusive_group(required=True)
    group.add_argument("--list", action="store_true", help="list all 55 entries")
    group.add_argument("--name", help="materialise one entry's analog graph")
    suite.add_argument("--scale", type=float, default=1.0)
    suite.add_argument("-o", "--output", help="output path (with --name)")

    return parser


def _cmd_info(args: argparse.Namespace) -> int:
    from .graph.io import load_graph

    graph = load_graph(args.path)
    degrees = graph.degrees
    print(f"vertices:        {graph.num_vertices}")
    print(f"edges:           {graph.num_edges}")
    print(f"total weight 2m: {graph.total_weight:g}")
    if degrees.size:
        print(f"degrees:         min {degrees.min()}  "
              f"median {int(np.median(degrees))}  max {degrees.max()}")
        print(f"avg degree:      {2 * graph.num_edges / graph.num_vertices:.2f}")
    loops = graph.self_loop_weights()
    print(f"self loops:      {int(np.count_nonzero(loops))}")
    return 0


def _read_membership(path: str, num_vertices: int) -> np.ndarray:
    """Read a 'vertex community' file (the detect -o format)."""
    membership = np.arange(num_vertices, dtype=np.int64)
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            vertex, community = line.split()[:2]
            v = int(vertex)
            if 0 <= v < num_vertices:
                membership[v] = int(community)
    return membership


def _cmd_detect(args: argparse.Namespace) -> int:
    from .graph.io import load_graph

    graph = load_graph(args.path)
    start = time.perf_counter()
    if args.solver == "gpu":
        from .core.gpu_louvain import gpu_louvain

        initial = None
        if args.warm_start:
            initial = _read_membership(args.warm_start, graph.num_vertices)
        result = gpu_louvain(
            graph,
            engine=args.engine,
            threshold_bin=args.threshold_bin,
            threshold_final=args.threshold_final,
            bin_vertex_limit=args.bin_vertex_limit,
            resolution=args.resolution,
            initial_communities=initial,
        )
    elif args.solver == "seq":
        from .seq.louvain import louvain

        result = louvain(graph, threshold=args.threshold_final)
    elif args.solver == "plm":
        from .parallel.plm import plm_louvain

        result = plm_louvain(graph, threshold=args.threshold_final)
    elif args.solver == "lu":
        from .parallel.lu_openmp import lu_louvain

        result = lu_louvain(
            graph,
            threshold_bin=args.threshold_bin,
            threshold_final=args.threshold_final,
            bin_vertex_limit=args.bin_vertex_limit,
        )
    elif args.solver == "coarse":
        from .parallel.coarse import coarse_louvain

        result = coarse_louvain(graph, threshold=args.threshold_final)
    elif args.solver == "sort":
        from .parallel.sortbased import sort_based_louvain

        result = sort_based_louvain(graph, threshold=args.threshold_final)
    else:  # multigpu
        from .parallel.multigpu import multigpu_louvain

        result = multigpu_louvain(
            graph,
            num_devices=args.devices,
            threshold_bin=args.threshold_bin,
            threshold_final=args.threshold_final,
            bin_vertex_limit=args.bin_vertex_limit,
        )
    seconds = time.perf_counter() - start

    print(f"solver:      {args.solver}")
    print(f"modularity:  {result.modularity:.6f}")
    print(f"communities: {result.num_communities}")
    print(f"levels:      {result.num_levels}")
    print(f"seconds:     {seconds:.3f}")
    if args.levels:
        for k, ((n, e), q) in enumerate(
            zip(result.level_sizes, result.modularity_per_level)
        ):
            print(f"  level {k}: n={n} E={e} Q={q:.4f}")
    if args.output:
        with open(args.output, "w") as handle:
            handle.write("# vertex community\n")
            for v, c in enumerate(result.membership):
                handle.write(f"{v} {c}\n")
        print(f"membership written to {args.output}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from .graph import generators as gen
    from .graph.io import write_edge_list

    n, m, seed = args.n, args.m, args.seed
    if args.family == "social":
        graph = gen.social_network(n, m, rng=seed)
    elif args.family == "rmat":
        scale = max(4, int(np.ceil(np.log2(max(n, 16)))))
        graph = gen.rmat(scale, m, rng=seed)
    elif args.family == "ba":
        graph = gen.barabasi_albert(n, m, rng=seed)
    elif args.family == "lfr":
        graph, _ = gen.lfr_like(n, rng=seed, avg_degree=max(m, 4))
    elif args.family == "caveman":
        graph, _ = gen.caveman(max(n // max(m, 2), 2), max(m, 2))
    elif args.family == "road":
        side = max(4, int(np.sqrt(n)))
        graph = gen.road_grid(side, side, rng=seed)
    elif args.family == "rgg":
        radius = float(np.sqrt(max(m, 4) / (np.pi * n)))
        graph = gen.random_geometric(n, radius, rng=seed)
    elif args.family == "delaunay":
        graph = gen.delaunay_graph(n, rng=seed)
    elif args.family == "stencil":
        side = max(3, round(n ** (1 / 3)))
        graph = gen.stencil3d(side, side, side)
    elif args.family == "kkt":
        side = max(3, round((n // 2) ** (1 / 3)))
        graph = gen.kkt_like(side, side, side, rng=seed)
    else:  # karate
        graph = gen.karate_club()
    write_edge_list(graph, args.output)
    print(f"{args.family}: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges -> {args.output}")
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    from .bench.suite import SUITE, load_suite_graph
    from .graph.io import write_edge_list

    if args.list:
        print(f"{'name':28s} {'family':13s} {'paper V':>12s} {'paper E':>13s} "
              f"{'seq s':>8s} {'gpu s':>7s}")
        for entry in SUITE:
            print(f"{entry.name:28s} {entry.family:13s} "
                  f"{entry.paper_vertices:12,d} {entry.paper_edges:13,d} "
                  f"{entry.paper_seq_seconds:8.2f} {entry.paper_gpu_seconds:7.2f}")
        return 0
    graph = load_suite_graph(args.name, args.scale)
    print(f"{args.name}: analog with {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges")
    if args.output:
        write_edge_list(graph, args.output)
        print(f"written to {args.output}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info(args)
    if args.command == "detect":
        return _cmd_detect(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "suite":
        return _cmd_suite(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
