"""Trace analytics: per-span-path aggregates, stage tables, flame views.

A :class:`~repro.trace.RunReport` carries the raw span tree; this module
turns it into the paper's analysis artifacts:

* :func:`flatten_report` — collapse the tree into **span-path
  aggregates** (``run/level[0]/optimization`` → summed seconds and
  counters), the structural key that :mod:`repro.obs.diff` matches
  reports on;
* :func:`level_metrics` / :func:`stage_table` — the Fig. 5/6-style
  per-level breakdown (optimization vs aggregation seconds, opt
  fraction) extended with derived rates: MTEPS per level (§3 of the
  paper, ``2E·sweeps / opt_seconds``), moves per sweep, hash-probe
  rate, and peak frontier fraction for streamed batches;
* :func:`critical_path` — a text flame view of the span tree with the
  hottest root→leaf chain marked;
* :func:`load_trace` — read any of the three ``repro.trace/1`` container
  shapes (single report, ``stream`` container, ``bench`` container)
  into a flat list of reports;
* :func:`stream_aggregate` — the cross-batch roll-up printed by
  ``python -m repro stream --trace-summary``.

Span paths
----------
A span's path component is its name, suffixed with the span's own index
attribute when it carries one named after itself (``level`` spans have a
``level`` attribute, ``sweep`` spans a ``sweep`` attribute, ``batch``
spans a ``batch`` attribute): ``run``, ``batch[3]/run/level[0]/
optimization/sweep[1]``.  Sibling spans with equal paths aggregate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..bench.reporting import format_table
from ..trace import RunReport, Span

__all__ = [
    "PathAggregate",
    "span_component",
    "flatten_report",
    "flatten_reports",
    "LevelMetrics",
    "level_metrics",
    "stage_table",
    "critical_path",
    "critical_path_spans",
    "load_trace",
    "stream_aggregate",
    "format_stream_aggregate",
]


def span_component(span: Span) -> str:
    """Path component of one span (name plus its own index attribute)."""
    index = span.attributes.get(span.name)
    if isinstance(index, bool) or not isinstance(index, int):
        return span.name
    return f"{span.name}[{index}]"


@dataclass
class PathAggregate:
    """Summed measurements of every span sharing one path."""

    path: str
    count: int = 0
    seconds: float = 0.0
    counters: dict[str, float] = field(default_factory=dict)

    def add_span(self, span: Span) -> None:
        """Fold one span's measurements into this aggregate."""
        self.count += 1
        self.seconds += span.seconds
        for name, value in span.counters.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self.counters[name] = self.counters.get(name, 0) + value

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form of this aggregate."""
        return {
            "path": self.path,
            "count": self.count,
            "seconds": self.seconds,
            "counters": dict(self.counters),
        }


def _walk(span: Span, prefix: str, into: dict[str, PathAggregate]) -> None:
    path = f"{prefix}/{span_component(span)}" if prefix else span_component(span)
    agg = into.get(path)
    if agg is None:
        agg = into[path] = PathAggregate(path)
    agg.add_span(span)
    for child in span.children:
        _walk(child, path, into)


def flatten_report(report: RunReport) -> dict[str, PathAggregate]:
    """Per-span-path aggregates of one report (insertion = tree order)."""
    aggregates: dict[str, PathAggregate] = {}
    for root in report.spans:
        _walk(root, "", aggregates)
    return aggregates


def flatten_reports(reports: list[RunReport]) -> dict[str, PathAggregate]:
    """Per-span-path aggregates across several reports (e.g. a stream)."""
    aggregates: dict[str, PathAggregate] = {}
    for report in reports:
        for root in report.spans:
            _walk(root, "", aggregates)
    return aggregates


# --------------------------------------------------------------------- #
# Fig. 5/6 stage breakdown with derived metrics
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class LevelMetrics:
    """One hierarchy level's measured and derived numbers."""

    level: int
    num_vertices: int
    num_edges: int
    sweeps: int
    moved: int
    optimization_seconds: float
    aggregation_seconds: float
    modularity: float | None
    #: §3 TEPS in mega-units: both stored directions of every edge are
    #: scored once per sweep, so traversed = 2E * sweeps.
    mteps: float
    moves_per_sweep: float
    #: Aggregation hash probes per second of aggregation time (M/s);
    #: 0 where the contraction path records no probes (bincount).
    probe_mrate: float
    #: Peak sweep frontier as a fraction of the level's vertices
    #: (0 for non-streamed runs, which record no frontier).
    frontier_fraction: float
    #: Active / issued thread cycles across the level's kernels
    #: (simulated engine only; 0 where no thread cycles were recorded).
    active_thread_fraction: float = 0.0
    #: Used / allocated contraction edge slots of the aggregation
    #: (0 for contraction paths that record no slots, e.g. bincount).
    edge_slot_utilisation: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Optimization plus aggregation seconds."""
        return self.optimization_seconds + self.aggregation_seconds

    @property
    def optimization_fraction(self) -> float:
        """Share of the level spent in modularity optimization."""
        total = self.total_seconds
        return self.optimization_seconds / total if total > 0 else 0.0


def _first(span: Span, name: str) -> Span | None:
    for child in span.children:
        if child.name == name:
            return child
    return None


def level_metrics(report: RunReport) -> list[LevelMetrics]:
    """Per-level measured + derived metrics of every ``level`` span."""
    rows: list[LevelMetrics] = []
    for root in report.spans:
        for level in root.find("level"):
            opt = _first(level, "optimization")
            agg = _first(level, "aggregation")
            opt_s = opt.seconds if opt else 0.0
            agg_s = agg.seconds if agg else 0.0
            opt_c = opt.counters if opt else {}
            agg_c = agg.counters if agg else {}
            sweeps = int(opt_c.get("sweeps", level.counters.get("sweeps", 0)))
            moved = int(opt_c.get("moved", 0))
            n = int(level.attributes.get("num_vertices", 0))
            num_edges = int(level.attributes.get("num_edges", 0))
            frontier_peak = 0.0
            if opt is not None:
                for sweep in opt.children:
                    if sweep.name == "sweep":
                        frontier_peak = max(
                            frontier_peak, sweep.counters.get("frontier_size", 0)
                        )
            q = level.counters.get("modularity")
            probes = float(agg_c.get("hash_probes", 0))
            issued = float(opt_c.get("issued_thread_cycles", 0)) + float(
                agg_c.get("issued_thread_cycles", 0)
            )
            active = float(opt_c.get("active_thread_cycles", 0)) + float(
                agg_c.get("active_thread_cycles", 0)
            )
            allocated_slots = float(agg_c.get("allocated_edge_slots", 0))
            used_slots = float(agg_c.get("used_edge_slots", 0))
            rows.append(
                LevelMetrics(
                    level=int(level.attributes.get("level", len(rows))),
                    num_vertices=n,
                    num_edges=num_edges,
                    sweeps=sweeps,
                    moved=moved,
                    optimization_seconds=opt_s,
                    aggregation_seconds=agg_s,
                    modularity=float(q) if q is not None else None,
                    mteps=(2.0 * num_edges * sweeps / opt_s / 1e6) if opt_s > 0 else 0.0,
                    moves_per_sweep=moved / sweeps if sweeps > 0 else 0.0,
                    probe_mrate=(probes / agg_s / 1e6) if agg_s > 0 else 0.0,
                    frontier_fraction=frontier_peak / n if n > 0 else 0.0,
                    active_thread_fraction=(
                        min(1.0, active / issued) if issued > 0 else 0.0
                    ),
                    edge_slot_utilisation=(
                        used_slots / allocated_slots if allocated_slots > 0 else 0.0
                    ),
                )
            )
    return rows


def stage_table(report: RunReport) -> str:
    """The Fig. 5/6 stage-breakdown table with derived rates."""
    rows = []
    for m in level_metrics(report):
        rows.append(
            (
                m.level,
                m.num_vertices,
                m.num_edges,
                m.sweeps,
                m.moved,
                f"{m.optimization_seconds * 1e3:.2f}",
                f"{m.aggregation_seconds * 1e3:.2f}",
                f"{m.optimization_fraction:.0%}",
                f"{m.mteps:.2f}",
                f"{m.moves_per_sweep:.1f}",
                f"{m.probe_mrate:.2f}",
                f"{m.frontier_fraction:.1%}",
                "-" if m.active_thread_fraction <= 0 else
                f"{m.active_thread_fraction:.0%}",
                "-" if m.edge_slot_utilisation <= 0 else
                f"{m.edge_slot_utilisation:.0%}",
                "-" if m.modularity is None else f"{m.modularity:.4f}",
            )
        )
    return format_table(
        (
            "level", "n", "E", "sweeps", "moved", "opt ms", "agg ms",
            "opt%", "MTEPS", "mv/swp", "probes M/s", "front%", "act%",
            "slot%", "Q",
        ),
        rows,
    )


# --------------------------------------------------------------------- #
# Critical path / flame view
# --------------------------------------------------------------------- #
def critical_path_spans(report: RunReport) -> list[tuple[str, Span]]:
    """The hottest root→leaf chain as ``(path, span)`` pairs.

    Greedy descent: from each span, follow the child with the largest
    wall-clock seconds.  This is the chain an optimisation effort should
    walk first.
    """
    if not report.spans:
        return []
    span = max(report.spans, key=lambda s: s.seconds)
    path = span_component(span)
    chain = [(path, span)]
    while span.children:
        span = max(span.children, key=lambda s: s.seconds)
        path = f"{path}/{span_component(span)}"
        chain.append((path, span))
    return chain


def critical_path(report: RunReport, *, max_depth: int = 3) -> str:
    """Text flame view of the span tree, critical path marked with ``*``.

    Each line shows the span, its wall-clock milliseconds, its share of
    the root's seconds, and its *self* share (time not attributed to
    children).  ``max_depth`` prunes the sweep layer by default.
    """
    lines: list[str] = []
    hot = {id(span) for _, span in critical_path_spans(report)}
    total = sum(span.seconds for span in report.spans) or 1.0

    def render(span: Span, depth: int) -> None:
        if depth >= max_depth:
            return
        child_s = sum(c.seconds for c in span.children)
        self_s = max(span.seconds - child_s, 0.0)
        mark = " *" if id(span) in hot else ""
        lines.append(
            f"{'  ' * depth}{span_component(span):<{max(30 - 2 * depth, 8)}s} "
            f"{span.seconds * 1e3:9.2f} ms  {span.seconds / total:6.1%}  "
            f"self {self_s / total:6.1%}{mark}"
        )
        for child in span.children:
            render(child, depth + 1)

    for root in report.spans:
        render(root, 0)
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# Trace file loading (all three container shapes)
# --------------------------------------------------------------------- #
def load_trace(path: str | Path) -> list[RunReport]:
    """Read a ``repro.trace/1`` file into a flat list of reports.

    Accepts every shape the toolchain writes: a single report (``detect
    --trace``), a stream container with ``initial`` + ``batches``
    (``stream --trace``), and a bench container with ``reports``
    (:func:`benchmarks._util.emit_report`).
    """
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict):
        raise ValueError(f"{path}: not a repro.trace/1 document")
    if "spans" in data:
        return [RunReport.from_dict(data)]
    reports: list[RunReport] = []
    if "initial" in data or "batches" in data:
        if data.get("initial") is not None:
            reports.append(RunReport.from_dict(data["initial"]))
        reports.extend(RunReport.from_dict(r) for r in data.get("batches", []))
        return reports
    if "reports" in data:
        return [RunReport.from_dict(r) for r in data.get("reports", [])]
    raise ValueError(
        f"{path}: unrecognised trace container "
        "(expected 'spans', 'initial'/'batches', or 'reports')"
    )


# --------------------------------------------------------------------- #
# Streaming roll-up
# --------------------------------------------------------------------- #
def stream_aggregate(reports: list[RunReport]) -> dict[str, Any]:
    """Cross-batch aggregate of a stream's per-batch reports.

    Considers only ``meta.kind == "batch"`` reports (the initial run and
    any surrounding reports are skipped), and summarises batch count,
    median/total batch seconds, total and peak frontier size, and the
    per-mode batch counts.
    """
    seconds: list[float] = []
    frontier_total = 0
    frontier_peak = 0
    modes: dict[str, int] = {}
    for report in reports:
        if report.meta.get("kind") != "batch":
            continue
        result = report.result
        seconds.append(float(result.get("seconds", 0.0)))
        frontier = int(result.get("frontier_size", 0))
        frontier_total += frontier
        frontier_peak = max(frontier_peak, frontier)
        mode = str(result.get("mode", "?"))
        modes[mode] = modes.get(mode, 0) + 1
    ordered = sorted(seconds)
    median = ordered[len(ordered) // 2] if ordered else 0.0
    return {
        "batches": len(seconds),
        "median_seconds": median,
        "total_seconds": float(sum(seconds)),
        "total_frontier": frontier_total,
        "peak_frontier": frontier_peak,
        "modes": modes,
    }


def format_stream_aggregate(aggregate: dict[str, Any]) -> str:
    """One-paragraph rendering of :func:`stream_aggregate`."""
    modes = "  ".join(f"{k}={v}" for k, v in sorted(aggregate["modes"].items()))
    return (
        f"stream aggregate: {aggregate['batches']} batches  "
        f"median {aggregate['median_seconds'] * 1e3:.1f} ms  "
        f"total {aggregate['total_seconds'] * 1e3:.1f} ms  "
        f"frontier total {aggregate['total_frontier']} "
        f"(peak {aggregate['peak_frontier']})  modes: {modes or '-'}"
    )
