"""The perf regression gate and the committed baseline it runs against."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.suite import small_suite, suite_entry
from repro.obs import (
    TrajectoryEntry,
    TrajectoryStore,
    evaluate_gate,
    run_gate_entries,
)

BASELINE = Path(__file__).resolve().parents[2] / "benchmarks/results/BENCH_trajectory.json"


def _entry(metric=0.010, graph="g", engine="vectorized", fp="abc", ts=0.0):
    return TrajectoryEntry(
        graph=graph,
        engine=engine,
        fingerprint=fp,
        commit="deadbee",
        timestamp=ts,
        metrics={"total_seconds": metric * 2, "optimization_seconds": metric},
    )


def test_gate_passes_when_within_threshold():
    baseline = [_entry(metric=0.010, ts=1.0)]
    result = evaluate_gate([_entry(metric=0.015, ts=2.0)], baseline, threshold=2.0)
    assert result.ok
    assert {c.status for c in result.checks} == {"ok"}
    assert result.to_dict()["verdict"] == "ok"


def test_gate_fails_on_3x_slowdown():
    baseline = [_entry(metric=0.010, ts=1.0)]
    result = evaluate_gate([_entry(metric=0.030, ts=2.0)], baseline, threshold=2.0)
    assert not result.ok
    assert {f"{c.graph}/{c.engine}/{c.metric}" for c in result.regressions} == {
        "g/vectorized/total_seconds",
        "g/vectorized/optimization_seconds",
    }
    doc = result.to_dict()
    assert doc["verdict"] == "regression"
    assert "g/vectorized/optimization_seconds" in doc["regressions"]
    assert "REGRESSION" in result.format()


def test_gate_baseline_is_window_minimum():
    baseline = [_entry(metric=m, ts=float(i)) for i, m in enumerate([0.008, 0.020, 0.024])]
    current = [_entry(metric=0.025, ts=9.0)]
    # The window minimum (0.008) is the bar: 0.025 is a >3x regression…
    assert not evaluate_gate(current, baseline, threshold=2.0).ok
    # …but a window of 2 forgets the old fast run and passes.
    assert evaluate_gate(current, baseline, threshold=2.0, window=2).ok


def test_gate_new_keys_never_fail():
    result = evaluate_gate([_entry(graph="unseen")], [], threshold=2.0)
    assert result.ok
    assert {c.status for c in result.checks} == {"new"}
    assert all(c.ratio is None for c in result.checks)


def test_gate_mismatched_fingerprint_is_new():
    baseline = [_entry(fp="abc", metric=0.001)]
    result = evaluate_gate([_entry(fp="xyz", metric=1.0)], baseline)
    assert result.ok
    assert result.checks[0].status == "new"


def test_gate_accepts_store(tmp_path):
    store = TrajectoryStore(tmp_path / "traj.json")
    store.append(_entry(metric=0.010))
    assert not evaluate_gate([_entry(metric=0.050)], store).ok


def test_gate_threshold_must_exceed_one():
    with pytest.raises(ValueError, match="threshold"):
        evaluate_gate([], [], threshold=1.0)


def test_run_gate_entries_produces_keyed_minima():
    lines: list[str] = []
    entries = run_gate_entries(
        [suite_entry("com-dblp")],
        engines=("vectorized",),
        scale=0.1,
        repeats=2,
        commit="cafe123",
        progress=lines.append,
    )
    (entry,) = entries
    assert entry.graph == "com-dblp"
    assert entry.engine == "vectorized"
    assert entry.commit == "cafe123"
    assert entry.metrics["total_seconds"] > 0
    assert len(lines) == 1 and "com-dblp" in lines[0]
    # The same config lands on the same key on a rerun: gate keys are stable.
    again = run_gate_entries(
        [suite_entry("com-dblp")],
        engines=("vectorized",),
        scale=0.1,
        repeats=1,
        commit="cafe124",
    )
    assert again[0].key == entry.key


# --------------------------------------------------------------------- #
# The committed baseline (acceptance criteria)
# --------------------------------------------------------------------- #
def test_committed_baseline_exists_and_validates():
    store = TrajectoryStore(BASELINE)
    entries = store.load()
    assert entries, f"{BASELINE} must ship with baseline entries"
    covered = {(e.graph, e.engine) for e in entries}
    for suite in small_suite():
        for engine in ("vectorized", "simulated"):
            assert (suite.name, engine) in covered, (suite.name, engine)


def test_committed_baseline_gates_itself():
    store = TrajectoryStore(BASELINE)
    result = evaluate_gate(list(store.latest().values()), store, threshold=2.0)
    assert result.ok, result.format()
    assert result.checks, "baseline must produce comparable checks"
