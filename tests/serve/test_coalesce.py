"""BatchCoalescer: fold semantics vs. sequential ``apply_edge_batch``."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gpu_louvain import gpu_louvain
from repro.graph.build import apply_edge_batch, from_edges
from repro.graph.generators import caveman
from repro.serve import BatchCoalescer
from repro.stream import StreamConfig, StreamSession

from ..conftest import csr_graphs


def _pairs(graph):
    u, v, w = graph.edge_list(unique=True)
    return {(int(a), int(b)): float(c) for a, b, c in zip(u, v, w)}


def _arrays(t):
    """Normalise an (add / remove) tuple to plain int/float lists."""
    if t is None:
        return None
    return tuple(np.asarray(part).tolist() for part in t)


# --------------------------------------------------------------------- #
# Unit semantics
# --------------------------------------------------------------------- #
class TestFoldRules:
    def base(self):
        return from_edges([0, 1, 2, 3], [1, 2, 3, 0], [1.0, 1.0, 1.0, 1.0])

    def test_duplicate_adds_in_one_batch_merge(self):
        bc = BatchCoalescer(self.base())
        bc.add_batch(add=([0, 2, 0], [2, 0, 2], [1.0, 2.0, 3.0]))
        add, remove = bc.net()
        assert remove is None
        assert _arrays(add) == ([0], [2], [6.0])

    def test_duplicate_adds_across_batches_merge(self):
        bc = BatchCoalescer(self.base())
        bc.add_batch(add=([0], [2], [1.5]))
        bc.add_batch(add=([2], [0], [2.5]))
        add, remove = bc.net()
        assert remove is None
        assert _arrays(add) == ([0], [2], [4.0])
        assert bc.requests == 2
        assert bc.pairs_touched == 1

    def test_add_onto_existing_edge_sums(self):
        bc = BatchCoalescer(self.base())
        bc.add_batch(add=([0], [1], [2.0]))
        bc.add_batch(add=([1], [0], [3.0]))
        add, remove = bc.net()
        assert remove is None
        assert _arrays(add) == ([0], [1], [5.0])

    def test_insert_then_delete_same_batch_collapses(self):
        bc = BatchCoalescer(self.base())
        # (0,2) does not exist: created and removed in one batch -> nothing.
        # apply_edge_batch validates removes against the batch *start*, so
        # within one batch this remove is invalid; across the burst the
        # coalescer sees the pair exist when batch 2 arrives.
        bc.add_batch(add=([0], [2], [1.0]))
        bc.add_batch(remove=([0], [2]))
        add, remove = bc.net()
        assert add is None and remove is None

    def test_existing_removed_then_readded(self):
        bc = BatchCoalescer(self.base())
        bc.add_batch(remove=([0], [1]))
        bc.add_batch(add=([1], [0], [7.0]))
        add, remove = bc.net()
        assert _arrays(remove) == ([0], [1])
        assert _arrays(add) == ([0], [1], [7.0])

    def test_existing_removed_and_readded_same_batch(self):
        # apply_edge_batch semantics: the pair ends with exactly the added
        # weight (not base + added).
        bc = BatchCoalescer(self.base())
        bc.add_batch(add=([0], [1], [9.0]), remove=([0], [1]))
        add, remove = bc.net()
        assert _arrays(remove) == ([0], [1])
        assert _arrays(add) == ([0], [1], [9.0])

    def test_existing_removed_stays_removed(self):
        bc = BatchCoalescer(self.base())
        bc.add_batch(remove=([2], [1]))
        add, remove = bc.net()
        assert add is None
        assert _arrays(remove) == ([1], [2])

    def test_remove_nonexistent_raises_and_rolls_back(self):
        bc = BatchCoalescer(self.base())
        bc.add_batch(add=([0], [2], [1.0]))
        # (1, 3) does not exist at this batch's start — the same-batch add
        # does not rescue the remove (apply_edge_batch validates removals
        # against the batch start).
        with pytest.raises(ValueError):
            bc.add_batch(add=([1], [3], [5.0]), remove=([1], [3]))
        # the failed batch left no trace: neither its add nor its remove
        add, remove = bc.net()
        assert _arrays(add) == ([0], [2], [1.0])
        assert remove is None
        assert bc.requests == 1

    def test_remove_twice_raises(self):
        bc = BatchCoalescer(self.base())
        bc.add_batch(remove=([0], [1]))
        with pytest.raises(ValueError):
            bc.add_batch(remove=([0], [1]))

    def test_burst_created_pair_removable_in_later_batch(self):
        bc = BatchCoalescer(self.base())
        bc.add_batch(add=([0], [2], [1.0]))
        bc.add_batch(remove=([0], [2]))
        with pytest.raises(ValueError):
            bc.add_batch(remove=([0], [2]))

    def test_zero_weight_structural_add_is_kept(self):
        bc = BatchCoalescer(self.base())
        bc.add_batch(add=([0], [2], [0.0]))
        add, remove = bc.net()
        assert _arrays(add) == ([0], [2], [0.0])

    def test_zero_net_touch_of_existing_pair_is_dropped(self):
        bc = BatchCoalescer(self.base())
        bc.add_batch(add=([0], [1], [2.0]))
        bc.add_batch(add=([0], [1], [-2.0]))
        add, remove = bc.net()
        assert add is None and remove is None

    def test_empty_net(self):
        bc = BatchCoalescer(self.base())
        assert bc.net() == (None, None)
        bc.add_batch()
        assert bc.net() == (None, None)


# --------------------------------------------------------------------- #
# Property: coalesced apply == sequential applies (graph level)
# --------------------------------------------------------------------- #
@st.composite
def bursts(draw):
    """A base graph plus a sequentially-valid burst of batches."""
    graph = draw(csr_graphs(max_vertices=10, max_edges=24, min_edges=2))
    n = graph.num_vertices
    current = graph
    batches = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        na = draw(st.integers(min_value=0, max_value=4))
        add = None
        if na:
            au = draw(st.lists(st.integers(0, n - 1), min_size=na, max_size=na))
            av = draw(st.lists(st.integers(0, n - 1), min_size=na, max_size=na))
            # Integer weights: summation order cannot perturb the floats,
            # so graph equivalence is bit-exact.
            aw = [float(w) for w in
                  draw(st.lists(st.integers(1, 4), min_size=na, max_size=na))]
            add = (np.array(au), np.array(av), np.array(aw))
        eu, ev, _ = current.edge_list(unique=True)
        remove = None
        if eu.size:
            nr = draw(st.integers(min_value=0, max_value=min(3, eu.size)))
            if nr:
                idx = draw(st.lists(
                    st.integers(0, eu.size - 1),
                    min_size=nr, max_size=nr, unique=True,
                ))
                remove = (eu[list(idx)], ev[list(idx)])
        if add is None and remove is None:
            continue
        batches.append((add, remove))
        current, *_ = apply_edge_batch(current, add=add, remove=remove)
    return graph, batches, current


@settings(max_examples=60, deadline=None)
@given(bursts())
def test_coalesced_graph_equals_sequential(data):
    graph, batches, sequential = data
    bc = BatchCoalescer(graph)
    for add, remove in batches:
        bc.add_batch(add=add, remove=remove)
    add, remove = bc.net()
    if add is None and remove is None:
        coalesced = graph
    else:
        coalesced, *_ = apply_edge_batch(graph, add=add, remove=remove)
    np.testing.assert_array_equal(coalesced.indptr, sequential.indptr)
    np.testing.assert_array_equal(coalesced.indices, sequential.indices)
    np.testing.assert_array_equal(coalesced.weights, sequential.weights)


# --------------------------------------------------------------------- #
# Clustering equivalence under exact screening
# --------------------------------------------------------------------- #
def test_coalesced_apply_matches_full_rerun_on_sequential_graph():
    """Exact screening: one coalesced apply == warm full run on the graph
    the burst's batches produce sequentially."""
    graph, _ = caveman(6, 8)
    session = StreamSession(graph, StreamConfig(screening="exact"))
    m0 = session.membership.copy()

    batches = [
        ((np.array([0, 8]), np.array([16, 24]), np.array([1.0, 2.0])), None),
        ((np.array([0]), np.array([16]), np.array([1.0])),
         (np.array([1]), np.array([2]))),
        (None, (np.array([0]), np.array([16]))),
    ]
    sequential = graph
    for add, remove in batches:
        sequential, *_ = apply_edge_batch(sequential, add=add, remove=remove)

    bc = BatchCoalescer(graph)
    for add, remove in batches:
        bc.add_batch(add=add, remove=remove)
    add, remove = bc.net()
    result = session.apply(add=add, remove=remove)

    np.testing.assert_array_equal(session.graph.weights, sequential.weights)
    full = gpu_louvain(sequential, initial_communities=m0)
    np.testing.assert_array_equal(result.membership, full.membership)
    assert result.modularity == full.modularity
