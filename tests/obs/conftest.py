"""Fixtures for the trace-analytics tests: fabricated and real reports."""

from __future__ import annotations

import pytest

from repro.trace import RunReport, Span


def build_report(
    *,
    opt_seconds: float = 0.002,
    agg_seconds: float = 0.001,
    sweeps: int = 4,
    levels: int = 1,
    meta: dict | None = None,
) -> RunReport:
    """A hand-built single-run report with exactly known numbers.

    Level 0 has 100 vertices / 250 edges, so with the defaults the
    derived level-0 MTEPS is ``2*250*4 / 0.002 / 1e6 = 1.0`` exactly.
    """
    level_spans = []
    for lv in range(levels):
        opt = Span(
            "optimization",
            counters={"sweeps": sweeps, "moved": 10 * sweeps},
            seconds=opt_seconds,
            children=[
                Span(
                    "sweep",
                    attributes={"sweep": i},
                    counters={"moved": 10, "frontier_size": 50},
                    seconds=opt_seconds / sweeps,
                )
                for i in range(sweeps)
            ],
        )
        agg = Span(
            "aggregation",
            counters={"hash_probes": 1_000},
            seconds=agg_seconds,
        )
        level_spans.append(
            Span(
                "level",
                attributes={
                    "level": lv,
                    "num_vertices": 100 // (lv + 1),
                    "num_edges": 250 // (lv + 1),
                },
                counters={"sweeps": sweeps, "modularity": 0.42},
                seconds=opt_seconds + agg_seconds,
                children=[opt, agg],
            )
        )
    run = Span(
        "run",
        seconds=levels * (opt_seconds + agg_seconds) + 5e-4,
        children=level_spans,
    )
    return RunReport(
        meta=meta if meta is not None else {"kind": "run"},
        result={"modularity": 0.42, "num_communities": 5, "num_levels": levels},
        spans=[run],
    )


@pytest.fixture
def make_report():
    """The :func:`build_report` factory as a fixture."""
    return build_report


@pytest.fixture(scope="session")
def karate_report() -> RunReport:
    """One real traced vectorized run on the karate club."""
    from repro.core.gpu_louvain import gpu_louvain
    from repro.graph.generators import karate_club
    from repro.trace import Tracer, report_from_result

    graph = karate_club()
    tracer = Tracer()
    result = gpu_louvain(graph, tracer=tracer)
    return report_from_result(
        result,
        tracer=tracer,
        kind="run",
        graph="karate",
        engine="vectorized",
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
    )
