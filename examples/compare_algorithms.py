#!/usr/bin/env python
"""Compare every Louvain implementation in this repository on one graph.

Runs the paper's algorithm (both engines' semantics are identical, so the
vectorized one is used), the sequential baseline, and all four comparator
parallel algorithms from Section 3, reporting quality, runtime, and
agreement between the clusterings.

Run:  python examples/compare_algorithms.py [mixing]
"""

import sys
import time

from repro import gpu_louvain, sequential_louvain
from repro.graph.generators import lfr_like
from repro.metrics.quality import adjusted_rand_index, normalized_mutual_information
from repro.parallel import (
    coarse_louvain,
    lu_louvain,
    plm_louvain,
    sort_based_louvain,
)


def main() -> None:
    mixing = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    graph, truth = lfr_like(4000, rng=1, avg_degree=14, mixing=mixing)
    print(f"LFR-like benchmark: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges, mixing {mixing}")

    solvers = [
        ("gpu (paper)", lambda: gpu_louvain(graph, bin_vertex_limit=1_000)),
        ("sequential", lambda: sequential_louvain(graph)),
        ("plm [21]", lambda: plm_louvain(graph, num_threads=32)),
        ("lu-openmp [16]", lambda: lu_louvain(graph, bin_vertex_limit=1_000)),
        ("coarse [26,27]", lambda: coarse_louvain(graph, num_parts=4)),
        ("sort-based [4]", lambda: sort_based_louvain(graph)),
    ]

    results = {}
    print(f"\n{'solver':16s} {'Q':>8s} {'comms':>6s} {'levels':>6s} "
          f"{'seconds':>8s} {'ARI vs truth':>12s}")
    for name, run in solvers:
        start = time.perf_counter()
        result = run()
        seconds = time.perf_counter() - start
        results[name] = result
        ari = adjusted_rand_index(result.membership, truth)
        print(f"{name:16s} {result.modularity:8.4f} "
              f"{result.num_communities:6d} {result.num_levels:6d} "
              f"{seconds:8.3f} {ari:12.3f}")

    # --- pairwise agreement --------------------------------------------- #
    gpu_membership = results["gpu (paper)"].membership
    print("\nagreement with the paper's algorithm (NMI):")
    for name, result in results.items():
        if name == "gpu (paper)":
            continue
        nmi = normalized_mutual_information(gpu_membership, result.membership)
        print(f"  {name:16s} {nmi:.3f}")


if __name__ == "__main__":
    main()
