#!/usr/bin/env python
"""Profile the algorithm on the simulated GPU (Section 4.1 / Section 5).

The ``engine="simulated"`` mode replays every kernel thread-group by
thread-group against a Tesla K40m device model: real open-addressing hash
tables, warp packing with divergence, shared vs global memory placement.
It answers the questions a CUDA profiler would — active-thread fraction,
per-kernel cycles, hash-probe efficiency — without a GPU.

Run:  python examples/simulated_device_profiling.py
"""

import numpy as np

from repro import gpu_louvain
from repro.gpu.device import TESLA_K40M, DeviceSpec
from repro.graph.generators import social_network


def main() -> None:
    graph = social_network(1500, 10, rng=3)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges, "
          f"degrees {graph.degrees.min()}..{graph.degrees.max()}")

    result = gpu_louvain(graph, engine="simulated")
    profile = result.profile

    print(f"\nclustering: Q = {result.modularity:.4f} "
          f"({result.num_levels} levels)")
    print(f"simulated K40m wall-clock: {result.simulated_seconds * 1e3:.3f} ms")
    print(f"active-thread fraction: {profile.active_thread_fraction():.3f} "
          f"(paper measured 0.625 on uk-2002)")

    # --- per-kernel accounting ------------------------------------------ #
    print("\nper-kernel totals (level 0):")
    level0 = profile.optimization[0]
    for name, stats in sorted(level0.by_kernel().items()):
        probes_per_edge = (
            stats.hash_stats.probes / stats.num_edges if stats.num_edges else 0.0
        )
        print(f"  {name:28s} vertices={stats.num_vertices:5d} "
              f"warp-cycles={stats.warp_cycles:10.0f} "
              f"active={stats.active_thread_fraction:.3f} "
              f"probes/edge={probes_per_edge:.2f}")

    agg0 = profile.aggregation[0]
    for name, stats in sorted(agg0.by_kernel().items()):
        print(f"  {name:28s} items={stats.num_vertices:5d} "
              f"warp-cycles={stats.warp_cycles:10.0f} "
              f"active={stats.active_thread_fraction:.3f}")

    # --- memory placement ------------------------------------------------ #
    shared = sum(k.shared_bytes for p in profile.optimization for k in p.kernels)
    global_ = sum(k.global_bytes for p in profile.optimization for k in p.kernels)
    print(f"\nhash-table traffic: {shared / 1024:.0f} KiB shared, "
          f"{global_ / 1024:.0f} KiB global")
    print("(only vertices of degree > 319 — bucket 7 — spill to global memory)")

    # --- what-if: a smaller device --------------------------------------- #
    small = DeviceSpec(
        name="half-K40m", num_sms=TESLA_K40M.num_sms // 2,
        cores_per_sm=TESLA_K40M.cores_per_sm, clock_mhz=TESLA_K40M.clock_mhz,
    )
    small_result = gpu_louvain(graph, engine="simulated", device=small)
    print(f"\nwhat-if on {small.name}: "
          f"{small_result.simulated_seconds * 1e3:.3f} ms "
          f"({small_result.simulated_seconds / result.simulated_seconds:.2f}x)")
    assert np.array_equal(small_result.membership, result.membership), \
        "device size must never change the clustering"
    print("identical clustering on both devices (results are device-independent)")


if __name__ == "__main__":
    main()
