"""Experiment driver: runs solvers over the suite and collects result rows.

Each benchmark script under ``benchmarks/`` is a thin wrapper around these
functions, so the experiment logic is testable and reusable from Python.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from ..core.gpu_louvain import gpu_louvain
from ..graph.csr import CSRGraph
from ..result import LouvainResult
from ..seq.louvain import louvain as sequential_louvain
from ..trace import RunReport, Tracer, report_from_result
from .suite import SUITE, SuiteEntry

__all__ = [
    "timed",
    "SolverRun",
    "run_gpu",
    "run_sequential",
    "suite_report",
    "Table1Row",
    "table1_rows",
    "ThresholdCell",
    "threshold_grid",
    "StageRow",
    "stage_breakdown",
]


def timed(fn: Callable[[], LouvainResult]) -> tuple[LouvainResult, float]:
    """Run ``fn`` and return ``(result, wall_clock_seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


@dataclass(frozen=True)
class SolverRun:
    """One solver execution on one graph."""

    name: str
    seconds: float
    modularity: float
    levels: int
    result: LouvainResult


def run_gpu(
    graph: CSRGraph,
    *,
    threshold_bin: float = 1e-2,
    threshold_final: float = 1e-6,
    bin_vertex_limit: int = 1_000,
    tracer: Tracer | None = None,
    **overrides,
) -> SolverRun:
    """Run the GPU engine with suite-scaled adaptive thresholds.

    ``bin_vertex_limit`` defaults to 1k here (not the paper's 100k)
    because the analog graphs are 200-4000x smaller; scaled this way the
    early (large) levels run under t_bin and only the contracted tail
    under t_final, as in the paper — including on the nlpkkt analogs,
    whose expensive mid-hierarchy phases the paper explicitly observes
    happening "while we are still using the t_bin threshold".
    """
    result, seconds = timed(
        lambda: gpu_louvain(
            graph,
            threshold_bin=threshold_bin,
            threshold_final=threshold_final,
            bin_vertex_limit=bin_vertex_limit,
            tracer=tracer,
            **overrides,
        )
    )
    return SolverRun("gpu", seconds, result.modularity, result.num_levels, result)


#: Suite-scaled GPU defaults (see :func:`run_gpu`) — also the config
#: meta :func:`suite_report` fingerprints trajectory entries under.
SUITE_GPU_DEFAULTS = {
    "threshold_bin": 1e-2,
    "threshold_final": 1e-6,
    "bin_vertex_limit": 1_000,
}


def suite_report(
    entry: SuiteEntry,
    *,
    engine: str = "vectorized",
    scale: float = 1.0,
    **overrides,
) -> RunReport:
    """One traced GPU run of a suite entry as a :class:`RunReport`.

    The report's ``meta`` carries the graph name, engine, scale, and the
    resolved config values (``SUITE_GPU_DEFAULTS`` + ``overrides``) —
    everything :func:`repro.obs.trajectory.entry_from_report` needs to
    key a stable trajectory entry.
    """
    graph = entry.load(scale)
    config = {**SUITE_GPU_DEFAULTS, **overrides}
    tracer = Tracer()
    run = run_gpu(graph, engine=engine, tracer=tracer, **config)
    return report_from_result(
        run.result,
        tracer=tracer,
        kind="run",
        graph=entry.name,
        engine=engine,
        scale=scale,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        seconds=round(run.seconds, 6),
        **config,
    )


def run_sequential(
    graph: CSRGraph,
    *,
    adaptive: bool = False,
    threshold: float = 1e-6,
    threshold_bin: float = 1e-2,
    bin_vertex_limit: int = 1_000,
) -> SolverRun:
    """Run the sequential baseline (original or adaptive-threshold)."""
    result, seconds = timed(
        lambda: sequential_louvain(
            graph,
            threshold=threshold,
            adaptive=adaptive,
            threshold_bin=threshold_bin,
            threshold_final=threshold,
            bin_vertex_limit=bin_vertex_limit,
        )
    )
    name = "seq-adaptive" if adaptive else "seq"
    return SolverRun(name, seconds, result.modularity, result.num_levels, result)


@dataclass(frozen=True)
class Table1Row:
    """One row of the Table-1 reproduction."""

    entry: SuiteEntry
    num_vertices: int
    num_edges: int
    seq_seconds: float
    gpu_seconds: float
    seq_modularity: float
    gpu_modularity: float
    #: Full solver results, kept so benchmarks can emit per-stage
    #: ``repro.trace`` reports without re-running the suite.
    seq_result: LouvainResult | None = None
    gpu_result: LouvainResult | None = None

    @property
    def speedup(self) -> float:
        """Measured sequential / GPU runtime ratio."""
        return self.seq_seconds / self.gpu_seconds if self.gpu_seconds > 0 else 0.0

    @property
    def relative_modularity(self) -> float:
        """GPU modularity / sequential modularity."""
        if self.seq_modularity == 0:
            return 1.0
        return self.gpu_modularity / self.seq_modularity


def table1_rows(
    entries: Sequence[SuiteEntry] | None = None,
    *,
    scale: float = 1.0,
    adaptive_seq: bool = False,
) -> list[Table1Row]:
    """Reproduce Table 1: per graph, sizes and seq/GPU runtimes.

    ``adaptive_seq=True`` gives the Figure-4 variant where the sequential
    baseline also uses the adaptive thresholds.
    """
    rows: list[Table1Row] = []
    for entry in entries if entries is not None else SUITE:
        graph = entry.load(scale)
        seq = run_sequential(graph, adaptive=adaptive_seq)
        gpu = run_gpu(graph)
        rows.append(
            Table1Row(
                entry=entry,
                num_vertices=graph.num_vertices,
                num_edges=graph.num_edges,
                seq_seconds=seq.seconds,
                gpu_seconds=gpu.seconds,
                seq_modularity=seq.modularity,
                gpu_modularity=gpu.modularity,
                seq_result=seq.result,
                gpu_result=gpu.result,
            )
        )
    return rows


@dataclass(frozen=True)
class ThresholdCell:
    """One (t_bin, t_final) cell of the Figure-1/2 grids."""

    threshold_bin: float
    threshold_final: float
    mean_relative_modularity: float
    mean_seconds: float
    per_graph_seconds: tuple[float, ...]


def threshold_grid(
    entries: Sequence[SuiteEntry],
    threshold_bins: Sequence[float],
    threshold_finals: Sequence[float],
    *,
    scale: float = 1.0,
) -> list[ThresholdCell]:
    """Sweep the (t_bin, t_final) grid of figures 1 and 2.

    Relative modularity is against the fixed sequential baseline of each
    graph, as in Figure 1.
    """
    graphs = [entry.load(scale) for entry in entries]
    baselines = [run_sequential(g).modularity for g in graphs]
    cells: list[ThresholdCell] = []
    for t_bin in threshold_bins:
        for t_final in threshold_finals:
            if t_final > t_bin:
                continue
            rel_mods: list[float] = []
            secs: list[float] = []
            for graph, base_q in zip(graphs, baselines):
                run = run_gpu(
                    graph, threshold_bin=t_bin, threshold_final=t_final
                )
                rel_mods.append(run.modularity / base_q if base_q else 1.0)
                secs.append(run.seconds)
            cells.append(
                ThresholdCell(
                    threshold_bin=t_bin,
                    threshold_final=t_final,
                    mean_relative_modularity=float(np.mean(rel_mods)),
                    mean_seconds=float(np.mean(secs)),
                    per_graph_seconds=tuple(secs),
                )
            )
    return cells


@dataclass(frozen=True)
class StageRow:
    """One hierarchy stage's time split (figures 5 and 6)."""

    stage: int
    num_vertices: int
    num_edges: int
    optimization_seconds: float
    aggregation_seconds: float
    sweeps: int
    modularity: float


def stage_breakdown(result: LouvainResult) -> list[StageRow]:
    """Per-stage optimization/aggregation split of a finished run."""
    return [
        StageRow(
            stage=s.stage,
            num_vertices=s.num_vertices,
            num_edges=s.num_edges,
            optimization_seconds=s.optimization_seconds,
            aggregation_seconds=s.aggregation_seconds,
            sweeps=s.sweeps,
            modularity=s.modularity,
        )
        for s in result.timings.stages
    ]
