"""The append-only perf-trajectory store and its fingerprints."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    TRAJECTORY_SCHEMA,
    TrajectoryEntry,
    TrajectoryStore,
    config_fingerprint,
    entry_from_report,
    fingerprint,
)


def _entry(graph="g", engine="vectorized", fp="abc", metric=1.0, ts=0.0):
    return TrajectoryEntry(
        graph=graph,
        engine=engine,
        fingerprint=fp,
        commit="deadbee",
        timestamp=ts,
        metrics={"optimization_seconds": metric, "total_seconds": metric * 2},
    )


def test_fingerprint_is_order_independent():
    assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})
    assert fingerprint({"a": 1}) != fingerprint({"a": 2})
    assert len(fingerprint({})) == 12


def test_config_fingerprint_accepts_dict_and_dataclass():
    from repro.core.config import GPULouvainConfig

    by_dict = config_fingerprint({"threshold_bin": 1e-2})
    assert by_dict == config_fingerprint(threshold_bin=1e-2)
    cfg = GPULouvainConfig()
    assert config_fingerprint(cfg) == config_fingerprint(cfg)
    # Keyword overrides change the digest.
    assert config_fingerprint(cfg, scale=2.0) != config_fingerprint(cfg)
    with pytest.raises(TypeError):
        config_fingerprint(object())


def test_entry_from_report_defaults_from_meta(karate_report):
    entry = entry_from_report(karate_report, commit="cafe123", timestamp=42.0)
    assert entry.graph == "karate"
    assert entry.engine == "vectorized"
    assert entry.commit == "cafe123"
    assert entry.timestamp == 42.0
    assert entry.metrics["total_seconds"] > 0
    assert entry.metrics["optimization_seconds"] > 0
    assert entry.metrics["modularity"] == pytest.approx(
        karate_report.result["modularity"]
    )
    assert entry.metrics["level0_mteps"] > 0


def test_entry_fingerprint_ignores_volatile_meta(karate_report):
    a = entry_from_report(karate_report, commit="a", timestamp=1.0)
    drifted = type(karate_report)(
        meta={**karate_report.meta, "seconds": 99.9, "timestamp": 123.0},
        result=karate_report.result,
        spans=karate_report.spans,
    )
    b = entry_from_report(drifted, commit="b", timestamp=2.0)
    assert a.fingerprint == b.fingerprint
    # A config-meta change is a different key.
    changed = type(karate_report)(
        meta={**karate_report.meta, "threshold_bin": 0.5},
        result=karate_report.result,
        spans=karate_report.spans,
    )
    assert entry_from_report(changed).fingerprint != a.fingerprint


def test_entry_from_report_requires_graph(make_report):
    with pytest.raises(ValueError, match="graph"):
        entry_from_report(make_report())
    entry = entry_from_report(make_report(), graph="g", engine="e")
    assert entry.key == ("g", "e", entry.fingerprint)


def test_store_append_and_load_roundtrip(tmp_path):
    store = TrajectoryStore(tmp_path / "traj.json")
    assert store.load() == []
    assert store.append(_entry(ts=1.0)) == 1
    assert store.append([_entry(ts=2.0), _entry(graph="h", ts=3.0)]) == 3
    entries = store.load()
    assert [e.timestamp for e in entries] == [1.0, 2.0, 3.0]
    assert entries[0] == _entry(ts=1.0)
    # The file is strict JSON with the schema marker.
    data = json.loads((tmp_path / "traj.json").read_text())
    assert data["schema"] == TRAJECTORY_SCHEMA


def test_store_rejects_foreign_schema(tmp_path):
    path = tmp_path / "traj.json"
    path.write_text('{"schema": "something-else/1", "entries": []}')
    with pytest.raises(ValueError, match="schema"):
        TrajectoryStore(path).load()


def test_series_filters_and_truncates(tmp_path):
    store = TrajectoryStore(tmp_path / "traj.json")
    store.append([_entry(metric=float(i), ts=float(i)) for i in range(1, 6)])
    store.append(_entry(graph="other", metric=99.0))

    rows = store.series(graph="g", metric="optimization_seconds")
    assert [v for _, v in rows] == [1.0, 2.0, 3.0, 4.0, 5.0]
    last = store.series(graph="g", metric="optimization_seconds", last=2)
    assert [v for _, v in last] == [4.0, 5.0]
    assert store.series(graph="missing") == []
    # Entries without the metric are skipped, not crashed on.
    assert store.series(graph="g", metric="nonexistent") == []


def test_keys_and_latest(tmp_path):
    store = TrajectoryStore(tmp_path / "traj.json")
    store.append([_entry(ts=1.0), _entry(ts=2.0), _entry(graph="h", ts=3.0)])
    assert store.keys() == [("g", "vectorized", "abc"), ("h", "vectorized", "abc")]
    latest = store.latest()
    assert latest[("g", "vectorized", "abc")].timestamp == 2.0
