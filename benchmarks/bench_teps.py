"""Section 5's TEPS comparison.

Paper: their largest first-phase processing rate is 0.225 GTEPS (on
channel-500), versus 1.54 GTEPS for the 524,288-thread Blue Gene/Q of
Xinyu et al. — "less than a factor of 7" apart.  TEPS counts stored-edge
traversals of the first modularity-optimization phase per second.

At this reproduction's scale the engine is NumPy on a CPU, so absolute
TEPS land in the MTEPS range; the shape to check is that the densest
graphs give the best rates (hash work per edge is constant, per-vertex
overhead amortises) and that the ratio to the paper's BG/Q figure is
recorded.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import banner, format_table
from repro.bench.runner import run_gpu
from repro.bench.suite import SUITE

from _util import emit

GRAPH_NAMES = (
    "channel-500x100x100-b050",
    "uk-2002",
    "com-orkut",
    "nlpkkt200",
    "rgg_n_2_24_s0",
    "europe_osm",
    "road_usa",
)

BGQ_GTEPS = 1.54
PAPER_BEST_GTEPS = 0.225


@pytest.fixture(scope="module")
def runs():
    rows = []
    for name in GRAPH_NAMES:
        entry = next(e for e in SUITE if e.name == name)
        graph = entry.load()
        gpu = run_gpu(graph)
        rows.append((entry, graph, gpu))
    return rows


def test_teps(benchmark, runs):
    entry0, graph0, _ = runs[0]
    benchmark.pedantic(lambda: run_gpu(graph0), rounds=2, iterations=1)

    table_rows = []
    rates = []
    for entry, graph, gpu in runs:
        teps = gpu.result.teps(graph)
        rates.append((entry.name, teps.mteps, 2 * graph.num_edges / graph.num_vertices))
        table_rows.append(
            [
                entry.name,
                teps.edges_traversed,
                teps.seconds,
                teps.mteps,
            ]
        )
    table = format_table(
        ["graph", "edges traversed", "first-phase s", "MTEPS"], table_rows
    )
    best = max(r[1] for r in rates)
    summary = (
        f"best rate: {best:.2f} MTEPS "
        f"(paper: 225 MTEPS on a K40m; BG/Q with 524288 threads: 1540 MTEPS, "
        f"ratio < 7x)\n"
        f"our engine / paper-K40m ratio: {best / (PAPER_BEST_GTEPS * 1000):.4f} "
        f"(NumPy-on-CPU vs CUDA-on-K40m)"
    )
    emit("teps", banner("TEPS (Section 5)") + "\n" + table + "\n\n" + summary)

    # Dense graphs should beat sparse road networks on TEPS.
    by_name = {name: mteps for name, mteps, _ in rates}
    assert best > 0
    assert by_name["channel-500x100x100-b050"] > by_name["road_usa"] or (
        by_name["uk-2002"] > by_name["road_usa"]
    )
