"""NumPy-backed analogues of the Thrust primitives the paper calls.

The CUDA implementation leans on Nvidia's Thrust library for collective
operations — ``thrust::partition``, prefix sums, sorts.  These functions
reproduce the same contracts (including *stable* partitioning, which the
bucketing relies on for determinism) on NumPy arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "exclusive_scan",
    "inclusive_scan",
    "partition",
    "stable_sort_by_key",
    "reduce_by_key",
    "gather_rows",
]


def exclusive_scan(values: np.ndarray, *, dtype=np.int64) -> np.ndarray:
    """Exclusive prefix sum: ``out[i] = sum(values[:i])``; len + 1 output.

    The extra trailing element (the grand total) matches how Alg. 3 uses
    ``prefixSum`` to derive both positions and the final count.
    """
    values = np.asarray(values)
    out = np.zeros(values.size + 1, dtype=dtype)
    np.cumsum(values, out=out[1:])
    return out


def inclusive_scan(values: np.ndarray, *, dtype=np.int64) -> np.ndarray:
    """Inclusive prefix sum: ``out[i] = sum(values[:i+1])``."""
    return np.cumsum(np.asarray(values), dtype=dtype)


def partition(values: np.ndarray, predicate: np.ndarray) -> tuple[np.ndarray, int]:
    """Stable partition: items satisfying ``predicate`` first, order kept.

    Returns ``(reordered, num_true)`` — the contract of
    ``thrust::partition`` (which the paper uses to extract each degree
    bucket, line 5 of Alg. 1).
    """
    values = np.asarray(values)
    predicate = np.asarray(predicate, dtype=bool)
    if predicate.shape != values.shape:
        raise ValueError("predicate must be parallel to values")
    return np.concatenate([values[predicate], values[~predicate]]), int(predicate.sum())


def stable_sort_by_key(
    keys: np.ndarray, *values: np.ndarray
) -> tuple[np.ndarray, ...]:
    """Stable sort ``keys`` and reorder each values array alongside."""
    keys = np.asarray(keys)
    order = np.argsort(keys, kind="stable")
    return (keys[order], *[np.asarray(v)[order] for v in values])


def reduce_by_key(
    keys: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sum ``values`` within runs of equal ``keys`` (keys must be sorted).

    Returns ``(unique_keys, sums)`` — ``thrust::reduce_by_key`` on a
    pre-sorted sequence, the pattern behind the vectorized hash-accumulate.
    """
    keys = np.asarray(keys)
    values = np.asarray(values)
    if keys.size == 0:
        return keys[:0], values[:0]
    boundaries = np.flatnonzero(np.concatenate(([True], keys[1:] != keys[:-1])))
    return keys[boundaries], np.add.reduceat(values, boundaries)


def gather_rows(
    indptr: np.ndarray, vertices: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Flatten the CSR rows of ``vertices`` into an edge-index array.

    Returns ``(edge_positions, owner_local)`` where ``edge_positions``
    indexes the graph's ``indices``/``weights`` arrays and
    ``owner_local[e]`` is the position in ``vertices`` owning that edge.
    This is the host-side equivalent of each thread group streaming its
    vertex's neighbour list.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    vertices = np.asarray(vertices, dtype=np.int64)
    starts = indptr[vertices]
    counts = indptr[vertices + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    owner_local = np.repeat(np.arange(vertices.size, dtype=np.int64), counts)
    group_offsets = np.repeat(np.cumsum(counts) - counts, counts)
    within = np.arange(total, dtype=np.int64) - group_offsets
    edge_positions = np.repeat(starts, counts) + within
    return edge_positions, owner_local
