"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.graph.build import from_edges
from repro.graph.csr import CSRGraph
from repro.graph.generators import caveman, karate_club, lfr_like, ring


@pytest.fixture(autouse=True)
def _restore_process_flight_recorder():
    """Isolate the process-wide flight recorder between tests.

    ``SessionManager`` installs its recorder via ``set_flight_recorder``
    (so SIGUSR2 / crash hooks find it); without this restore, a serve
    test would leak its ring into later journal-path bundle tests.
    """
    from repro.obs.flight import get_flight_recorder, set_flight_recorder

    original = get_flight_recorder()
    yield
    set_flight_recorder(original)


@pytest.fixture
def karate() -> CSRGraph:
    """Zachary's karate club."""
    return karate_club()


@pytest.fixture
def caveman_graph() -> tuple[CSRGraph, np.ndarray]:
    """8 caves of 10 (graph, truth labels)."""
    return caveman(8, 10)


@pytest.fixture
def lfr_graph() -> tuple[CSRGraph, np.ndarray]:
    """A 400-vertex LFR-like benchmark with recoverable communities."""
    return lfr_like(400, rng=11)


@pytest.fixture
def triangle() -> CSRGraph:
    """K3."""
    return from_edges([0, 1, 2], [1, 2, 0])


@pytest.fixture
def ring10() -> CSRGraph:
    """Cycle of 10 vertices."""
    return ring(10)


# --------------------------------------------------------------------- #
# Hypothesis strategies
# --------------------------------------------------------------------- #
@st.composite
def edge_lists(
    draw,
    max_vertices: int = 24,
    max_edges: int = 60,
    weighted: bool = False,
    allow_self_loops: bool = True,
):
    """Random (u, v, w, n) quadruples describing small undirected graphs."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    num_edges = draw(st.integers(min_value=0, max_value=max_edges))
    us, vs, ws = [], [], []
    for _ in range(num_edges):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        if allow_self_loops:
            v = draw(st.integers(min_value=0, max_value=n - 1))
        else:
            v = draw(st.integers(min_value=0, max_value=n - 1).filter(lambda x: x != u))
        us.append(u)
        vs.append(v)
        if weighted:
            ws.append(
                draw(
                    st.floats(min_value=0.25, max_value=8.0, width=32)
                )
            )
        else:
            ws.append(1.0)
    return us, vs, ws, n


@st.composite
def csr_graphs(
    draw,
    max_vertices: int = 24,
    max_edges: int = 60,
    weighted: bool = False,
    allow_self_loops: bool = True,
    min_edges: int = 0,
):
    """Random small canonical CSR graphs."""
    us, vs, ws, n = draw(
        edge_lists(
            max_vertices=max_vertices,
            max_edges=max_edges,
            weighted=weighted,
            allow_self_loops=allow_self_loops,
        )
    )
    if len(us) < min_edges:
        extra = min_edges - len(us)
        for i in range(extra):
            us.append(i % n)
            vs.append((i + 1) % n)
            ws.append(1.0)
    return from_edges(us, vs, ws, num_vertices=n)


@st.composite
def partitions_of(draw, n: int):
    """A random community labeling of n vertices (labels < n)."""
    return np.asarray(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=max(n - 1, 0)),
                min_size=n,
                max_size=n,
            )
        ),
        dtype=np.int64,
    )


@st.composite
def graphs_with_partitions(draw, max_vertices: int = 20, max_edges: int = 50):
    """(graph, labeling) pairs for invariance properties."""
    graph = draw(csr_graphs(max_vertices=max_vertices, max_edges=max_edges))
    labels = draw(partitions_of(graph.num_vertices))
    return graph, labels
