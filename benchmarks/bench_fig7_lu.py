"""Figure 7: GPU engine versus the Lu et al. OpenMP-style implementation.

Paper: same thresholds (1e-2, 1e-6) on both sides, 30 graphs on 2x Xeon
E5-2680 (20 threads); GPU speedups 1.1-27x, average 6.1x.  The paper also
isolates the first-iteration hashing work and finds the GPU code 9x
faster at hashing exactly 2|E| edges.

Here the Lu side is the faithful coloring-based reimplementation (pure
Python inner loop standing in for the 20-thread CPU run, DESIGN.md §6);
the hashing micro-comparison pits the two implementations' first sweeps.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench.reporting import banner, format_table, geometric_mean
from repro.bench.runner import run_gpu, timed
from repro.bench.suite import SUITE
from repro.parallel.lu_openmp import lu_louvain, lu_one_level
from repro.core.config import GPULouvainConfig
from repro.core.mod_opt import modularity_optimization

from _util import emit

# A cross-section of the 30 graphs Figure 7 uses (FEM, web, social, road,
# lattice, rgg classes all appear).
GRAPH_NAMES = (
    "audikw_1",
    "coPapersDBLP",
    "gsm_106857",
    "cnr-2000",
    "com-youtube",
    "rgg_n_2_22_s0",
    "packing-500x100x100-b050",
    "italy_osm",
)


@pytest.fixture(scope="module")
def runs():
    rows = []
    for name in GRAPH_NAMES:
        entry = next(e for e in SUITE if e.name == name)
        graph = entry.load()
        lu_result, lu_seconds = timed(
            lambda: lu_louvain(graph, threshold_bin=1e-2, threshold_final=1e-6,
                               bin_vertex_limit=10_000)
        )
        gpu = run_gpu(graph)
        rows.append((entry, graph, lu_result, lu_seconds, gpu))
    return rows


def test_fig7_vs_lu(benchmark, runs):
    _, graph0, _, _, _ = runs[0]
    benchmark.pedantic(lambda: run_gpu(graph0), rounds=2, iterations=1)

    table_rows = []
    speedups = []
    for entry, graph, lu_result, lu_seconds, gpu in runs:
        speedup = lu_seconds / gpu.seconds
        speedups.append(speedup)
        table_rows.append(
            [
                entry.name,
                lu_seconds,
                gpu.seconds,
                speedup,
                gpu.modularity / lu_result.modularity
                if lu_result.modularity
                else 1.0,
            ]
        )
    table = format_table(
        ["graph", "lu s", "gpu s", "speedup", "relQ gpu/lu"], table_rows
    )
    summary = (
        f"speedup vs Lu et al.: min={min(speedups):.2f} max={max(speedups):.2f} "
        f"mean={np.mean(speedups):.2f} geomean={geometric_mean(speedups):.2f} "
        f"(paper: 1.1-27x, avg 6.1)"
    )
    emit("fig7_lu", banner("Figure 7: vs Lu et al.") + "\n" + table + "\n\n" + summary)

    assert all(s > 1.0 for s in speedups)
    assert np.mean(speedups) > 2.0


def test_first_iteration_hashing_ratio(benchmark):
    """The paper's hashing micro-benchmark: both sides process 2|E| edges."""
    entry = next(e for e in SUITE if e.name == "com-youtube")
    graph = entry.load()

    def gpu_first_sweep():
        cfg = GPULouvainConfig(max_sweeps_per_level=1)
        return modularity_optimization(graph, cfg, 1e-6)

    def lu_first_sweep():
        return lu_one_level(graph, 1e-6, max_sweeps=1)

    gpu_result = benchmark.pedantic(gpu_first_sweep, rounds=3, iterations=1)
    start = time.perf_counter()
    lu_first_sweep()
    lu_seconds = time.perf_counter() - start
    start = time.perf_counter()
    gpu_first_sweep()
    gpu_seconds = time.perf_counter() - start

    ratio = lu_seconds / gpu_seconds
    emit(
        "fig7_hashing_micro",
        f"first-sweep hashing: lu={lu_seconds:.3f}s gpu={gpu_seconds:.3f}s "
        f"ratio={ratio:.1f}x (paper: GPU 9x faster)",
    )
    assert ratio > 1.0
