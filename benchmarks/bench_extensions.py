"""Benchmarks for the Section-6 extension features.

Not paper figures — these quantify the future-work directions the paper
sketches, implemented in this repository:

* **multi-GPU scaling** ("our algorithm can also be used as a building
  block in a distributed memory implementation using multi-GPUs"):
  quality and emulated time vs device count, with cut statistics;
* **UVA memory what-if** ("unified virtual addressing ... expected to be
  slower than on-card memory"): simulated slowdown as the working set
  oversubscribes device memory;
* **multi-level threshold schedules** ("could have been expanded further
  to include even more threshold values"): 3-step schedule vs the
  2-value t_bin/t_final scheme;
* **warm starts** (the dynamic-network-analytics motivation of §1).
"""

from __future__ import annotations

import numpy as np

from repro.bench.reporting import banner, format_table
from repro.bench.runner import run_gpu, run_sequential, timed
from repro.bench.suite import SUITE, load_suite_graph
from repro.core.gpu_louvain import gpu_louvain
from repro.gpu.costmodel import CostModel
from repro.gpu.device import TESLA_K40M
from repro.parallel.multigpu import multigpu_louvain

from _util import emit


def test_multigpu_scaling(benchmark):
    graph = load_suite_graph("com-youtube")
    seq = run_sequential(graph)
    benchmark.pedantic(
        lambda: multigpu_louvain(graph, num_devices=4, rng=0),
        rounds=2,
        iterations=1,
    )
    rows = []
    for devices in (1, 2, 4, 8):
        result, seconds = timed(
            lambda: multigpu_louvain(graph, num_devices=devices, rng=0)
        )
        refined = multigpu_louvain(graph, num_devices=devices, rng=0, refine=True)
        rows.append(
            [
                devices,
                result.cut.cut_fraction,
                result.modularity / seq.modularity,
                refined.modularity / seq.modularity,
                result.parallel_seconds,
                result.merge_seconds,
                result.emulated_total_seconds,
            ]
        )
    table = format_table(
        ["devices", "cut frac", "relQ", "relQ refined", "phase-A s (max dev)",
         "merge s", "emulated total s"],
        rows,
        floatfmt=".4f",
    )
    emit("multigpu_scaling", banner("Multi-GPU scaling (Section 6)") + "\n" + table)

    # Phase-A time shrinks as devices grow (smaller per-device subgraphs).
    phase_a = [r[4] for r in rows]
    assert phase_a[-1] < phase_a[0]
    # Quality loss bounded; refinement recovers.
    assert all(r[2] > 0.75 for r in rows)
    assert all(r[3] >= r[2] - 0.02 for r in rows)


def test_uva_memory_whatif(benchmark):
    cm = CostModel(TESLA_K40M)
    benchmark.pedantic(
        lambda: cm.uva_slowdown(50_000_000, 2_000_000_000), rounds=5, iterations=1
    )
    rows = []
    for name, n, stored in [
        ("com-orkut (paper)", 3_072_627, 2 * 117_185_083),
        ("uk-2002 (paper, largest run)", 18_520_486, 2 * 292_243_663),
        ("2x uk-2002", 37_000_000, 4 * 292_243_663),
        ("8x uk-2002", 148_000_000, 16 * 292_243_663),
    ]:
        req = TESLA_K40M.memory_required_bytes(n, stored)
        rows.append(
            [
                name,
                req / 2**30,
                TESLA_K40M.oversubscription(n, stored),
                "yes" if TESLA_K40M.fits(n, stored) else "no",
                cm.uva_slowdown(n, stored),
            ]
        )
    table = format_table(
        ["graph", "GiB required", "oversubscription", "fits 12GB", "UVA slowdown"],
        rows,
        floatfmt=".2f",
    )
    emit("uva_whatif", banner("UVA memory what-if (Section 6)") + "\n" + table)

    assert TESLA_K40M.fits(18_520_486, 2 * 292_243_663)  # the paper ran it
    assert cm.uva_slowdown(148_000_000, 16 * 292_243_663) > 2.0


def test_threshold_schedule_ablation(benchmark):
    graph = load_suite_graph("soc-LiveJournal1")
    seq = run_sequential(graph)

    two_level = benchmark.pedantic(
        lambda: run_gpu(graph), rounds=2, iterations=1
    )
    schedule_result, schedule_seconds = timed(
        lambda: gpu_louvain(
            graph,
            threshold_schedule=((3_000, 5e-2), (1_000, 1e-2), (300, 1e-4)),
        )
    )
    rows = [
        ["2-level (paper)", two_level.seconds, two_level.modularity / seq.modularity],
        ["3-step schedule", schedule_seconds, schedule_result.modularity / seq.modularity],
    ]
    table = format_table(["scheme", "seconds", "relQ"], rows, floatfmt=".4f")
    emit(
        "threshold_schedule",
        banner("Multi-level threshold schedule (Section 6)") + "\n" + table,
    )
    assert schedule_result.modularity > 0.9 * two_level.modularity


def test_warm_start_dynamic(benchmark):
    """Re-clustering after a small graph update (the §1 motivation)."""
    from repro.graph.build import from_edges

    entry = next(e for e in SUITE if e.name == "com-youtube")
    graph = entry.load()
    base = gpu_louvain(graph, bin_vertex_limit=1_000)

    u, v, w = graph.edge_list(unique=True)
    rng = np.random.default_rng(0)
    extra = max(10, graph.num_edges // 100)  # ~1% new edges
    updated = from_edges(
        np.concatenate([u, rng.integers(0, graph.num_vertices, extra)]),
        np.concatenate([v, rng.integers(0, graph.num_vertices, extra)]),
        np.concatenate([w, np.ones(extra)]),
        num_vertices=graph.num_vertices,
    )

    warm_result = benchmark.pedantic(
        lambda: gpu_louvain(
            updated, bin_vertex_limit=1_000, initial_communities=base.membership
        ),
        rounds=3,
        iterations=1,
    )
    cold_result, cold_seconds = timed(
        lambda: gpu_louvain(updated, bin_vertex_limit=1_000)
    )
    warm_sweeps = sum(warm_result.sweeps_per_level)
    cold_sweeps = sum(cold_result.sweeps_per_level)
    emit(
        "warm_start",
        f"1% edge update on com-youtube analog: cold {cold_sweeps} sweeps "
        f"({cold_seconds:.3f}s, Q={cold_result.modularity:.4f}) vs warm "
        f"{warm_sweeps} sweeps (Q={warm_result.modularity:.4f})",
    )
    assert warm_sweeps < cold_sweeps
    assert warm_result.modularity > 0.95 * cold_result.modularity


def test_modern_device_whatif(benchmark):
    """What would the paper's kernel times look like on a modern part?

    Replays one bucketed sweep's warp schedule on the K40m and an
    A100-class device.  Clock x SM-count alone predicts ~7x; the larger
    shared memory would additionally move bucket 7's global-memory
    boundary from degree 319 to ~1000 (not modelled here — boundaries are
    held at the paper's values for comparability).
    """
    from repro.gpu.costmodel import CostModel
    from repro.gpu.device import AMPERE_A100, TESLA_K40M
    from repro.parallel.costcompare import bucketed_sweep_cycles

    graph = load_suite_graph("com-orkut")
    k40 = CostModel(TESLA_K40M)
    a100 = CostModel(AMPERE_A100)
    cycles = benchmark.pedantic(
        lambda: bucketed_sweep_cycles(graph, k40), rounds=3, iterations=1
    )
    k40_seconds = k40.kernel_seconds(cycles)
    a100_seconds = a100.kernel_seconds(bucketed_sweep_cycles(graph, a100))
    ratio = k40_seconds / a100_seconds
    emit(
        "modern_device_whatif",
        f"one bucketed sweep, com-orkut analog: K40m {k40_seconds * 1e3:.3f} ms, "
        f"A100 {a100_seconds * 1e3:.3f} ms ({ratio:.1f}x) — raw-throughput "
        f"scaling of {AMPERE_A100.concurrent_warps * AMPERE_A100.clock_mhz / (TESLA_K40M.concurrent_warps * TESLA_K40M.clock_mhz):.1f}x "
        "plus launch-latency effects",
    )
    assert 3.0 < ratio < 30.0
