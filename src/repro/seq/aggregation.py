"""Sequential (pure-Python) graph aggregation — phase two of Louvain.

This is the reference contraction used by the sequential baseline and by
tests as the oracle for the GPU aggregation kernels: merge every
community's vertices into one new vertex, merge parallel edges by weight
summation, and turn intra-community edges into a self-loop.

Because the CSR stores both directions, hashing *all* stored entries of a
community's members naturally gives the community self-loop twice the
internal undirected weight (plus old self-loops once), which preserves
``k`` and hence modularity across levels.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["aggregate"]


def aggregate(graph: CSRGraph, communities: np.ndarray) -> tuple[CSRGraph, np.ndarray]:
    """Contract ``graph`` by ``communities``.

    Returns ``(new_graph, dense)`` where ``dense`` maps every old vertex to
    its new vertex id (communities renumbered consecutively in label-first-
    use order, matching the prefix-sum renumbering of Alg. 3).
    """
    communities = np.asarray(communities, dtype=np.int64)
    if communities.shape != (graph.num_vertices,):
        raise ValueError("communities must assign one label per vertex")
    # Renumber non-empty communities consecutively, ordered by community id
    # (Alg. 3 computes newID by prefix sum over community ids).
    present = np.unique(communities)
    newid = np.full(
        (int(communities.max()) + 1) if communities.size else 0, -1, dtype=np.int64
    )
    newid[present] = np.arange(present.size, dtype=np.int64)
    dense = newid[communities]

    num_new = present.size
    accum: dict[tuple[int, int], float] = {}
    for v in range(graph.num_vertices):
        cv = int(dense[v])
        row = graph.neighbors(v)
        wts = graph.neighbor_weights(v)
        for nb, w in zip(row.tolist(), wts.tolist()):
            cn = int(dense[nb])
            if cv <= cn:  # count each unordered pair from one side only
                key = (cv, cn)
                accum[key] = accum.get(key, 0.0) + w

    if not accum:
        from ..graph.build import empty_graph

        return empty_graph(num_new), dense

    us = np.fromiter((k[0] for k in accum), dtype=np.int64, count=len(accum))
    vs = np.fromiter((k[1] for k in accum), dtype=np.int64, count=len(accum))
    ws = np.fromiter(accum.values(), dtype=np.float64, count=len(accum))
    # Counting per stored direction under cv <= cn gives: inter-community
    # pairs once each (only the cv < cn direction passes) and diagonal
    # entries twice per internal undirected edge plus self-loops once —
    # precisely the convention's community self-loop.  from_edges then
    # re-creates both stored directions for the off-diagonals.

    from ..graph.build import from_edges

    return from_edges(us, vs, ws, num_vertices=num_new), dense
