"""Structural diff of two traced runs, matched by span path.

The question this answers is the one the paper's Figs. 5/6 pose:
*where did the time go, and did that change?*  Two reports (or report
lists) are flattened into per-span-path aggregates
(:func:`~repro.obs.analyze.flatten_report`) and compared path by path:

* every shared path gets a wall-clock ratio and per-counter deltas;
* a path is a **regression** when the candidate is more than
  ``threshold``× slower *and* the absolute slowdown exceeds
  ``min_seconds`` (the floor keeps micro-spans' timer noise from
  flagging);
* paths present on only one side are reported as ``added`` /
  ``removed`` — a structural change (extra level, different
  aggregation path), not a timing one.

:meth:`TraceDiff.to_dict` is the machine-readable verdict consumed by
``python -m repro trace-diff`` (exit code 1 on any regression).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..bench.reporting import format_table
from ..trace import RunReport
from .analyze import PathAggregate, flatten_reports

__all__ = ["PathDelta", "TraceDiff", "diff_reports"]

DIFF_SCHEMA = "repro.trace-diff/1"


@dataclass(frozen=True)
class PathDelta:
    """One span path's change between a baseline and a candidate."""

    path: str
    status: str  #: ``ok`` | ``regression`` | ``improved`` | ``added`` | ``removed``
    seconds_a: float
    seconds_b: float
    counter_deltas: dict[str, float] = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        """Candidate / baseline seconds (inf for added paths)."""
        if self.seconds_a > 0:
            return self.seconds_b / self.seconds_a
        return float("inf") if self.seconds_b > 0 else 1.0

    @property
    def delta_seconds(self) -> float:
        """Candidate minus baseline seconds."""
        return self.seconds_b - self.seconds_a

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form (ratio omitted when infinite)."""
        payload: dict[str, Any] = {
            "path": self.path,
            "status": self.status,
            "seconds_a": self.seconds_a,
            "seconds_b": self.seconds_b,
            "delta_seconds": self.delta_seconds,
            "counter_deltas": dict(self.counter_deltas),
        }
        if self.seconds_a > 0:
            payload["ratio"] = self.ratio
        return payload


@dataclass
class TraceDiff:
    """The full structural diff plus its pass/fail verdict."""

    deltas: list[PathDelta]
    threshold: float
    min_seconds: float

    @property
    def regressions(self) -> list[PathDelta]:
        """Paths slower than the threshold allows."""
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def ok(self) -> bool:
        """True when no path regressed."""
        return not self.regressions

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable verdict document."""
        return {
            "schema": DIFF_SCHEMA,
            "verdict": "ok" if self.ok else "regression",
            "threshold": self.threshold,
            "min_seconds": self.min_seconds,
            "regressions": [d.path for d in self.regressions],
            "paths": [d.to_dict() for d in self.deltas],
        }

    def format(self, *, show_all: bool = False) -> str:
        """Aligned table of the diff (regressions always shown).

        Without ``show_all``, ``ok`` paths are collapsed to a count and
        only regressions / improvements / structural changes print.
        """
        interesting = [d for d in self.deltas if show_all or d.status != "ok"]
        lines: list[str] = []
        if interesting:
            rows = []
            for d in interesting:
                ratio = f"{d.ratio:.2f}x" if d.seconds_a > 0 else "-"
                rows.append(
                    (
                        d.status,
                        d.path,
                        f"{d.seconds_a * 1e3:.2f}",
                        f"{d.seconds_b * 1e3:.2f}",
                        f"{d.delta_seconds * 1e3:+.2f}",
                        ratio,
                    )
                )
            lines.append(
                format_table(
                    ("status", "path", "a ms", "b ms", "delta ms", "ratio"), rows
                )
            )
        hidden = len(self.deltas) - len(interesting)
        if hidden:
            lines.append(f"({hidden} paths within threshold not shown)")
        lines.append(
            f"verdict: {'ok' if self.ok else 'REGRESSION'} "
            f"({len(self.regressions)} regressed path(s), "
            f"threshold {self.threshold:g}x, floor {self.min_seconds:g}s)"
        )
        return "\n".join(lines)


def _as_list(reports: RunReport | list[RunReport]) -> list[RunReport]:
    return [reports] if isinstance(reports, RunReport) else list(reports)


def diff_reports(
    baseline: RunReport | list[RunReport],
    candidate: RunReport | list[RunReport],
    *,
    threshold: float = 1.5,
    min_seconds: float = 1e-4,
) -> TraceDiff:
    """Diff ``candidate`` against ``baseline`` by span path.

    ``threshold`` is the allowed wall-clock ratio per path (1.5 = a path
    may be up to 50% slower); ``min_seconds`` is the absolute slowdown a
    path must also exceed to count as a regression.
    """
    if threshold <= 1.0:
        raise ValueError("threshold must be > 1 (a ratio of allowed slowdown)")
    flat_a = flatten_reports(_as_list(baseline))
    flat_b = flatten_reports(_as_list(candidate))
    deltas: list[PathDelta] = []
    for path in list(flat_a) + [p for p in flat_b if p not in flat_a]:
        in_a, in_b = path in flat_a, path in flat_b
        a = flat_a.get(path, PathAggregate(path))
        b = flat_b.get(path, PathAggregate(path))
        if not in_b:
            status = "removed"
        elif not in_a:
            status = "added"
        elif (
            b.seconds > a.seconds * threshold
            and b.seconds - a.seconds >= min_seconds
        ):
            status = "regression"
        elif a.seconds > b.seconds * threshold and a.seconds - b.seconds >= min_seconds:
            status = "improved"
        else:
            status = "ok"
        counter_deltas = {
            name: b.counters.get(name, 0) - a.counters.get(name, 0)
            for name in set(a.counters) | set(b.counters)
            if b.counters.get(name, 0) != a.counters.get(name, 0)
        }
        deltas.append(
            PathDelta(
                path=path,
                status=status,
                seconds_a=a.seconds,
                seconds_b=b.seconds,
                counter_deltas=counter_deltas,
            )
        )
    return TraceDiff(deltas=deltas, threshold=threshold, min_seconds=min_seconds)
