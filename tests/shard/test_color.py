"""Color-mode protocol: validated commits and the exact-Q round guard.

The two-shard heavy-cut-edge construction (ISSUE satellite 3): a
community ``c = {c1, c2}`` straddles the cut, and one interior spoke per
shard (``u — c1``, ``w — c2``) is weighted so that *either* spoke
joining ``c`` is a positive move, but *both* joining — which is exactly
what two workers scoring against stale volumes propose in the same
round — is net negative (the unaccounted ``-2 k_u k_w / (2m)^2`` cross
term).  With validation on, the coordinator must drop one of the two
moves and stay monotone; with validation off, the double-counted
modularity slips through and the post-round exact-Q recompute must
hard-fail with :class:`ReconciliationError`.
"""

import numpy as np
import pytest

from repro.graph.build import from_edges
from repro.metrics.modularity import modularity
from repro.shard import (
    Q_GUARD_EPS,
    ReconciliationError,
    ShardConfig,
    ShardPlan,
    sharded_louvain,
)

# 0=c1  1=u  2=c2  3=w; self-loops on u/w inflate their degrees so the
# cross term bites.  a sits in the window (V*K/M, V*K/M + K^2/(2M)).
HEAVY_CUT = 9.0
SPOKE = 54.0
LOOP = 79.0


def heavy_cut_graph():
    return from_edges(
        [0, 0, 2, 1, 3],
        [2, 1, 3, 1, 3],
        [HEAVY_CUT, SPOKE, SPOKE, LOOP, LOOP],
    )


def initial():
    # c1 and c2 share a community; u and w are singletons
    return np.array([0, 1, 0, 3], dtype=np.int64)


def test_construction_is_the_intended_trap():
    """Each join alone gains Q; both together lose it."""
    graph = heavy_cut_graph()
    plan = ShardPlan.build(graph, 2, method="bfs")
    assert plan.parts.tolist() == [0, 0, 1, 1]  # cliques split at the cut
    assert plan.boundary.tolist() == [True, False, True, False]

    base = modularity(graph, initial())
    one = initial()
    one[1] = 0  # u joins c
    both = one.copy()
    both[3] = 0  # w joins c too
    assert modularity(graph, one) > base
    assert modularity(graph, both) < base


def test_guard_raises_without_validation():
    graph = heavy_cut_graph()
    config = ShardConfig(
        workers=2,
        pool="inline",
        mode="color",
        shard_min_vertices=1,
        polish=False,
        validate_commits=False,
    )
    with pytest.raises(ReconciliationError, match="decreased modularity"):
        sharded_louvain(graph, shard=config, initial_communities=initial())


def test_guard_raises_with_real_fork_workers():
    graph = heavy_cut_graph()
    config = ShardConfig(
        workers=2,
        pool="fork",
        mode="color",
        shard_min_vertices=1,
        polish=False,
        validate_commits=False,
    )
    with pytest.raises(ReconciliationError):
        sharded_louvain(graph, shard=config, initial_communities=initial())


def test_validation_stays_monotone_on_the_trap():
    graph = heavy_cut_graph()
    config = ShardConfig(
        workers=2, pool="inline", mode="color", shard_min_vertices=1, polish=False
    )
    result = sharded_louvain(graph, shard=config, initial_communities=initial())
    assert result.modularity >= modularity(graph, initial()) - Q_GUARD_EPS
    assert result.modularity == pytest.approx(
        modularity(graph, result.membership), abs=1e-12
    )


@pytest.mark.parametrize("polish", [False, True])
def test_color_mode_monotone_on_realistic_graphs(polish):
    from repro.graph.generators import caveman, social_network

    graphs = {
        "social": social_network(500, 6, np.random.default_rng(3)),
        "caveman": caveman(8, 10)[0],
    }
    for name, graph in graphs.items():
        config = ShardConfig(
            workers=2, pool="inline", mode="color",
            shard_min_vertices=8, polish=polish,
        )
        result = sharded_louvain(graph, shard=config)
        # monotone from the singleton partition (Q may start below 0)
        assert result.modularity == pytest.approx(
            modularity(graph, result.membership), abs=1e-9
        ), name
        assert result.modularity > 0.0, name
