"""Builders that turn raw edge data into :class:`~repro.graph.csr.CSRGraph`.

The entry point used everywhere else is :func:`from_edges`, which accepts an
arbitrary (possibly duplicated, one-directional, unsorted) undirected edge
list and produces a canonical CSR graph: symmetrised, duplicate edges merged
by weight summation, rows sorted by neighbour id.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from .csr import CSRGraph

__all__ = [
    "from_edges",
    "from_directed_entries",
    "from_scipy",
    "from_networkx",
    "empty_graph",
    "relabel",
    "induced_subgraph",
    "update_edges",
    "ensure_connected_relabelled",
]


def from_edges(
    u: Iterable[int] | np.ndarray,
    v: Iterable[int] | np.ndarray,
    w: Iterable[float] | np.ndarray | None = None,
    *,
    num_vertices: int | None = None,
) -> CSRGraph:
    """Build a canonical undirected CSR graph from an edge list.

    Each pair ``(u[i], v[i])`` denotes one undirected edge; supplying the
    edge in either or both directions is equivalent — duplicates (including
    reverse duplicates) are merged and their weights summed.  Self-loops are
    allowed and end up stored once.

    Parameters
    ----------
    u, v:
        Endpoint arrays of equal length.
    w:
        Optional weights (default: all ones).
    num_vertices:
        Total vertex count; defaults to ``max(endpoint) + 1``.
    """
    u = np.asarray(u, dtype=np.int64).ravel()
    v = np.asarray(v, dtype=np.int64).ravel()
    if u.shape != v.shape:
        raise ValueError("u and v must have the same length")
    if w is None:
        w = np.ones(u.size, dtype=np.float64)
    else:
        w = np.asarray(w, dtype=np.float64).ravel()
        if w.shape != u.shape:
            raise ValueError("w must match u/v in length")
    if u.size and (min(u.min(), v.min()) < 0):
        raise ValueError("vertex ids must be non-negative")
    n = int(num_vertices) if num_vertices is not None else (
        int(max(u.max(), v.max())) + 1 if u.size else 0
    )
    if u.size and max(u.max(), v.max()) >= n:
        raise ValueError("num_vertices too small for supplied edge endpoints")

    if u.size == 0:
        return empty_graph(n)

    # Canonicalise each undirected edge as (min, max) and merge duplicates.
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    key = lo * n + hi
    order = np.argsort(key, kind="stable")
    key = key[order]
    wsorted = w[order]
    boundary = np.flatnonzero(np.concatenate(([True], key[1:] != key[:-1])))
    merged_key = key[boundary]
    merged_w = np.add.reduceat(wsorted, boundary)
    mlo = merged_key // n
    mhi = merged_key % n

    # Expand to both stored directions (self-loops once).
    not_loop = mlo != mhi
    src = np.concatenate([mlo, mhi[not_loop]])
    dst = np.concatenate([mhi, mlo[not_loop]])
    ww = np.concatenate([merged_w, merged_w[not_loop]])

    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    order = np.argsort(src * np.int64(max(n, 1)) + dst, kind="stable")
    return CSRGraph(indptr=indptr, indices=dst[order], weights=ww[order])


def from_directed_entries(
    u: np.ndarray, v: np.ndarray, w: np.ndarray, num_vertices: int
) -> CSRGraph:
    """Build a CSR graph from already-expanded stored entries.

    Callers (the aggregation kernels) supply exactly the entries to store:
    both directions of every off-diagonal edge and each self-loop once.
    No symmetrisation or merging happens here — the input is trusted (and
    validated in tests); entries are only sorted into CSR order.
    """
    u = np.asarray(u, dtype=np.int64).ravel()
    v = np.asarray(v, dtype=np.int64).ravel()
    w = np.asarray(w, dtype=np.float64).ravel()
    if not (u.shape == v.shape == w.shape):
        raise ValueError("u, v, w must be parallel")
    counts = np.bincount(u, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    order = np.argsort(u * np.int64(max(num_vertices, 1)) + v, kind="stable")
    return CSRGraph(indptr=indptr, indices=v[order], weights=w[order])


def from_scipy(matrix) -> CSRGraph:
    """Build from a scipy sparse matrix, interpreted as undirected.

    The matrix is symmetrised by ``max`` of the two triangles; the diagonal
    becomes self-loops.
    """
    from scipy.sparse import coo_matrix

    coo = coo_matrix(matrix)
    if coo.shape[0] != coo.shape[1]:
        raise ValueError("adjacency matrix must be square")
    upper = coo.row <= coo.col
    return from_edges(
        coo.row[upper], coo.col[upper], coo.data[upper], num_vertices=coo.shape[0]
    )


def from_networkx(graph) -> CSRGraph:
    """Build from a ``networkx`` graph (nodes relabelled to 0..n-1).

    Edge attribute ``weight`` is honoured when present, else 1.0.
    """
    nodes = list(graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    us, vs, ws = [], [], []
    for a, b, data in graph.edges(data=True):
        us.append(index[a])
        vs.append(index[b])
        ws.append(float(data.get("weight", 1.0)))
    return from_edges(us, vs, ws, num_vertices=len(nodes))


def empty_graph(num_vertices: int) -> CSRGraph:
    """A graph with ``num_vertices`` vertices and no edges."""
    return CSRGraph(
        indptr=np.zeros(num_vertices + 1, dtype=np.int64),
        indices=np.empty(0, dtype=np.int64),
        weights=np.empty(0, dtype=np.float64),
    )


def relabel(graph: CSRGraph, permutation: np.ndarray) -> CSRGraph:
    """Relabel vertices: new id of old vertex ``v`` is ``permutation[v]``."""
    permutation = np.asarray(permutation, dtype=np.int64)
    if permutation.shape != (graph.num_vertices,):
        raise ValueError("permutation must have one entry per vertex")
    if np.bincount(permutation, minlength=graph.num_vertices).max(initial=0) > 1:
        raise ValueError("permutation is not a bijection")
    u, v, w = graph.edge_list(unique=True)
    return from_edges(
        permutation[u], permutation[v], w, num_vertices=graph.num_vertices
    )


def induced_subgraph(graph: CSRGraph, vertices: np.ndarray) -> CSRGraph:
    """Subgraph induced on ``vertices`` (relabelled 0..len-1 in given order)."""
    vertices = np.asarray(vertices, dtype=np.int64)
    newid = np.full(graph.num_vertices, -1, dtype=np.int64)
    newid[vertices] = np.arange(vertices.size, dtype=np.int64)
    u, v, w = graph.edge_list(unique=True)
    keep = (newid[u] >= 0) & (newid[v] >= 0)
    return from_edges(
        newid[u[keep]], newid[v[keep]], w[keep], num_vertices=vertices.size
    )


def update_edges(
    graph: CSRGraph,
    *,
    add: tuple[np.ndarray, np.ndarray, np.ndarray | None] | None = None,
    remove: tuple[np.ndarray, np.ndarray] | None = None,
) -> CSRGraph:
    """Apply a batch of edge insertions/removals; returns a new graph.

    The dynamic-network-analytics workflow of the paper's introduction:
    stream updates in, then re-cluster (ideally warm-started from the
    previous membership).

    Parameters
    ----------
    add:
        ``(u, v, w)`` arrays of edges to insert (``w=None`` -> unit
        weights).  Adding an existing edge *sums* onto its weight.
    remove:
        ``(u, v)`` arrays of undirected edges to delete entirely.
        Removing a non-existent edge is a no-op.
    """
    u, v, w = graph.edge_list(unique=True)
    n = graph.num_vertices
    if remove is not None:
        ru = np.minimum(np.asarray(remove[0], dtype=np.int64),
                        np.asarray(remove[1], dtype=np.int64))
        rv = np.maximum(np.asarray(remove[0], dtype=np.int64),
                        np.asarray(remove[1], dtype=np.int64))
        if ru.size and (ru.min() < 0 or max(ru.max(), rv.max()) >= n):
            raise ValueError("removal endpoints out of range")
        doomed = set(zip(ru.tolist(), rv.tolist()))
        keep = np.fromiter(
            ((a, b) not in doomed for a, b in zip(u.tolist(), v.tolist())),
            dtype=bool,
            count=u.size,
        )
        u, v, w = u[keep], v[keep], w[keep]
    if add is not None:
        au = np.asarray(add[0], dtype=np.int64)
        av = np.asarray(add[1], dtype=np.int64)
        aw = (
            np.ones(au.size, dtype=np.float64)
            if add[2] is None
            else np.asarray(add[2], dtype=np.float64)
        )
        if au.size and (min(au.min(), av.min()) < 0 or max(au.max(), av.max()) >= n):
            raise ValueError("insertion endpoints out of range")
        u = np.concatenate([u, au])
        v = np.concatenate([v, av])
        w = np.concatenate([w, aw])
    return from_edges(u, v, w, num_vertices=n)


def ensure_connected_relabelled(graph: CSRGraph) -> CSRGraph:
    """Return the largest connected component as its own graph.

    Useful for generators that may leave isolated fragments; community
    detection results on fragments are uninteresting noise in benchmarks.
    """
    from scipy.sparse.csgraph import connected_components

    ncomp, labels = connected_components(graph.to_scipy(), directed=False)
    if ncomp <= 1:
        return graph
    counts = np.bincount(labels)
    keep = np.flatnonzero(labels == counts.argmax())
    return induced_subgraph(graph, keep)
