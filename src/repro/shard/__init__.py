"""Sharded multi-process Louvain over shared-memory CSR.

Public surface: :func:`sharded_louvain` (drop-in peer of
:func:`~repro.core.gpu_louvain.gpu_louvain`), :class:`ShardConfig` (the
driver's knobs), :class:`~repro.shard.partition.ShardPlan` (the
partition/interior/boundary split), and the shared-memory plumbing in
:mod:`repro.shard.shm`.  See ``DESIGN.md`` §11 for the protocol.
"""

from .engine import Q_GUARD_EPS, ReconciliationError, ShardConfig, sharded_louvain
from .partition import ShardPlan, bfs_partition, boundary_mask, hash_partition
from .shm import ArraySpec, SharedArrays, attach_array
from .worker import (
    ShardProposal,
    ShardTask,
    SliceScorer,
    SyncShardTask,
    optimize_interior,
    optimize_shard,
    run_sync_worker,
    run_worker,
)

__all__ = [
    "Q_GUARD_EPS",
    "ReconciliationError",
    "ShardConfig",
    "sharded_louvain",
    "ShardPlan",
    "hash_partition",
    "bfs_partition",
    "boundary_mask",
    "ArraySpec",
    "SharedArrays",
    "attach_array",
    "ShardTask",
    "ShardProposal",
    "SliceScorer",
    "SyncShardTask",
    "optimize_shard",
    "optimize_interior",
    "run_worker",
    "run_sync_worker",
]
