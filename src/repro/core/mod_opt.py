"""Modularity optimization phase (Algorithm 1).

One phase runs sweeps over the degree buckets until the modularity gain of
a sweep drops below the level's threshold.  Default update discipline is
the paper's: after each bucket's ``computeMove`` the community ids of that
bucket are committed and ``a_c`` is recomputed (Alg. 1 lines 8-11) — the
point "somewhere in between" pure fine-grained and sequential update that
Section 5's relaxed-vs-bucketed experiment studies.  ``relaxed=True``
switches to the relaxed discipline: all buckets decide from the same
snapshot and commit together at the end of the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..graph.csr import CSRGraph
from ..gpu.costmodel import CostModel
from ..gpu.profiler import PhaseProfile
from .buckets import Bucket, degree_buckets
from .compute_move import compute_moves_simulated, compute_moves_vectorized
from .config import GPULouvainConfig

__all__ = ["OptimizationOutcome", "modularity_optimization"]


@dataclass
class OptimizationOutcome:
    """Result of one modularity-optimization phase."""

    communities: np.ndarray
    sweeps: int
    modularity: float
    profile: PhaseProfile = field(default_factory=PhaseProfile)


def _partition_modularity(
    comm: np.ndarray,
    src_comm_weights_args: tuple[np.ndarray, np.ndarray, np.ndarray],
    k: np.ndarray,
    two_m: float,
    resolution: float = 1.0,
) -> float:
    """(Generalised) Q of the working partition from pre-gathered arrays."""
    src, dst, w = src_comm_weights_args
    internal = float(w[comm[src] == comm[dst]].sum())
    volumes = np.bincount(comm, weights=k)
    return internal / two_m - resolution * float(
        np.square(volumes).sum()
    ) / (two_m * two_m)


def modularity_optimization(
    graph: CSRGraph,
    config: GPULouvainConfig,
    threshold: float,
    *,
    initial_communities: np.ndarray | None = None,
    cost_model: CostModel | None = None,
) -> OptimizationOutcome:
    """Run Alg. 1 on ``graph``; returns final communities and sweep count.

    ``threshold`` is the per-sweep modularity-gain cutoff (``t_bin`` or
    ``t_final``, chosen by the caller from the level's size).
    """
    n = graph.num_vertices
    k = graph.weighted_degrees
    two_m = graph.total_weight
    profile = PhaseProfile()
    if initial_communities is None:
        comm = np.arange(n, dtype=np.int64)
    else:
        comm = np.asarray(initial_communities, dtype=np.int64).copy()
    if n == 0 or two_m == 0.0:
        return OptimizationOutcome(comm, 0, 0.0, profile)

    simulate = config.engine == "simulated"
    if simulate and cost_model is None:
        cost_model = CostModel(config.device, config.cost_parameters)

    # Degree buckets are fixed for the whole phase (degrees never change
    # inside a level), exactly as the repeated thrust::partition of Alg. 1
    # would recompute them.
    buckets: list[Bucket] = degree_buckets(
        graph.degrees, config.degree_bucket_bounds, config.group_sizes
    )

    src = graph.vertex_of_edge
    dst = graph.indices
    w = graph.weights
    edges_view = (src, dst, w)

    volumes = np.bincount(comm, weights=k, minlength=n)
    sizes = np.bincount(comm, minlength=n)
    q = _partition_modularity(comm, edges_view, k, two_m, config.resolution)
    sweeps = 0

    while sweeps < config.max_sweeps_per_level:
        sweeps += 1
        moved = 0
        pending: list[tuple[np.ndarray, np.ndarray]] = []
        for bucket in buckets:
            if bucket.size == 0:
                continue
            if simulate:
                new_comm, stats = compute_moves_simulated(
                    graph,
                    comm,
                    volumes,
                    sizes,
                    bucket,
                    cost_model,
                    k=k,
                    singleton_constraint=config.singleton_constraint,
                    resolution=config.resolution,
                )
                profile.add(stats)
            else:
                new_comm = compute_moves_vectorized(
                    graph,
                    comm,
                    volumes,
                    sizes,
                    bucket.members,
                    k=k,
                    singleton_constraint=config.singleton_constraint,
                    resolution=config.resolution,
                )
            if config.relaxed_updates:
                pending.append((bucket.members, new_comm))
            else:
                changed = new_comm != comm[bucket.members]
                if changed.any():
                    moved += int(changed.sum())
                    movers = bucket.members[changed]
                    old = comm[movers]
                    new = new_comm[changed]
                    comm[movers] = new
                    # Incremental a_c / size update (Alg. 1 line 11): only
                    # the movers' source and target communities change.
                    np.add.at(volumes, old, -k[movers])
                    np.add.at(volumes, new, k[movers])
                    np.add.at(sizes, old, -1)
                    np.add.at(sizes, new, 1)
        if config.relaxed_updates:
            for members, new_comm in pending:
                changed = new_comm != comm[members]
                moved += int(changed.sum())
                comm[members] = new_comm
            volumes = np.bincount(comm, weights=k, minlength=n)
            sizes = np.bincount(comm, minlength=n)

        new_q = _partition_modularity(comm, edges_view, k, two_m, config.resolution)
        gain = new_q - q
        q = new_q
        if moved == 0 or gain < threshold:
            break

    return OptimizationOutcome(comm, sweeps, q, profile)
