"""Tests for repro.obs.metrics — registry, instruments, exposition."""

import math
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
)

# --------------------------------------------------------------------- #
# Instruments
# --------------------------------------------------------------------- #


def test_counter_inc():
    reg = MetricsRegistry()
    c = reg.counter("jobs_total", "jobs")
    c.inc()
    c.inc(3)
    assert c.value == 4
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_set_inc_dec():
    reg = MetricsRegistry()
    g = reg.gauge("depth", "queue depth")
    g.set(5)
    g.inc(2)
    g.dec()
    assert g.value == 6


def test_callback_gauge():
    reg = MetricsRegistry()
    backing = {"n": 0}
    reg.gauge("live", "live items", fn=lambda: backing["n"])
    backing["n"] = 7
    assert reg.get("live").value == 7


def test_callback_gauge_exception_is_nan():
    reg = MetricsRegistry()
    reg.gauge("bad", "boom", fn=lambda: 1 / 0)
    assert math.isnan(reg.get("bad").value)


def test_callback_gauge_rebinds_on_reregistration():
    reg = MetricsRegistry()
    reg.gauge("live", "live items", fn=lambda: 1)
    reg.gauge("live", "live items", fn=lambda: 2)
    assert reg.get("live").value == 2


def test_histogram_buckets_and_count():
    reg = MetricsRegistry()
    h = reg.histogram("lat", "latency", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 3.0, 100.0):
        h.observe(v)
    assert h.count == 4
    assert h.sum == pytest.approx(105.0)


def test_histogram_quantiles():
    reg = MetricsRegistry()
    h = reg.histogram("lat", "latency", buckets=(1.0, 2.0, 4.0, 8.0))
    for v in [0.5] * 50 + [3.0] * 50:
        h.observe(v)
    assert 0.0 < h.quantile(0.25) <= 1.0
    assert 2.0 < h.quantile(0.99) <= 4.0
    assert reg.histogram("empty", "e").quantile(0.5) == 0.0


def test_histogram_inf_observations_clamp_to_last_bound():
    reg = MetricsRegistry()
    h = reg.histogram("lat", "latency", buckets=(1.0, 2.0))
    h.observe(50.0)
    assert h.quantile(0.99) == pytest.approx(2.0)


def test_default_latency_buckets_pinned():
    # Log-scale x4 from 100 µs to ~26 s — the serve latency histograms
    # depend on these exact bounds; changing them breaks dashboards.
    assert DEFAULT_LATENCY_BUCKETS == pytest.approx(
        (0.0001, 0.0004, 0.0016, 0.0064, 0.0256,
         0.1024, 0.4096, 1.6384, 6.5536, 26.2144)
    )


# --------------------------------------------------------------------- #
# Labels and registration
# --------------------------------------------------------------------- #


def test_labels_create_children():
    reg = MetricsRegistry()
    fam = reg.counter("req_total", "requests", labels=("route",))
    fam.labels(route="a").inc()
    fam.labels(route="a").inc()
    fam.labels(route="b").inc(5)
    children = {values[0]: child.value for values, child in fam.children()}
    assert children == {"a": 2, "b": 5}


def test_labels_validate_names():
    reg = MetricsRegistry()
    fam = reg.counter("req_total", "requests", labels=("route",))
    with pytest.raises(ValueError):
        fam.labels(method="GET")
    with pytest.raises(ValueError):
        fam.labels()


def test_registration_is_idempotent():
    reg = MetricsRegistry()
    a = reg.counter("x_total", "x")
    b = reg.counter("x_total", "x")
    assert a is b


def test_registration_kind_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("x_total", "x")
    with pytest.raises(ValueError):
        reg.gauge("x_total", "x")
    with pytest.raises(ValueError):
        reg.counter("x_total", "x", labels=("route",))


def test_invalid_metric_name_rejected():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("9bad", "bad name")
    with pytest.raises(ValueError):
        reg.counter("has space", "bad name")


# --------------------------------------------------------------------- #
# Exposition format (golden)
# --------------------------------------------------------------------- #


def test_render_golden():
    reg = MetricsRegistry()
    reg.counter("repro_requests_total", "Total requests.",
                labels=("route",)).labels(route="health").inc(3)
    reg.gauge("repro_depth", "Queue depth.").set(2)
    h = reg.histogram("repro_seconds", "Latency.", buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    assert reg.render() == (
        "# HELP repro_depth Queue depth.\n"
        "# TYPE repro_depth gauge\n"
        "repro_depth 2\n"
        "# HELP repro_requests_total Total requests.\n"
        "# TYPE repro_requests_total counter\n"
        'repro_requests_total{route="health"} 3\n'
        "# HELP repro_seconds Latency.\n"
        "# TYPE repro_seconds histogram\n"
        'repro_seconds_bucket{le="0.1"} 1\n'
        'repro_seconds_bucket{le="1"} 2\n'
        'repro_seconds_bucket{le="+Inf"} 3\n'
        "repro_seconds_sum 5.55\n"
        "repro_seconds_count 3\n"
    )


def test_render_escapes_label_values():
    reg = MetricsRegistry()
    reg.counter("x_total", "x", labels=("k",)).labels(k='a"b\\c\nd').inc()
    assert 'x_total{k="a\\"b\\\\c\\nd"} 1' in reg.render()


def test_render_nonfinite_values():
    reg = MetricsRegistry()
    reg.gauge("g", "g").set(float("inf"))
    assert "g +Inf\n" in reg.render()


# --------------------------------------------------------------------- #
# Concurrency, null registry, process default
# --------------------------------------------------------------------- #


def test_thread_safety_counters():
    reg = MetricsRegistry()
    c = reg.counter("n_total", "n")
    h = reg.histogram("h", "h", buckets=(0.5,))

    def work():
        for _ in range(1000):
            c.inc()
            h.observe(0.1)

    threads = [threading.Thread(target=work) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value == 8000
    assert h.count == 8000


def test_null_registry_is_inert():
    assert not NULL_REGISTRY.enabled
    NULL_REGISTRY.counter("x_total", "x").inc()
    NULL_REGISTRY.gauge("g", "g", labels=("a",)).labels(a="1").set(3)
    NULL_REGISTRY.histogram("h", "h").observe(1.0)
    assert NULL_REGISTRY.render() == ""
    assert isinstance(NULL_REGISTRY, NullRegistry)


def test_process_default_registry():
    previous = get_registry()
    try:
        mine = MetricsRegistry()
        set_registry(mine)
        assert get_registry() is mine
    finally:
        set_registry(previous)


# --------------------------------------------------------------------- #
# Quantile edge cases (pinned behaviour)
# --------------------------------------------------------------------- #


def test_quantile_empty_histogram_is_zero_for_every_q():
    h = MetricsRegistry().histogram("lat", "latency", buckets=(1.0, 2.0))
    for q in (0.0, 0.25, 0.5, 0.99, 1.0):
        assert h.quantile(q) == 0.0


def test_quantile_q0_and_q1_stay_within_data_bounds():
    h = MetricsRegistry().histogram("lat", "latency", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 3.0):
        h.observe(v)
    assert 0.0 <= h.quantile(0.0) <= 1.0  # lowest occupied bucket
    assert 2.0 <= h.quantile(1.0) <= 4.0  # highest occupied bucket


def test_quantile_all_observations_in_overflow_bucket():
    # Everything lands beyond the last bound: the estimate clamps to the
    # last finite bound (documented — a lower bound, not interpolation).
    h = MetricsRegistry().histogram("lat", "latency", buckets=(1.0, 2.0))
    for _ in range(10):
        h.observe(99.0)
    for q in (0.0, 0.5, 1.0):
        assert h.quantile(q) == pytest.approx(2.0)


def test_quantile_rejects_nan_and_out_of_range():
    h = MetricsRegistry().histogram("lat", "latency", buckets=(1.0,))
    h.observe(0.5)
    for bad in (float("nan"), -0.1, 1.1):
        with pytest.raises(ValueError):
            h.quantile(bad)


def test_observe_rejects_nan():
    h = MetricsRegistry().histogram("lat", "latency", buckets=(1.0,))
    with pytest.raises(ValueError):
        h.observe(float("nan"))
    assert h.count == 0


# --------------------------------------------------------------------- #
# Exemplars
# --------------------------------------------------------------------- #


def test_histogram_exemplar_stored_per_bucket():
    h = MetricsRegistry().histogram("lat", "latency", buckets=(1.0, 2.0))
    h.observe(0.5, exemplar={"trace_id": "tr-a"})
    h.observe(1.5, exemplar={"trace_id": "tr-b"})
    h.observe(1.7, exemplar={"trace_id": "tr-c"})  # same bucket: replaces
    h.observe(9.0, exemplar={"trace_id": "tr-inf"})  # overflow bucket
    exemplars = h.exemplars()
    assert exemplars[0]["labels"] == {"trace_id": "tr-a"}
    assert exemplars[1]["labels"] == {"trace_id": "tr-c"}
    assert exemplars[2]["labels"] == {"trace_id": "tr-inf"}
    assert exemplars[1]["value"] == pytest.approx(1.7)


def test_histogram_observe_without_exemplar_keeps_previous():
    h = MetricsRegistry().histogram("lat", "latency", buckets=(1.0,))
    h.observe(0.5, exemplar={"trace_id": "tr-keep"})
    h.observe(0.6)
    assert h.exemplars()[0]["labels"] == {"trace_id": "tr-keep"}


def test_render_appends_openmetrics_exemplar_suffix():
    reg = MetricsRegistry()
    h = reg.histogram("lat_seconds", "latency", buckets=(1.0, 2.0))
    h.observe(0.5, exemplar={"trace_id": "tr-a", "cid": "req-1"})
    h.observe(9.0, exemplar={"trace_id": "tr-z"})
    lines = reg.render().splitlines()
    bucket_1 = next(
        line for line in lines if 'le="1"' in line or 'le="1.0"' in line
    )
    assert " # {" in bucket_1 and 'trace_id="tr-a"' in bucket_1
    assert 'cid="req-1"' in bucket_1
    inf = next(line for line in lines if 'le="+Inf"' in line)
    assert 'trace_id="tr-z"' in inf
    # Non-exemplar series stay untouched.
    count_line = next(line for line in lines if "lat_seconds_count" in line)
    assert " # {" not in count_line


def test_null_instrument_accepts_exemplar_kwarg():
    h = NULL_REGISTRY.histogram("h", "h")
    h.observe(1.0, exemplar={"trace_id": "tr-x"})
    assert h.exemplars() == {}
