"""Per-shard worker: restricted modularity optimization over shared CSR.

A worker attaches to the coordinator's shared-memory segments
(:mod:`repro.shard.shm`), builds zero-copy ``CSRGraph`` views, and runs
the paper's bucketed ``computeMove`` sweeps (Alg. 1) **restricted to the
interior vertices of one shard**.  Interior vertices of different shards
are never adjacent (see :mod:`repro.shard.partition`), so concurrent
workers discover their candidate communities through disjoint
neighbourhoods — the move *decisions* cannot race.  What can go stale is
the scoring: a community spanning two shards has its volume updated by
both workers' private bookkeeping, each blind to the other.  Workers are
therefore **proposers, not committers** — the coordinator re-validates
every proposal batch against the authoritative partition with exact
modularity deltas (:mod:`repro.shard.engine`) before any label changes.

The sweep discipline mirrors ``_frontier_optimize``: an active mask over
the movable set, per-bucket extraction at processing time (a commit in an
earlier bucket of the same sweep can re-activate vertices a later bucket
must score), scoring deactivates, commits re-activate the movers and
their movable neighbours.  The sweep gain that drives the stopping rule
is exact over the worker's *local* view: the internal-weight delta over
the movers' CSR rows plus the volume-square delta over affected
communities — no per-sweep full-edge rescans.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from time import process_time

import numpy as np

from ..core.buckets import bucket_index, degree_buckets
from ..core.compute_move import compute_moves_vectorized
from ..core.mod_opt import _sweep_internal_delta
from ..core.sweep_plan import SweepPlan
from ..gpu.thrust import gather_rows
from ..graph.csr import CSRGraph
from ..trace import Span, TraceContext
from .shm import ArraySpec, attach_array

__all__ = [
    "ShardTask",
    "ShardProposal",
    "SliceScorer",
    "SyncShardTask",
    "optimize_shard",
    "run_worker",
    "run_sync_worker",
    "optimize_interior",
]


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs: shm specs plus scalar knobs.

    ``trace`` is the coordinator's :class:`~repro.trace.TraceContext`
    (picklable, rides the command pipe): when set, the worker builds a
    ``shard`` span tagged with its trace id so the coordinator can
    re-parent it into the request's stitched tree.
    """

    shard: int
    specs: dict[str, ArraySpec]
    movable: ArraySpec  # int64 global vertex ids this worker may move
    threshold: float
    max_sweeps: int
    resolution: float
    singleton_constraint: bool
    degree_bucket_bounds: tuple[int, ...]
    group_sizes: tuple[int, ...]
    trace: TraceContext | None = None


@dataclass(frozen=True)
class ShardProposal:
    """One worker's proposed label changes (global vertex ids).

    ``span`` is the worker-built ``shard`` span (present when the task
    carried a trace context) — the coordinator attaches it under its own
    phase span, so cross-process work lands in the same trace tree.
    """

    shard: int
    movers: np.ndarray
    labels: np.ndarray
    sweeps: int
    moved: int
    scored: int
    seconds: float
    span: Span | None = None


def optimize_interior(
    graph: CSRGraph,
    k: np.ndarray,
    comm: np.ndarray,
    movable: np.ndarray,
    *,
    threshold: float,
    max_sweeps: int,
    resolution: float = 1.0,
    singleton_constraint: bool = True,
    degree_bucket_bounds: tuple[int, ...] = (),
    group_sizes: tuple[int, ...] = (),
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Bucketed sweeps restricted to ``movable``; labels outside are frozen.

    Works on a private copy of ``comm``; returns ``(movers, labels,
    sweeps, scored)`` where ``movers`` are the vertices whose final label
    differs from the input and ``labels`` their proposed communities.
    """
    n = graph.num_vertices
    two_m = graph.total_weight
    comm_in = np.asarray(comm, dtype=np.int64)
    comm_local = comm_in.copy()
    movable = np.asarray(movable, dtype=np.int64)
    if n == 0 or two_m == 0.0 or movable.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 0, 0

    volumes = np.bincount(comm_local, weights=k, minlength=n)
    sizes = np.bincount(comm_local, minlength=n)
    movable_mask = np.zeros(n, dtype=bool)
    movable_mask[movable] = True
    active = movable_mask & (graph.degrees > 0)

    template = degree_buckets(graph.degrees, degree_bucket_bounds, group_sizes)
    vbucket = bucket_index(graph.degrees, degree_bucket_bounds)
    bucket_masks = [vbucket == bucket.index for bucket in template]
    scratch = np.zeros(n, dtype=bool)

    sweeps = 0
    scored = 0
    while sweeps < max_sweeps and active.any():
        sweeps += 1
        comm_before = comm_local.copy()
        vol_before = volumes.copy()
        for index in range(len(template)):
            members = np.flatnonzero(active & bucket_masks[index])
            if members.size == 0:
                continue
            scored += int(members.size)
            active[members] = False
            new_comm = compute_moves_vectorized(
                graph,
                comm_local,
                volumes,
                sizes,
                members,
                k=k,
                singleton_constraint=singleton_constraint,
                resolution=resolution,
            )
            changed = new_comm != comm_local[members]
            if not changed.any():
                continue
            movers = members[changed]
            old = comm_local[movers]
            new = new_comm[changed]
            comm_local[movers] = new
            np.add.at(volumes, old, -k[movers])
            np.add.at(volumes, new, k[movers])
            np.add.at(sizes, old, -1)
            np.add.at(sizes, new, 1)
            # Re-activate whatever the moves affect within the movable
            # set: the movers themselves and their movable neighbours.
            pos, _ = gather_rows(graph.indptr, movers)
            nbs = graph.indices[pos]
            active[nbs[movable_mask[nbs]]] = True
            active[movers] = True

        movers_sweep = np.flatnonzero(comm_local != comm_before)
        if movers_sweep.size == 0:
            break
        internal_delta = _sweep_internal_delta(
            graph, comm_before, comm_local, movers_sweep, scratch
        )
        affected = np.unique(
            np.concatenate([comm_before[movers_sweep], comm_local[movers_sweep]])
        )
        volsq_delta = float(np.square(volumes[affected]).sum()) - float(
            np.square(vol_before[affected]).sum()
        )
        gain = internal_delta / two_m - resolution * volsq_delta / (two_m * two_m)
        if gain < threshold:
            break

    movers = np.flatnonzero(comm_local != comm_in)
    return movers, comm_local[movers], sweeps, scored


def optimize_shard(task: ShardTask) -> ShardProposal:
    """Worker entry: attach shm views, optimize, detach, return proposal.

    ``seconds`` is per-process CPU time, not wall time: concurrent
    workers time-slicing a smaller core count would otherwise bill their
    descheduled time too, wrecking the total/critical concurrency
    accounting in the coordinator.
    """
    t0 = process_time()
    handles = {name: attach_array(spec) for name, spec in task.specs.items()}
    movable_handle = attach_array(task.movable)
    try:
        graph = CSRGraph(
            indptr=handles["indptr"].array,
            indices=handles["indices"].array,
            weights=handles["weights"].array,
        )
        movers, labels, sweeps, scored = optimize_interior(
            graph,
            handles["k"].array,
            handles["comm"].array,
            movable_handle.array,
            threshold=task.threshold,
            max_sweeps=task.max_sweeps,
            resolution=task.resolution,
            singleton_constraint=task.singleton_constraint,
            degree_bucket_bounds=task.degree_bucket_bounds,
            group_sizes=task.group_sizes,
        )
        # Copy out before detaching: the views die with the handles.
        movers = movers.copy()
        labels = labels.copy()
    finally:
        for handle in handles.values():
            handle.close()
        movable_handle.close()
    seconds = process_time() - t0
    span = None
    if task.trace is not None:
        span = Span(
            "shard",
            attributes={
                "shard": task.shard,
                "trace_id": task.trace.trace_id,
                "worker_pid": os.getpid(),
            },
            counters={
                "moves": float(movers.size),
                "sweeps": float(sweeps),
                "frontier": float(scored),
            },
            seconds=seconds,
        )
    return ShardProposal(
        shard=task.shard,
        movers=movers,
        labels=labels,
        sweeps=sweeps,
        moved=int(movers.size),
        scored=scored,
        seconds=seconds,
        span=span,
    )


def run_worker(task: ShardTask, queue) -> None:
    """Process target: run :func:`optimize_shard`, ship result or error."""
    try:
        queue.put(("ok", optimize_shard(task)))
    except BaseException as exc:  # noqa: BLE001 - must reach the coordinator
        queue.put(("error", (task.shard, repr(exc))))


class SliceScorer:
    """Sweep-plan-backed bucket slices for one shard (sync mode).

    Builds the stock per-phase :class:`~repro.core.sweep_plan.SweepPlan`
    over this shard's slice of each degree bucket, so the worker enjoys
    the same cached edge gathers, pair tables, and delta scoring the
    single-process baseline does — plan-less slice scoring would redo an
    O(edges) sort per bucket per sweep that the stock engine amortizes
    away.  The plan's validity machinery needs to see *every* commit
    (moves from other shards invalidate this shard's pair rows too), so
    the coordinator broadcasts each bucket's committed ``(movers, old,
    new)`` and :meth:`mark_moved` relays them before the next scoring.
    Plan-backed scoring is bit-identical to plan-less scoring (a stock
    engine invariant), so sync mode's differential guarantee carries
    over unchanged.
    """

    def __init__(
        self,
        graph: CSRGraph,
        k: np.ndarray,
        comm: np.ndarray,
        volumes: np.ndarray,
        sizes: np.ndarray,
        movable: np.ndarray,
        *,
        singleton_constraint: bool,
        resolution: float,
        degree_bucket_bounds: tuple[int, ...],
        group_sizes: tuple[int, ...] = (),
    ) -> None:
        t0 = process_time()
        self.graph = graph
        self.k = k
        self.comm = comm
        self.volumes = volumes
        self.sizes = sizes
        self.singleton_constraint = singleton_constraint
        self.resolution = resolution
        movable = np.asarray(movable, dtype=np.int64)
        buckets = [
            bucket
            for bucket in degree_buckets(
                graph.degrees, degree_bucket_bounds, group_sizes, vertices=movable
            )
            if bucket.size
        ]
        self._position = {bucket.index: i for i, bucket in enumerate(buckets)}
        self.plan = SweepPlan.build(graph, buckets)
        self.plan.track_validity = True
        self._comm32 = self.plan.bind_communities(comm)
        #: CPU seconds spent building the plan — per-shard work a parallel
        #: host overlaps, so callers fold it into the first step's span.
        self.build_seconds = process_time() - t0

    def mark_moved(
        self, movers: np.ndarray, old: np.ndarray, new: np.ndarray
    ) -> None:
        """Stamp a committed batch (from any shard) into the plan."""
        self.plan.mark_moved(movers, old, new)
        if self._comm32 is not None:
            self._comm32[movers] = new

    def score(self, bucket: int) -> tuple[np.ndarray, np.ndarray, int]:
        """Score one bucket's slice; returns ``(movers, labels, scored)``."""
        position = self._position.get(int(bucket))
        if position is None:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, 0
        bucket_plan = self.plan.for_bucket(position)
        members = bucket_plan.bucket.members
        new_comm = compute_moves_vectorized(
            self.graph,
            self.comm,
            self.volumes,
            self.sizes,
            members,
            k=self.k,
            singleton_constraint=self.singleton_constraint,
            resolution=self.resolution,
            plan=bucket_plan,
        )
        changed = new_comm != self.comm[members]
        return members[changed], new_comm[changed], int(members.size)


@dataclass(frozen=True)
class SyncShardTask:
    """Persistent sync-mode worker setup: shm specs plus scoring knobs.

    ``specs`` must cover ``indptr`` / ``indices`` / ``weights`` / ``k`` /
    ``comm`` / ``volumes`` / ``sizes`` — the last three are *live*: the
    coordinator mutates them in place between bucket steps and the
    worker's zero-copy views observe every commit without any message
    traffic.
    """

    shard: int
    specs: dict[str, ArraySpec]
    movable: ArraySpec
    resolution: float
    singleton_constraint: bool
    degree_bucket_bounds: tuple[int, ...]
    trace: TraceContext | None = None


def run_sync_worker(task: SyncShardTask, task_queue, result_queue) -> None:
    """Lockstep worker loop: score one bucket's interior slice per request.

    The coordinator drives the stock sweep/bucket schedule; each message
    is ``(bucket, commits)`` where ``commits`` is a list of ``(movers,
    old, new)`` batches committed since this worker's previous step —
    the worker stamps them into its sweep plan (delta scoring and pair
    caches must observe *every* global move) before scoring.  The reply
    is ``(shard, movers, labels, seconds, scored)`` for this shard's
    slice of that bucket, scored with the stock ``computeMove`` kernel
    against the *current* shared state.  Scoring is per-vertex pure, so
    the union of all shards' replies is bit-identical to one
    single-process scoring of the whole bucket.  ``None`` shuts the
    worker down.
    """
    handles = {name: attach_array(spec) for name, spec in task.specs.items()}
    movable_handle = attach_array(task.movable)
    try:
        graph = CSRGraph(
            indptr=handles["indptr"].array,
            indices=handles["indices"].array,
            weights=handles["weights"].array,
        )
        scorer = SliceScorer(
            graph,
            handles["k"].array,
            handles["comm"].array,
            handles["volumes"].array,
            handles["sizes"].array,
            movable_handle.array,
            singleton_constraint=task.singleton_constraint,
            resolution=task.resolution,
            degree_bucket_bounds=task.degree_bucket_bounds,
        )
        startup = scorer.build_seconds  # billed to the first step's span
        while True:
            message = task_queue.get()
            if message is None:
                break
            bucket, commits = message
            t0 = process_time()  # CPU time: see optimize_shard's note
            try:
                for movers, old, new in commits:
                    scorer.mark_moved(movers, old, new)
                movers, labels, scored = scorer.score(int(bucket))
                result_queue.put(
                    (
                        "ok",
                        (
                            task.shard,
                            movers.copy(),
                            labels.copy(),
                            process_time() - t0 + startup,
                            scored,
                        ),
                    )
                )
                startup = 0.0
            except BaseException as exc:  # noqa: BLE001 - reach coordinator
                result_queue.put(("error", (task.shard, repr(exc))))
                break
    finally:
        for handle in handles.values():
            handle.close()
        movable_handle.close()
