"""Comparator: coarse-grained parallel Louvain.

Models the distributed-memory algorithms the paper reviews
(Wickramaarachchi et al. [26] — MPI; Zeng & Yu [27]; and the across-GPU
layer of Cheong et al. [4]): the vertex set is split into ``num_parts``
disjoint parts, a full sequential-style modularity optimization runs
*independently* inside each part (cross-part edges are invisible during
this step), then the per-part communities seed a global merge: the graph
is contracted by the union of part-local communities and the remaining
levels run normally.

Section 6 of the paper observes that this scheme "seems to consistently
produce solutions of high modularity even when using an initial random
vertex partitioning" — the benchmark reproduces exactly that comparison
(random parts vs the fine-grained result).
"""

from __future__ import annotations

import numpy as np

from ..core.mod_opt import modularity_optimization
from ..core.config import GPULouvainConfig
from ..graph.build import induced_subgraph
from ..graph.csr import CSRGraph
from ..metrics.modularity import modularity
from ..metrics.timing import RunTimings, Stopwatch
from ..result import LouvainResult, flatten_levels
from .vector_aggregate import aggregate_vectorized

__all__ = ["coarse_louvain", "random_parts"]


def random_parts(
    num_vertices: int, num_parts: int, rng: np.random.Generator | int | None = 0
) -> np.ndarray:
    """Random balanced assignment of vertices to parts."""
    rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
    parts = np.arange(num_vertices, dtype=np.int64) % num_parts
    rng.shuffle(parts)
    return parts


def coarse_louvain(
    graph: CSRGraph,
    num_parts: int = 4,
    *,
    parts: np.ndarray | None = None,
    threshold: float = 1e-6,
    rng: np.random.Generator | int | None = 0,
    max_levels: int = 200,
) -> LouvainResult:
    """Coarse-grained Louvain with ``num_parts`` independent workers.

    ``parts`` overrides the random partition (e.g. to test a smarter
    edge-cut partitioning).
    """
    n = graph.num_vertices
    if parts is None:
        parts = random_parts(n, num_parts, rng)
    parts = np.asarray(parts, dtype=np.int64)
    if parts.shape != (n,):
        raise ValueError("parts must assign one part per vertex")

    timings = RunTimings()
    stage = timings.new_stage(n, graph.num_edges)
    config = GPULouvainConfig(threshold_final=threshold, threshold_bin=max(threshold, 1e-2))

    # Phase A: independent optimization inside each part.
    local_comm = np.arange(n, dtype=np.int64)
    with Stopwatch(stage, "optimization_seconds"):
        for p in range(int(parts.max()) + 1 if n else 0):
            members = np.flatnonzero(parts == p)
            if members.size == 0:
                continue
            sub = induced_subgraph(graph, members)
            outcome = modularity_optimization(sub, config, threshold)
            # Map the subgraph's community labels (subgraph-vertex ids)
            # back to global vertex ids so all parts stay disjoint.
            local_comm[members] = members[outcome.communities]

    levels: list[np.ndarray] = []
    level_sizes: list[tuple[int, int]] = [(n, graph.num_edges)]
    sweeps_per_level: list[int] = []
    modularity_per_level: list[float] = []

    # Phase B: merge — contract by the union of local solutions, then run
    # fine-grained Louvain levels to completion on the contracted graph.
    with Stopwatch(stage, "aggregation_seconds"):
        contracted, dense = aggregate_vectorized(graph, local_comm)
    levels.append(dense)
    sweeps_per_level.append(0)
    membership = flatten_levels(levels)
    q = modularity(graph, membership)
    modularity_per_level.append(q)
    stage.modularity = q
    prev_q = q
    current = contracted

    for _ in range(max_levels):
        stage = timings.new_stage(current.num_vertices, current.num_edges)
        with Stopwatch(stage, "optimization_seconds"):
            outcome = modularity_optimization(current, config, threshold)
        with Stopwatch(stage, "aggregation_seconds"):
            contracted, dense = aggregate_vectorized(current, outcome.communities)
        levels.append(dense)
        level_sizes.append((current.num_vertices, current.num_edges))
        sweeps_per_level.append(outcome.sweeps)
        stage.sweeps = outcome.sweeps
        membership = flatten_levels(levels)
        q = modularity(graph, membership)
        modularity_per_level.append(q)
        stage.modularity = q
        no_contraction = contracted.num_vertices == current.num_vertices
        current = contracted
        if q - prev_q < threshold or no_contraction:
            break
        prev_q = q

    membership = flatten_levels(levels)
    return LouvainResult(
        levels=levels,
        level_sizes=level_sizes,
        membership=membership,
        modularity=modularity(graph, membership),
        modularity_per_level=modularity_per_level,
        sweeps_per_level=sweeps_per_level,
        timings=timings,
    )
