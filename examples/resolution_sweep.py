#!/usr/bin/env python
"""Resolution sweep: pick the community granularity that fits your question.

Standard modularity has a *resolution limit* — the paper's Section 6 cites
Fortunato & Barthelemy [11] on algorithms "failing to identify communities
smaller than a network dependent parameter".  The generalised modularity's
gamma parameter is the standard control: gamma > 1 resolves smaller
communities, gamma < 1 merges more aggressively.

This example sweeps gamma on a graph with two natural scales (small cliques
arranged in larger super-groups) and shows each gamma recovering a
different level of the ground truth.

Run:  python examples/resolution_sweep.py
"""

import numpy as np

from repro import gpu_louvain
from repro.graph.build import from_edges
from repro.metrics.quality import adjusted_rand_index


def two_scale_graph(
    num_supergroups: int = 6,
    cliques_per_group: int = 5,
    clique_size: int = 6,
    rng_seed: int = 0,
):
    """Cliques densely wired inside super-groups, sparse across.

    Returns (graph, fine_truth, coarse_truth).
    """
    rng = np.random.default_rng(rng_seed)
    n = num_supergroups * cliques_per_group * clique_size
    fine = np.arange(n) // clique_size
    coarse = np.arange(n) // (cliques_per_group * clique_size)
    us, vs = [], []
    # cliques
    for c in range(num_supergroups * cliques_per_group):
        base = c * clique_size
        iu, iv = np.triu_indices(clique_size, k=1)
        us.append(base + iu)
        vs.append(base + iv)
    # intra-supergroup links between cliques (moderately dense)
    for sg in range(num_supergroups):
        members = np.flatnonzero(coarse == sg)
        extra = 4 * cliques_per_group
        us.append(rng.choice(members, extra))
        vs.append(rng.choice(members, extra))
    # sparse inter-supergroup links
    us.append(rng.integers(0, n, num_supergroups * 2))
    vs.append(rng.integers(0, n, num_supergroups * 2))
    u = np.concatenate(us)
    v = np.concatenate(vs)
    keep = u != v
    return from_edges(u[keep], v[keep], num_vertices=n), fine, coarse


def main() -> None:
    graph, fine_truth, coarse_truth = two_scale_graph()
    n_fine = np.unique(fine_truth).size
    n_coarse = np.unique(coarse_truth).size
    print(f"two-scale graph: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges")
    print(f"ground truth: {n_fine} cliques inside {n_coarse} super-groups\n")

    print(f"{'gamma':>6s} {'comms':>6s} {'Q_gamma':>8s} "
          f"{'ARI fine':>9s} {'ARI coarse':>10s}")
    for gamma in (0.1, 0.3, 1.0, 2.0, 4.0, 8.0):
        result = gpu_louvain(graph, resolution=gamma)
        ari_fine = adjusted_rand_index(result.membership, fine_truth)
        ari_coarse = adjusted_rand_index(result.membership, coarse_truth)
        marker = ""
        if ari_coarse > 0.9:
            marker = "  <- recovers the super-groups"
        if ari_fine > 0.9:
            marker = "  <- recovers the cliques"
        print(f"{gamma:6.1f} {result.num_communities:6d} "
              f"{result.modularity:8.4f} {ari_fine:9.3f} "
              f"{ari_coarse:10.3f}{marker}")

    print("\nlow gamma merges into super-groups; high gamma resolves the "
          "individual cliques\n(the same graph, two legitimate answers).")


if __name__ == "__main__":
    main()
