"""Smoke tests: every example script must run cleanly end to end.

The slowest examples are exercised through subprocesses with a generous
timeout; their detailed behaviour is covered by the unit tests of the
APIs they use.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_examples_directory_complete():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    expected = {
        "quickstart.py",
        "social_network_analysis.py",
        "road_network_hierarchy.py",
        "simulated_device_profiling.py",
        "compare_algorithms.py",
        "dynamic_communities.py",
        "resolution_sweep.py",
    }
    assert expected <= present


def test_quickstart():
    out = _run("quickstart.py")
    assert "karate club" in out
    assert "Q = 0.4" in out
    assert "independent modularity check" in out


def test_resolution_sweep():
    out = _run("resolution_sweep.py")
    assert "recovers the super-groups" in out
    assert "recovers the cliques" in out


def test_simulated_device_profiling():
    out = _run("simulated_device_profiling.py")
    assert "active-thread fraction" in out
    assert "identical clustering on both devices" in out


def test_road_network_hierarchy():
    out = _run("road_network_hierarchy.py")
    assert "optimization fraction" in out
    assert "best-modularity cut" in out


def test_dynamic_communities():
    out = _run("dynamic_communities.py", timeout=400)
    assert "warm sweeps" in out
    assert "warm starts keep the hierarchy stable" in out


@pytest.mark.parametrize(
    "name", ["social_network_analysis.py", "compare_algorithms.py"]
)
def test_heavier_examples(name):
    out = _run(name, timeout=500)
    assert "Q" in out or "modularity" in out.lower()
