"""Sequential Louvain baseline (Blondel et al.) and reference aggregation."""

from .aggregation import aggregate
from .louvain import louvain, one_level

__all__ = ["louvain", "one_level", "aggregate"]
