"""Multi-tenant session ownership: named sessions, LRU eviction, restore.

The :class:`SessionManager` is the transport-free heart of
``repro.serve``: it owns many named :class:`~repro.stream.StreamSession`
instances, keeps at most ``max_sessions`` (and optionally
``max_bytes``) of them resident, and transparently round-trips the rest
to disk (:mod:`repro.serve.snapshot`).  ``get()`` on an evicted name
restores it from its snapshot — callers never observe eviction except
as latency.  The HTTP layer (:mod:`repro.serve.server`) is a thin
wrapper over this class, so everything here is unit-testable without a
socket.

Eviction discipline: least-recently-used among the *unpinned* resident
sessions.  The server pins a session while an ``apply()`` runs in the
worker thread, so the budget enforcement can never snapshot a mid-batch
(torn) state; with no pins (the synchronous/library use) it is exact
LRU.  A session evicted for budget reasons is always snapshotted first —
eviction never loses state.
"""

from __future__ import annotations

import os
import re
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from ..graph.csr import CSRGraph
from ..obs.flight import NULL_FLIGHT, FlightRecorder, set_flight_recorder
from ..obs.metrics import NULL_REGISTRY, get_registry
from ..stream import StreamConfig, StreamSession
from ..trace import Tracer
from .snapshot import restore_session, snapshot_paths, snapshot_session

__all__ = ["ServeConfig", "SessionManager", "session_nbytes"]

#: Session names double as snapshot file stems — keep them path-safe.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")


@dataclass(frozen=True)
class ServeConfig:
    """Configuration of a :class:`SessionManager` / serve deployment.

    Attributes
    ----------
    max_sessions:
        Resident-session cap; the LRU tail is evicted (snapshot + drop)
        past it.  ``0`` disables the cap.
    max_bytes:
        Resident-memory budget over the per-session byte estimate
        (:func:`session_nbytes`).  ``None`` disables it.  Both caps are
        soft against pinned sessions: a session mid-apply is never
        evicted, even if the budget is temporarily exceeded.
    snapshot_dir:
        Directory holding ``<name>.npz`` / ``<name>.json`` snapshots.
    trace:
        Attach a :class:`~repro.trace.Tracer` to every session so batch
        :class:`~repro.trace.RunReport` retrieval works.
    coalesce:
        Server-level default: merge request bursts into one ``apply()``
        per session (the manager itself does not queue).
    metrics:
        Record runtime metrics into the process-wide default
        :class:`~repro.obs.metrics.MetricsRegistry` (exposed by the
        server as ``GET /v1/metrics``).  ``False`` uses the inert
        :data:`~repro.obs.metrics.NULL_REGISTRY` — zero overhead, and
        the metrics endpoint answers 404.
    slow_request_seconds:
        Requests slower than this are logged as ``slow_request``
        (structured-log event; ``0`` logs every request).
    flight:
        Keep an always-on :class:`~repro.obs.flight.FlightRecorder`
        (bounded ring of recent spans / log lines / metric deltas)
        and serve it at ``GET /v1/debug/flight``.
    flight_bytes:
        Byte budget of the flight ring (default 1 MiB).
    flight_dir:
        Directory for crash-surviving flight journals
        (``flight-<pid>.jsonl``); ``None`` keeps the ring memory-only.
    exemplar_seconds:
        Latency observations at or above this attach a trace-id/cid
        exemplar to their histogram bucket (``0`` tags everything).
    stall_seconds:
        Watchdog window: a session apply making no progress for this
        long triggers a flight dump + ``worker_stalled`` log.  ``0``
        disables the watchdog.
    """

    max_sessions: int = 8
    max_bytes: int | None = None
    snapshot_dir: str | Path = "sessions"
    trace: bool = True
    coalesce: bool = True
    metrics: bool = True
    slow_request_seconds: float = 1.0
    flight: bool = True
    flight_bytes: int = 1 << 20
    flight_dir: str | Path | None = None
    exemplar_seconds: float = 0.05
    stall_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.max_sessions < 0:
            raise ValueError("max_sessions must be >= 0")
        if self.max_bytes is not None and self.max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if self.slow_request_seconds < 0:
            raise ValueError("slow_request_seconds must be >= 0")
        if self.flight_bytes <= 0:
            raise ValueError("flight_bytes must be positive")
        if self.exemplar_seconds < 0:
            raise ValueError("exemplar_seconds must be >= 0")
        if self.stall_seconds < 0:
            raise ValueError("stall_seconds must be >= 0")


def session_nbytes(session: StreamSession) -> int:
    """Resident-memory estimate of one session (its big arrays)."""
    graph = session.graph
    return int(
        graph.indptr.nbytes
        + graph.indices.nbytes
        + graph.weights.nbytes
        + session.membership.nbytes
        + session.result.membership.nbytes
    )


class SessionManager:
    """Owns named sessions with an LRU resident set and disk spillover."""

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        registry: Any = None,
        **overrides: Any,
    ) -> None:
        if config is None:
            config = ServeConfig(**overrides)
        elif overrides:
            raise TypeError("pass either a config object or keyword overrides")
        self.config = config
        self.sessions: OrderedDict[str, StreamSession] = OrderedDict()
        self._pinned: set[str] = set()
        # Counters of the stats contract (docs/API.md).
        self.created = 0
        self.restored = 0
        self.evictions = 0
        self.snapshots = 0
        self.budget_evictions = 0
        # True while the resident-set budget is forcing evictions: set
        # whenever the latest admission (create/restore) had to evict,
        # cleared when an admission fits or residency shrinks.  /v1/health
        # reports "degraded" while this holds.
        self._budget_pressure = False
        if registry is None:
            registry = get_registry() if config.metrics else NULL_REGISTRY
        self.registry = registry
        if config.flight:
            journal = (
                Path(config.flight_dir) / f"flight-{os.getpid()}.jsonl"
                if config.flight_dir is not None
                else None
            )
            self.flight = FlightRecorder(config.flight_bytes, journal=journal)
        else:
            self.flight = NULL_FLIGHT
        set_flight_recorder(self.flight)
        self._init_metrics()

    def _init_metrics(self) -> None:
        reg = self.registry
        self._m_created = reg.counter(
            "repro_serve_sessions_created_total", "Sessions created."
        )
        self._m_restored = reg.counter(
            "repro_serve_sessions_restored_total",
            "Sessions restored from snapshot on first touch.",
        )
        self._m_evicted = reg.counter(
            "repro_serve_sessions_evicted_total",
            "Sessions snapshotted and dropped from memory (all causes).",
        )
        self._m_budget_evicted = reg.counter(
            "repro_serve_budget_evictions_total",
            "Evictions forced by the session/byte budget.",
        )
        self._m_snapshots = reg.counter(
            "repro_serve_snapshots_total", "Session snapshots written."
        )
        reg.gauge(
            "repro_serve_sessions_resident",
            "Sessions currently resident in memory.",
            fn=lambda: float(len(self.sessions)),
        )
        reg.gauge(
            "repro_serve_resident_bytes",
            "Byte estimate of all resident sessions.",
            fn=lambda: float(self.resident_bytes()),
        )

    # ------------------------------------------------------------------ #
    # Naming and locating
    # ------------------------------------------------------------------ #
    @property
    def snapshot_dir(self) -> Path:
        return Path(self.config.snapshot_dir)

    def _base(self, name: str) -> Path:
        return self.snapshot_dir / name

    @staticmethod
    def validate_name(name: str) -> str:
        """Check a session name is path-safe; returns it unchanged."""
        if not _NAME_RE.match(name):
            raise ValueError(
                f"invalid session name {name!r}: use 1-128 characters "
                "[A-Za-z0-9._-], not starting with '.' or '-'"
            )
        return name

    def snapshotted(self, name: str) -> bool:
        """Whether a complete snapshot of ``name`` exists on disk."""
        _, sidecar = snapshot_paths(self._base(name))
        return sidecar.exists()

    def has(self, name: str) -> bool:
        """Whether ``name`` is resident or snapshotted."""
        return name in self.sessions or self.snapshotted(name)

    def names(self) -> list[str]:
        """Every known session name (resident first, then disk-only)."""
        known = list(self.sessions)
        if self.snapshot_dir.is_dir():
            for sidecar in sorted(self.snapshot_dir.glob("*.json")):
                name = sidecar.name[: -len(".json")]
                if name not in self.sessions:
                    known.append(name)
        return known

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _new_tracer(self) -> Tracer | None:
        """A session tracer wired into the flight recorder (or None)."""
        if not self.config.trace:
            return None
        return Tracer(flight=self.flight)

    def create(
        self,
        name: str,
        graph: CSRGraph,
        config: StreamConfig | None = None,
        *,
        initial_membership: np.ndarray | None = None,
        overwrite: bool = False,
    ) -> StreamSession:
        """Create (and initially cluster) a new named session."""
        self.validate_name(name)
        if not overwrite and self.has(name):
            raise KeyError(f"session {name!r} already exists")
        session = StreamSession(
            graph,
            config or StreamConfig(),
            initial_membership=initial_membership,
            tracer=self._new_tracer(),
        )
        session.bind_metrics(self.registry, session=name)
        self.sessions[name] = session
        self.sessions.move_to_end(name)
        self.created += 1
        self._m_created.inc()
        self._enforce_budget(keep=name)
        return session

    def get(self, name: str) -> StreamSession:
        """The named session, restored from disk if evicted.

        Touches the LRU position.  Raises :class:`KeyError` for names
        that are neither resident nor snapshotted.
        """
        session = self.sessions.get(name)
        if session is None:
            if not self.snapshotted(name):
                raise KeyError(f"unknown session {name!r}")
            session = restore_session(
                self._base(name),
                tracer=self._new_tracer(),
            )
            session.bind_metrics(self.registry, session=name)
            self.sessions[name] = session
            self.restored += 1
            self._m_restored.inc()
            self._enforce_budget(keep=name)
        self.sessions.move_to_end(name)
        return session

    def snapshot(self, name: str) -> Path:
        """Persist the named session to disk (stays resident)."""
        session = self.get(name)
        path = snapshot_session(session, self._base(name))
        self.snapshots += 1
        self._m_snapshots.inc()
        return path

    def evict(self, name: str) -> Path:
        """Snapshot the named session and drop it from memory."""
        if name in self._pinned:
            raise RuntimeError(f"session {name!r} is busy (apply in flight)")
        path = self.snapshot(name)
        del self.sessions[name]
        self.evictions += 1
        self._m_evicted.inc()
        self._budget_pressure = self._over_budget()
        return path

    def delete(self, name: str) -> None:
        """Forget the session entirely: memory and snapshot files."""
        if name in self._pinned:
            raise RuntimeError(f"session {name!r} is busy (apply in flight)")
        found = self.sessions.pop(name, None) is not None
        for path in snapshot_paths(self._base(name)):
            if path.exists():
                path.unlink()
                found = True
        if not found:
            raise KeyError(f"unknown session {name!r}")
        self._budget_pressure = self._over_budget()

    # ------------------------------------------------------------------ #
    # Pinning and budget
    # ------------------------------------------------------------------ #
    def pin(self, name: str) -> None:
        """Exempt a session from eviction (an apply is in flight)."""
        self._pinned.add(name)

    def unpin(self, name: str) -> None:
        self._pinned.discard(name)

    def resident_bytes(self) -> int:
        """Summed byte estimate of every resident session."""
        return sum(session_nbytes(s) for s in self.sessions.values())

    def _over_budget(self) -> bool:
        cfg = self.config
        if cfg.max_sessions and len(self.sessions) > cfg.max_sessions:
            return True
        return (
            cfg.max_bytes is not None
            and len(self.sessions) > 1
            and self.resident_bytes() > cfg.max_bytes
        )

    def _enforce_budget(self, *, keep: str | None = None) -> list[str]:
        """Evict LRU unpinned sessions until within budget.

        ``keep`` (the session just touched) is evicted last-resort only;
        with every candidate pinned the budget is allowed to overflow —
        correctness over bookkeeping.  Returns the evicted names.
        """
        evicted: list[str] = []
        while self._over_budget():
            victim = next(
                (
                    name
                    for name in self.sessions
                    if name not in self._pinned and name != keep
                ),
                None,
            )
            if victim is None:
                break
            self.evict(victim)
            evicted.append(victim)
        self.budget_evictions += len(evicted)
        self._m_budget_evicted.inc(len(evicted))
        self._budget_pressure = bool(evicted) or self._over_budget()
        return evicted

    @property
    def eviction_pressure(self) -> bool:
        """True while the budget is forcing evictions (health: degraded)."""
        return self._budget_pressure

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def info(self, name: str) -> dict[str, Any]:
        """One session's stats row (the list/info payload of the API)."""
        resident = name in self.sessions
        if resident:
            session = self.sessions[name]
            return {
                "name": name,
                "resident": True,
                "num_vertices": session.graph.num_vertices,
                "num_edges": session.graph.num_edges,
                "modularity": session.modularity,
                "num_communities": session.result.num_communities,
                "batches": session.batches,
                "bytes": session_nbytes(session),
                "fingerprint": session.config.fingerprint(),
            }
        if not self.snapshotted(name):
            raise KeyError(f"unknown session {name!r}")
        import json

        _, sidecar_path = snapshot_paths(self._base(name))
        sidecar = json.loads(sidecar_path.read_text())
        return {
            "name": name,
            "resident": False,
            "num_vertices": sidecar.get("num_vertices"),
            "num_edges": sidecar.get("num_edges"),
            "modularity": sidecar.get("result", {}).get("modularity"),
            "num_communities": None,
            "batches": sidecar.get("batches"),
            "bytes": 0,
            "fingerprint": sidecar.get("fingerprint"),
        }

    def list_info(self) -> list[dict[str, Any]]:
        """The stats row of every known session."""
        return [self.info(name) for name in self.names()]

    def stats(self) -> dict[str, Any]:
        """Manager-level counters (part of the /v1/stats contract)."""
        return {
            "resident": len(self.sessions),
            "known": len(self.names()),
            "resident_bytes": self.resident_bytes(),
            "created": self.created,
            "restored": self.restored,
            "evictions": self.evictions,
            "budget_evictions": self.budget_evictions,
            "snapshots": self.snapshots,
            "eviction_pressure": self.eviction_pressure,
        }
